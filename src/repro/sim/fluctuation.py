"""Performance-fluctuation models.

The paper's core motivation is that clouds exhibit *performance
fluctuations* that cost models fail to capture.  A
:class:`FluctuationModel` multiplies an activation's nominal execution
time by a sampled factor >= some floor; composing models layers effects.

- :class:`GaussianFluctuation` — lognormal-ish jitter around 1.0 (multi-
  tenant noise on every execution);
- :class:`BurstThrottleFluctuation` — t2 burstable credit exhaustion: a VM
  that has been busy for longer than its credit window runs slower, which
  penalizes piling work on micro instances;
- :class:`InterferenceFluctuation` — occasional noisy-neighbour episodes
  that slow a VM by a large factor with small probability.
"""

from __future__ import annotations

import abc
from typing import Sequence

import numpy as np

from repro.sim.vm import Vm
from repro.util.validate import check_non_negative, check_positive, check_probability

__all__ = [
    "FluctuationModel",
    "NoFluctuation",
    "GaussianFluctuation",
    "BurstThrottleFluctuation",
    "InterferenceFluctuation",
    "ComposedFluctuation",
]

_MIN_FACTOR = 0.05  #: hard floor: nothing runs 20x faster than nominal


class FluctuationModel(abc.ABC):
    """Samples a multiplicative slowdown for one execution."""

    @abc.abstractmethod
    def factor(
        self, vm: Vm, now: float, busy_time: float, rng: np.random.Generator
    ) -> float:
        """Multiplier on nominal execution time (1.0 = nominal).

        Parameters
        ----------
        vm:
            The executing VM.
        now:
            Current simulated time.
        busy_time:
            Cumulative busy seconds already accrued by this VM (drives
            credit-exhaustion models).
        rng:
            The simulation's fluctuation stream.
        """

    @staticmethod
    def _clamp(value: float) -> float:
        return max(float(value), _MIN_FACTOR)


class NoFluctuation(FluctuationModel):
    """Deterministic executions (the clean learning simulator)."""

    def factor(
        self, vm: Vm, now: float, busy_time: float, rng: np.random.Generator
    ) -> float:
        return 1.0


class GaussianFluctuation(FluctuationModel):
    """Symmetric jitter: factor ~ max(floor, N(1, sigma))."""

    def __init__(self, sigma: float = 0.1) -> None:
        self.sigma = check_non_negative("sigma", sigma)

    def factor(
        self, vm: Vm, now: float, busy_time: float, rng: np.random.Generator
    ) -> float:
        return self._clamp(rng.normal(1.0, self.sigma))


class BurstThrottleFluctuation(FluctuationModel):
    """Credit exhaustion for burstable instances.

    Once a burstable VM (identified by name prefix, default the whole
    ``t2`` family's 1-vCPU members) has accumulated ``credit_seconds`` of
    busy time, subsequent executions run ``throttle_factor`` x slower —
    modelling baseline CPU after the burst budget is gone.
    """

    def __init__(
        self,
        credit_seconds: float = 300.0,
        throttle_factor: float = 1.6,
        burstable_max_vcpus: int = 1,
    ) -> None:
        self.credit_seconds = check_positive("credit_seconds", credit_seconds)
        self.throttle_factor = check_positive("throttle_factor", throttle_factor)
        if self.throttle_factor < 1.0:
            raise ValueError("throttle_factor must be >= 1.0")
        self.burstable_max_vcpus = int(burstable_max_vcpus)

    def factor(
        self, vm: Vm, now: float, busy_time: float, rng: np.random.Generator
    ) -> float:
        if vm.type.vcpus <= self.burstable_max_vcpus and busy_time > self.credit_seconds:
            return self.throttle_factor
        return 1.0


class InterferenceFluctuation(FluctuationModel):
    """Noisy-neighbour episodes: with probability p, slow down a lot."""

    def __init__(self, probability: float = 0.05, slowdown: float = 2.0) -> None:
        self.probability = check_probability("probability", probability)
        self.slowdown = check_positive("slowdown", slowdown)
        if self.slowdown < 1.0:
            raise ValueError("slowdown must be >= 1.0")

    def factor(
        self, vm: Vm, now: float, busy_time: float, rng: np.random.Generator
    ) -> float:
        if rng.random() < self.probability:
            return self.slowdown
        return 1.0


class ComposedFluctuation(FluctuationModel):
    """Product of several models' factors."""

    def __init__(self, models: Sequence[FluctuationModel]) -> None:
        if not models:
            raise ValueError("ComposedFluctuation needs at least one model")
        self.models = list(models)

    def factor(
        self, vm: Vm, now: float, busy_time: float, rng: np.random.Generator
    ) -> float:
        out = 1.0
        for model in self.models:
            out *= model.factor(vm, now, busy_time, rng)
        return self._clamp(out)
