"""Discrete-event cloud workflow simulator (the WorkflowSim substitute).

The package mirrors the WorkflowSim decomposition the paper relies on:

- a **Workflow Mapper** role: :mod:`repro.dag` + :mod:`repro.sim.vm`
  bind abstract activations to concrete VM resources;
- a **Workflow Engine** role: :class:`~repro.sim.kernel.EpisodeKernel`
  tracks dependencies, releases ready activations and advances simulated
  time through an event heap, split into immutable cross-episode data
  and a resettable :class:`~repro.sim.kernel.EpisodeState` (see
  ``docs/architecture.md``);
  :class:`~repro.sim.simulator.WorkflowSimulator` is the one-shot facade
  over it;
- a **Workflow Scheduler** role: pluggable
  :class:`~repro.schedulers.base.OnlineScheduler` objects are consulted at
  every decision point (the paper's *available* workflow state).

Environment realism is layered through orthogonal models: data transfer
(:mod:`~repro.sim.network`), performance fluctuation
(:mod:`~repro.sim.fluctuation`), activation/VM failures
(:mod:`~repro.sim.failures`) and live migration
(:mod:`~repro.sim.migration`).
"""

from repro.sim.events import Event, EventQueue, EventType
from repro.sim.vm import Vm, VmType, VM_TYPES, t2_fleet, fleet_vcpus
from repro.sim.datacenter import Datacenter, ProvisionedVm
from repro.sim.host import Host, HostPool, host_failure_revocations
from repro.sim.network import NetworkModel, SharedStorageNetwork, ZeroCostNetwork
from repro.sim.fluctuation import (
    FluctuationModel,
    NoFluctuation,
    GaussianFluctuation,
    BurstThrottleFluctuation,
    InterferenceFluctuation,
    ComposedFluctuation,
)
from repro.sim.failures import FailureModel, NoFailures, BernoulliFailures
from repro.sim.migration import MigrationModel, NoMigrations, PeriodicMigrations
from repro.sim.spot import NoRevocations, PoissonRevocations, Revocation, RevocationModel
from repro.sim.metrics import ActivationRecord, SimulationResult, VmUsage
from repro.sim.estimates import NominalEstimateCache
from repro.sim.kernel import (
    EpisodeKernel,
    EpisodeState,
    PendingExecution,
    SimulationError,
)
from repro.sim.simulator import SimulationContext, WorkflowSimulator
from repro.sim.trace import (
    DecisionStep,
    EpisodeTrace,
    ReplayContext,
    ReplayPending,
    TraceBuilder,
    TracingScheduler,
    gantt_text,
)
from repro.sim.validate import validate_result

__all__ = [
    "Event",
    "EventQueue",
    "EventType",
    "Vm",
    "VmType",
    "VM_TYPES",
    "t2_fleet",
    "fleet_vcpus",
    "Datacenter",
    "ProvisionedVm",
    "Host",
    "HostPool",
    "host_failure_revocations",
    "NetworkModel",
    "SharedStorageNetwork",
    "ZeroCostNetwork",
    "FluctuationModel",
    "NoFluctuation",
    "GaussianFluctuation",
    "BurstThrottleFluctuation",
    "InterferenceFluctuation",
    "ComposedFluctuation",
    "FailureModel",
    "NoFailures",
    "BernoulliFailures",
    "MigrationModel",
    "NoMigrations",
    "PeriodicMigrations",
    "RevocationModel",
    "NoRevocations",
    "PoissonRevocations",
    "Revocation",
    "ActivationRecord",
    "SimulationResult",
    "VmUsage",
    "NominalEstimateCache",
    "EpisodeKernel",
    "EpisodeState",
    "PendingExecution",
    "SimulationError",
    "SimulationContext",
    "WorkflowSimulator",
    "DecisionStep",
    "EpisodeTrace",
    "ReplayContext",
    "ReplayPending",
    "TraceBuilder",
    "TracingScheduler",
    "gantt_text",
    "validate_result",
]
