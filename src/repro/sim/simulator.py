"""The workflow simulator: dependency tracking + event loop + dispatch.

:class:`WorkflowSimulator` plays the role of WorkflowSim's Workflow Engine
and Clustering/Scheduler glue: it holds the activation state machine,
advances simulated time through an :class:`~repro.sim.events.EventQueue`,
and consults a scheduler object at every decision point — i.e. whenever
the workflow is in the paper's *available* state (some activation READY
and some VM idle).

The scheduler is duck-typed (see :class:`~repro.schedulers.base
.OnlineScheduler` for the reference interface): the simulator calls

- ``on_simulation_start(ctx)`` once, before any dispatch;
- ``select(ctx) -> (activation_id, vm_id) | None`` repeatedly while the
  workflow is available (None = the paper's *do nothing* action);
- ``on_dispatched(ctx, pending)`` right after a dispatch, with the
  activation's queue time and planned execution time — the quantities the
  ReASSIgN reward consumes;
- ``on_activation_finished(ctx, record)`` at each completion;
- ``on_simulation_end(ctx, result)`` once.

All hooks except ``select`` are optional.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

from repro.dag.activation import Activation, ActivationState
from repro.dag.graph import Workflow
from repro.sim.events import Event, EventQueue, EventType
from repro.sim.failures import FailureModel, NoFailures
from repro.sim.fluctuation import FluctuationModel, NoFluctuation
from repro.sim.metrics import ActivationRecord, SimulationResult
from repro.sim.migration import MigrationModel, NoMigrations
from repro.sim.network import NetworkModel, SharedStorageNetwork
from repro.sim.spot import NoRevocations, RevocationModel
from repro.sim.vm import Vm
from repro.util.rng import RngService
from repro.util.validate import ValidationError, check_positive

__all__ = ["SimulationContext", "WorkflowSimulator", "PendingExecution", "SimulationError"]


class SimulationError(RuntimeError):
    """Raised when a simulation cannot make progress (deadlock/horizon)."""


@dataclass
class PendingExecution:
    """Bookkeeping for one in-flight execution attempt."""

    activation_id: int
    vm_id: int
    ready_time: float
    dispatch_time: float
    stage_in: float
    exec_duration: float  #: staging + compute + publish for this attempt
    planned_finish: float
    attempt: int
    outcome: str  #: "success" | "retry" | "failure"
    event: Optional[Event] = None

    @property
    def queue_time(self) -> float:
        """``tf`` — how long the activation waited in READY."""
        return self.dispatch_time - self.ready_time

    @property
    def planned_execution_time(self) -> float:
        """``te`` — how long the attempt will occupy the VM."""
        return self.exec_duration


class SimulationContext:
    """Read-only view of the simulation handed to schedulers."""

    def __init__(self, sim: "WorkflowSimulator") -> None:
        self._sim = sim

    @property
    def now(self) -> float:
        """Current simulated time."""
        return self._sim._now

    @property
    def workflow(self) -> Workflow:
        """The (live) workflow DAG; do not mutate."""
        return self._sim._wf

    @property
    def vms(self) -> Sequence[Vm]:
        """The full fleet."""
        return self._sim._vms

    @property
    def ready_activations(self) -> List[Activation]:
        """Activations currently in READY, ordered by id."""
        wf = self._sim._wf
        return [wf.activation(i) for i in wf.ready_ids()]

    @property
    def idle_vms(self) -> List[Vm]:
        """VMs that can accept an activation right now."""
        now = self._sim._now
        return [vm for vm in self._sim._vms if vm.is_idle(now)]

    @property
    def records(self) -> List[ActivationRecord]:
        """Completed activation records so far."""
        return list(self._sim._records)

    def ready_time(self, activation_id: int) -> float:
        """When ``activation_id`` became READY (raises if it has not)."""
        try:
            return self._sim._ready_time[activation_id]
        except KeyError:
            raise ValidationError(
                f"activation {activation_id} has not become ready"
            ) from None

    def estimated_execution(self, activation: Activation, vm: Vm) -> float:
        """Nominal compute estimate (no staging, no fluctuation)."""
        return vm.execution_time(activation.runtime)

    def estimated_stage_in(self, activation: Activation, vm: Vm) -> float:
        """Staging estimate given current file placement."""
        return self._sim._network.stage_in_time(
            activation, vm, self._sim._file_locations
        )

    def vm_busy_time(self, vm_id: int) -> float:
        """Cumulative busy seconds accrued by the VM."""
        return self._sim._busy_time.get(vm_id, 0.0)


class WorkflowSimulator:
    """Simulate one execution of a workflow on a VM fleet.

    Parameters
    ----------
    workflow:
        The DAG to execute.  The simulator runs on a private copy, so the
        caller's object is never mutated.
    vms:
        The fleet.  VM runtime state is reset at the start of each run.
    scheduler:
        Decision maker (see module docstring for the protocol).
    network / fluctuation / failures / migrations:
        Environment models; defaults are shared-storage staging, no
        fluctuation, no failures, no migrations.
    seed:
        Root seed for this run's stochastic models.
    max_attempts:
        Execution attempts per activation before it terminally fails.
    horizon:
        Hard simulated-time limit; exceeding it raises
        :class:`SimulationError` (it indicates a deadlock or a
        pathological schedule).
    """

    def __init__(
        self,
        workflow: Workflow,
        vms: Sequence[Vm],
        scheduler,
        *,
        network: Optional[NetworkModel] = None,
        fluctuation: Optional[FluctuationModel] = None,
        failures: Optional[FailureModel] = None,
        migrations: Optional[MigrationModel] = None,
        revocations: Optional[RevocationModel] = None,
        seed: int = 0,
        max_attempts: int = 1,
        horizon: float = 1e6,
    ) -> None:
        if not vms:
            raise ValidationError("fleet must contain at least one VM")
        ids = [vm.id for vm in vms]
        if len(set(ids)) != len(ids):
            raise ValidationError("VM ids must be unique")
        if max_attempts < 1:
            raise ValidationError("max_attempts must be >= 1")
        self._source_workflow = workflow
        self._vms = list(vms)
        self._vm_by_id = {vm.id: vm for vm in self._vms}
        self._scheduler = scheduler
        self._network = network if network is not None else SharedStorageNetwork()
        self._fluctuation = fluctuation if fluctuation is not None else NoFluctuation()
        self._failures = failures if failures is not None else NoFailures()
        self._migrations = migrations if migrations is not None else NoMigrations()
        self._revocations = revocations if revocations is not None else NoRevocations()
        self._seed = int(seed)
        self._max_attempts = int(max_attempts)
        self._horizon = check_positive("horizon", horizon)

        # run state (initialized in run())
        self._wf: Workflow = workflow
        self._now = 0.0
        self._queue = EventQueue()
        self._records: List[ActivationRecord] = []
        self._ready_time: Dict[int, float] = {}
        self._attempts: Dict[int, int] = {}
        self._busy_time: Dict[int, float] = {}
        self._file_locations: Dict[str, int] = {}
        self._in_flight: Dict[int, PendingExecution] = {}
        self._dispatch_scheduled = False
        self._ctx = SimulationContext(self)

    # -- hooks ---------------------------------------------------------

    def _call_hook(self, name: str, *args) -> None:
        hook = getattr(self._scheduler, name, None)
        if hook is not None:
            hook(*args)

    # -- lifecycle ---------------------------------------------------------

    def _reset(self) -> None:
        self._wf = self._source_workflow.copy()
        self._wf.reset_states()
        self._now = 0.0
        self._queue = EventQueue()
        self._records = []
        self._ready_time = {i: 0.0 for i in self._wf.ready_ids()}
        self._attempts = {}
        self._busy_time = {vm.id: 0.0 for vm in self._vms}
        self._file_locations = {}
        self._in_flight = {}
        self._dispatch_scheduled = False

        rng = RngService(self._seed)
        self._rng_fluct = rng.stream("fluctuation")
        self._rng_fail = rng.stream("failures")
        self._rng_migr = rng.stream("migrations")
        self._rng_revoke = rng.stream("revocations")

        for vm in self._vms:
            vm.reset()
            boot = vm.type.boot_time
            vm.available_at = boot
            if boot > 0:
                self._queue.schedule(boot, EventType.VM_READY, vm.id)

        for window in self._migrations.windows(self._vms, self._horizon, self._rng_migr):
            self._queue.schedule(window.start, EventType.MIGRATION_START, window)

        for revocation in self._revocations.revocations(
            self._vms, self._horizon, self._rng_revoke
        ):
            self._queue.schedule(
                revocation.time, EventType.REVOCATION, revocation.vm_id
            )

    def run(self) -> SimulationResult:
        """Execute the workflow to a terminal state and return the result."""
        self._reset()
        self._call_hook("on_simulation_start", self._ctx)
        self._schedule_dispatch()

        while True:
            state = self._wf.workflow_state()
            if state in ("successfully finished", "finished with failure"):
                break
            event = self._queue.pop()
            if event is None:
                raise SimulationError(
                    f"simulation deadlocked at t={self._now:.3f}: workflow "
                    f"state {state!r} with no pending events"
                )
            if event.time < self._now - 1e-9:
                raise SimulationError("event time regressed (internal bug)")
            self._now = max(self._now, event.time)
            if self._now > self._horizon:
                raise SimulationError(
                    f"simulation exceeded horizon {self._horizon}"
                )
            self._handle(event)

        makespan = max((r.finish_time for r in self._records), default=self._now)
        result = SimulationResult(
            workflow_name=self._wf.name,
            records=list(self._records),
            makespan=makespan,
            final_state=self._wf.workflow_state(),
            vms=list(self._vms),
        )
        self._call_hook("on_simulation_end", self._ctx, result)
        return result

    # -- event handling ------------------------------------------------------

    def _handle(self, event: Event) -> None:
        if event.type is EventType.ACTIVATION_DONE:
            self._complete(event.payload)
        elif event.type is EventType.DISPATCH:
            self._dispatch_scheduled = False
            self._dispatch_loop()
        elif event.type is EventType.VM_READY:
            self._schedule_dispatch()
        elif event.type is EventType.MIGRATION_START:
            self._begin_migration(event.payload)
        elif event.type is EventType.REVOCATION:
            self._revoke(event.payload)
        elif event.type is EventType.MIGRATION_END:
            vm = self._vm_by_id[event.payload]
            vm.migrating = False
            self._schedule_dispatch()
        else:  # pragma: no cover - defensive
            raise SimulationError(f"unhandled event type {event.type!r}")

    def _schedule_dispatch(self) -> None:
        if not self._dispatch_scheduled:
            self._dispatch_scheduled = True
            self._queue.schedule(self._now, EventType.DISPATCH)

    # -- dispatch ----------------------------------------------------------

    def _dispatch_loop(self) -> None:
        """Repeatedly ask the scheduler for actions while 'available'."""
        while True:
            ready = self._wf.ready_ids()
            if not ready:
                return
            if not any(vm.is_idle(self._now) for vm in self._vms):
                return
            decision = self._scheduler.select(self._ctx)
            if decision is None:
                return  # the "do nothing" action
            activation_id, vm_id = decision
            self._dispatch(activation_id, vm_id)

    def _dispatch(self, activation_id: int, vm_id: int) -> None:
        ac = self._wf.activation(activation_id)
        vm = self._vm_by_id.get(vm_id)
        if vm is None:
            raise ValidationError(f"scheduler chose unknown VM {vm_id}")
        if ac.state is not ActivationState.READY:
            raise ValidationError(
                f"scheduler chose activation {activation_id} in state "
                f"{ac.state.name}, expected READY"
            )
        if not vm.is_idle(self._now):
            raise ValidationError(
                f"scheduler chose VM {vm_id} which is not idle at t={self._now:.3f}"
            )

        attempt = self._attempts.get(activation_id, 0)
        stage_in = self._network.stage_in_time(ac, vm, self._file_locations)
        factor = self._fluctuation.factor(
            vm, self._now, self._busy_time[vm.id], self._rng_fluct
        )
        compute = vm.execution_time(ac.runtime) * factor
        stage_out = self._network.stage_out_time(ac, vm)

        fails = self._failures.attempt_fails(ac, vm, attempt, self._rng_fail)
        if fails:
            duration = stage_in + compute * self._failures.failure_runtime_fraction
            outcome = "retry" if attempt + 1 < self._max_attempts else "failure"
        else:
            duration = stage_in + compute + stage_out
            outcome = "success"

        ac.transition(ActivationState.RUNNING)
        vm.start(activation_id)
        pending = PendingExecution(
            activation_id=activation_id,
            vm_id=vm_id,
            ready_time=self._ready_time[activation_id],
            dispatch_time=self._now,
            stage_in=stage_in,
            exec_duration=duration,
            planned_finish=self._now + duration,
            attempt=attempt,
            outcome=outcome,
        )
        pending.event = self._queue.schedule(
            pending.planned_finish, EventType.ACTIVATION_DONE, pending
        )
        self._in_flight[activation_id] = pending
        self._call_hook("on_dispatched", self._ctx, pending)

    # -- completion ---------------------------------------------------------

    def _complete(self, pending: PendingExecution) -> None:
        ac = self._wf.activation(pending.activation_id)
        vm = self._vm_by_id[pending.vm_id]
        vm.finish(pending.activation_id)
        del self._in_flight[pending.activation_id]
        elapsed = self._now - pending.dispatch_time
        self._busy_time[vm.id] += elapsed

        if pending.outcome == "success":
            ac.transition(ActivationState.FINISHED)
            for f in ac.outputs:
                self._file_locations[f.name] = vm.id
            record = ActivationRecord(
                activation_id=ac.id,
                activity=ac.activity,
                vm_id=vm.id,
                ready_time=pending.ready_time,
                start_time=pending.dispatch_time,
                finish_time=self._now,
                stage_in_time=pending.stage_in,
                attempts=pending.attempt + 1,
                failed=False,
            )
            self._records.append(record)
            for child in self._wf.release_children(ac.id):
                self._ready_time[child] = self._now
            self._call_hook("on_activation_finished", self._ctx, record)
        elif pending.outcome == "retry":
            self._attempts[ac.id] = pending.attempt + 1
            ac.transition(ActivationState.READY)  # re-queued, keeps ready_time
        else:  # terminal failure
            ac.transition(ActivationState.FAILED)
            record = ActivationRecord(
                activation_id=ac.id,
                activity=ac.activity,
                vm_id=vm.id,
                ready_time=pending.ready_time,
                start_time=pending.dispatch_time,
                finish_time=self._now,
                stage_in_time=pending.stage_in,
                attempts=pending.attempt + 1,
                failed=True,
            )
            self._records.append(record)
            self._fail_descendants(ac.id)
            self._call_hook("on_activation_finished", self._ctx, record)

        self._schedule_dispatch()

    def _fail_descendants(self, failed_id: int) -> None:
        """Cascade failure to LOCKED descendants that can never run.

        The paper's terminal predicate requires *no* activation left in
        ready/locked/running; descendants of a failed activation would
        otherwise stay LOCKED forever, so they are marked FAILED too.
        """
        stack = list(self._wf.children(failed_id))
        while stack:
            node = stack.pop()
            ac = self._wf.activation(node)
            if ac.state is ActivationState.LOCKED:
                ac.transition(ActivationState.FAILED)
                stack.extend(self._wf.children(node))

    # -- revocation ----------------------------------------------------------

    def _revoke(self, vm_id: int) -> None:
        """Permanently reclaim a spot VM; requeue its in-flight work."""
        vm = self._vm_by_id.get(vm_id)
        if vm is None:
            return  # model produced a revocation for a VM not in this fleet
        vm.available_at = float("inf")  # never idle again
        interrupted = [
            p for p in self._in_flight.values() if p.vm_id == vm_id
        ]
        for pending in interrupted:
            if pending.event is not None:
                pending.event.cancel()
            del self._in_flight[pending.activation_id]
            vm.finish(pending.activation_id)
            self._busy_time[vm.id] += self._now - pending.dispatch_time
            # back to READY for rescheduling on a surviving VM; the
            # original ready_time is kept so queue time reflects the loss
            self._wf.activation(pending.activation_id).transition(
                ActivationState.READY
            )
        self._schedule_dispatch()

    # -- migration ----------------------------------------------------------

    def _begin_migration(self, window) -> None:
        vm = self._vm_by_id.get(window.vm_id)
        if vm is None:
            return  # model generated a window for a VM not in this fleet
        vm.migrating = True
        # Delay every in-flight execution on this VM by the downtime.
        for pending in self._in_flight.values():
            if pending.vm_id != vm.id:
                continue
            if pending.event is not None:
                pending.event.cancel()
            pending.planned_finish += window.downtime
            pending.exec_duration += window.downtime
            pending.event = self._queue.schedule(
                pending.planned_finish, EventType.ACTIVATION_DONE, pending
            )
        self._queue.schedule(
            self._now + window.downtime, EventType.MIGRATION_END, vm.id
        )
