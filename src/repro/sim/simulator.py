"""The workflow simulator facade over the episode kernel.

:class:`WorkflowSimulator` keeps the one-shot interface this repo grew up
with — construct with a workflow, fleet and scheduler, call :meth:`run`
— while the actual engine lives in :mod:`repro.sim.kernel`:

- :class:`~repro.sim.kernel.EpisodeKernel` holds everything valid across
  episodes (frozen DAG topology + index maps, the fleet, environment
  models, shared nominal-estimate caches);
- :class:`~repro.sim.kernel.EpisodeState` holds everything one episode
  mutates, with an O(n) ``reset``;
- the event loop drives both (see ``docs/architecture.md``).

The facade builds one kernel at construction and replays it per
:meth:`run` call with the fixed seed, so repeated runs are bit-identical
— the same guarantee the pre-kernel simulator gave by rebuilding
everything per run, now without the rebuild.  Hot loops that execute
many episodes (the ReASSIgN learner, sweeps, ablations) skip the facade
and call :meth:`~repro.sim.kernel.EpisodeKernel.run_episode` directly
with per-episode seeds.

The scheduler protocol is unchanged (see
:class:`~repro.schedulers.base.OnlineScheduler` for the reference
interface): the engine calls

- ``on_simulation_start(ctx)`` once, before any dispatch;
- ``select(ctx) -> (activation_id, vm_id) | None`` repeatedly while the
  workflow is available (None = the paper's *do nothing* action);
- ``on_dispatched(ctx, pending)`` right after a dispatch, with the
  activation's queue time and planned execution time — the quantities the
  ReASSIgN reward consumes;
- ``on_activation_finished(ctx, record)`` at each completion;
- ``on_simulation_end(ctx, result)`` once.

All hooks except ``select`` are optional.  ``SimulationContext``,
``PendingExecution`` and ``SimulationError`` are re-exported here for
compatibility with their historical import path.
"""

from __future__ import annotations

from typing import Any, Optional, Sequence

from repro.dag.graph import Workflow
from repro.sim.failures import FailureModel
from repro.sim.fluctuation import FluctuationModel
from repro.sim.kernel import (
    EpisodeKernel,
    PendingExecution,
    SimulationContext,
    SimulationError,
)
from repro.sim.metrics import SimulationResult
from repro.sim.migration import MigrationModel
from repro.sim.network import NetworkModel
from repro.sim.spot import RevocationModel
from repro.sim.vm import Vm

__all__ = [
    "SimulationContext",
    "WorkflowSimulator",
    "PendingExecution",
    "SimulationError",
]


class WorkflowSimulator:
    """Simulate one execution of a workflow on a VM fleet.

    Parameters
    ----------
    workflow:
        The DAG to execute.  The underlying kernel runs on a private
        copy, so the caller's object is never mutated.
    vms:
        The fleet.  VM runtime state is reset at the start of each run.
    scheduler:
        Decision maker (see module docstring for the protocol).
    network / fluctuation / failures / migrations / revocations:
        Environment models; defaults are shared-storage staging, no
        fluctuation, no failures, no migrations, no revocations.
    seed:
        Root seed for this run's stochastic models.
    max_attempts:
        Execution attempts per activation before it terminally fails.
    horizon:
        Hard simulated-time limit; exceeding it raises
        :class:`SimulationError` (it indicates a deadlock or a
        pathological schedule).
    """

    def __init__(
        self,
        workflow: Workflow,
        vms: Sequence[Vm],
        scheduler: Any,
        *,
        network: Optional[NetworkModel] = None,
        fluctuation: Optional[FluctuationModel] = None,
        failures: Optional[FailureModel] = None,
        migrations: Optional[MigrationModel] = None,
        revocations: Optional[RevocationModel] = None,
        seed: int = 0,
        max_attempts: int = 1,
        horizon: float = 1e6,
    ) -> None:
        self._kernel = EpisodeKernel(
            workflow,
            vms,
            network=network,
            fluctuation=fluctuation,
            failures=failures,
            migrations=migrations,
            revocations=revocations,
            max_attempts=max_attempts,
            horizon=horizon,
        )
        self._scheduler = scheduler
        self._seed = int(seed)

    @property
    def kernel(self) -> EpisodeKernel:
        """The underlying episode kernel (reusable across episodes)."""
        return self._kernel

    def run(self) -> SimulationResult:
        """Execute the workflow to a terminal state and return the result.

        Repeated calls replay the identical episode: the kernel's state
        is reset from the same seed each time.
        """
        return self._kernel.run_episode(self._scheduler, self._seed)
