"""Live-migration modelling.

Live migration — the other cloud characteristic the paper's introduction
highlights as hard to put in a cost model — shows up to a tenant as a
window during which a VM is briefly paused and its work delayed.  A
:class:`MigrationModel` yields a schedule of ``(start_time, downtime)``
windows per VM; during a window the simulator delays the completion of
in-flight activations by the downtime and refuses new dispatches to the VM.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass
from typing import Iterator, List, Sequence

import numpy as np

from repro.sim.vm import Vm
from repro.util.validate import check_non_negative, check_positive

__all__ = ["MigrationWindow", "MigrationModel", "NoMigrations", "PeriodicMigrations"]


@dataclass(frozen=True)
class MigrationWindow:
    """One live-migration occurrence on a VM."""

    vm_id: int
    start: float
    downtime: float

    def __post_init__(self) -> None:
        check_non_negative("start", self.start)
        check_positive("downtime", self.downtime)


class MigrationModel(abc.ABC):
    """Produces migration windows for a fleet over a time horizon."""

    @abc.abstractmethod
    def windows(
        self,
        vms: Sequence[Vm],
        horizon: float,
        rng: np.random.Generator,
    ) -> List[MigrationWindow]:
        """All migration windows within ``[0, horizon]``."""


class NoMigrations(MigrationModel):
    """No live migrations occur."""

    def windows(
        self,
        vms: Sequence[Vm],
        horizon: float,
        rng: np.random.Generator,
    ) -> List[MigrationWindow]:
        return []


class PeriodicMigrations(MigrationModel):
    """Each VM migrates roughly every ``mean_interval`` seconds.

    Inter-migration gaps are exponential (memoryless, the standard model
    for provider-initiated maintenance), downtimes are uniform within
    ``[min_downtime, max_downtime]``.
    """

    def __init__(
        self,
        mean_interval: float = 600.0,
        min_downtime: float = 5.0,
        max_downtime: float = 30.0,
    ) -> None:
        self.mean_interval = check_positive("mean_interval", mean_interval)
        self.min_downtime = check_positive("min_downtime", min_downtime)
        self.max_downtime = check_positive("max_downtime", max_downtime)
        if max_downtime < min_downtime:
            raise ValueError("max_downtime must be >= min_downtime")

    def _vm_windows(
        self, vm: Vm, horizon: float, rng: np.random.Generator
    ) -> Iterator[MigrationWindow]:
        t = float(rng.exponential(self.mean_interval))
        while t < horizon:
            downtime = float(rng.uniform(self.min_downtime, self.max_downtime))
            yield MigrationWindow(vm_id=vm.id, start=t, downtime=downtime)
            t += downtime + float(rng.exponential(self.mean_interval))

    def windows(
        self,
        vms: Sequence[Vm],
        horizon: float,
        rng: np.random.Generator,
    ) -> List[MigrationWindow]:
        check_positive("horizon", horizon)
        out: List[MigrationWindow] = []
        for vm in vms:
            out.extend(self._vm_windows(vm, horizon, rng))
        out.sort(key=lambda w: (w.start, w.vm_id))
        return out
