"""Data-transfer cost models.

Cloud workflow engines stage files through shared storage (SciCumulus uses
a shared bucket/volume): a producer uploads its outputs, consumers download
any input not already present locally.  :class:`SharedStorageNetwork`
implements that model contention-free — each transfer sees the VM's NIC
bandwidth plus a fixed latency — which is the standard WorkflowSim
assumption and sufficient for scheduling studies where compute dominates.
:class:`ZeroCostNetwork` turns transfers off entirely (useful for isolating
scheduling effects in tests).
"""

from __future__ import annotations

import abc
from typing import TYPE_CHECKING, Dict, Iterable

from repro.dag.activation import Activation, File
from repro.sim.vm import Vm
from repro.util.validate import check_non_negative

if TYPE_CHECKING:  # pragma: no cover
    pass

__all__ = ["NetworkModel", "SharedStorageNetwork", "ZeroCostNetwork"]


class NetworkModel(abc.ABC):
    """Computes staging time for an activation's inputs on a given VM."""

    @abc.abstractmethod
    def stage_in_time(
        self,
        activation: Activation,
        vm: Vm,
        file_locations: Dict[str, int],
    ) -> float:
        """Seconds to make all inputs of ``activation`` available on ``vm``.

        ``file_locations`` maps file name -> id of the VM that produced it
        (absent for workflow-input files, which live on shared storage).
        """

    @abc.abstractmethod
    def stage_out_time(self, activation: Activation, vm: Vm) -> float:
        """Seconds to publish ``activation``'s outputs from ``vm``."""


class ZeroCostNetwork(NetworkModel):
    """All transfers are free (pure-compute model)."""

    def stage_in_time(
        self, activation: Activation, vm: Vm, file_locations: Dict[str, int]
    ) -> float:
        return 0.0

    def stage_out_time(self, activation: Activation, vm: Vm) -> float:
        return 0.0


class SharedStorageNetwork(NetworkModel):
    """Shared-storage staging with per-VM bandwidth and fixed latency.

    Parameters
    ----------
    latency:
        Per-file fixed overhead in seconds (request setup, metadata).
    upload_outputs:
        When True, publishing outputs costs bandwidth too (charged at the
        end of the activation's execution).
    """

    def __init__(self, latency: float = 0.05, upload_outputs: bool = True) -> None:
        self.latency = check_non_negative("latency", latency)
        self.upload_outputs = bool(upload_outputs)

    def _transfer_time(self, files: Iterable[File], vm: Vm) -> float:
        total = 0.0
        bw = vm.type.bandwidth_bytes_per_s
        for f in files:
            total += self.latency + f.size_bytes / bw
        return total

    def stage_in_time(
        self, activation: Activation, vm: Vm, file_locations: Dict[str, int]
    ) -> float:
        # Files produced on this same VM are already local; everything else
        # (other VMs' outputs and workflow inputs) is fetched from shared
        # storage at the consumer's bandwidth.
        remote = [
            f
            for f in activation.inputs
            if file_locations.get(f.name) != vm.id
        ]
        return self._transfer_time(remote, vm)

    def stage_out_time(self, activation: Activation, vm: Vm) -> float:
        if not self.upload_outputs:
            return 0.0
        return self._transfer_time(activation.outputs, vm)
