"""Schedule validation — the simulator's invariants as a public API.

Downstream users writing their own schedulers want a single call that
certifies a simulation outcome: every activation executed exactly once,
dependencies respected, VM capacities never exceeded, makespan
consistent.  :func:`validate_result` performs those checks and raises
:class:`~repro.util.validate.ValidationError` with a precise message on
the first violation; the property-based test suite runs it over random
DAGs × random fleets × hostile environments.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

from repro.dag.graph import Workflow
from repro.sim.metrics import SimulationResult
from repro.sim.vm import Vm
from repro.util.validate import ValidationError

__all__ = ["validate_result"]

_EPS = 1e-9


def validate_result(
    workflow: Workflow,
    result: SimulationResult,
    vms: Optional[Sequence[Vm]] = None,
    require_success: bool = True,
) -> None:
    """Check a :class:`SimulationResult` against the workflow's invariants.

    Parameters
    ----------
    workflow:
        The DAG that was executed.
    result:
        The outcome to certify.
    vms:
        The fleet (defaults to ``result.vms``); needed for capacity
        checks.
    require_success:
        When True (default), the run must have finished successfully and
        cover every activation.  Set False to validate partial/failed
        runs (coverage and success checks are skipped; ordering and
        capacity still apply to what did execute).
    """
    fleet = list(vms) if vms is not None else list(result.vms)
    if not fleet:
        raise ValidationError("cannot validate without the fleet")
    capacity = {vm.id: vm.capacity for vm in fleet}

    # -- coverage -----------------------------------------------------------
    seen: Dict[int, int] = {}
    for record in result.records:
        seen[record.activation_id] = seen.get(record.activation_id, 0) + 1
    duplicated = sorted(k for k, n in seen.items() if n > 1)
    if duplicated:
        raise ValidationError(
            f"activations recorded more than once: {duplicated[:5]}"
        )
    unknown = sorted(set(seen) - set(workflow.activation_ids))
    if unknown:
        raise ValidationError(f"records for unknown activations: {unknown[:5]}")
    if require_success:
        if not result.succeeded:
            raise ValidationError(
                f"run ended in state {result.final_state!r}"
            )
        missing = sorted(set(workflow.activation_ids) - set(seen))
        if missing:
            raise ValidationError(f"activations never executed: {missing[:5]}")

    # -- per-record sanity ----------------------------------------------------
    for record in result.records:
        if record.vm_id not in capacity:
            raise ValidationError(
                f"activation {record.activation_id} ran on unknown VM "
                f"{record.vm_id}"
            )
        if record.queue_time < -_EPS or record.execution_time <= 0:
            raise ValidationError(
                f"activation {record.activation_id} has inconsistent times"
            )

    # -- dependency ordering ----------------------------------------------------
    finish = {r.activation_id: r.finish_time for r in result.records}
    start = {r.activation_id: r.start_time for r in result.records}
    for parent, child in workflow.edges:
        if parent in finish and child in start:
            if start[child] < finish[parent] - _EPS:
                raise ValidationError(
                    f"activation {child} started at {start[child]:.6f} before "
                    f"its parent {parent} finished at {finish[parent]:.6f}"
                )

    # -- capacity -------------------------------------------------------------
    events: List[Tuple[float, int, int, int]] = []
    for r in result.records:
        events.append((r.start_time, 1, r.vm_id, r.activation_id))
        events.append((r.finish_time, -1, r.vm_id, r.activation_id))
    events.sort(key=lambda e: (e[0], e[1]))
    load = {vm_id: 0 for vm_id in capacity}
    for t, delta, vm_id, ac_id in events:
        load[vm_id] += delta
        if load[vm_id] > capacity[vm_id]:
            raise ValidationError(
                f"VM {vm_id} exceeded capacity {capacity[vm_id]} at "
                f"t={t:.6f} (activation {ac_id})"
            )
        if load[vm_id] < 0:
            raise ValidationError(f"negative load on VM {vm_id} (internal)")

    # -- makespan --------------------------------------------------------------
    if result.records:
        max_finish = max(finish.values())
        if abs(result.makespan - max_finish) > 1e-6:
            raise ValidationError(
                f"makespan {result.makespan:.6f} != max finish {max_finish:.6f}"
            )
