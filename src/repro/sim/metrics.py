"""Simulation outcome records and aggregate metrics.

The per-activation :class:`ActivationRecord` captures exactly the times the
paper's reward function consumes: ``te`` (execution time on the VM,
including staging), ``tf`` (queue time between becoming ready and being
dispatched) and ``tt = te + tf``.  :class:`SimulationResult` aggregates a
full run: makespan, monetary cost, per-VM utilization and success state.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, List, Sequence

from repro.sim.vm import Vm
from repro.util.validate import ValidationError

__all__ = ["ActivationRecord", "VmUsage", "SimulationResult"]


@dataclass
class ActivationRecord:
    """Execution record of one activation (final successful attempt).

    Attributes
    ----------
    ready_time:
        When all dependencies were satisfied.
    start_time:
        When the activation was dispatched to the VM (staging starts here).
    finish_time:
        When outputs were published.
    attempts:
        Number of execution attempts (1 = no failures).
    failed:
        True if the activation terminally failed.
    """

    activation_id: int
    activity: str
    vm_id: int
    ready_time: float
    start_time: float
    finish_time: float
    stage_in_time: float = 0.0
    attempts: int = 1
    failed: bool = False

    def __post_init__(self) -> None:
        if not (self.ready_time <= self.start_time <= self.finish_time):
            raise ValidationError(
                f"activation {self.activation_id}: inconsistent times "
                f"ready={self.ready_time} start={self.start_time} "
                f"finish={self.finish_time}"
            )

    @property
    def queue_time(self) -> float:
        """``tf_i`` — seconds spent READY before dispatch."""
        return self.start_time - self.ready_time

    @property
    def execution_time(self) -> float:
        """``te_i`` — wall time on the VM (staging + compute + publish)."""
        return self.finish_time - self.start_time

    @property
    def total_time(self) -> float:
        """``tt_i = te_i + tf_i``."""
        return self.execution_time + self.queue_time


@dataclass
class VmUsage:
    """Per-VM aggregate of a run."""

    vm_id: int
    type_name: str
    n_activations: int
    busy_time: float
    first_start: float
    last_finish: float

    def utilization(self, makespan: float, capacity: int) -> float:
        """Busy fraction of total capacity-time over the makespan."""
        if makespan <= 0:
            return 0.0
        return self.busy_time / (makespan * capacity)


@dataclass
class SimulationResult:
    """Everything measured during one simulated workflow execution."""

    workflow_name: str
    records: List[ActivationRecord]
    makespan: float
    final_state: str  #: "successfully finished" | "finished with failure"
    vms: Sequence[Vm] = field(default_factory=list)

    def __post_init__(self) -> None:
        self._by_id: Dict[int, ActivationRecord] = {
            r.activation_id: r for r in self.records
        }

    @property
    def succeeded(self) -> bool:
        return self.final_state == "successfully finished"

    def record(self, activation_id: int) -> ActivationRecord:
        """Record for one activation."""
        try:
            return self._by_id[activation_id]
        except KeyError:
            raise ValidationError(
                f"no record for activation {activation_id}"
            ) from None

    @property
    def assignment(self) -> Dict[int, int]:
        """activation id -> VM id (the scheduling plan actually realized)."""
        return {r.activation_id: r.vm_id for r in self.records}

    def vm_usage(self) -> List[VmUsage]:
        """Per-VM aggregates, sorted by VM id."""
        agg: Dict[int, VmUsage] = {}
        types = {vm.id: vm.type.name for vm in self.vms}
        for r in self.records:
            u = agg.get(r.vm_id)
            if u is None:
                agg[r.vm_id] = VmUsage(
                    vm_id=r.vm_id,
                    type_name=types.get(r.vm_id, "?"),
                    n_activations=1,
                    busy_time=r.execution_time,
                    first_start=r.start_time,
                    last_finish=r.finish_time,
                )
            else:
                u.n_activations += 1
                u.busy_time += r.execution_time
                u.first_start = min(u.first_start, r.start_time)
                u.last_finish = max(u.last_finish, r.finish_time)
        return [agg[k] for k in sorted(agg)]

    def cost(self, per_second_billing: bool = False) -> float:
        """Monetary cost of the fleet over the makespan.

        Default is the paper-era AWS model: every provisioned VM is billed
        per started hour for the whole run.  ``per_second_billing`` switches
        to modern per-second billing with a 60 s minimum.
        """
        total = 0.0
        for vm in self.vms:
            rate = vm.type.price_per_hour
            if per_second_billing:
                total += rate * max(self.makespan, 60.0) / 3600.0
            else:
                total += rate * max(1, math.ceil(self.makespan / 3600.0))
        return total

    def usage_cost(self) -> float:
        """Pay-per-use cost: busy VM-seconds weighted by each VM's price.

        Unlike :meth:`cost`, which bills the whole provisioned fleet for
        the makespan, this counts only the seconds VMs actually computed —
        the metric that differentiates *plans* on a fixed fleet (used by
        the cost-awareness ablation).
        """
        prices = {vm.id: vm.type.price_per_hour for vm in self.vms}
        total = 0.0
        for r in self.records:
            total += r.execution_time * prices.get(r.vm_id, 0.0) / 3600.0
        return total

    @property
    def mean_queue_time(self) -> float:
        """Average ``tf`` over all activations."""
        if not self.records:
            return 0.0
        return sum(r.queue_time for r in self.records) / len(self.records)

    @property
    def mean_execution_time(self) -> float:
        """Average ``te`` over all activations."""
        if not self.records:
            return 0.0
        return sum(r.execution_time for r in self.records) / len(self.records)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"SimulationResult({self.workflow_name!r}, makespan={self.makespan:.2f}, "
            f"state={self.final_state!r}, activations={len(self.records)})"
        )
