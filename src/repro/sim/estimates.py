"""Shared nominal-cost caches for a frozen (workflow, fleet) pair.

The same three formulas — nominal compute ``runtime / speed``, per-file
transfer ``latency + size / bandwidth``, and their sums over an
activation's inputs/outputs — were historically evaluated from scratch in
two places: :class:`~repro.sim.network.SharedStorageNetwork` at every
dispatch, and :class:`~repro.schedulers.base.EstimateModel` at every
planning step.  :class:`NominalEstimateCache` memoizes them once per
``(activation, vm)`` pair so an :class:`~repro.sim.kernel.EpisodeKernel`
and the planners it feeds share one table.

Bit-identity contract: cached values are produced by *the same float
expressions in the same order* as the uncached paths.  A per-file term is
precomputed as ``latency + size_bytes / bandwidth`` (one float), and sums
accumulate those terms in input/output declaration order — exactly the
accumulation the original ``total += latency + size / bw`` loop performed
— so a cached result is the identical IEEE-754 value, not merely a close
one.  The golden-trace suite (``tests/test_kernel_equivalence.py``)
enforces this.

Keys are ``(activation id, vm id)``: valid only because the cache is
bound to one frozen workflow and one fleet at construction.  Lookups for
foreign objects (an activation or VM that is not the bound instance with
that id) fall back to direct evaluation, which yields the same value.
"""

from __future__ import annotations

from typing import Dict, Mapping, Optional, Sequence, Tuple

from repro.dag.activation import Activation, File
from repro.sim.vm import Vm
from repro.util.validate import check_non_negative

__all__ = ["NominalEstimateCache"]

#: Per-file staging terms: (file name, transfer seconds), in input order.
StageInTerms = Tuple[Tuple[str, float], ...]


class NominalEstimateCache:
    """Lazily-memoized nominal estimates for one workflow on one fleet.

    Parameters
    ----------
    latency / upload_outputs:
        Staging parameters, mirroring
        :class:`~repro.sim.network.SharedStorageNetwork`.
    """

    def __init__(
        self,
        vms: Sequence[Vm],
        *,
        latency: float = 0.05,
        upload_outputs: bool = True,
    ) -> None:
        self.latency = check_non_negative("latency", latency)
        self.upload_outputs = bool(upload_outputs)
        self._vm_by_id: Dict[int, Vm] = {vm.id: vm for vm in vms}
        self._compute: Dict[Tuple[int, int], float] = {}
        self._stage_in_terms: Dict[Tuple[int, int], StageInTerms] = {}
        self._stage_out: Dict[Tuple[int, int], float] = {}

    # -- key validity ----------------------------------------------------

    def _bound(self, vm: Vm) -> bool:
        """True when ``vm`` is the fleet instance its id refers to."""
        return self._vm_by_id.get(vm.id) is vm

    # -- estimates -------------------------------------------------------

    def compute_time(self, activation: Activation, vm: Vm) -> float:
        """Nominal compute seconds (``runtime / speed``), memoized."""
        if not self._bound(vm):
            return vm.execution_time(activation.runtime)
        key = (activation.id, vm.id)
        value = self._compute.get(key)
        if value is None:
            value = vm.execution_time(activation.runtime)
            self._compute[key] = value
        return value

    def stage_in_terms(self, activation: Activation, vm: Vm) -> StageInTerms:
        """Per-input-file transfer terms on ``vm``, in declaration order."""
        if not self._bound(vm):
            return self._terms(activation.inputs, vm)
        key = (activation.id, vm.id)
        terms = self._stage_in_terms.get(key)
        if terms is None:
            terms = self._terms(activation.inputs, vm)
            self._stage_in_terms[key] = terms
        return terms

    def _terms(self, files: Sequence[File], vm: Vm) -> StageInTerms:
        bw = vm.type.bandwidth_bytes_per_s
        return tuple(
            (f.name, self.latency + f.size_bytes / bw) for f in files
        )

    def stage_in_time(
        self,
        activation: Activation,
        vm: Vm,
        file_locations: Mapping[str, int],
    ) -> float:
        """Staging seconds given current placement.

        Accumulates the precomputed per-file terms in input order over
        exactly the files ``SharedStorageNetwork`` would transfer (those
        not already located on ``vm``), so the sum is bit-identical to
        the uncached network path.
        """
        total = 0.0
        for name, seconds in self.stage_in_terms(activation, vm):
            if file_locations.get(name) != vm.id:
                total += seconds
        return total

    def stage_out_time(self, activation: Activation, vm: Vm) -> float:
        """Publishing seconds; a pure function of (activation, vm)."""
        if not self.upload_outputs:
            return 0.0
        if not self._bound(vm):
            return self._sum_terms(activation.outputs, vm)
        key = (activation.id, vm.id)
        value = self._stage_out.get(key)
        if value is None:
            value = self._sum_terms(activation.outputs, vm)
            self._stage_out[key] = value
        return value

    def _sum_terms(self, files: Sequence[File], vm: Vm) -> float:
        bw = vm.type.bandwidth_bytes_per_s
        total = 0.0
        for f in files:
            total += self.latency + f.size_bytes / bw
        return total

    def vm(self, vm_id: int) -> Optional[Vm]:
        """The bound fleet VM with ``vm_id``, if any."""
        return self._vm_by_id.get(vm_id)
