"""Failure injection.

The paper's state machine includes *finished with a failure* — "a problem
in the hardware or other issues".  A :class:`FailureModel` decides, at
dispatch time, whether a given execution attempt will fail (and the
simulator then applies the retry policy).  Failed attempts still consume
VM time (``failure_runtime_fraction`` of the nominal execution), matching
how real tasks crash part-way through.
"""

from __future__ import annotations

import abc

import numpy as np

from repro.dag.activation import Activation
from repro.sim.vm import Vm
from repro.util.validate import check_probability

__all__ = ["FailureModel", "NoFailures", "BernoulliFailures"]


class FailureModel(abc.ABC):
    """Decides whether one execution attempt fails."""

    #: fraction of the (fluctuated) execution time consumed before crashing
    failure_runtime_fraction: float = 0.5

    @abc.abstractmethod
    def attempt_fails(
        self,
        activation: Activation,
        vm: Vm,
        attempt: int,
        rng: np.random.Generator,
    ) -> bool:
        """True if this attempt (0-based) of ``activation`` on ``vm`` fails."""


class NoFailures(FailureModel):
    """Every attempt succeeds."""

    def attempt_fails(
        self,
        activation: Activation,
        vm: Vm,
        attempt: int,
        rng: np.random.Generator,
    ) -> bool:
        return False


class BernoulliFailures(FailureModel):
    """Each attempt independently fails with a fixed probability.

    Optionally failures can be biased towards a specific activity (e.g. a
    flaky program) or VM id (e.g. a bad host).
    """

    def __init__(
        self,
        probability: float,
        activity: str = "",
        vm_id: int = -1,
    ) -> None:
        self.probability = check_probability("probability", probability)
        self.activity = activity
        self.vm_id = vm_id

    def attempt_fails(
        self,
        activation: Activation,
        vm: Vm,
        attempt: int,
        rng: np.random.Generator,
    ) -> bool:
        if self.activity and activation.activity != self.activity:
            return False
        if self.vm_id >= 0 and vm.id != self.vm_id:
            return False
        return bool(rng.random() < self.probability)
