"""Physical hosts: VM placement and host-level (correlated) failures.

CloudSim — WorkflowSim's substrate — models datacenters as physical
hosts onto which VMs are packed; a host outage takes every resident VM
with it, and host maintenance is what triggers live migrations.  This
module provides that layer:

- :class:`Host` — capacity (pCPUs, RAM) and resident VMs;
- :class:`HostPool` — first-fit / best-fit VM packing over a set of
  hosts;
- :func:`host_failure_revocations` — translate a host outage into
  simultaneous :class:`~repro.sim.spot.Revocation` events for its
  resident VMs (plugs straight into the simulator's revocation support).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Sequence

from repro.sim.spot import Revocation
from repro.sim.vm import Vm
from repro.util.validate import ValidationError, check_non_negative, check_positive

__all__ = ["Host", "HostPool", "host_failure_revocations"]


@dataclass
class Host:
    """One physical machine."""

    id: int
    pcpus: int
    ram_gb: float
    vms: List[Vm] = field(default_factory=list)

    def __post_init__(self) -> None:
        if self.id < 0:
            raise ValidationError("host id must be >= 0")
        if self.pcpus < 1:
            raise ValidationError("pcpus must be >= 1")
        check_positive("ram_gb", self.ram_gb)

    @property
    def used_pcpus(self) -> int:
        return sum(vm.type.vcpus for vm in self.vms)

    @property
    def used_ram_gb(self) -> float:
        return sum(vm.type.ram_gb for vm in self.vms)

    def fits(self, vm: Vm) -> bool:
        """True if the VM's vCPUs and RAM fit in the remaining capacity."""
        return (
            self.used_pcpus + vm.type.vcpus <= self.pcpus
            and self.used_ram_gb + vm.type.ram_gb <= self.ram_gb
        )

    def place(self, vm: Vm) -> None:
        if not self.fits(vm):
            raise ValidationError(
                f"vm {vm.id} ({vm.type.name}) does not fit on host {self.id}"
            )
        self.vms.append(vm)

    def remove(self, vm_id: int) -> Vm:
        for i, vm in enumerate(self.vms):
            if vm.id == vm_id:
                return self.vms.pop(i)
        raise ValidationError(f"vm {vm_id} not on host {self.id}")


class HostPool:
    """A set of hosts with bin-packing VM placement.

    Parameters
    ----------
    hosts:
        The physical machines.
    policy:
        ``"first-fit"`` (lowest-id host with room) or ``"best-fit"``
        (feasible host with the least remaining pCPUs — packs tighter,
        which concentrates blast radius; a deliberate trade-off the
        host-failure tests expose).
    """

    def __init__(self, hosts: Sequence[Host], policy: str = "first-fit") -> None:
        if not hosts:
            raise ValidationError("need at least one host")
        ids = [h.id for h in hosts]
        if len(set(ids)) != len(ids):
            raise ValidationError("host ids must be unique")
        if policy not in ("first-fit", "best-fit"):
            raise ValidationError(f"unknown placement policy {policy!r}")
        self.hosts = sorted(hosts, key=lambda h: h.id)
        self.policy = policy
        self._host_of: Dict[int, int] = {}

    def place(self, vm: Vm) -> Host:
        """Place one VM; returns the chosen host."""
        if vm.id in self._host_of:
            raise ValidationError(f"vm {vm.id} already placed")
        candidates = [h for h in self.hosts if h.fits(vm)]
        if not candidates:
            raise ValidationError(
                f"no host can fit vm {vm.id} ({vm.type.name})"
            )
        if self.policy == "first-fit":
            chosen = candidates[0]
        else:  # best-fit: least remaining pCPU slack after placement
            chosen = min(
                candidates, key=lambda h: (h.pcpus - h.used_pcpus, h.id)
            )
        chosen.place(vm)
        self._host_of[vm.id] = chosen.id
        return chosen

    def place_fleet(self, vms: Sequence[Vm]) -> Dict[int, int]:
        """Place all VMs (big first — standard bin-packing order).

        Returns vm id -> host id.
        """
        for vm in sorted(vms, key=lambda v: (-v.type.vcpus, v.id)):
            self.place(vm)
        return dict(self._host_of)

    def host_of(self, vm_id: int) -> Host:
        try:
            host_id = self._host_of[vm_id]
        except KeyError:
            raise ValidationError(f"vm {vm_id} is not placed") from None
        return next(h for h in self.hosts if h.id == host_id)

    def vms_on(self, host_id: int) -> List[Vm]:
        for h in self.hosts:
            if h.id == host_id:
                return list(h.vms)
        raise ValidationError(f"unknown host {host_id}")


def host_failure_revocations(
    pool: HostPool, host_id: int, at: float
) -> List[Revocation]:
    """Model a host outage: every resident VM is revoked at ``at``.

    Feed the result into a fixed revocation model for the simulator —
    the correlated-failure analogue of independent spot reclamation.
    """
    check_non_negative("at", at)
    return [
        Revocation(vm_id=vm.id, time=at) for vm in pool.vms_on(host_id)
    ]
