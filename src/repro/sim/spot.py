"""Spot-instance revocation modelling.

Spot/preemptible VMs are the extreme form of the cloud dynamics the
paper's introduction motivates: the provider may reclaim a VM at any
moment, killing whatever runs on it.  A :class:`RevocationModel` yields
the times at which fleet VMs are permanently reclaimed; the simulator
then re-queues the interrupted activations (they return to READY and are
rescheduled on surviving VMs) and never dispatches to the dead VM again.

This is an *extension* beyond the paper's evaluation (its fleets are
on-demand), used by the robustness ablations: an adaptive scheduler
should degrade more gracefully than a static plan when capacity
disappears mid-run.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass
from typing import List, Sequence

import numpy as np

from repro.sim.vm import Vm
from repro.util.validate import check_non_negative, check_probability

__all__ = ["Revocation", "RevocationModel", "NoRevocations", "PoissonRevocations"]


@dataclass(frozen=True)
class Revocation:
    """One spot reclamation: the VM dies at ``time`` and never returns."""

    vm_id: int
    time: float

    def __post_init__(self) -> None:
        check_non_negative("time", self.time)


class RevocationModel(abc.ABC):
    """Produces the revocations hitting a fleet over a horizon."""

    @abc.abstractmethod
    def revocations(
        self,
        vms: Sequence[Vm],
        horizon: float,
        rng: np.random.Generator,
    ) -> List[Revocation]:
        """All revocations within ``[0, horizon]`` (at most one per VM)."""


class NoRevocations(RevocationModel):
    """On-demand fleet: nothing is reclaimed."""

    def revocations(
        self,
        vms: Sequence[Vm],
        horizon: float,
        rng: np.random.Generator,
    ) -> List[Revocation]:
        return []


class PoissonRevocations(RevocationModel):
    """Each VM is independently reclaimed with exponential lifetime.

    Parameters
    ----------
    mean_lifetime:
        Mean seconds until a spot VM is reclaimed.
    spot_fraction:
        Fraction of the fleet running as spot instances (chosen from the
        high VM ids first — the expensive VMs are the ones worth bidding
        on).  1.0 = the whole fleet is spot.
    protect_last:
        Never revoke every VM: at least this many VMs (lowest ids) are
        kept on-demand so the workflow can always finish.
    """

    def __init__(
        self,
        mean_lifetime: float = 600.0,
        spot_fraction: float = 0.5,
        protect_last: int = 1,
    ) -> None:
        if mean_lifetime <= 0:
            raise ValueError("mean_lifetime must be > 0")
        self.mean_lifetime = float(mean_lifetime)
        self.spot_fraction = check_probability("spot_fraction", spot_fraction)
        if protect_last < 1:
            raise ValueError("protect_last must be >= 1")
        self.protect_last = int(protect_last)

    def revocations(
        self,
        vms: Sequence[Vm],
        horizon: float,
        rng: np.random.Generator,
    ) -> List[Revocation]:
        vms = sorted(vms, key=lambda v: v.id)
        n_spot = min(
            int(round(len(vms) * self.spot_fraction)),
            max(0, len(vms) - self.protect_last),
        )
        spot_vms = vms[len(vms) - n_spot:]
        out: List[Revocation] = []
        for vm in spot_vms:
            lifetime = float(rng.exponential(self.mean_lifetime))
            if lifetime < horizon:
                out.append(Revocation(vm_id=vm.id, time=lifetime))
        out.sort(key=lambda r: (r.time, r.vm_id))
        return out
