"""Execution traces: decision-trace capture and text Gantt rendering.

Two kinds of trace live here:

- **Decision traces** — the per-step record stream the distributed
  learner's rollout actors emit (`docs/performance.md`, "Distributed
  learning").  :class:`DecisionStep` captures one scheduling decision
  (the interned action space, the chosen action, the ε-draw outcome,
  the observed ``(te, tf)`` the reward saw, the post-dispatch action
  space and the progress counter that determines the bucketed state
  label); :class:`EpisodeTrace` bundles an episode's steps with its
  simulation outcome.  :class:`TracingScheduler` records them around
  any :class:`~repro.schedulers.base.OnlineScheduler` without
  perturbing a single RNG draw, and :class:`ReplayContext` /
  :class:`ReplayPending` are the duck-typed stand-ins the ordered
  replay learner feeds back into a real scheduler's hooks.

- **Gantt rendering** — ``gantt_text`` turns a
  :class:`~repro.sim.metrics.SimulationResult` into an ASCII Gantt
  chart, one row per VM, which is how the examples visualize where
  HEFT and ReASSIgN place work without any plotting dependency.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, Hashable, List, Optional, Tuple

from repro.sim.metrics import ActivationRecord, SimulationResult

__all__ = [
    "DecisionStep",
    "EpisodeTrace",
    "ReplayContext",
    "ReplayPending",
    "TracingScheduler",
    "gantt_text",
]

#: One ``(activation_id, vm_id)`` schedule action.
Action = Tuple[int, int]


@dataclass
class DecisionStep:
    """One traced scheduling decision (compact, picklable).

    ``pairs``/``next_pairs`` are the interned ready × idle action
    tuples at selection time and after the dispatch; ``n_finished`` is
    the progress counter behind the (possibly bucketed) state label —
    together they let a replay reconstruct the exact arguments every
    scheduler hook saw.  ``explored`` is the actor's ε-draw outcome
    (``None`` when the policy does not expose one), ``reward`` /
    ``q_value`` the actor-side reward and written Q-value — purely
    informational on stale bases, authoritative only when the base
    snapshot version matches the true table.  ``table_version`` stamps
    the Q-table version the actor consulted.
    """

    __slots__ = (
        "pairs", "action", "explored", "te", "tf", "next_pairs",
        "n_finished", "reward", "q_value", "table_version",
    )

    pairs: Tuple[Action, ...]
    action: Action
    explored: Optional[bool]
    te: float
    tf: float
    next_pairs: Tuple[Action, ...]
    n_finished: int
    reward: float
    q_value: Optional[float]
    table_version: int


@dataclass
class EpisodeTrace:
    """One rollout actor's episode: decisions plus simulation outcome.

    ``base_version`` is the Q-table version of the snapshot the actor
    started from; the learner compares it against the true table's
    version at consume time to decide between direct application and
    validated replay.  ``post_state`` optionally carries the actor's
    complete post-episode learner state (shipped only for the wave-head
    episode, whose base is guaranteed exact).
    """

    episode: int
    seed: int
    actor: int
    base_version: int
    steps: List[DecisionStep]
    makespan: float
    final_state: str
    records: List[ActivationRecord] = field(default_factory=list)
    steps_count: int = 0
    reward_sum: float = 0.0
    final_reward: float = 0.0
    post_state: Optional[Any] = None


class ReplayContext:
    """Duck-typed :class:`~repro.sim.kernel.SimulationContext` stand-in.

    Carries exactly the fields ``ReassignScheduler`` reads in
    ``select``/``on_dispatched``: the interned action pairs (also used
    as the availability indicator), the workflow (for bucketed state
    labels) and the progress counter.  Feeding a traced episode back
    through these is what lets the ordered replay learner drive the
    *true* scheduler without a simulator.
    """

    __slots__ = (
        "action_pairs", "ready_activations", "idle_vms", "workflow",
        "n_finished",
    )

    def __init__(
        self,
        pairs: Tuple[Action, ...],
        workflow: Any = None,
        n_finished: int = 0,
    ) -> None:
        self.action_pairs = pairs
        # availability flags: non-empty iff pairs is (the scheduler only
        # checks truthiness, never the contents)
        self.ready_activations = pairs
        self.idle_vms = pairs
        self.workflow = workflow
        self.n_finished = n_finished


class ReplayPending:
    """Duck-typed :class:`~repro.sim.kernel.PendingExecution` stand-in.

    Only the four fields the reward step reads.
    """

    __slots__ = ("activation_id", "vm_id", "planned_execution_time",
                 "queue_time")

    def __init__(self, activation_id: int, vm_id: int, te: float,
                 tf: float) -> None:
        self.activation_id = activation_id
        self.vm_id = vm_id
        self.planned_execution_time = te
        self.queue_time = tf


class TracingScheduler:
    """Record a :class:`DecisionStep` stream around any online scheduler.

    Implements the :class:`~repro.schedulers.base.OnlineScheduler` hook
    protocol structurally (no inheritance — the simulation kernel duck
    types its scheduler, and importing the base class here would cycle
    through ``repro.sim``).  Pure observation: every hook forwards to
    the wrapped scheduler with unchanged arguments, so the inner
    scheduler's draws, updates and results are bit-identical to an
    untraced run.  After each episode
    (``on_simulation_end``), the completed step list is available as
    ``self.steps``; :attr:`last_explored` is read from the inner
    policy when it exposes the ε-coin outcome
    (:class:`~repro.rl.policy.EpsilonGreedyPolicy`).
    """

    def __init__(self, inner: Any) -> None:
        self.inner = inner
        self.steps: List[DecisionStep] = []
        self._open: Optional[List[Any]] = None

    def on_simulation_start(self, ctx: Any) -> None:
        self.steps = []
        self._open = None
        self.inner.on_simulation_start(ctx)

    def select(self, ctx: Any) -> Optional[Hashable]:
        pairs = ctx.action_pairs
        n_finished = ctx.n_finished
        before = getattr(self.inner, "_reward_sum", 0.0)
        action = self.inner.select(ctx)
        if action is None:
            return None
        explored = getattr(
            getattr(self.inner, "policy", None), "last_explored", None
        )
        version = 0
        table = getattr(self.inner, "qtable", None)
        if table is not None:
            version = getattr(table, "version", 0)
        # te/tf/next_pairs/reward are filled in at on_dispatched
        self._open = [pairs, action, explored, n_finished, before, version]
        return action

    def on_dispatched(self, ctx: Any, pending: Any) -> None:
        open_step = self._open
        self.inner.on_dispatched(ctx, pending)
        if open_step is not None:
            pairs, action, explored, n_finished, before, version = open_step
            after = getattr(self.inner, "_reward_sum", 0.0)
            self.steps.append(
                DecisionStep(
                    pairs=pairs,
                    action=action,
                    explored=explored,
                    te=pending.planned_execution_time,
                    tf=pending.queue_time,
                    next_pairs=ctx.action_pairs,
                    n_finished=n_finished,
                    reward=after - before,
                    q_value=None,
                    table_version=version,
                )
            )
            self._open = None

    def on_activation_finished(self, ctx: Any, record: Any) -> None:
        self.inner.on_activation_finished(ctx, record)

    def on_simulation_end(self, ctx: Any, result: Any) -> None:
        self.inner.on_simulation_end(ctx, result)


def _label_char(activation_id: int) -> str:
    """A compact per-activation glyph: 0-9, then a-z, A-Z, then '#'."""
    if activation_id < 10:
        return str(activation_id)
    if activation_id < 36:
        return chr(ord("a") + activation_id - 10)
    if activation_id < 62:
        return chr(ord("A") + activation_id - 36)
    return "#"


def gantt_text(result: SimulationResult, width: int = 100) -> str:
    """Render the run as an ASCII Gantt chart.

    Each VM row shows one line per concurrently used slot; cells carry the
    glyph of the activation occupying that slot (see :func:`_label_char`).
    """
    if width < 10:
        raise ValueError("width must be >= 10")
    if not result.records:
        return "(empty trace)"
    makespan = result.makespan
    if makespan <= 0:
        return "(zero-length trace)"
    scale = width / makespan

    # Assign records to display lanes per VM (interval graph colouring).
    by_vm: Dict[int, List[ActivationRecord]] = {}
    for record in sorted(result.records, key=lambda r: (r.vm_id, r.start_time)):
        by_vm.setdefault(record.vm_id, []).append(record)

    lines = [f"Gantt of {result.workflow_name!r}  makespan={makespan:.2f}s"]
    for vm_id in sorted(by_vm):
        lanes: List[List[ActivationRecord]] = []
        for record in by_vm[vm_id]:
            placed = False
            for lane in lanes:
                if lane[-1].finish_time <= record.start_time + 1e-9:
                    lane.append(record)
                    placed = True
                    break
            if not placed:
                lanes.append([record])
        for lane_idx, lane in enumerate(lanes):
            row = [" "] * width
            for record in lane:
                lo = int(record.start_time * scale)
                hi = max(lo + 1, int(record.finish_time * scale))
                glyph = _label_char(record.activation_id)
                for k in range(lo, min(hi, width)):
                    row[k] = glyph
            prefix = f"vm{vm_id:<3}" if lane_idx == 0 else "     "
            lines.append(f"{prefix}|{''.join(row)}|")
    lines.append(f"      0{' ' * (width - 8)}{makespan:8.1f}s")
    return "\n".join(lines)
