"""Execution-trace rendering (text Gantt charts).

``gantt_text`` turns a :class:`~repro.sim.metrics.SimulationResult` into an
ASCII Gantt chart — one row per VM, time flowing rightward — which is how
the examples visualize where HEFT and ReASSIgN place work without any
plotting dependency.
"""

from __future__ import annotations

from typing import Dict, List

from repro.sim.metrics import ActivationRecord, SimulationResult

__all__ = ["gantt_text"]


def _label_char(activation_id: int) -> str:
    """A compact per-activation glyph: 0-9, then a-z, A-Z, then '#'."""
    if activation_id < 10:
        return str(activation_id)
    if activation_id < 36:
        return chr(ord("a") + activation_id - 10)
    if activation_id < 62:
        return chr(ord("A") + activation_id - 36)
    return "#"


def gantt_text(result: SimulationResult, width: int = 100) -> str:
    """Render the run as an ASCII Gantt chart.

    Each VM row shows one line per concurrently used slot; cells carry the
    glyph of the activation occupying that slot (see :func:`_label_char`).
    """
    if width < 10:
        raise ValueError("width must be >= 10")
    if not result.records:
        return "(empty trace)"
    makespan = result.makespan
    if makespan <= 0:
        return "(zero-length trace)"
    scale = width / makespan

    # Assign records to display lanes per VM (interval graph colouring).
    by_vm: Dict[int, List[ActivationRecord]] = {}
    for record in sorted(result.records, key=lambda r: (r.vm_id, r.start_time)):
        by_vm.setdefault(record.vm_id, []).append(record)

    lines = [f"Gantt of {result.workflow_name!r}  makespan={makespan:.2f}s"]
    for vm_id in sorted(by_vm):
        lanes: List[List[ActivationRecord]] = []
        for record in by_vm[vm_id]:
            placed = False
            for lane in lanes:
                if lane[-1].finish_time <= record.start_time + 1e-9:
                    lane.append(record)
                    placed = True
                    break
            if not placed:
                lanes.append([record])
        for lane_idx, lane in enumerate(lanes):
            row = [" "] * width
            for record in lane:
                lo = int(record.start_time * scale)
                hi = max(lo + 1, int(record.finish_time * scale))
                glyph = _label_char(record.activation_id)
                for k in range(lo, min(hi, width)):
                    row[k] = glyph
            prefix = f"vm{vm_id:<3}" if lane_idx == 0 else "     "
            lines.append(f"{prefix}|{''.join(row)}|")
    lines.append(f"      0{' ' * (width - 8)}{makespan:8.1f}s")
    return "\n".join(lines)
