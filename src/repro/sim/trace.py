"""Execution traces: decision-trace capture and text Gantt rendering.

Two kinds of trace live here:

- **Decision traces** — the per-step record stream the distributed
  learner's rollout actors emit (`docs/performance.md`, "Distributed
  learning").  :class:`EpisodeTrace` stores an episode's decisions
  **columnar**: the distinct interned action spaces go into a small
  pool, and every per-step quantity (pool indexes, chosen action,
  ε-draw outcome, observed ``(te, tf)``, reward, Q-write, table
  version) is one parallel numpy array — so shipping a trace through
  the process pool serializes a handful of buffers instead of
  thousands of per-step objects.  :class:`TraceBuilder` is the
  appender the fused rollout loop feeds one decision at a time;
  :class:`DecisionStep` remains as the per-step *view* the generic
  replay path and tests consume.  :class:`TracingScheduler` records
  steps around any :class:`~repro.schedulers.base.OnlineScheduler`
  without perturbing a single RNG draw, and :class:`ReplayContext` /
  :class:`ReplayPending` are the duck-typed stand-ins the ordered
  replay learner feeds back into a real scheduler's hooks.

- **Gantt rendering** — ``gantt_text`` turns a
  :class:`~repro.sim.metrics.SimulationResult` into an ASCII Gantt
  chart, one row per VM, which is how the examples visualize where
  HEFT and ReASSIgN place work without any plotting dependency.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Any, Dict, Hashable, List, Optional, Sequence, Tuple, Union

import numpy as np

from repro.sim.metrics import ActivationRecord, SimulationResult

__all__ = [
    "DecisionStep",
    "EpisodeTrace",
    "ReplayContext",
    "ReplayPending",
    "TraceBuilder",
    "TracingScheduler",
    "gantt_text",
]

#: One ``(activation_id, vm_id)`` schedule action.
Action = Tuple[int, int]


@dataclass
class DecisionStep:
    """One traced scheduling decision (a per-step *view*).

    ``pairs``/``next_pairs`` are the interned ready × idle action
    tuples at selection time and after the dispatch; ``n_finished`` is
    the progress counter behind the (possibly bucketed) state label —
    together they let a replay reconstruct the exact arguments every
    scheduler hook saw.  ``explored`` is the actor's ε-draw outcome
    (``None`` when the policy does not expose one), ``reward`` /
    ``q_value`` the actor-side reward and written Q-value — purely
    informational on stale bases, authoritative only when the base
    snapshot version matches the true table.  ``table_version`` stamps
    the Q-table version the actor consulted.

    Traces no longer *store* these objects — :class:`EpisodeTrace`
    keeps parallel columns and materializes ``DecisionStep`` views on
    demand for the generic replay path and for tests.
    """

    __slots__ = (
        "pairs", "action", "explored", "te", "tf", "next_pairs",
        "n_finished", "reward", "q_value", "table_version",
    )

    pairs: Tuple[Action, ...]
    action: Action
    explored: Optional[bool]
    te: float
    tf: float
    next_pairs: Tuple[Action, ...]
    n_finished: int
    reward: float
    q_value: Optional[float]
    table_version: int


class TraceBuilder:
    """Columnar appender for one episode's decision stream.

    The fused rollout loop calls :meth:`append` once per decision; the
    distinct (interned, identity-stable) action-pair tuples are pooled
    by object id and every per-step quantity lands in a plain Python
    list, converted to one numpy array per column when the finished
    builder is handed to :class:`EpisodeTrace`.  ``act_pos`` is the
    chosen action's position inside its ``pairs`` tuple (``-1`` when
    unknown, e.g. steps recorded by :class:`TracingScheduler`); the
    vectorized replay validator uses it to gather traced selections
    without rebuilding per-step tuples.
    """

    __slots__ = (
        "pool", "_pool_memo", "pairs_idx", "next_idx", "act_pos",
        "act_a", "act_v", "explored", "te", "tf", "n_finished",
        "reward", "q_value", "table_version",
    )

    def __init__(self) -> None:
        self.pool: List[Tuple[Action, ...]] = []
        self._pool_memo: Dict[int, int] = {}
        self.pairs_idx: List[int] = []
        self.next_idx: List[int] = []
        self.act_pos: List[int] = []
        self.act_a: List[int] = []
        self.act_v: List[int] = []
        self.explored: List[int] = []
        self.te: List[float] = []
        self.tf: List[float] = []
        self.n_finished: List[int] = []
        self.reward: List[float] = []
        self.q_value: List[float] = []
        self.table_version: List[int] = []

    def intern(self, pairs: Tuple[Action, ...]) -> int:
        """Pool index of ``pairs`` (id-keyed; the pool keeps it alive)."""
        memo = self._pool_memo
        idx = memo.get(id(pairs))
        if idx is None:
            idx = len(self.pool)
            self.pool.append(pairs)
            memo[id(pairs)] = idx
        return idx

    def append(
        self,
        pairs: Tuple[Action, ...],
        action: Action,
        act_pos: int,
        explored: Optional[bool],
        te: float,
        tf: float,
        next_pairs: Tuple[Action, ...],
        n_finished: int,
        reward: float,
        q_value: Optional[float],
        table_version: int,
    ) -> None:
        self.pairs_idx.append(self.intern(pairs))
        self.next_idx.append(self.intern(next_pairs))
        self.act_pos.append(act_pos)
        self.act_a.append(action[0])
        self.act_v.append(action[1])
        self.explored.append(
            -1 if explored is None else (1 if explored else 0)
        )
        self.te.append(te)
        self.tf.append(tf)
        self.n_finished.append(n_finished)
        self.reward.append(reward)
        self.q_value.append(math.nan if q_value is None else q_value)
        self.table_version.append(table_version)


class EpisodeTrace:
    """One rollout actor's episode: columnar decisions plus outcome.

    The decision stream is stored as parallel numpy arrays over a small
    pool of distinct action-pair tuples (see :class:`TraceBuilder`), so
    shipping a trace through the process pool serializes one buffer per
    column instead of one object per step.  ``base_version`` is the
    Q-table version of the snapshot the actor started from; the learner
    compares it against the true table's version at consume time to
    decide between direct application and validated replay.
    ``post_state`` optionally carries the actor's complete post-episode
    learner state (shipped only for episodes whose base is guaranteed
    exact).  ``assignment`` carries the completion-ordered
    ``{activation_id: vm_id}`` map for episodes recorded without full
    :class:`~repro.sim.metrics.ActivationRecord` lists (the lite mode —
    only the run's final episode needs records, for plan extraction).
    """

    __slots__ = (
        "episode", "seed", "actor", "base_version", "makespan",
        "final_state", "records", "assignment", "steps_count",
        "reward_sum", "final_reward", "post_state", "pool", "pairs_idx",
        "next_idx", "act_pos", "act_a", "act_v", "explored", "te", "tf",
        "n_finished", "reward", "q_value", "table_version",
        "_steps_cache",
    )

    def __init__(
        self,
        episode: int,
        seed: int,
        actor: int,
        base_version: int,
        steps: Union[TraceBuilder, Sequence[DecisionStep]],
        makespan: float,
        final_state: str,
        records: Optional[List[ActivationRecord]] = None,
        assignment: Optional[Dict[int, int]] = None,
        steps_count: int = 0,
        reward_sum: float = 0.0,
        final_reward: float = 0.0,
        post_state: Optional[Any] = None,
    ) -> None:
        self.episode = episode
        self.seed = seed
        self.actor = actor
        self.base_version = base_version
        self.makespan = makespan
        self.final_state = final_state
        self.records: List[ActivationRecord] = (
            [] if records is None else records
        )
        self.assignment = assignment
        self.steps_count = steps_count
        self.reward_sum = reward_sum
        self.final_reward = final_reward
        self.post_state = post_state
        self._steps_cache: Optional[List[DecisionStep]] = None
        if not isinstance(steps, TraceBuilder):
            builder = TraceBuilder()
            for s in steps:
                builder.append(
                    s.pairs, s.action, -1, s.explored, s.te, s.tf,
                    s.next_pairs, s.n_finished, s.reward, s.q_value,
                    s.table_version,
                )
            steps = builder
        self.pool = steps.pool
        self.pairs_idx = np.asarray(steps.pairs_idx, dtype=np.int32)
        self.next_idx = np.asarray(steps.next_idx, dtype=np.int32)
        self.act_pos = np.asarray(steps.act_pos, dtype=np.int32)
        self.act_a = np.asarray(steps.act_a, dtype=np.int64)
        self.act_v = np.asarray(steps.act_v, dtype=np.int64)
        self.explored = np.asarray(steps.explored, dtype=np.int8)
        self.te = np.asarray(steps.te, dtype=np.float64)
        self.tf = np.asarray(steps.tf, dtype=np.float64)
        self.n_finished = np.asarray(steps.n_finished, dtype=np.int64)
        self.reward = np.asarray(steps.reward, dtype=np.float64)
        self.q_value = np.asarray(steps.q_value, dtype=np.float64)
        self.table_version = np.asarray(
            steps.table_version, dtype=np.int64
        )

    @property
    def n_steps(self) -> int:
        return int(self.pairs_idx.shape[0])

    @property
    def steps(self) -> List[DecisionStep]:
        """Materialized per-step views (generic replay path, tests)."""
        cached = self._steps_cache
        if cached is not None:
            return cached
        pool = self.pool
        out: List[DecisionStep] = []
        for i in range(self.n_steps):
            explored_code = int(self.explored[i])
            q_raw = float(self.q_value[i])
            out.append(
                DecisionStep(
                    pairs=pool[int(self.pairs_idx[i])],
                    action=(int(self.act_a[i]), int(self.act_v[i])),
                    explored=(
                        None if explored_code < 0 else bool(explored_code)
                    ),
                    te=float(self.te[i]),
                    tf=float(self.tf[i]),
                    next_pairs=pool[int(self.next_idx[i])],
                    n_finished=int(self.n_finished[i]),
                    reward=float(self.reward[i]),
                    q_value=None if math.isnan(q_raw) else q_raw,
                    table_version=int(self.table_version[i]),
                )
            )
        self._steps_cache = out
        return out

    def __getstate__(self) -> Dict[str, Any]:
        # drop the lazily materialized view list from pool transport
        return {
            name: getattr(self, name)
            for name in self.__slots__
            if name != "_steps_cache"
        }

    def __setstate__(self, state: Dict[str, Any]) -> None:
        for name, value in state.items():
            setattr(self, name, value)
        self._steps_cache = None


class ReplayContext:
    """Duck-typed :class:`~repro.sim.kernel.SimulationContext` stand-in.

    Carries exactly the fields ``ReassignScheduler`` reads in
    ``select``/``on_dispatched``: the interned action pairs (also used
    as the availability indicator), the workflow (for bucketed state
    labels) and the progress counter.  Feeding a traced episode back
    through these is what lets the ordered replay learner drive the
    *true* scheduler without a simulator.
    """

    __slots__ = (
        "action_pairs", "ready_activations", "idle_vms", "workflow",
        "n_finished",
    )

    def __init__(
        self,
        pairs: Tuple[Action, ...],
        workflow: Any = None,
        n_finished: int = 0,
    ) -> None:
        self.action_pairs = pairs
        # availability flags: non-empty iff pairs is (the scheduler only
        # checks truthiness, never the contents)
        self.ready_activations = pairs
        self.idle_vms = pairs
        self.workflow = workflow
        self.n_finished = n_finished


class ReplayPending:
    """Duck-typed :class:`~repro.sim.kernel.PendingExecution` stand-in.

    Only the four fields the reward step reads.
    """

    __slots__ = ("activation_id", "vm_id", "planned_execution_time",
                 "queue_time")

    def __init__(self, activation_id: int, vm_id: int, te: float,
                 tf: float) -> None:
        self.activation_id = activation_id
        self.vm_id = vm_id
        self.planned_execution_time = te
        self.queue_time = tf


class TracingScheduler:
    """Record a :class:`DecisionStep` stream around any online scheduler.

    Implements the :class:`~repro.schedulers.base.OnlineScheduler` hook
    protocol structurally (no inheritance — the simulation kernel duck
    types its scheduler, and importing the base class here would cycle
    through ``repro.sim``).  Pure observation: every hook forwards to
    the wrapped scheduler with unchanged arguments, so the inner
    scheduler's draws, updates and results are bit-identical to an
    untraced run.  After each episode
    (``on_simulation_end``), the completed step list is available as
    ``self.steps``; :attr:`last_explored` is read from the inner
    policy when it exposes the ε-coin outcome
    (:class:`~repro.rl.policy.EpsilonGreedyPolicy`).
    """

    def __init__(self, inner: Any) -> None:
        self.inner = inner
        self.steps: List[DecisionStep] = []
        self._open: Optional[List[Any]] = None

    def on_simulation_start(self, ctx: Any) -> None:
        self.steps = []
        self._open = None
        self.inner.on_simulation_start(ctx)

    def select(self, ctx: Any) -> Optional[Hashable]:
        pairs = ctx.action_pairs
        n_finished = ctx.n_finished
        before = getattr(self.inner, "_reward_sum", 0.0)
        action = self.inner.select(ctx)
        if action is None:
            return None
        explored = getattr(
            getattr(self.inner, "policy", None), "last_explored", None
        )
        version = 0
        table = getattr(self.inner, "qtable", None)
        if table is not None:
            version = getattr(table, "version", 0)
        # te/tf/next_pairs/reward are filled in at on_dispatched
        self._open = [pairs, action, explored, n_finished, before, version]
        return action

    def on_dispatched(self, ctx: Any, pending: Any) -> None:
        open_step = self._open
        self.inner.on_dispatched(ctx, pending)
        if open_step is not None:
            pairs, action, explored, n_finished, before, version = open_step
            after = getattr(self.inner, "_reward_sum", 0.0)
            self.steps.append(
                DecisionStep(
                    pairs=pairs,
                    action=action,
                    explored=explored,
                    te=pending.planned_execution_time,
                    tf=pending.queue_time,
                    next_pairs=ctx.action_pairs,
                    n_finished=n_finished,
                    reward=after - before,
                    q_value=None,
                    table_version=version,
                )
            )
            self._open = None

    def on_activation_finished(self, ctx: Any, record: Any) -> None:
        self.inner.on_activation_finished(ctx, record)

    def on_simulation_end(self, ctx: Any, result: Any) -> None:
        self.inner.on_simulation_end(ctx, result)


def _label_char(activation_id: int) -> str:
    """A compact per-activation glyph: 0-9, then a-z, A-Z, then '#'."""
    if activation_id < 10:
        return str(activation_id)
    if activation_id < 36:
        return chr(ord("a") + activation_id - 10)
    if activation_id < 62:
        return chr(ord("A") + activation_id - 36)
    return "#"


def gantt_text(result: SimulationResult, width: int = 100) -> str:
    """Render the run as an ASCII Gantt chart.

    Each VM row shows one line per concurrently used slot; cells carry the
    glyph of the activation occupying that slot (see :func:`_label_char`).
    """
    if width < 10:
        raise ValueError("width must be >= 10")
    if not result.records:
        return "(empty trace)"
    makespan = result.makespan
    if makespan <= 0:
        return "(zero-length trace)"
    scale = width / makespan

    # Assign records to display lanes per VM (interval graph colouring).
    by_vm: Dict[int, List[ActivationRecord]] = {}
    for record in sorted(result.records, key=lambda r: (r.vm_id, r.start_time)):
        by_vm.setdefault(record.vm_id, []).append(record)

    lines = [f"Gantt of {result.workflow_name!r}  makespan={makespan:.2f}s"]
    for vm_id in sorted(by_vm):
        lanes: List[List[ActivationRecord]] = []
        for record in by_vm[vm_id]:
            placed = False
            for lane in lanes:
                if lane[-1].finish_time <= record.start_time + 1e-9:
                    lane.append(record)
                    placed = True
                    break
            if not placed:
                lanes.append([record])
        for lane_idx, lane in enumerate(lanes):
            row = [" "] * width
            for record in lane:
                lo = int(record.start_time * scale)
                hi = max(lo + 1, int(record.finish_time * scale))
                glyph = _label_char(record.activation_id)
                for k in range(lo, min(hi, width)):
                    row[k] = glyph
            prefix = f"vm{vm_id:<3}" if lane_idx == 0 else "     "
            lines.append(f"{prefix}|{''.join(row)}|")
    lines.append(f"      0{' ' * (width - 8)}{makespan:8.1f}s")
    return "\n".join(lines)
