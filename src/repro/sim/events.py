"""Event heap for the discrete-event kernel.

Events are ordered by ``(time, priority, sequence)``: the sequence number
makes ordering total and FIFO among simultaneous equal-priority events, so
simulations are bit-for-bit reproducible.  Events support O(1) logical
cancellation (lazy deletion), which the migration and failure models use to
reschedule in-flight completions.
"""

from __future__ import annotations

import enum
import heapq
import itertools
from dataclasses import dataclass, field
from typing import Any, List, Optional, Tuple

from repro.util.validate import ValidationError

__all__ = ["EventType", "Event", "EventQueue", "PRIORITY_TABLE"]


class EventType(enum.IntEnum):
    """Kinds of simulation events; the int value doubles as priority.

    Lower value = processed first among simultaneous events.  Completions
    precede dispatch so a core freed at time *t* can be reused at *t*.

    Adding a member is a deliberate two-line change: the new entry must
    also be added to :data:`PRIORITY_TABLE` below, which the RL011 lint
    rule and the import-time check keep in lockstep with this enum.
    """

    VM_READY = 0  #: VM finished booting
    MIGRATION_END = 1  #: VM resumes after live migration
    ACTIVATION_DONE = 2  #: activation completed (success or failure)
    REVOCATION = 3  #: spot VM reclaimed by the provider (permanent)
    MIGRATION_START = 4  #: VM begins a live migration
    DISPATCH = 5  #: scheduler decision point
    END_OF_SIMULATION = 6  #: safety horizon
    JOB_ARRIVAL = 7  #: a new job enters the streaming service


#: Machine-readable priority table, shared by the event loop (via
#: :class:`EventType`, validated against it at import) and by reprolint's
#: RL011 rule, which statically checks uniqueness, ordering and
#: enum/table agreement.  Keep entries sorted by priority.
PRIORITY_TABLE: Tuple[Tuple[str, int], ...] = (
    ("VM_READY", 0),
    ("MIGRATION_END", 1),
    ("ACTIVATION_DONE", 2),
    ("REVOCATION", 3),
    ("MIGRATION_START", 4),
    ("DISPATCH", 5),
    ("END_OF_SIMULATION", 6),
    ("JOB_ARRIVAL", 7),
)


def _validate_priority_table() -> None:
    """Fail fast (at import) if the enum and the table ever disagree."""
    enum_pairs = tuple((member.name, int(member)) for member in EventType)
    if enum_pairs != PRIORITY_TABLE:
        raise ValidationError(
            "EventType and PRIORITY_TABLE disagree: "
            f"{enum_pairs!r} != {PRIORITY_TABLE!r}"
        )
    values = [value for _, value in PRIORITY_TABLE]
    if len(set(values)) != len(values) or values != sorted(values):
        raise ValidationError(
            f"event priorities must be unique and ascending: {values!r}"
        )


_validate_priority_table()


@dataclass
class Event:
    """A scheduled occurrence in simulated time."""

    time: float
    type: EventType
    payload: Any = None
    cancelled: bool = field(default=False, compare=False)

    def cancel(self) -> None:
        """Mark the event as void; it will be skipped when popped."""
        self.cancelled = True


class EventQueue:
    """A deterministic min-heap of :class:`Event` objects."""

    def __init__(self) -> None:
        self._heap: List[Tuple[float, int, int, Event]] = []
        self._counter = itertools.count()

    def push(self, event: Event) -> Event:
        """Schedule ``event``; returns it (handy for later cancellation)."""
        if event.time < 0:
            raise ValidationError(f"event time must be >= 0, got {event.time}")
        heapq.heappush(
            self._heap, (event.time, int(event.type), next(self._counter), event)
        )
        return event

    def schedule(
        self, time: float, type: EventType, payload: Any = None
    ) -> Event:
        """Convenience constructor + push."""
        return self.push(Event(time=time, type=type, payload=payload))

    def pop(self) -> Optional[Event]:
        """Remove and return the earliest live event, or None if empty."""
        while self._heap:
            _, _, _, event = heapq.heappop(self._heap)
            if event.cancelled:
                continue
            return event
        return None

    def peek_time(self) -> Optional[float]:
        """Time of the next live event without removing it."""
        while self._heap:
            t, _, _, event = self._heap[0]
            if event.cancelled:
                heapq.heappop(self._heap)
                continue
            return t
        return None

    def __len__(self) -> int:
        """Number of live (non-cancelled) events; O(n), intended for tests."""
        return sum(1 for _, _, _, e in self._heap if not e.cancelled)

    def __bool__(self) -> bool:
        return self.peek_time() is not None
