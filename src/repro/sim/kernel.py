"""The episode kernel: immutable cross-episode data + resettable state.

The simulation layer is split into three tiers (see
``docs/architecture.md``):

- :class:`EpisodeKernel` — everything valid across episodes: a private
  frozen-topology copy of the workflow with precomputed successor /
  predecessor / entry index maps, the VM fleet, the environment models,
  and a :class:`~repro.sim.estimates.NominalEstimateCache` shared with
  planning-time :class:`~repro.schedulers.base.EstimateModel` objects.
  Build one kernel per (workflow, fleet, models) configuration and call
  :meth:`EpisodeKernel.run_episode` once per episode.
- :class:`EpisodeState` — everything one episode mutates: simulated
  time, the event queue, activation states (with incremental ready-set
  and terminal-predicate counters), per-VM slots, file placement, RNG
  streams.  ``reset(seed)`` is O(activations + VMs) — no DAG copy, no
  cache rebuild.
- the event loop — :meth:`EpisodeKernel.run_episode` drives (1)+(2),
  preserving the exact event semantics, hook order and float arithmetic
  of the original :class:`~repro.sim.simulator.WorkflowSimulator`, which
  is now a thin facade over this module.  The golden-trace suite
  (``tests/test_kernel_equivalence.py``) pins the equivalence
  bit-for-bit.

Episode-reuse contract: the kernel's workflow copy and fleet are shared
mutable state across episodes.  ``run_episode`` resets them at entry and
scrubs them back to pristine (all activations LOCKED, all VM slots
clear) if an episode aborts with an exception, so a failing episode can
never corrupt the next one.  The caller's workflow object is never
touched at all.
"""

from __future__ import annotations

import hashlib
import json
from bisect import bisect_left, insort
from dataclasses import dataclass
from types import MappingProxyType
from typing import (
    Any,
    Dict,
    List,
    Mapping,
    Optional,
    Sequence,
    Tuple,
)

import numpy as np

from repro.dag.activation import Activation, ActivationState
from repro.dag.graph import Workflow
from repro.sim.estimates import NominalEstimateCache
from repro.sim.events import Event, EventQueue, EventType
from repro.sim.failures import FailureModel, NoFailures
from repro.sim.fluctuation import (
    BurstThrottleFluctuation,
    FluctuationModel,
    NoFluctuation,
)
from repro.sim.metrics import ActivationRecord, SimulationResult
from repro.sim.migration import MigrationModel, MigrationWindow, NoMigrations
from repro.sim.network import NetworkModel, SharedStorageNetwork
from repro.sim.spot import NoRevocations, RevocationModel
from repro.sim.vm import Vm
from repro.util.rng import RngService
from repro.util.validate import ValidationError, check_positive

__all__ = [
    "BatchEpisodeState",
    "EpisodeKernel",
    "EpisodeState",
    "PendingExecution",
    "SimulationContext",
    "SimulationError",
    "kernel_fingerprint",
]

_TERMINAL_STATES = ("successfully finished", "finished with failure")

#: Cap on the content-addressed (ready, idle) -> pairs-tuple interner.
#: A learning run on a mid-size workflow cycles through a few thousand
#: distinct configurations, and the batched engine shares one interner
#: across every lockstep lane of a group — B exploring lanes multiply
#: the live set, and FIFO eviction churns tuple identities, which in
#: turn misses the Q-table's id()-keyed action-slice memo.  Sizing the
#: interner well above the multi-lane working set keeps both caches
#: hot (each entry is one small tuple of int pairs, so worst-case
#: memory stays in the tens of megabytes).
_PAIRS_INTERN_LIMIT = 65536


class SimulationError(RuntimeError):
    """Raised when a simulation cannot make progress (deadlock/horizon)."""


@dataclass
class PendingExecution:
    """Bookkeeping for one in-flight execution attempt."""

    activation_id: int
    vm_id: int
    ready_time: float
    dispatch_time: float
    stage_in: float
    exec_duration: float  #: staging + compute + publish for this attempt
    planned_finish: float
    attempt: int
    outcome: str  #: "success" | "retry" | "failure"
    event: Optional[Event] = None

    @property
    def queue_time(self) -> float:
        """``tf`` — how long the activation waited in READY."""
        return self.dispatch_time - self.ready_time

    @property
    def planned_execution_time(self) -> float:
        """``te`` — how long the attempt will occupy the VM."""
        return self.exec_duration


class EpisodeState:
    """Mutable per-episode simulation state with an O(n) reset.

    Owns every quantity one episode changes — including the activation
    ``state`` fields of the kernel's workflow copy and the runtime state
    of the fleet's :class:`~repro.sim.vm.Vm` objects.  All transitions
    go through the methods here so the incremental trackers (sorted
    ready ids, terminal-predicate counters, cached context views) can
    never drift from the underlying objects.
    """

    def __init__(self, kernel: "EpisodeKernel") -> None:
        # Single-tenancy invariant (PR 6 audit): an EpisodeState owns the
        # kernel's shared mutable objects — the workflow copy's activation
        # states and the fleet's VM slots.  A second live state on the
        # same kernel would scrub those objects out from under the first
        # (this constructor ends in reset(0)), so exactly one state may
        # exist per kernel.  Concurrent multi-job execution goes through
        # repro.service.timeline, which gives every job private
        # structures and shares only the fleet, deliberately.
        if getattr(kernel, "_state", None) is not None:
            raise ValidationError(
                "kernel already owns a live EpisodeState; constructing a "
                "second one would scrub the in-flight episode's shared "
                "workflow/fleet state (use repro.service.FleetTimeline "
                "to multiplex jobs over one fleet)"
            )
        self._kernel = kernel
        self.now = 0.0
        self.queue = EventQueue()
        self.records: List[ActivationRecord] = []
        self.ready_time: Dict[int, float] = {}
        self.attempts: Dict[int, int] = {}
        self.busy_time: Dict[int, float] = {}
        self.file_locations: Dict[str, int] = {}
        self.in_flight: Dict[int, PendingExecution] = {}
        self.dispatch_scheduled = False
        # incremental trackers
        self._ready_ids: List[int] = []
        self._unfinished_parents: Dict[int, int] = {}
        self._n_finished = 0
        self._n_failed = 0
        self._n_running = 0
        # cached scheduler-facing views (satellite: no per-access rebuilds)
        self._ready_cache: Optional[Tuple[Activation, ...]] = None
        self._records_cache: Optional[Tuple[ActivationRecord, ...]] = None
        self._vm_version = 0
        self._idle_key: Optional[Tuple[float, int]] = None
        self._idle_cache: Tuple[Vm, ...] = ()
        # monotonic generation counters for the ready/idle *contents*.
        # They only ever increase (never reset — schedulers cache across
        # episodes keyed on them), and _idle_version bumps only when the
        # rebuilt idle tuple actually differs, so a pure time step does
        # not invalidate downstream (ready, idle) cross-product caches.
        self._ready_version = 0
        self._idle_version = 0
        self._pairs_key: Optional[Tuple[int, int]] = None
        self._pairs_cache: Tuple[Tuple[int, int], ...] = ()
        # content-addressed pairs interner: (ready ids, idle ids) ->
        # the cross-product tuple.  Episodes revisit the same handful of
        # configurations, and returning the *same object* lets
        # identity-keyed downstream caches (the Q-table's action-id
        # memo) hit across dispatches and episodes.  Deliberately
        # survives scrub(): content keys are generation-independent.
        self._pairs_interned: Dict[
            Tuple[Tuple[int, ...], Tuple[int, ...]],
            Tuple[Tuple[int, int], ...],
        ] = {}
        # busy-bitmask -> capacity-idle tuple memo (bit i set = vms[i]
        # full).  The batched engine's fused loop maintains the mask
        # incrementally and swaps idle tuples by lookup instead of
        # rebuilding them; at most 2^len(vms) entries, content-keyed,
        # so it also survives scrub().
        self._idle_by_mask: Dict[int, Tuple[Vm, ...]] = {}
        # RNG streams, re-derived from the per-episode seed in reset()
        self.rng_fluct: np.random.Generator
        self.rng_fail: np.random.Generator
        self.rng_migr: np.random.Generator
        self.rng_revoke: np.random.Generator
        self.reset(0)

    # -- lifecycle -------------------------------------------------------

    def scrub(self) -> None:
        """Force the shared mutable objects back to pristine.

        Safe from *any* state, including mid-episode after an exception:
        activation resets bypass the transition table and VM resets clear
        occupied slots.  Leaves every activation LOCKED with no pending
        events — the state ``reset`` starts from.
        """
        for ac in self._kernel.activations:
            ac.reset()
        for vm in self._kernel.vms:
            vm.reset()
        self._vm_version += 1
        self.now = 0.0
        self.queue = EventQueue()
        self.records = []
        self.ready_time = {}
        self.attempts = {}
        self.busy_time = {vm.id: 0.0 for vm in self._kernel.vms}
        self.file_locations = {}
        self.in_flight = {}
        self.dispatch_scheduled = False
        self._ready_ids = []
        self._unfinished_parents = dict(self._kernel.initial_pred_count)
        self._n_finished = 0
        self._n_failed = 0
        self._n_running = 0
        self._ready_cache = None
        self._records_cache = None
        self._idle_key = None
        self._idle_cache = ()
        # bump, never zero: version numbers must stay unique across
        # episodes so cross-episode consumers can never see a stale hit
        self._ready_version += 1
        self._idle_version += 1
        self._pairs_key = None
        self._pairs_cache = ()

    def reset(self, seed: int) -> None:
        """Start a fresh episode: O(activations + VMs + scheduled windows).

        Mirrors the original per-run initialization exactly — same RNG
        stream names, same event scheduling order (boots, then migration
        windows, then revocations) — so episodes are bit-identical to
        runs of the pre-kernel simulator with the same seed.
        """
        kernel = self._kernel
        self.scrub()
        for i in kernel.entry_ids:
            kernel.activation(i).transition(ActivationState.READY)
            self._ready_ids.append(i)  # entry_ids are pre-sorted
            self.ready_time[i] = 0.0

        rng = RngService(seed)
        self.rng_fluct = rng.stream("fluctuation")
        self.rng_fail = rng.stream("failures")
        self.rng_migr = rng.stream("migrations")
        self.rng_revoke = rng.stream("revocations")

        for vm in kernel.vms:
            boot = vm.type.boot_time
            vm.available_at = boot
            if boot > 0:
                self.queue.schedule(boot, EventType.VM_READY, vm.id)

        for window in kernel.migrations.windows(
            kernel.vms, kernel.horizon, self.rng_migr
        ):
            self.queue.schedule(window.start, EventType.MIGRATION_START, window)

        for revocation in kernel.revocations.revocations(
            kernel.vms, kernel.horizon, self.rng_revoke
        ):
            self.queue.schedule(
                revocation.time, EventType.REVOCATION, revocation.vm_id
            )

    def reset_fast(self) -> None:
        """Stream-free episode reset for draw-free kernels.

        Bit-identical to :meth:`reset` *except* the four per-episode
        RNG streams are not re-derived, so it is only valid when
        ``kernel.draw_free`` is true — no model ever reads them (the
        attributes keep the previous episode's generators, which a
        draw-free episode never touches).  Used by the batched lockstep
        engine (:mod:`repro.core.batch`), where stream construction
        otherwise dominates the per-episode reset cost.
        """
        kernel = self._kernel
        if not kernel.draw_free:
            raise ValidationError(
                "reset_fast requires a draw-free kernel "
                "(see EpisodeKernel.draw_free); use reset(seed)"
            )
        self.scrub()
        ac_by_id = kernel._ac_by_id
        for i in kernel.entry_ids:
            ac_by_id[i].state = ActivationState.READY
            self._ready_ids.append(i)  # entry_ids are pre-sorted
            self.ready_time[i] = 0.0
        for vm in kernel.vms:
            boot = vm.type.boot_time
            vm.available_at = boot
            if boot > 0:
                self.queue.schedule(boot, EventType.VM_READY, vm.id)

    # -- the paper's workflow-state predicate, O(1) ----------------------

    def workflow_state(self) -> str:
        """The paper's 4-valued workflow state, from maintained counters.

        Agrees with :meth:`repro.dag.graph.Workflow.workflow_state`'s
        O(n) scan at every point of an episode (the activation ``state``
        fields are kept in sync by the transition methods below).
        """
        n_total = self._kernel.n_activations
        if self._n_finished == n_total:
            return "successfully finished"
        n_ready = len(self._ready_ids)
        n_locked = (
            n_total - self._n_finished - self._n_failed
            - self._n_running - n_ready
        )
        if self._n_failed and not (n_ready or n_locked or self._n_running):
            return "finished with failure"
        if n_ready:
            return "available"
        return "unavailable"

    # -- cached context views --------------------------------------------

    def ready_view(self) -> Tuple[Activation, ...]:
        """READY activations ordered by id; cached until the set changes."""
        if self._ready_cache is None:
            kernel = self._kernel
            self._ready_cache = tuple(
                kernel.activation(i) for i in self._ready_ids
            )
        return self._ready_cache

    def idle_view(self) -> Tuple[Vm, ...]:
        """Idle VMs; cached per (time, fleet-mutation) generation."""
        key = (self.now, self._vm_version)
        if key != self._idle_key:
            self._idle_key = key
            now = self.now
            rebuilt = tuple(
                vm for vm in self._kernel.vms if vm.is_idle(now)
            )
            # content-compare before bumping: most time steps leave the
            # idle set unchanged, and an unchanged set must not
            # invalidate (ready, idle)-keyed caches downstream
            if rebuilt != self._idle_cache:
                self._idle_cache = rebuilt
                self._idle_version += 1
        return self._idle_cache

    def records_view(self) -> Tuple[ActivationRecord, ...]:
        """Completed records; cached until the next completion."""
        if self._records_cache is None:
            self._records_cache = tuple(self.records)
        return self._records_cache

    def has_ready(self) -> bool:
        return bool(self._ready_ids)

    @property
    def ready_version(self) -> int:
        """Monotonic generation counter of the READY set's contents."""
        return self._ready_version

    @property
    def idle_version(self) -> int:
        """Monotonic generation counter of the idle set's contents.

        Refreshes the idle view first: idleness depends on simulated
        time, so the counter is only meaningful for the current ``now``.
        """
        self.idle_view()
        return self._idle_version

    @property
    def n_finished(self) -> int:
        """Activations finished successfully so far (O(1))."""
        return self._n_finished

    def action_pairs(self) -> Tuple[Tuple[int, int], ...]:
        """The (activation_id, vm_id) ready x idle cross product.

        Cached keyed on ``(ready_version, idle_version)``: the same
        tuple object is handed out until either set's contents change,
        so per-decision consumers (``ReassignScheduler``, the Q-table's
        action-id memo) see a stable identity instead of a fresh list
        build per call.
        """
        idle = self.idle_view()
        key = (self._ready_version, self._idle_version)
        if key != self._pairs_key:
            self._pairs_key = key
            content = (
                tuple(self._ready_ids),
                tuple(vm.id for vm in idle),
            )
            pairs = self._pairs_interned.get(content)
            if pairs is None:
                pairs = tuple(
                    (ac.id, vm.id) for ac in self.ready_view() for vm in idle
                )
                if len(self._pairs_interned) >= _PAIRS_INTERN_LIMIT:
                    self._pairs_interned.pop(next(iter(self._pairs_interned)))
                self._pairs_interned[content] = pairs
            self._pairs_cache = pairs
        return self._pairs_cache

    # -- activation transitions ------------------------------------------

    def make_ready(self, activation: Activation, was_running: bool) -> None:
        """RUNNING -> READY (retry / revocation); keeps its ready_time."""
        activation.transition(ActivationState.READY)
        insort(self._ready_ids, activation.id)
        if was_running:
            self._n_running -= 1
        self._ready_cache = None
        self._ready_version += 1

    def start_running(self, activation: Activation, vm: Vm) -> None:
        """READY -> RUNNING and occupy a slot on ``vm``."""
        activation.transition(ActivationState.RUNNING)
        idx = bisect_left(self._ready_ids, activation.id)
        del self._ready_ids[idx]
        self._n_running += 1
        self._ready_cache = None
        self._ready_version += 1
        vm.start(activation.id)
        self._vm_version += 1

    def finish_success(self, activation: Activation) -> List[int]:
        """RUNNING -> FINISHED; release now-unblocked children.

        Returns the newly READY child ids (sorted), mirroring
        :meth:`repro.dag.graph.Workflow.release_children` — but in
        O(out-degree) via the per-episode unfinished-parent countdown
        instead of re-checking every parent.
        """
        activation.transition(ActivationState.FINISHED)
        self._n_running -= 1
        self._n_finished += 1
        kernel = self._kernel
        released: List[int] = []
        for child_id in kernel.children(activation.id):
            remaining = self._unfinished_parents[child_id] - 1
            self._unfinished_parents[child_id] = remaining
            child = kernel.activation(child_id)
            if remaining == 0 and child.state is ActivationState.LOCKED:
                child.transition(ActivationState.READY)
                insort(self._ready_ids, child_id)
                released.append(child_id)
        if released:
            self._ready_cache = None
            self._ready_version += 1
            now = self.now
            for child_id in released:
                self.ready_time[child_id] = now
        return released

    def finish_failure(self, activation: Activation) -> None:
        """RUNNING -> FAILED, cascading to LOCKED descendants.

        Descendants of a failed activation can never run; marking them
        FAILED keeps the paper's terminal predicate reachable.
        """
        activation.transition(ActivationState.FAILED)
        self._n_running -= 1
        self._n_failed += 1
        kernel = self._kernel
        stack = list(kernel.children(activation.id))
        while stack:
            node = stack.pop()
            ac = kernel.activation(node)
            if ac.state is ActivationState.LOCKED:
                ac.transition(ActivationState.FAILED)
                self._n_failed += 1
                stack.extend(kernel.children(node))

    def add_record(self, record: ActivationRecord) -> None:
        self.records.append(record)
        self._records_cache = None

    # -- VM mutations ----------------------------------------------------

    def vm_release(self, vm: Vm, activation_id: int) -> None:
        vm.finish(activation_id)
        self._vm_version += 1

    def vm_touch(self) -> None:
        """Invalidate the idle cache after a direct VM field mutation."""
        self._vm_version += 1


class SimulationContext:
    """Read-only view of the simulation handed to schedulers."""

    def __init__(self, kernel: "EpisodeKernel", state: EpisodeState) -> None:
        self._kernel = kernel
        self._state = state

    @property
    def now(self) -> float:
        """Current simulated time."""
        return self._state.now

    @property
    def workflow(self) -> Workflow:
        """The (live) workflow DAG; do not mutate."""
        return self._kernel.workflow

    @property
    def vms(self) -> Sequence[Vm]:
        """The full fleet."""
        return self._kernel.vms

    @property
    def ready_activations(self) -> Tuple[Activation, ...]:
        """Activations currently in READY, ordered by id (cached view)."""
        return self._state.ready_view()

    @property
    def idle_vms(self) -> Tuple[Vm, ...]:
        """VMs that can accept an activation right now (cached view)."""
        return self._state.idle_view()

    @property
    def ready_version(self) -> int:
        """Generation counter of :attr:`ready_activations`' contents."""
        return self._state.ready_version

    @property
    def idle_version(self) -> int:
        """Generation counter of :attr:`idle_vms`' contents."""
        return self._state.idle_version

    @property
    def action_pairs(self) -> Tuple[Tuple[int, int], ...]:
        """Cached (activation_id, vm_id) ready x idle cross product.

        The same tuple object is returned until the ready or idle set
        changes — schedulers can key identity-based caches on it.
        """
        return self._state.action_pairs()

    @property
    def n_finished(self) -> int:
        """Activations finished successfully so far (O(1) counter)."""
        return self._state.n_finished

    @property
    def records(self) -> Tuple[ActivationRecord, ...]:
        """Completed activation records so far (cached view)."""
        return self._state.records_view()

    @property
    def file_locations(self) -> Mapping[str, int]:
        """Read-only file-name -> producing-VM-id placement map."""
        return MappingProxyType(self._state.file_locations)

    def ready_time(self, activation_id: int) -> float:
        """When ``activation_id`` became READY (raises if it has not)."""
        try:
            return self._state.ready_time[activation_id]
        except KeyError:
            raise ValidationError(
                f"activation {activation_id} has not become ready"
            ) from None

    def estimated_execution(self, activation: Activation, vm: Vm) -> float:
        """Nominal compute estimate (no staging, no fluctuation)."""
        return self._kernel.estimates.compute_time(activation, vm)

    def estimated_stage_in(self, activation: Activation, vm: Vm) -> float:
        """Staging estimate given current file placement."""
        return self._kernel.stage_in_time(
            activation, vm, self._state.file_locations
        )

    def vm_busy_time(self, vm_id: int) -> float:
        """Cumulative busy seconds accrued by the VM."""
        return self._state.busy_time.get(vm_id, 0.0)


class EpisodeKernel:
    """Immutable cross-episode simulation data plus the event loop.

    Parameters
    ----------
    workflow:
        The DAG.  The kernel takes a private copy at construction; the
        caller's object is never mutated.  The copy's topology is frozen
        for the kernel's lifetime — only activation states change, and
        those are reset per episode.
    vms:
        The fleet.  VM runtime state is reset at the start of each
        episode.
    network / fluctuation / failures / migrations / revocations:
        Environment models; defaults are shared-storage staging and
        no-op stochastic models.
    max_attempts:
        Execution attempts per activation before it terminally fails.
    horizon:
        Hard simulated-time limit; exceeding it raises
        :class:`SimulationError` (it indicates a deadlock or a
        pathological schedule).
    """

    def __init__(
        self,
        workflow: Workflow,
        vms: Sequence[Vm],
        *,
        network: Optional[NetworkModel] = None,
        fluctuation: Optional[FluctuationModel] = None,
        failures: Optional[FailureModel] = None,
        migrations: Optional[MigrationModel] = None,
        revocations: Optional[RevocationModel] = None,
        max_attempts: int = 1,
        horizon: float = 1e6,
    ) -> None:
        if not vms:
            raise ValidationError("fleet must contain at least one VM")
        ids = [vm.id for vm in vms]
        if len(set(ids)) != len(ids):
            raise ValidationError("VM ids must be unique")
        if max_attempts < 1:
            raise ValidationError("max_attempts must be >= 1")
        self.workflow = workflow.copy()
        self.vms: List[Vm] = list(vms)
        self.vm_by_id: Dict[int, Vm] = {vm.id: vm for vm in self.vms}
        self.network = network if network is not None else SharedStorageNetwork()
        self.fluctuation = (
            fluctuation if fluctuation is not None else NoFluctuation()
        )
        self.failures = failures if failures is not None else NoFailures()
        self.migrations = (
            migrations if migrations is not None else NoMigrations()
        )
        self.revocations = (
            revocations if revocations is not None else NoRevocations()
        )
        self.max_attempts = int(max_attempts)
        self.horizon = check_positive("horizon", horizon)
        # A "draw-free" environment never reads any of the four
        # per-episode RNG streams: no failures/migrations/revocations,
        # and a fluctuation model known to be deterministic.  Exact type
        # checks, not isinstance — a subclass may override behaviour and
        # start drawing.  Consumers (the batched lockstep engine) use
        # this to take the stream-free ``EpisodeState.reset_fast`` path.
        self.draw_free: bool = (
            type(self.failures) is NoFailures
            and type(self.migrations) is NoMigrations
            and type(self.revocations) is NoRevocations
            and type(self.fluctuation)
            in (NoFluctuation, BurstThrottleFluctuation)
        )

        # frozen topology indexes (id -> sorted neighbour tuples)
        wf = self.workflow
        self._ac_by_id: Dict[int, Activation] = {
            ac.id: ac for ac in wf.activations
        }
        self.activations: Tuple[Activation, ...] = tuple(wf.activations)
        self._children: Dict[int, Tuple[int, ...]] = {
            i: tuple(wf.children(i)) for i in wf.activation_ids
        }
        self._parents: Dict[int, Tuple[int, ...]] = {
            i: tuple(wf.parents(i)) for i in wf.activation_ids
        }
        self.entry_ids: Tuple[int, ...] = tuple(wf.entries())
        self.initial_pred_count: Dict[int, int] = {
            i: len(parents) for i, parents in self._parents.items()
        }

        # shared nominal estimates; staging fast path only for the exact
        # SharedStorageNetwork (subclasses may override the formulas)
        self._shared_staging = type(self.network) is SharedStorageNetwork
        if self._shared_staging:
            assert isinstance(self.network, SharedStorageNetwork)
            self.estimates = NominalEstimateCache(
                self.vms,
                latency=self.network.latency,
                upload_outputs=self.network.upload_outputs,
            )
        else:
            self.estimates = NominalEstimateCache(self.vms)

        self._state = EpisodeState(self)
        self._ctx = SimulationContext(self, self._state)

    # -- frozen-topology accessors ---------------------------------------

    @property
    def n_activations(self) -> int:
        return len(self.activations)

    def activation(self, activation_id: int) -> Activation:
        """The kernel's activation with the given id."""
        try:
            return self._ac_by_id[activation_id]
        except KeyError:
            raise ValidationError(
                f"unknown activation {activation_id} in workflow "
                f"{self.workflow.name!r}"
            ) from None

    def children(self, activation_id: int) -> Tuple[int, ...]:
        """Direct successor ids, sorted (precomputed)."""
        return self._children[activation_id]

    def parents(self, activation_id: int) -> Tuple[int, ...]:
        """Direct predecessor ids, sorted (precomputed)."""
        return self._parents[activation_id]

    @property
    def state(self) -> EpisodeState:
        """The kernel's (single, reusable) episode state."""
        return self._state

    @property
    def context(self) -> SimulationContext:
        """The scheduler-facing view over this kernel's episode state."""
        return self._ctx

    # -- shared estimates ------------------------------------------------

    def stage_in_time(
        self,
        activation: Activation,
        vm: Vm,
        file_locations: Dict[str, int],
    ) -> float:
        """Staging seconds under the kernel's network model.

        Uses the memoized per-file terms when the model is the exact
        :class:`SharedStorageNetwork` (bit-identical arithmetic);
        delegates to the model otherwise.
        """
        if self._shared_staging:
            return self.estimates.stage_in_time(activation, vm, file_locations)
        return self.network.stage_in_time(activation, vm, file_locations)

    def stage_out_time(self, activation: Activation, vm: Vm) -> float:
        """Publishing seconds under the kernel's network model."""
        if self._shared_staging:
            return self.estimates.stage_out_time(activation, vm)
        return self.network.stage_out_time(activation, vm)

    def estimate_model(self) -> Any:
        """A planning-time ``EstimateModel`` backed by this kernel's cache.

        HEFT-style planners constructed with it share the kernel's
        memoized per-(activation, vm) values instead of recomputing them.
        Falls back to a default (uncached) model when the kernel's
        network is not the shared-storage one the estimates mirror.
        (Deferred import: ``repro.schedulers.base`` imports this package.)
        """
        from repro.schedulers.base import EstimateModel

        if not self._shared_staging:
            return EstimateModel()
        return EstimateModel(
            latency=self.estimates.latency,
            upload_outputs=self.estimates.upload_outputs,
            cache=self.estimates,
        )

    # -- hooks -----------------------------------------------------------

    def _call_hook(self, scheduler: Any, name: str, *args: Any) -> None:
        hook = getattr(scheduler, name, None)
        if hook is not None:
            hook(*args)

    # -- the event loop --------------------------------------------------

    def run_episode(self, scheduler: Any, seed: int) -> SimulationResult:
        """Execute one episode to a terminal state and return the result.

        Resets the episode state from ``seed`` at entry, so any residue
        of a previous (even aborted) episode is erased; if *this*
        episode raises, the shared workflow/fleet state is scrubbed back
        to pristine before the exception propagates (robustness
        satellite: a failing episode cannot corrupt the following one).
        """
        state = self._state
        state.reset(int(seed))
        completed = False
        try:
            result = self._run(scheduler)
            completed = True
            return result
        finally:
            if not completed:
                state.scrub()

    def _run(self, scheduler: Any) -> SimulationResult:
        state = self._state
        ctx = self._ctx
        self._call_hook(scheduler, "on_simulation_start", ctx)
        self._schedule_dispatch()

        while True:
            wf_state = state.workflow_state()
            if wf_state in _TERMINAL_STATES:
                break
            event = state.queue.pop()
            if event is None:
                raise SimulationError(
                    f"simulation deadlocked at t={state.now:.3f}: workflow "
                    f"state {wf_state!r} with no pending events"
                )
            if event.time < state.now - 1e-9:
                raise SimulationError("event time regressed (internal bug)")
            state.now = max(state.now, event.time)
            if state.now > self.horizon:
                raise SimulationError(
                    f"simulation exceeded horizon {self.horizon}"
                )
            self._handle(scheduler, event)

        makespan = max(
            (r.finish_time for r in state.records), default=state.now
        )
        result = SimulationResult(
            workflow_name=self.workflow.name,
            records=list(state.records),
            makespan=makespan,
            final_state=state.workflow_state(),
            vms=list(self.vms),
        )
        self._call_hook(scheduler, "on_simulation_end", ctx, result)
        return result

    # -- event handling --------------------------------------------------

    def _handle(self, scheduler: Any, event: Event) -> None:
        state = self._state
        if event.type is EventType.ACTIVATION_DONE:
            self._complete(scheduler, event.payload)
        elif event.type is EventType.DISPATCH:
            state.dispatch_scheduled = False
            self._dispatch_loop(scheduler)
        elif event.type is EventType.VM_READY:
            self._schedule_dispatch()
        elif event.type is EventType.MIGRATION_START:
            self._begin_migration(event.payload)
        elif event.type is EventType.REVOCATION:
            self._revoke(event.payload)
        elif event.type is EventType.MIGRATION_END:
            vm = self.vm_by_id[event.payload]
            vm.migrating = False
            state.vm_touch()
            self._schedule_dispatch()
        else:  # pragma: no cover - defensive
            raise SimulationError(f"unhandled event type {event.type!r}")

    def _schedule_dispatch(self) -> None:
        state = self._state
        if not state.dispatch_scheduled:
            state.dispatch_scheduled = True
            state.queue.schedule(state.now, EventType.DISPATCH)

    # -- dispatch --------------------------------------------------------

    def _dispatch_loop(self, scheduler: Any) -> None:
        """Repeatedly ask the scheduler for actions while 'available'."""
        state = self._state
        while True:
            if not state.has_ready():
                return
            if not state.idle_view():
                return
            decision = scheduler.select(self._ctx)
            if decision is None:
                return  # the "do nothing" action
            activation_id, vm_id = decision
            self._dispatch(scheduler, activation_id, vm_id)

    def _dispatch(self, scheduler: Any, activation_id: int, vm_id: int) -> None:
        state = self._state
        ac = self.activation(activation_id)
        vm = self.vm_by_id.get(vm_id)
        if vm is None:
            raise ValidationError(f"scheduler chose unknown VM {vm_id}")
        if ac.state is not ActivationState.READY:
            raise ValidationError(
                f"scheduler chose activation {activation_id} in state "
                f"{ac.state.name}, expected READY"
            )
        if not vm.is_idle(state.now):
            raise ValidationError(
                f"scheduler chose VM {vm_id} which is not idle at "
                f"t={state.now:.3f}"
            )

        attempt = state.attempts.get(activation_id, 0)
        stage_in = self.stage_in_time(ac, vm, state.file_locations)
        factor = self.fluctuation.factor(
            vm, state.now, state.busy_time[vm.id], state.rng_fluct
        )
        compute = self.estimates.compute_time(ac, vm) * factor
        stage_out = self.stage_out_time(ac, vm)

        fails = self.failures.attempt_fails(ac, vm, attempt, state.rng_fail)
        if fails:
            duration = stage_in + compute * self.failures.failure_runtime_fraction
            outcome = "retry" if attempt + 1 < self.max_attempts else "failure"
        else:
            duration = stage_in + compute + stage_out
            outcome = "success"

        state.start_running(ac, vm)
        pending = PendingExecution(
            activation_id=activation_id,
            vm_id=vm_id,
            ready_time=state.ready_time[activation_id],
            dispatch_time=state.now,
            stage_in=stage_in,
            exec_duration=duration,
            planned_finish=state.now + duration,
            attempt=attempt,
            outcome=outcome,
        )
        pending.event = state.queue.schedule(
            pending.planned_finish, EventType.ACTIVATION_DONE, pending
        )
        state.in_flight[activation_id] = pending
        self._call_hook(scheduler, "on_dispatched", self._ctx, pending)

    # -- completion ------------------------------------------------------

    def _complete(self, scheduler: Any, pending: PendingExecution) -> None:
        state = self._state
        ac = self.activation(pending.activation_id)
        vm = self.vm_by_id[pending.vm_id]
        state.vm_release(vm, pending.activation_id)
        del state.in_flight[pending.activation_id]
        elapsed = state.now - pending.dispatch_time
        state.busy_time[vm.id] += elapsed

        if pending.outcome == "success":
            for f in ac.outputs:
                state.file_locations[f.name] = vm.id
            record = ActivationRecord(
                activation_id=ac.id,
                activity=ac.activity,
                vm_id=vm.id,
                ready_time=pending.ready_time,
                start_time=pending.dispatch_time,
                finish_time=state.now,
                stage_in_time=pending.stage_in,
                attempts=pending.attempt + 1,
                failed=False,
            )
            state.add_record(record)
            state.finish_success(ac)
            self._call_hook(
                scheduler, "on_activation_finished", self._ctx, record
            )
        elif pending.outcome == "retry":
            state.attempts[ac.id] = pending.attempt + 1
            # re-queued; keeps its ready_time
            state.make_ready(ac, was_running=True)
        else:  # terminal failure
            record = ActivationRecord(
                activation_id=ac.id,
                activity=ac.activity,
                vm_id=vm.id,
                ready_time=pending.ready_time,
                start_time=pending.dispatch_time,
                finish_time=state.now,
                stage_in_time=pending.stage_in,
                attempts=pending.attempt + 1,
                failed=True,
            )
            state.add_record(record)
            state.finish_failure(ac)
            self._call_hook(
                scheduler, "on_activation_finished", self._ctx, record
            )

        self._schedule_dispatch()

    # -- revocation ------------------------------------------------------

    def _revoke(self, vm_id: int) -> None:
        """Permanently reclaim a spot VM; requeue its in-flight work."""
        state = self._state
        vm = self.vm_by_id.get(vm_id)
        if vm is None:
            return  # model produced a revocation for a VM not in this fleet
        vm.available_at = float("inf")  # never idle again
        state.vm_touch()
        interrupted = [
            p for p in state.in_flight.values() if p.vm_id == vm_id
        ]
        for pending in interrupted:
            if pending.event is not None:
                pending.event.cancel()
            del state.in_flight[pending.activation_id]
            state.vm_release(vm, pending.activation_id)
            state.busy_time[vm.id] += state.now - pending.dispatch_time
            # back to READY for rescheduling on a surviving VM; the
            # original ready_time is kept so queue time reflects the loss
            state.make_ready(
                self.activation(pending.activation_id), was_running=True
            )
        self._schedule_dispatch()

    # -- migration -------------------------------------------------------

    def _begin_migration(self, window: MigrationWindow) -> None:
        state = self._state
        vm = self.vm_by_id.get(window.vm_id)
        if vm is None:
            return  # model generated a window for a VM not in this fleet
        vm.migrating = True
        state.vm_touch()
        # Delay every in-flight execution on this VM by the downtime.
        for pending in state.in_flight.values():
            if pending.vm_id != vm.id:
                continue
            if pending.event is not None:
                pending.event.cancel()
            pending.planned_finish += window.downtime
            pending.exec_duration += window.downtime
            pending.event = state.queue.schedule(
                pending.planned_finish, EventType.ACTIVATION_DONE, pending
            )
        state.queue.schedule(
            state.now + window.downtime, EventType.MIGRATION_END, vm.id
        )


class BatchEpisodeState:
    """Lockstep batch view: B episode lanes over one kernel.

    The kernel still owns exactly **one** :class:`EpisodeState` (the
    single-tenancy invariant) — lanes take turns advancing it, one
    whole episode per turn, round-robin.  This view holds the per-lane
    ``(B,)``-shaped summaries the lockstep engine
    (:mod:`repro.core.batch`) advances and reads: episode counts,
    decision steps, makespans, terminal simulated time, terminal
    ready/idle set sizes, and the size of the shared interned
    action-pair pool.  All cross-lane reads are vectorized numpy ops —
    per-lane Python loops over these batch axes inside ``repro.sim`` /
    ``repro.rl`` are flagged by reprolint rule RL014.
    """

    def __init__(self, kernel: "EpisodeKernel", batch: int) -> None:
        if batch < 1:
            raise ValidationError("batch must be >= 1")
        self.kernel = kernel
        self.batch = int(batch)
        #: episodes completed per lane
        self.episodes = np.zeros(batch, dtype=np.int64)
        #: decision steps of each lane's last episode
        self.steps = np.zeros(batch, dtype=np.int64)
        #: makespan of each lane's last episode
        self.makespan = np.zeros(batch, dtype=np.float64)
        #: terminal simulated time of each lane's last episode
        self.now = np.zeros(batch, dtype=np.float64)
        #: terminal ready-set size (>0 only for failed episodes)
        self.ready = np.zeros(batch, dtype=np.int64)
        #: idle-set size at the last idle rebuild of each lane's episode
        self.idle = np.zeros(batch, dtype=np.int64)
        #: interned (ready, idle) -> action-pair tuples in the shared
        #: kernel pool after each lane's turn (the pool is shared, so
        #: this is non-decreasing across one lockstep round)
        self.pairs = np.zeros(batch, dtype=np.int64)

    def reset(self) -> None:
        """Zero every per-lane summary in place: O(batch), no reallocs.

        Makes the view reusable across waves (the distributed pipeline
        runs one chunk of chained episodes per wave through a single
        persistent view) the same way PR 3's ``EpisodeState.reset``
        made the scalar state reusable across episodes — the arrays
        keep their identity, so holders of the view never go stale.
        """
        self.episodes.fill(0)
        self.steps.fill(0)
        self.makespan.fill(0.0)
        self.now.fill(0.0)
        self.ready.fill(0)
        self.idle.fill(0)
        self.pairs.fill(0)

    def snapshot(self, lane: int, makespan: float, steps: int) -> None:
        """Record lane ``lane``'s just-finished episode off the kernel.

        Called by the engine right after the lane's episode terminates,
        while the kernel's episode state still holds that lane's
        terminal configuration.
        """
        state = self.kernel.state
        self.episodes[lane] += 1
        self.steps[lane] = int(steps)
        self.makespan[lane] = float(makespan)
        self.now[lane] = state.now
        self.ready[lane] = len(state._ready_ids)
        self.idle[lane] = len(state._idle_cache)
        self.pairs[lane] = len(state._pairs_interned)

    def remaining(self, targets: np.ndarray) -> np.ndarray:
        """(B,) episodes still owed per lane, clipped at zero."""
        return np.maximum(targets - self.episodes, 0)

    def active(self, targets: np.ndarray) -> np.ndarray:
        """(B,) mask of lanes with episodes left to run."""
        result: np.ndarray = self.episodes < targets
        return result

    def summary(self) -> Dict[str, float]:
        """Vectorized aggregates for progress logs."""
        return {
            "episodes": float(self.episodes.sum()),
            "mean_makespan": float(self.makespan.mean()),
            "max_now": float(self.now.max()),
            "pairs_interned": float(self.pairs.max()),
        }


# -- kernel fingerprinting (worker-side kernel reuse) ---------------------


def _canon(obj: object, depth: int = 0) -> Optional[object]:
    """Conservative canonical form of an environment model's config.

    Recurses through primitives, tuples/lists, string-keyed dicts and
    plain-``__dict__`` objects; anything else (open handles, RNGs,
    callables, ...) yields ``None``, which makes the whole fingerprint
    ``None`` — i.e. "don't cache", never "cache wrongly".  Deliberately
    avoids ``repr``/``hash``/``id``: those can embed memory addresses,
    which would differ between the parent that declares a fingerprint
    and the worker that recomputes it.
    """
    if depth > 6:
        return None
    if obj is None or isinstance(obj, (bool, int, float, str)):
        return obj
    if isinstance(obj, (tuple, list)):
        items: List[object] = []
        for element in obj:
            canon = _canon(element, depth + 1)
            if canon is None and element is not None:
                return None
            items.append(canon)
        return items
    if isinstance(obj, dict):
        pairs: List[Tuple[str, object]] = []
        for key, value in obj.items():
            if not isinstance(key, (str, int, float, bool)):
                return None
            canon = _canon(value, depth + 1)
            if canon is None and value is not None:
                return None
            pairs.append((str(key), canon))
        pairs.sort(key=lambda kv: kv[0])
        return pairs
    fields = getattr(obj, "__dict__", None)
    if isinstance(fields, dict):
        canon = _canon(fields, depth + 1)
        if canon is None:
            return None
        return [type(obj).__module__ + "." + type(obj).__qualname__, canon]
    return None


def kernel_fingerprint(
    workflow: Workflow,
    vms: Sequence[Vm],
    *,
    network: Optional[NetworkModel] = None,
    fluctuation: Optional[FluctuationModel] = None,
    failures: Optional[FailureModel] = None,
    migrations: Optional[MigrationModel] = None,
    revocations: Optional[RevocationModel] = None,
    max_attempts: int = 1,
    horizon: float = 1e6,
) -> Optional[str]:
    """Structural digest of an :class:`EpisodeKernel` configuration.

    Two calls return the same string iff they would build equivalent
    kernels: same workflow topology/runtimes/files, same fleet
    (ids + VM types) and same environment-model configurations.  Returns
    ``None`` when any model cannot be canonicalized — the parallel
    runner then simply skips worker-side kernel caching for that task
    (see ``docs/runner.md``).
    """
    parts: List[object] = [
        workflow.name,
        [
            [
                ac.id,
                ac.activity,
                ac.runtime,
                [[f.name, f.size_bytes] for f in ac.inputs],
                [[f.name, f.size_bytes] for f in ac.outputs],
            ]
            for ac in workflow.activations
        ],
        [[i, list(workflow.children(i))] for i in workflow.activation_ids],
        [
            [
                vm.id,
                vm.type.name,
                vm.type.vcpus,
                vm.type.speed,
                vm.type.ram_gb,
                vm.type.price_per_hour,
                vm.type.bandwidth_mbps,
                vm.type.boot_time,
            ]
            for vm in vms
        ],
        int(max_attempts),
        float(horizon),
    ]
    for model in (network, fluctuation, failures, migrations, revocations):
        canon = _canon(model)
        if canon is None and model is not None:
            return None
        parts.append(canon)
    payload = json.dumps(parts, sort_keys=True, separators=(",", ":"))
    return "kernel:" + hashlib.sha256(payload.encode("utf-8")).hexdigest()
