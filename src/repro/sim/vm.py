"""Virtual machines and the Amazon EC2 t2 type catalog.

A :class:`VmType` describes hardware: vCPU count, per-core relative speed,
RAM, network bandwidth and hourly price.  A :class:`Vm` is one provisioned
instance; it runs up to ``vcpus`` activations concurrently (SCCore places
one MPI slave per vCPU, so vCPUs are the paper's unit of capacity — its
fleets are quoted as 16/32/64 vCPUs).

All t2 family members share the same physical core, so their *nominal*
per-core speed is identical (1.0).  What differentiates them dynamically
is the burst-credit budget: a t2.micro throttles hard under sustained
load while a t2.2xlarge effectively never does at workflow scale (see
:class:`~repro.sim.fluctuation.BurstThrottleFluctuation`).  That dynamic
is invisible to cost-model schedulers like HEFT — which therefore spreads
work uniformly over equal-speed cores, the paper's Table V observation —
but is learnable from experience, which is why ReASSIgN concentrates hot
activations on the 2xlarge VM.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence, Set

from repro.util.validate import ValidationError, check_non_negative, check_positive

__all__ = ["VmType", "Vm", "VM_TYPES", "t2_fleet", "fleet_vcpus"]


@dataclass(frozen=True)
class VmType:
    """Immutable description of an instance type."""

    name: str
    vcpus: int
    speed: float  #: per-core speed relative to the reference core (1.0)
    ram_gb: float
    price_per_hour: float  #: USD, us-east-1 on-demand (paper's locality)
    bandwidth_mbps: float = 800.0  #: network bandwidth in megabits/s
    boot_time: float = 0.0  #: seconds from provisioning to usable

    def __post_init__(self) -> None:
        if not self.name:
            raise ValidationError("VM type name must be non-empty")
        if self.vcpus < 1:
            raise ValidationError(f"vcpus must be >= 1, got {self.vcpus}")
        check_positive("speed", self.speed)
        check_positive("ram_gb", self.ram_gb)
        check_non_negative("price_per_hour", self.price_per_hour)
        check_positive("bandwidth_mbps", self.bandwidth_mbps)
        check_non_negative("boot_time", self.boot_time)

    @property
    def bandwidth_bytes_per_s(self) -> float:
        """Bandwidth in bytes/second."""
        return self.bandwidth_mbps * 1e6 / 8.0


#: EC2 t2 family (us-east-1 on-demand prices as of the paper's period).
#: The paper's experiments use only t2.micro and t2.2xlarge.
VM_TYPES: Dict[str, VmType] = {
    "t2.micro": VmType("t2.micro", vcpus=1, speed=1.0, ram_gb=1.0,
                       price_per_hour=0.0116, bandwidth_mbps=300.0),
    "t2.small": VmType("t2.small", vcpus=1, speed=1.0, ram_gb=2.0,
                       price_per_hour=0.023, bandwidth_mbps=400.0),
    "t2.medium": VmType("t2.medium", vcpus=2, speed=1.0, ram_gb=4.0,
                        price_per_hour=0.0464, bandwidth_mbps=500.0),
    "t2.large": VmType("t2.large", vcpus=2, speed=1.0, ram_gb=8.0,
                       price_per_hour=0.0928, bandwidth_mbps=600.0),
    "t2.xlarge": VmType("t2.xlarge", vcpus=4, speed=1.0, ram_gb=16.0,
                        price_per_hour=0.1856, bandwidth_mbps=750.0),
    "t2.2xlarge": VmType("t2.2xlarge", vcpus=8, speed=1.0, ram_gb=32.0,
                         price_per_hour=0.3712, bandwidth_mbps=1000.0),
}


class Vm:
    """One provisioned VM with ``vcpus`` execution slots.

    Mirrors the paper's VM state set ``{idle, busy}``: a VM is *idle* when
    at least one slot is free (it can accept a schedule action) and *busy*
    when all slots are occupied.
    """

    def __init__(self, vm_id: int, vm_type: VmType) -> None:
        if vm_id < 0:
            raise ValidationError(f"vm id must be >= 0, got {vm_id}")
        self.id = vm_id
        self.type = vm_type
        self.running: Set[int] = set()  #: activation ids currently executing
        self.available_at: float = 0.0  #: booted / post-migration time
        self.migrating: bool = False

    @property
    def capacity(self) -> int:
        """Concurrent activation slots."""
        return self.type.vcpus

    @property
    def free_slots(self) -> int:
        return self.capacity - len(self.running)

    def is_idle(self, now: float) -> bool:
        """True when the VM can accept a new activation at ``now``."""
        return (
            not self.migrating
            and now >= self.available_at
            and self.free_slots > 0
        )

    @property
    def state(self) -> str:
        """The paper's 2-valued VM state (ignoring boot/migration windows)."""
        return "busy" if self.free_slots == 0 else "idle"

    def start(self, activation_id: int) -> None:
        """Occupy a slot for the activation."""
        if self.free_slots <= 0:
            raise ValidationError(f"vm {self.id} has no free slot")
        if activation_id in self.running:
            raise ValidationError(
                f"activation {activation_id} already running on vm {self.id}"
            )
        self.running.add(activation_id)

    def finish(self, activation_id: int) -> None:
        """Release the activation's slot."""
        try:
            self.running.remove(activation_id)
        except KeyError:
            raise ValidationError(
                f"activation {activation_id} not running on vm {self.id}"
            ) from None

    def execution_time(self, reference_runtime: float) -> float:
        """Nominal execution time of a reference runtime on this VM."""
        return reference_runtime / self.type.speed

    def reset(self) -> None:
        """Clear runtime state (new episode)."""
        self.running.clear()
        self.available_at = 0.0
        self.migrating = False

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Vm(id={self.id}, type={self.type.name}, running={len(self.running)}/{self.capacity})"


def t2_fleet(n_micro: int, n_2xlarge: int) -> List[Vm]:
    """Build the paper's fleet shape: micros first, then 2xlarges.

    Table I / Table V number VMs 0..8 with the 2xlarge instances at the
    high ids (VM 8 is the single 2xlarge of the 16-vCPU fleet), so micros
    get the low ids.
    """
    if n_micro < 0 or n_2xlarge < 0:
        raise ValidationError("fleet sizes must be non-negative")
    if n_micro + n_2xlarge == 0:
        raise ValidationError("fleet must contain at least one VM")
    vms = [Vm(i, VM_TYPES["t2.micro"]) for i in range(n_micro)]
    vms += [Vm(n_micro + j, VM_TYPES["t2.2xlarge"]) for j in range(n_2xlarge)]
    return vms


def fleet_vcpus(vms: Sequence[Vm]) -> int:
    """Total vCPUs across a fleet (the paper's fleet size metric)."""
    return sum(vm.capacity for vm in vms)


def as_single_slot(vms: Sequence[Vm]) -> List[Vm]:
    """Single-slot (1 concurrent activation) views of a fleet, same ids.

    WorkflowSim — and the paper's MDP, whose VM state is the *binary*
    {idle, busy} — treats each VM as one processor regardless of vCPUs.
    ReASSIgN therefore learns on this view; the full vCPU capacity is
    exploited again at execution time (SCCore runs one slave per vCPU).
    """
    out: List[Vm] = []
    for vm in vms:
        t = vm.type
        single = VmType(
            name=t.name,
            vcpus=1,
            speed=t.speed,
            ram_gb=t.ram_gb,
            price_per_hour=t.price_per_hour,
            bandwidth_mbps=t.bandwidth_mbps,
            boot_time=t.boot_time,
        )
        out.append(Vm(vm.id, single))
    return out
