"""Datacenter: VM provisioning, lifetimes and billing.

A thin IaaS layer above :mod:`repro.sim.vm`: the SciCumulus-RL starter
(SCStarter) asks a :class:`Datacenter` to provision the fleet a scheduling
plan requires, and the datacenter accounts for boot delays and accumulates
the bill.  It deliberately stays simple — the paper's environment is a
fixed fleet per run — but it centralizes pricing so Table IV-style cost
reporting is consistent everywhere.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.sim.vm import VM_TYPES, Vm, VmType
from repro.util.validate import ValidationError, check_non_negative

__all__ = ["ProvisionedVm", "Datacenter"]


@dataclass
class ProvisionedVm:
    """A VM plus its lease window inside a datacenter."""

    vm: Vm
    provisioned_at: float
    released_at: Optional[float] = None

    @property
    def active(self) -> bool:
        return self.released_at is None

    def lease_seconds(self, now: float) -> float:
        """Seconds between provisioning and release (or ``now``)."""
        end = self.released_at if self.released_at is not None else now
        return max(0.0, end - self.provisioned_at)


class Datacenter:
    """Provision/release VMs and compute the bill.

    Parameters
    ----------
    name:
        Region label (cosmetic; the paper uses us-east-1 / N. Virginia).
    default_boot_time:
        Boot delay applied to provisioned VMs whose type declares none.
    """

    def __init__(self, name: str = "us-east-1", default_boot_time: float = 0.0) -> None:
        self.name = name
        self.default_boot_time = check_non_negative(
            "default_boot_time", default_boot_time
        )
        self._leases: Dict[int, ProvisionedVm] = {}
        self._next_id = 0

    # -- provisioning ------------------------------------------------------

    def provision(self, type_name: str, at: float = 0.0) -> Vm:
        """Provision one VM of ``type_name`` at time ``at``."""
        vm_type = VM_TYPES.get(type_name)
        if vm_type is None:
            raise ValidationError(
                f"unknown VM type {type_name!r}; known: {sorted(VM_TYPES)}"
            )
        if vm_type.boot_time == 0.0 and self.default_boot_time > 0.0:
            vm_type = VmType(
                name=vm_type.name,
                vcpus=vm_type.vcpus,
                speed=vm_type.speed,
                ram_gb=vm_type.ram_gb,
                price_per_hour=vm_type.price_per_hour,
                bandwidth_mbps=vm_type.bandwidth_mbps,
                boot_time=self.default_boot_time,
            )
        vm = Vm(self._next_id, vm_type)
        self._next_id += 1
        self._leases[vm.id] = ProvisionedVm(vm=vm, provisioned_at=float(at))
        return vm

    def provision_fleet(self, type_counts: Dict[str, int], at: float = 0.0) -> List[Vm]:
        """Provision several VMs; micros (small types) first for stable ids."""
        fleet: List[Vm] = []
        for type_name in sorted(type_counts, key=lambda t: VM_TYPES[t].vcpus):
            count = type_counts[type_name]
            if count < 0:
                raise ValidationError(f"negative count for {type_name!r}")
            for _ in range(count):
                fleet.append(self.provision(type_name, at))
        if not fleet:
            raise ValidationError("fleet must contain at least one VM")
        return fleet

    def release(self, vm_id: int, at: float) -> None:
        """Terminate a lease."""
        lease = self._leases.get(vm_id)
        if lease is None:
            raise ValidationError(f"unknown VM {vm_id}")
        if not lease.active:
            raise ValidationError(f"VM {vm_id} already released")
        if at < lease.provisioned_at:
            raise ValidationError("release before provisioning")
        lease.released_at = float(at)

    def release_all(self, at: float) -> None:
        """Terminate every active lease."""
        for lease in self._leases.values():
            if lease.active:
                self.release(lease.vm.id, at)

    # -- accounting -------------------------------------------------------

    @property
    def leases(self) -> List[ProvisionedVm]:
        return [self._leases[k] for k in sorted(self._leases)]

    def active_vms(self) -> List[Vm]:
        return [l.vm for l in self.leases if l.active]

    def bill(self, now: float, per_second_billing: bool = False) -> float:
        """Total cost of all leases up to ``now`` (USD).

        Default is per-started-hour (the paper-era AWS model); the
        alternative is per-second with a 60 s minimum.
        """
        total = 0.0
        for lease in self.leases:
            seconds = lease.lease_seconds(now)
            rate = lease.vm.type.price_per_hour
            if per_second_billing:
                total += rate * max(seconds, 60.0) / 3600.0
            else:
                total += rate * max(1, math.ceil(seconds / 3600.0))
        return total
