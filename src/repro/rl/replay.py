"""Replay-apply kernels: re-run traced decisions against the true Q-table.

The distributed learner (`repro.core.distributed`) consumes rollout
actors' decision traces in strict episode order and must advance the
*true* Q-table exactly as the fused serial loop
(``repro.core.batch._drive_episode``) would have.  :class:`ReplayKernel`
packages that loop's three RL table operations — ε-greedy selection,
next-state max, and the Eq.-3 write — as standalone kernels that mirror
the fused loop **op for op**: the same exploit coin, the same
action-slice identity memo, the same full-row ``_ensure_known``
shortcut, the same scalar-vs-numpy reduction split with the same
``1e-15`` tie band, the same first-touch lazy-init draw, and the same
``float()`` coercion points.  They are the per-step form of the
gather/scatter arithmetic behind ``QLearningAgent.update_batch``
(PR 8): one gather of ``Q(s, a)`` and the next-state slice, one fused
``r + γ·max − Q`` delta, one scatter of the new value.

A validated replay step is therefore bit-identical to live execution;
any divergence between a traced action and the kernel's choice proves
the actor's snapshot was stale at that step, which is the trigger for
the learner's in-place episode re-simulation.

**Lifetime contract.**  A kernel caches identity-keyed structures from
its table (the action-slice memo entry, the shard-store reference, the
interned state id).  ``QTable.restore()`` invalidates all of them, so
construct a fresh ``ReplayKernel`` after any restore and never reuse
one across a rollback.  Construction is a few dict lookups — per-episode
construction is free compared to one replayed step.
"""

from __future__ import annotations

from typing import (
    TYPE_CHECKING,
    Any,
    Callable,
    List,
    Optional,
    Sequence,
    Tuple,
)

import numpy as np

from repro.rl.environment import AVAILABLE
from repro.rl.qtable import _SCALAR_REDUCTION_LIMIT, QTable
from repro.util.validate import ValidationError

if TYPE_CHECKING:
    from repro.sim.trace import EpisodeTrace

__all__ = ["ReplayKernel"]

Action = Tuple[int, int]

#: Per-pool-entry resolution for the columnar fast path:
#: ``[id_list, ids_array|None]`` — the numpy gather array is built
#: lazily, only for entries wide enough to leave the scalar reduction.
_TraceEntries = List[List[Any]]


class ReplayKernel:
    """Bit-exact mirror of the fused decision loop's Q-table operations.

    Operates on the single-bucket ``AVAILABLE`` state (the fused fast
    path's eligibility domain: plain Q-learning, one state bucket,
    dense ``array``/``shard`` backend).  The RNG callables are passed
    per call so the kernel itself holds no stream state — the caller
    owns the ``reassign-policy`` stream exactly as ``_FastLane`` does.
    """

    __slots__ = ("table", "store", "exploit_p", "alpha", "sid", "_sm_entry")

    def __init__(self, table: QTable, exploit_p: float, alpha: float) -> None:
        if table.backend == "dict":
            raise ValidationError(
                "ReplayKernel requires a dense (array/shard) Q-table"
            )
        self.table = table
        self.store = table._store if table.backend == "shard" else None
        self.exploit_p = float(exploit_p)
        self.alpha = float(alpha)
        self.sid = table._state_id(AVAILABLE)
        # every kernel write lands in this row: mark its era once so
        # delta snapshots (QTable.snapshot(since=...)) stay a superset
        table.mark_row_dirty(self.sid)
        # one-entry identity cache over the action-slice memo, primed
        # with the empty tuple exactly as the fused loop primes it
        # (draws nothing, interns nothing)
        self._sm_entry = table._action_slice(())

    def choose(
        self,
        pairs: Tuple[Action, ...],
        rng_random: Callable[[], float],
        rng_integers: Callable[[int], np.integer],
    ) -> Tuple[Action, Optional[int]]:
        """One ε-greedy selection; returns ``(action, sel_aid)``.

        ``sel_aid`` is ``None`` on exploration (the fused loop interns
        the chosen action's id lazily at update time in that case, and
        the draw order depends on it — so the replay must too).
        """
        table = self.table
        store = self.store
        sid = self.sid
        if rng_random() < self.exploit_p:
            entry = self._sm_entry
            if entry[0] is not pairs:
                entry = table._action_slice(pairs)
                self._sm_entry = entry
            aids, id_list, ensured = entry[1], entry[2], entry[3]
            if sid not in ensured:
                # full-row shortcut: with the single bucket row fully
                # initialized, _ensure_known has nothing left to draw
                if (
                    table._n_known != len(table._actions)
                    or len(table._states) != 1
                ):
                    table._ensure_known(sid, aids)
                ensured.add(sid)
            row = store.q_row(sid) if store is not None else table._q[sid]
            if len(id_list) < _SCALAR_REDUCTION_LIMIT:
                values_list = [row[a] for a in id_list]
                cut = max(values_list) - 1e-15
                tie_list = [
                    i for i, v in enumerate(values_list) if v >= cut
                ]
                if len(tie_list) == 1:
                    i = tie_list[0]
                else:
                    i = tie_list[int(rng_integers(len(tie_list)))]
            else:
                values = row.take(aids)
                i = int(values.argmax())
                band = values >= values[i] - 1e-15
                cnt = int(band.sum())
                if cnt > 1:
                    ties = np.flatnonzero(band)
                    i = int(ties[int(rng_integers(cnt))])
            return pairs[i], id_list[i]
        return pairs[int(rng_integers(len(pairs)))], None

    def future(self, next_pairs: Tuple[Action, ...]) -> float:
        """Next-state max over the post-dispatch action space (gather)."""
        if not next_pairs:
            return 0.0
        table = self.table
        store = self.store
        sid = self.sid
        entry = self._sm_entry
        if entry[0] is not next_pairs:
            entry = table._action_slice(next_pairs)
            self._sm_entry = entry
        aids, id_list, ensured = entry[1], entry[2], entry[3]
        if sid not in ensured:
            if (
                table._n_known != len(table._actions)
                or len(table._states) != 1
            ):
                table._ensure_known(sid, aids)
            ensured.add(sid)
        row = store.q_row(sid) if store is not None else table._q[sid]
        if len(id_list) < _SCALAR_REDUCTION_LIMIT:
            best = row[id_list[0]]
            for a in id_list[1:]:
                v = row[a]
                if v > best:
                    best = v
            return float(best)
        return float(row.take(aids).max())

    def apply(
        self,
        action: Action,
        sel_aid: Optional[int],
        r_t: float,
        gamma_t: float,
        future: float,
    ) -> float:
        """The Eq.-3 write (gather → fused delta → scatter); returns Q'."""
        table = self.table
        store = self.store
        sid = self.sid
        if sel_aid is None:
            sel_aid = table._action_id(action)
        if store is not None:
            known_row = store.known_row(sid)
            qrow = store.q_row(sid)
        else:
            known_row = table._known[sid]
            qrow = table._q[sid]
        if known_row[sel_aid]:
            q_sa = float(qrow[sel_aid])
        else:
            q_sa = float(table._rng.uniform(0.0, table._init_scale))
            qrow[sel_aid] = q_sa
            known_row[sel_aid] = True
            table._n_known += 1
        delta = r_t + gamma_t * future - q_sa
        q_new = q_sa + float(self.alpha * delta)
        qrow[sel_aid] = q_new
        return q_new

    def begin_trace(self, trace: "EpisodeTrace") -> Optional[_TraceEntries]:
        """Resolve a trace's action-pair pool for :meth:`validate_trace`.

        One pass over the (small) pool of distinct pairs tuples replaces
        the per-step ``_action_slice`` / ``_ensure_known`` machinery: it
        maps every pool entry to its interned column ids up front, so the
        per-step work of the columnar pass is a pure gather/argmax over
        those ids.

        Returns ``None`` — caller must use the step-wise kernels — when
        the batched pass cannot be bit-exact:

        - the single ``AVAILABLE`` row is not fully initialized (cold
          cells draw their init value lazily *in access order*, which a
          pooled resolution cannot reproduce), or
        - the trace references an action the table has never interned
          (first-touch registration order is observable through the
          serialized table).
        """
        table = self.table
        if (
            len(table._states) != 1
            or table._n_known != len(table._actions)
        ):
            return None
        aget = table._action_ids.get
        entries: _TraceEntries = []
        for pairs in trace.pool:
            id_list: List[int] = []
            for a in pairs:
                aid = aget(a)
                if aid is None:
                    return None
                id_list.append(aid)
            entries.append([id_list, None])
        return entries

    def validate_trace(
        self,
        trace: "EpisodeTrace",
        entries: _TraceEntries,
        rewards: Sequence[float],
        gammas: Sequence[float],
        rng_random: Callable[[], float],
        rng_integers: Callable[[int], np.integer],
    ) -> Tuple[bool, int]:
        """Validate-and-apply a whole trace against the columnar arrays.

        The fused per-step loop's table operations, hoisted: the Q-row is
        gathered into a Python-float mirror **once**, every pool entry's
        column ids come precomputed from :meth:`begin_trace`, and each
        step reduces over those ids directly — same ε-coin, same tie
        band and tie enumeration order, same draw sequence, same Eq.-3
        float ops as :meth:`choose`/:meth:`future`/:meth:`apply`, so the
        table and the policy stream end bit-identical to a step-wise
        replay.  ``rewards``/``gammas`` are the precomputed per-step
        §III-B rewards and discount factors (reward math never draws and
        divergence rolls the learner back wholesale, so computing them
        ahead of the scan is unobservable).

        Returns ``(ok, divergence_step)`` exactly like the step-wise
        path: on the first step whose true selection differs from the
        traced action the scan stops and the caller restores its
        checkpoint and re-simulates.
        """
        table = self.table
        store = self.store
        sid = self.sid
        exploit_p = self.exploit_p
        alpha = self.alpha
        qrow = store.q_row(sid) if store is not None else table._q[sid]
        row_list: List[float] = qrow.tolist()
        row_get = row_list.__getitem__
        pool = trace.pool
        pairs_idx = trace.pairs_idx
        next_idx = trace.next_idx
        act_pos = trace.act_pos
        act_a = trace.act_a
        act_v = trace.act_v
        n = int(pairs_idx.shape[0])
        for i in range(n):  # reprolint: disable=RL015  (draws are sequential)
            pi = int(pairs_idx[i])
            ent = entries[pi]
            id_list = ent[0]
            if rng_random() < exploit_p:
                if len(id_list) < _SCALAR_REDUCTION_LIMIT:
                    values_list = list(map(row_get, id_list))
                    cut = max(values_list) - 1e-15
                    tie_list = [
                        j for j, v in enumerate(values_list) if v >= cut
                    ]
                    if len(tie_list) == 1:
                        j = tie_list[0]
                    else:
                        j = tie_list[int(rng_integers(len(tie_list)))]
                else:
                    ids = ent[1]
                    if ids is None:
                        ids = ent[1] = np.array(id_list, dtype=np.intp)
                    values = qrow.take(ids)
                    j = int(values.argmax())
                    band = values >= values[j] - 1e-15
                    cnt = int(band.sum())
                    if cnt > 1:
                        ties = np.flatnonzero(band)
                        j = int(ties[int(rng_integers(cnt))])
            else:
                j = int(rng_integers(len(id_list)))
            pos = int(act_pos[i])
            if pos >= 0:
                if j != pos:  # pairs are distinct: position ⇔ action
                    return False, i
            elif pool[pi][j] != (int(act_a[i]), int(act_v[i])):
                return False, i
            ni = int(next_idx[i])
            nid_list = entries[ni][0]
            if not nid_list:
                future = 0.0
            elif len(nid_list) < _SCALAR_REDUCTION_LIMIT:
                # max over the same floats in the same compare order as
                # the explicit scan in future() — identical result
                future = max(map(row_get, nid_list))
            else:
                nids = entries[ni][1]
                if nids is None:
                    nids = entries[ni][1] = np.array(
                        nid_list, dtype=np.intp
                    )
                future = float(qrow.take(nids).max())
            # full row ⇒ every cell known ⇒ no lazy-init draw in apply
            sel_aid = id_list[j]
            q_sa = row_get(sel_aid)
            delta = rewards[i] + gammas[i] * future - q_sa
            q_new = q_sa + alpha * delta
            qrow[sel_aid] = q_new
            row_list[sel_aid] = q_new
        return True, n
