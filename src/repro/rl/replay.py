"""Replay-apply kernels: re-run traced decisions against the true Q-table.

The distributed learner (`repro.core.distributed`) consumes rollout
actors' decision traces in strict episode order and must advance the
*true* Q-table exactly as the fused serial loop
(``repro.core.batch._drive_episode``) would have.  :class:`ReplayKernel`
packages that loop's three RL table operations — ε-greedy selection,
next-state max, and the Eq.-3 write — as standalone kernels that mirror
the fused loop **op for op**: the same exploit coin, the same
action-slice identity memo, the same full-row ``_ensure_known``
shortcut, the same scalar-vs-numpy reduction split with the same
``1e-15`` tie band, the same first-touch lazy-init draw, and the same
``float()`` coercion points.  They are the per-step form of the
gather/scatter arithmetic behind ``QLearningAgent.update_batch``
(PR 8): one gather of ``Q(s, a)`` and the next-state slice, one fused
``r + γ·max − Q`` delta, one scatter of the new value.

A validated replay step is therefore bit-identical to live execution;
any divergence between a traced action and the kernel's choice proves
the actor's snapshot was stale at that step, which is the trigger for
the learner's in-place episode re-simulation.

**Lifetime contract.**  A kernel caches identity-keyed structures from
its table (the action-slice memo entry, the shard-store reference, the
interned state id).  ``QTable.restore()`` invalidates all of them, so
construct a fresh ``ReplayKernel`` after any restore and never reuse
one across a rollback.  Construction is a few dict lookups — per-episode
construction is free compared to one replayed step.
"""

from __future__ import annotations

from typing import Callable, Optional, Tuple

import numpy as np

from repro.rl.environment import AVAILABLE
from repro.rl.qtable import _SCALAR_REDUCTION_LIMIT, QTable
from repro.util.validate import ValidationError

__all__ = ["ReplayKernel"]

Action = Tuple[int, int]


class ReplayKernel:
    """Bit-exact mirror of the fused decision loop's Q-table operations.

    Operates on the single-bucket ``AVAILABLE`` state (the fused fast
    path's eligibility domain: plain Q-learning, one state bucket,
    dense ``array``/``shard`` backend).  The RNG callables are passed
    per call so the kernel itself holds no stream state — the caller
    owns the ``reassign-policy`` stream exactly as ``_FastLane`` does.
    """

    __slots__ = ("table", "store", "exploit_p", "alpha", "sid", "_sm_entry")

    def __init__(self, table: QTable, exploit_p: float, alpha: float) -> None:
        if table.backend == "dict":
            raise ValidationError(
                "ReplayKernel requires a dense (array/shard) Q-table"
            )
        self.table = table
        self.store = table._store if table.backend == "shard" else None
        self.exploit_p = float(exploit_p)
        self.alpha = float(alpha)
        self.sid = table._state_id(AVAILABLE)
        # one-entry identity cache over the action-slice memo, primed
        # with the empty tuple exactly as the fused loop primes it
        # (draws nothing, interns nothing)
        self._sm_entry = table._action_slice(())

    def choose(
        self,
        pairs: Tuple[Action, ...],
        rng_random: Callable[[], float],
        rng_integers: Callable[[int], np.integer],
    ) -> Tuple[Action, Optional[int]]:
        """One ε-greedy selection; returns ``(action, sel_aid)``.

        ``sel_aid`` is ``None`` on exploration (the fused loop interns
        the chosen action's id lazily at update time in that case, and
        the draw order depends on it — so the replay must too).
        """
        table = self.table
        store = self.store
        sid = self.sid
        if rng_random() < self.exploit_p:
            entry = self._sm_entry
            if entry[0] is not pairs:
                entry = table._action_slice(pairs)
                self._sm_entry = entry
            aids, id_list, ensured = entry[1], entry[2], entry[3]
            if sid not in ensured:
                # full-row shortcut: with the single bucket row fully
                # initialized, _ensure_known has nothing left to draw
                if (
                    table._n_known != len(table._actions)
                    or len(table._states) != 1
                ):
                    table._ensure_known(sid, aids)
                ensured.add(sid)
            row = store.q_row(sid) if store is not None else table._q[sid]
            if len(id_list) < _SCALAR_REDUCTION_LIMIT:
                values_list = [row[a] for a in id_list]
                cut = max(values_list) - 1e-15
                tie_list = [
                    i for i, v in enumerate(values_list) if v >= cut
                ]
                if len(tie_list) == 1:
                    i = tie_list[0]
                else:
                    i = tie_list[int(rng_integers(len(tie_list)))]
            else:
                values = row.take(aids)
                i = int(values.argmax())
                band = values >= values[i] - 1e-15
                cnt = int(band.sum())
                if cnt > 1:
                    ties = np.flatnonzero(band)
                    i = int(ties[int(rng_integers(cnt))])
            return pairs[i], id_list[i]
        return pairs[int(rng_integers(len(pairs)))], None

    def future(self, next_pairs: Tuple[Action, ...]) -> float:
        """Next-state max over the post-dispatch action space (gather)."""
        if not next_pairs:
            return 0.0
        table = self.table
        store = self.store
        sid = self.sid
        entry = self._sm_entry
        if entry[0] is not next_pairs:
            entry = table._action_slice(next_pairs)
            self._sm_entry = entry
        aids, id_list, ensured = entry[1], entry[2], entry[3]
        if sid not in ensured:
            if (
                table._n_known != len(table._actions)
                or len(table._states) != 1
            ):
                table._ensure_known(sid, aids)
            ensured.add(sid)
        row = store.q_row(sid) if store is not None else table._q[sid]
        if len(id_list) < _SCALAR_REDUCTION_LIMIT:
            best = row[id_list[0]]
            for a in id_list[1:]:
                v = row[a]
                if v > best:
                    best = v
            return float(best)
        return float(row.take(aids).max())

    def apply(
        self,
        action: Action,
        sel_aid: Optional[int],
        r_t: float,
        gamma_t: float,
        future: float,
    ) -> float:
        """The Eq.-3 write (gather → fused delta → scatter); returns Q'."""
        table = self.table
        store = self.store
        sid = self.sid
        if sel_aid is None:
            sel_aid = table._action_id(action)
        if store is not None:
            known_row = store.known_row(sid)
            qrow = store.q_row(sid)
        else:
            known_row = table._known[sid]
            qrow = table._q[sid]
        if known_row[sel_aid]:
            q_sa = float(qrow[sel_aid])
        else:
            q_sa = float(table._rng.uniform(0.0, table._init_scale))
            qrow[sel_aid] = q_sa
            known_row[sel_aid] = True
            table._n_known += 1
        delta = r_t + gamma_t * future - q_sa
        q_new = q_sa + float(self.alpha * delta)
        qrow[sel_aid] = q_new
        return q_new
