"""Watkins Q(λ) — Q-learning with eligibility traces (extension).

Plain one-step Q-learning propagates reward one transition per episode;
with Montage's 50-step episodes and 100-episode budgets the tail of the
credit-assignment chain barely moves.  Watkins Q(λ) keeps an
*eligibility trace* e(s, a) that decays by γλ per step and is **cut to
zero whenever an exploratory (non-greedy) action is taken**, so every
update sweeps credit along the greedy prefix of the trajectory.

Included as a future-work extension ("we believe ReASSIgN will provide
better scheduling plans as more episodes are considered" — traces are
the standard way to get more out of each episode).
"""

from __future__ import annotations

from typing import Dict, Hashable, List, Optional, Tuple

from repro.rl.environment import DiscreteEnv
from repro.rl.policy import ActionPolicy
from repro.rl.qlearning import EpisodeStats, QLearningAgent
from repro.util.validate import ValidationError, check_probability

__all__ = ["QLambdaAgent"]


class QLambdaAgent(QLearningAgent):
    """Tabular Watkins Q(λ).

    Parameters
    ----------
    lam:
        Trace-decay parameter λ in [0, 1].  λ = 0 recovers one-step
        Q-learning; λ = 1 approaches Monte-Carlo returns along greedy
        segments.
    trace_floor:
        Traces below this magnitude are dropped (keeps the trace dict
        sparse).
    """

    def __init__(
        self,
        alpha: float = 0.5,
        gamma: float = 0.9,
        lam: float = 0.8,
        policy: Optional[ActionPolicy] = None,
        seed: int = 0,
        discount_power: bool = False,
        max_steps: int = 100_000,
        trace_floor: float = 1e-4,
    ) -> None:
        super().__init__(
            alpha=alpha,
            gamma=gamma,
            policy=policy,
            seed=seed,
            discount_power=discount_power,
            max_steps=max_steps,
        )
        self.lam = check_probability("lam", lam)
        if trace_floor <= 0:
            raise ValidationError("trace_floor must be > 0")
        self.trace_floor = float(trace_floor)

    def run_episode(self, env: DiscreteEnv) -> EpisodeStats:
        state = env.reset()
        stats = EpisodeStats(episode=len(self.history), steps=0, total_reward=0.0)
        traces: Dict[Tuple[Hashable, Hashable], float] = {}

        for t in range(1, self.max_steps + 1):
            actions = env.actions(state)
            if not actions:
                break  # terminal
            action = self.policy.choose(self.qtable, state, actions, self._rng)
            greedy = self.qtable.best_action(state, actions)
            was_greedy = (
                self.qtable.value(state, action)
                >= self.qtable.value(state, greedy) - 1e-12
            )

            next_state, reward, done = env.step(action)
            next_actions = [] if done else env.actions(next_state)
            future = self.qtable.max_value(next_state, next_actions)
            gamma_t = self.effective_gamma(t)
            delta = reward + gamma_t * future - self.qtable.value(state, action)

            # accumulate trace for the visited pair, then sweep the update
            key = (state, action)
            traces[key] = traces.get(key, 0.0) + 1.0
            dead: List[Tuple[Hashable, Hashable]] = []
            for (s, a), trace in traces.items():
                self.qtable.add(s, a, self.alpha * delta * trace)
                new_trace = trace * gamma_t * self.lam
                if new_trace < self.trace_floor:
                    dead.append((s, a))
                else:
                    traces[(s, a)] = new_trace
            for k in dead:
                del traces[k]
            if not was_greedy:
                # Watkins cut: exploratory action invalidates the greedy
                # backup chain
                traces.clear()

            stats.steps += 1
            stats.total_reward += reward
            stats.rewards.append(reward)
            state = next_state
            if done:
                break
        else:
            raise ValidationError(
                f"episode exceeded max_steps={self.max_steps}; "
                "the environment may not terminate"
            )
        self.policy.episode_finished()
        self.history.append(stats)
        return stats
