"""Q-learning (the paper's Algorithm 1) over :class:`DiscreteEnv`.

The update follows Eq. 3::

    Q(s, a) += alpha * (r + gamma_t * max_a' Q(s', a') - Q(s, a))

with one faithful quirk: the paper writes the discount as ``gamma^t``
(raised to the within-episode step index), not the constant ``gamma`` of
textbook Q-learning.  ``discount_power=True`` (default) reproduces that —
and explains the paper's observation that γ = 1.0 rows dominate its
Tables III/IV: with γ < 1 the future term vanishes within a few steps.
Set ``discount_power=False`` for the textbook rule.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Hashable, List, Optional, Sequence, Tuple

import numpy as np

from repro.rl.environment import DiscreteEnv
from repro.rl.policy import ActionPolicy, EpsilonGreedyPolicy
from repro.rl.qtable import QTable
from repro.util.rng import RngService
from repro.util.validate import ValidationError, check_probability

__all__ = ["EpisodeStats", "QLearningAgent"]


@dataclass
class EpisodeStats:
    """Per-episode learning diagnostics."""

    episode: int
    steps: int
    total_reward: float
    rewards: List[float] = field(default_factory=list)

    @property
    def mean_reward(self) -> float:
        return self.total_reward / self.steps if self.steps else 0.0


class QLearningAgent:
    """Tabular Q-learning agent (off-policy TD control).

    Parameters
    ----------
    alpha:
        Learning rate in (0, 1].
    gamma:
        Discount factor in [0, 1].
    policy:
        Action-selection policy; defaults to the paper's ε-greedy with
        ε = 0.1 (10% exploitation).
    discount_power:
        Use the paper's ``gamma^t`` per-step discount (default) instead of
        a constant ``gamma``.
    max_steps:
        Per-episode step cap (guards against non-terminating MDPs).
    """

    def __init__(
        self,
        alpha: float = 0.5,
        gamma: float = 1.0,
        policy: Optional[ActionPolicy] = None,
        qtable: Optional[QTable] = None,
        seed: int = 0,
        discount_power: bool = True,
        max_steps: int = 100_000,
    ) -> None:
        self.alpha = check_probability("alpha", alpha)
        if self.alpha == 0:
            raise ValidationError("alpha must be > 0")
        self.gamma = check_probability("gamma", gamma)
        self.policy = policy if policy is not None else EpsilonGreedyPolicy(0.1)
        self.qtable = qtable if qtable is not None else QTable(seed=seed)
        self.discount_power = bool(discount_power)
        self.max_steps = int(max_steps)
        self._rng = RngService(seed).stream("qlearning-agent")
        self.history: List[EpisodeStats] = []

    # -- learning rule -------------------------------------------------------

    def effective_gamma(self, t: int) -> float:
        """The discount applied at within-episode step ``t`` (1-based)."""
        return self.gamma ** t if self.discount_power else self.gamma

    def update(
        self,
        state: Hashable,
        action: Hashable,
        reward: float,
        next_state: Hashable,
        next_actions: List[Hashable],
        t: int,
    ) -> float:
        """One Eq.-3 update; returns the TD error δ."""
        future = self.qtable.max_value(next_state, next_actions)
        delta = (
            reward
            + self.effective_gamma(t) * future
            - self.qtable.value(state, action)
        )
        self.qtable.add(state, action, self.alpha * delta)
        return delta

    def update_batch(
        self,
        transitions: Sequence[
            Tuple[Hashable, Hashable, float, Hashable, List[Hashable], int]
        ],
    ) -> np.ndarray:
        """Eq.-3 updates for a lockstep transition batch; returns the δs.

        Bit-identical to calling :meth:`update` once per transition in
        order — that sequential contract is what keeps the per-episode
        RNG streams (lazy Q-init draws happen in first-touch order)
        reproducible.  When no transition's write target ``(s, a)`` is
        read back by a later transition in the same batch, the TD
        deltas are combined in one fused numpy expression and the
        writes deferred to a single scatter pass; otherwise the exact
        sequential loop runs.  Either way each future-value gather is
        one numpy call over the interned dense row
        (:meth:`QTable.max_value`).
        """
        n = len(transitions)
        if n == 0:
            return np.zeros(0, dtype=np.float64)
        # a later transition reads (next_state, next_action) pairs and
        # its own (s, a); any overlap with an earlier write forces the
        # sequential path
        fusable = type(self) is QLearningAgent
        if fusable:
            written: set = set()
            for state, action, _r, next_state, next_actions, _t in (
                transitions
            ):
                if (state, action) in written or any(
                    (next_state, a) in written for a in next_actions
                ):
                    fusable = False
                    break
                written.add((state, action))
        if not fusable:
            return np.array(
                [self.update(*tr) for tr in transitions], dtype=np.float64
            )
        futures = np.empty(n, dtype=np.float64)
        q_sa = np.empty(n, dtype=np.float64)
        gammas = np.empty(n, dtype=np.float64)
        rewards = np.empty(n, dtype=np.float64)
        for i, (state, action, reward, next_state, next_actions, t) in (
            enumerate(transitions)
        ):
            # same per-transition read order as update(): future first,
            # then Q(s, a) — both may lazy-init, in the same sequence
            futures[i] = self.qtable.max_value(next_state, next_actions)
            q_sa[i] = self.qtable.value(state, action)
            gammas[i] = self.effective_gamma(t)
            rewards[i] = reward
        deltas: np.ndarray = rewards + gammas * futures - q_sa
        new_values = q_sa + self.alpha * deltas
        for i, (state, action, _r, _ns, _na, _t) in enumerate(transitions):
            self.qtable.set(state, action, float(new_values[i]))
        return deltas

    # -- training loop -------------------------------------------------------

    def run_episode(self, env: DiscreteEnv) -> EpisodeStats:
        """One full episode of acting + learning."""
        state = env.reset()
        stats = EpisodeStats(episode=len(self.history), steps=0, total_reward=0.0)
        for t in range(1, self.max_steps + 1):
            actions = env.actions(state)
            if not actions:
                break  # terminal
            action = self.policy.choose(self.qtable, state, actions, self._rng)
            next_state, reward, done = env.step(action)
            next_actions = [] if done else env.actions(next_state)
            self.update(state, action, reward, next_state, next_actions, t)
            stats.steps += 1
            stats.total_reward += reward
            stats.rewards.append(reward)
            state = next_state
            if done:
                break
        else:
            raise ValidationError(
                f"episode exceeded max_steps={self.max_steps}; "
                "the environment may not terminate"
            )
        self.policy.episode_finished()
        self.history.append(stats)
        return stats

    def train(self, env: DiscreteEnv, episodes: int) -> List[EpisodeStats]:
        """Run ``episodes`` episodes; returns their stats."""
        if episodes < 1:
            raise ValidationError("episodes must be >= 1")
        return [self.run_episode(env) for _ in range(episodes)]

    def greedy_action(self, state: Hashable, actions: List[Hashable]) -> Hashable:
        """Pure-exploitation action (for extracting the learned policy)."""
        return self.qtable.best_action(state, actions)
