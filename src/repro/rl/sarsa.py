"""SARSA — the on-policy counterpart of Q-learning (ablation A2).

Identical bookkeeping to :class:`~repro.rl.qlearning.QLearningAgent`, but
the TD target bootstraps from the action the policy *actually takes* next
(``Q(s', a')``) rather than the greedy maximum.  Comparing the two on the
scheduling MDP shows how much ReASSIgN's behaviour owes to off-policy
maximization.
"""

from __future__ import annotations

from typing import Hashable, Optional

from repro.rl.environment import DiscreteEnv
from repro.rl.qlearning import EpisodeStats, QLearningAgent
from repro.util.validate import ValidationError

__all__ = ["SarsaAgent"]


class SarsaAgent(QLearningAgent):
    """Tabular SARSA(0) agent."""

    def run_episode(self, env: DiscreteEnv) -> EpisodeStats:
        state = env.reset()
        stats = EpisodeStats(episode=len(self.history), steps=0, total_reward=0.0)
        actions = env.actions(state)
        action: Optional[Hashable] = (
            self.policy.choose(self.qtable, state, actions, self._rng)
            if actions
            else None
        )
        for t in range(1, self.max_steps + 1):
            if action is None:
                break  # terminal
            next_state, reward, done = env.step(action)
            next_actions = [] if done else env.actions(next_state)
            next_action = (
                self.policy.choose(self.qtable, next_state, next_actions, self._rng)
                if next_actions
                else None
            )
            # on-policy target: the value of the action we'll really take
            future = (
                self.qtable.value(next_state, next_action)
                if next_action is not None
                else 0.0
            )
            delta = (
                reward
                + self.effective_gamma(t) * future
                - self.qtable.value(state, action)
            )
            self.qtable.add(state, action, self.alpha * delta)
            stats.steps += 1
            stats.total_reward += reward
            stats.rewards.append(reward)
            state, action = next_state, next_action
            if done:
                break
        else:
            raise ValidationError(
                f"episode exceeded max_steps={self.max_steps}; "
                "the environment may not terminate"
            )
        self.policy.episode_finished()
        self.history.append(stats)
        return stats
