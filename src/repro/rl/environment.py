"""Environment protocol for the tabular agents + workflow state constants.

The generic agents (:mod:`~repro.rl.qlearning`, :mod:`~repro.rl.sarsa`,
:mod:`~repro.rl.double_q`) interact with any :class:`DiscreteEnv` — a
minimal episodic MDP interface.  ReASSIgN itself is driven by the
simulator (the environment pushes decisions to the agent), so it lives in
:mod:`repro.core`; the protocol here is used for unit-testing the learning
rules on small MDPs and for the ablation benchmarks.

``WORKFLOW_STATES`` enumerates the paper's 4-valued workflow state space S
(§III-A): two live states and two terminal states.
"""

from __future__ import annotations

import abc
from typing import Hashable, List, Tuple

__all__ = ["DiscreteEnv", "WORKFLOW_STATES", "AVAILABLE", "UNAVAILABLE",
           "SUCCESS", "FAILURE"]

#: the workflow states of §III-A
AVAILABLE = "available"
UNAVAILABLE = "unavailable"
SUCCESS = "successfully finished"
FAILURE = "finished with failure"

WORKFLOW_STATES: Tuple[str, ...] = (AVAILABLE, UNAVAILABLE, SUCCESS, FAILURE)


class DiscreteEnv(abc.ABC):
    """A finite episodic MDP."""

    @abc.abstractmethod
    def reset(self) -> Hashable:
        """Begin an episode; returns the initial state."""

    @abc.abstractmethod
    def actions(self, state: Hashable) -> List[Hashable]:
        """Legal actions in ``state`` (empty iff terminal)."""

    @abc.abstractmethod
    def step(self, action: Hashable) -> Tuple[Hashable, float, bool]:
        """Apply ``action``; returns (next_state, reward, done)."""

    def is_terminal(self, state: Hashable) -> bool:
        """Default terminality test: no legal actions."""
        return not self.actions(state)
