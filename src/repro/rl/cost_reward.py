"""Cost-aware extension of the ReASSIgN reward (§III-B + financial cost).

The paper's introduction lists *financial cost* next to makespan as a
criterion SWfMS schedulers minimize, but its reward uses time only.
:class:`CostAwarePerformanceReward` folds money into the §III-B
performance indices by inflating a VM's observed execution time by a
price penalty::

    te_effective = te * (1 + cost_weight * price / price_ref)

where ``price_ref`` is the cheapest VM's hourly price.  With
``cost_weight = 0`` this is exactly the paper's reward; larger weights
make expensive VMs look slower to the agent, pushing the learned plan
toward cheap placements.  The A6 ablation sweeps the weight and reads
out the makespan/cost trade-off curve.
"""

from __future__ import annotations

from typing import Dict, Sequence

from repro.rl.reward import PerformanceReward
from repro.sim.vm import Vm
from repro.util.validate import ValidationError, check_non_negative

__all__ = ["CostAwarePerformanceReward"]


class CostAwarePerformanceReward(PerformanceReward):
    """§III-B reward with a price penalty on execution time.

    Parameters
    ----------
    vms:
        The fleet (prices are read from each VM's type).
    cost_weight:
        0 = the paper's pure-time reward; 1 = a VM priced at the
        reference (cheapest) rate doubles nothing, while a 32x-priced
        2xlarge looks 33x slower per observed second.
    mu / rho:
        As in :class:`~repro.rl.reward.PerformanceReward`.
    """

    def __init__(
        self,
        vms: Sequence[Vm],
        cost_weight: float = 0.0,
        mu: float = 0.5,
        rho: float = 0.5,
    ) -> None:
        super().__init__(mu=mu, rho=rho)
        if not vms:
            raise ValidationError("need at least one VM")
        self.cost_weight = check_non_negative("cost_weight", cost_weight)
        prices: Dict[int, float] = {vm.id: vm.type.price_per_hour for vm in vms}
        positive = [p for p in prices.values() if p > 0]
        self._price_ref = min(positive) if positive else 1.0
        self._prices = prices

    def _inflate(self, vm_id: int, te: float) -> float:
        price = self._prices.get(vm_id)
        if price is None:
            # VM outside the configured fleet: treat as reference-priced
            price = self._price_ref
        return te * (1.0 + self.cost_weight * price / self._price_ref)

    def observe(self, vm_id: int, te: float, tf: float) -> None:
        """Record an execution with the price-inflated ``te``."""
        super().observe(vm_id, self._inflate(vm_id, te), tf)

    def step(self, vm_id: int, te: float, tf: float) -> float:
        """One §III-B reward step on the price-inflated observation."""
        # PerformanceReward.step calls self.observe, which would inflate
        # twice; replicate its body against the parent observe instead.
        PerformanceReward.observe(self, vm_id, self._inflate(vm_id, te), tf)
        r_i = self.partial_reward(vm_id)
        self._reward = self._reward + self.rho * (r_i - self._reward)
        return self._reward
