"""Sharded dense Q-storage (the ``backend="shard"`` QTable backend).

A :class:`ShardStore` holds the same (states x actions) dense Q/known
matrices as the ``array`` backend, but partitioned along the interned
*state-id* axis into fixed-size shards of ``shard_rows`` rows each:

    shard 0: state ids [0, shard_rows)
    shard 1: state ids [shard_rows, 2 * shard_rows)
    ...

Growth along the state axis *appends* shards instead of reallocating
and copying the whole table, so million-state tables (large workflows x
rich state ablations) grow in O(shard) steps.  Each shard's Q-values
can optionally be backed by ``numpy.memmap`` (pass ``directory``), in
which case the values live in page cache instead of process RAM; the
boolean lazy-init mask always stays in RAM (it is 8x smaller and hit on
every access).

Bit-identity: the store is pure storage.  Which entry is initialized
when — and therefore every draw from the Q-init stream — is decided by
:class:`~repro.rl.qtable.QTable`, so ``array`` and ``shard`` backends
produce byte-identical learning results (pinned by the Hypothesis suite
in ``tests/test_qshard.py``).

Persistence: :meth:`save` / :meth:`load` write one ``.npz`` per shard
plus a canonical-JSON ``manifest.json`` (sorted keys) describing the
layout; :meth:`repro.rl.qtable.QTable.save_shards` adds the interning
maps to the same manifest.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any, Dict, List, Optional, Tuple, Union

import numpy as np

from repro.util.validate import ValidationError

__all__ = ["ShardStore", "DEFAULT_SHARD_ROWS", "MANIFEST_NAME"]

#: Default rows (interned state ids) per shard.  Small enough that the
#: append-only growth never over-allocates much, large enough that a
#: Montage-sized table fits in one shard.
DEFAULT_SHARD_ROWS = 256

#: Manifest filename inside a shard directory.
MANIFEST_NAME = "manifest.json"

#: Minimum allocated action columns (mirrors the array backend's
#: geometric column growth floor).
_MIN_COLS = 16


def _shard_filename(index: int) -> str:
    return f"shard-{index:05d}.npz"


class ShardStore:
    """Fixed-size numpy shards over the interned state-id axis.

    Parameters
    ----------
    shard_rows:
        Rows (state ids) per shard; fixed for the store's lifetime.
    directory:
        When given, each shard's Q-values are a ``numpy.memmap`` over
        ``<directory>/shard-NNNNN.dat`` instead of a RAM array.  The
        directory is created on first allocation.
    """

    def __init__(
        self,
        shard_rows: int = DEFAULT_SHARD_ROWS,
        directory: Optional[Union[str, Path]] = None,
    ) -> None:
        if shard_rows < 1:
            raise ValidationError("shard_rows must be >= 1")
        self.shard_rows = int(shard_rows)
        self._dir: Optional[Path] = (
            Path(directory) if directory is not None else None
        )
        self._cols = 0
        self._q: List[np.ndarray] = []
        self._known: List[np.ndarray] = []

    # -- geometry ---------------------------------------------------------

    @property
    def n_shards(self) -> int:
        return len(self._q)

    @property
    def rows(self) -> int:
        """Allocated rows (state-id capacity)."""
        return len(self._q) * self.shard_rows

    @property
    def cols(self) -> int:
        """Allocated columns (action-id capacity)."""
        return self._cols

    @property
    def memmapped(self) -> bool:
        return self._dir is not None

    @property
    def nbytes(self) -> int:
        """Total storage bytes (memmap shards count their mapped size)."""
        return sum(
            q.nbytes + k.nbytes for q, k in zip(self._q, self._known)
        )

    # -- allocation -------------------------------------------------------

    def _new_q(self, index: int, cols: int) -> np.ndarray:
        if self._dir is None:
            return np.zeros((self.shard_rows, cols), dtype=np.float64)
        self._dir.mkdir(parents=True, exist_ok=True)
        path = self._dir / f"shard-{index:05d}.dat"
        mm = np.memmap(
            path, dtype=np.float64, mode="w+", shape=(self.shard_rows, cols)
        )
        mm[:] = 0.0
        return mm

    def ensure_rows(self, rows: int) -> None:
        """Append shards until at least ``rows`` state ids fit.

        Never copies existing shards — state-axis growth is append-only.
        """
        cols = self._cols if self._cols else _MIN_COLS
        while self.rows < rows:
            index = len(self._q)
            self._q.append(self._new_q(index, cols))
            self._known.append(
                np.zeros((self.shard_rows, cols), dtype=bool)
            )
        if self._cols == 0 and self._q:
            self._cols = cols

    def ensure_cols(self, cols: int) -> None:
        """Grow every shard's action axis to at least ``cols``.

        Geometric doubling, mirroring the array backend; each shard is
        reallocated (memmap shards are rewritten in place after copying
        the old values out), so column growth is rare by construction.
        """
        if cols <= self._cols:
            return
        new_c = max(cols, _MIN_COLS)
        if self._cols:
            new_c = max(new_c, 2 * self._cols)
        old_c = self._cols
        for i in range(len(self._q)):
            old_q = np.array(self._q[i][:, :old_c])  # copy out of any memmap
            q = self._new_q(i, new_c)
            if old_c:
                q[:, :old_c] = old_q
            self._q[i] = q
            known = np.zeros((self.shard_rows, new_c), dtype=bool)
            if old_c:
                known[:, :old_c] = self._known[i][:, :old_c]
            self._known[i] = known
        # with no shards yet the loop is a no-op and this just records
        # the width the first ensure_rows() allocation will use
        self._cols = new_c

    # -- row access -------------------------------------------------------

    def q_row(self, sid: int) -> np.ndarray:
        """The Q-value row for state id ``sid`` (a writable view)."""
        shard, off = divmod(sid, self.shard_rows)
        return self._q[shard][off]

    def known_row(self, sid: int) -> np.ndarray:
        """The lazy-init mask row for state id ``sid`` (writable view)."""
        shard, off = divmod(sid, self.shard_rows)
        return self._known[shard][off]

    # -- copy / persistence ----------------------------------------------

    def copy(self) -> "ShardStore":
        """Independent in-memory copy (memmap backing is not copied)."""
        out = ShardStore(shard_rows=self.shard_rows)
        out._cols = self._cols
        out._q = [np.array(q) for q in self._q]
        out._known = [k.copy() for k in self._known]
        return out

    def save(
        self,
        directory: Union[str, Path],
        rows_used: int,
        cols_used: int,
        extra: Optional[Dict[str, Any]] = None,
    ) -> Path:
        """Write used shards as ``.npz`` plus a canonical-JSON manifest.

        Only shards covering ``rows_used`` states are written, trimmed
        to ``cols_used`` action columns.  Returns the manifest path.
        """
        target = Path(directory)
        target.mkdir(parents=True, exist_ok=True)
        n_shards = -(-rows_used // self.shard_rows) if rows_used else 0
        shards: List[Dict[str, Any]] = []
        for i in range(n_shards):
            lo = i * self.shard_rows
            used = min(self.shard_rows, rows_used - lo)
            name = _shard_filename(i)
            np.savez(
                target / name,
                q=np.asarray(self._q[i][:used, :cols_used]),
                known=self._known[i][:used, :cols_used],
            )
            shards.append({"file": name, "rows": used})
        manifest: Dict[str, Any] = {
            "format": "qtable-shard-v1",
            "shard_rows": self.shard_rows,
            "n_states": rows_used,
            "n_actions": cols_used,
            "shards": shards,
        }
        if extra:
            manifest.update(extra)
        path = target / MANIFEST_NAME
        path.write_text(
            json.dumps(manifest, indent=1, sort_keys=True) + "\n",
            encoding="utf-8",
        )
        return path

    @classmethod
    def load(
        cls,
        directory: Union[str, Path],
        directory_backing: Optional[Union[str, Path]] = None,
    ) -> Tuple["ShardStore", Dict[str, Any]]:
        """Restore a store saved by :meth:`save`.

        Returns ``(store, manifest)`` — the manifest carries any extra
        keys the saver attached (QTable adds its interning maps).
        ``directory_backing`` re-memmaps the restored values there.
        """
        source = Path(directory)
        try:
            manifest: Dict[str, Any] = json.loads(
                (source / MANIFEST_NAME).read_text(encoding="utf-8")
            )
        except (OSError, json.JSONDecodeError) as exc:
            raise ValidationError(
                f"unreadable shard manifest in {source}: {exc}"
            ) from exc
        if manifest.get("format") != "qtable-shard-v1":
            raise ValidationError(
                f"unsupported shard manifest format {manifest.get('format')!r}"
            )
        store = cls(
            shard_rows=int(manifest["shard_rows"]),
            directory=directory_backing,
        )
        n_states = int(manifest["n_states"])
        n_actions = int(manifest["n_actions"])
        store.ensure_rows(n_states)
        store.ensure_cols(n_actions)
        for i, entry in enumerate(manifest["shards"]):
            with np.load(source / str(entry["file"])) as data:
                used = int(entry["rows"])
                store._q[i][:used, :n_actions] = data["q"]
                store._known[i][:used, :n_actions] = data["known"]
        return store, manifest
