"""Double Q-learning (van Hasselt, 2010) — ablation A2.

Keeps two tables Q_A and Q_B; each update flips a coin, uses one table to
pick the argmax and the *other* to value it, removing the positive
maximization bias of plain Q-learning.  Relevant here because ReASSIgN's
reward is noisy early on (few observations per VM), exactly the regime
where single-estimator Q-learning over-commits.
"""

from __future__ import annotations

from typing import Hashable, List, Optional, Sequence, Tuple

import numpy as np

from repro.rl.policy import ActionPolicy
from repro.rl.qlearning import QLearningAgent
from repro.rl.qtable import QTable
from repro.util.rng import RngService

__all__ = ["DoubleQAgent"]


class _SumView(QTable):
    """Read view exposing Q_A + Q_B to the action policy.

    Runs on the dict backend on purpose: its reductions
    (``max_value``/``best_action``) go through per-action ``value()``
    calls, which is the seam this view overrides.  The array backend's
    vectorized reductions read their own dense storage and would bypass
    the override.
    """

    def __init__(self, a: QTable, b: QTable) -> None:
        super().__init__(init_scale=0.0, backend="dict")
        self._a = a
        self._b = b

    def value(self, state, action):  # type: ignore[override]
        return self._a.value(state, action) + self._b.value(state, action)


class DoubleQAgent(QLearningAgent):
    """Tabular Double Q-learning agent.

    The inherited ``qtable`` attribute is a live view of Q_A + Q_B (the
    quantity the behaviour policy uses); the two underlying tables are
    ``qtable_a`` / ``qtable_b``.
    """

    def __init__(
        self,
        alpha: float = 0.5,
        gamma: float = 1.0,
        policy: Optional[ActionPolicy] = None,
        seed: int = 0,
        discount_power: bool = True,
        max_steps: int = 100_000,
    ) -> None:
        super().__init__(
            alpha=alpha,
            gamma=gamma,
            policy=policy,
            qtable=None,
            seed=seed,
            discount_power=discount_power,
            max_steps=max_steps,
        )
        self.qtable_a = QTable(seed=RngService(seed).spawn_seed("qa"))
        self.qtable_b = QTable(seed=RngService(seed).spawn_seed("qb"))
        self.qtable = _SumView(self.qtable_a, self.qtable_b)
        self._coin = RngService(seed).stream("doubleq-coin")

    def update(
        self,
        state: Hashable,
        action: Hashable,
        reward: float,
        next_state: Hashable,
        next_actions: List[Hashable],
        t: int,
    ) -> float:
        """One double-estimator update; returns the TD error δ."""
        if self._coin.random() < 0.5:
            learn, evaluate = self.qtable_a, self.qtable_b
        else:
            learn, evaluate = self.qtable_b, self.qtable_a
        if next_actions:
            best = learn.best_action(next_state, next_actions)
            future = evaluate.value(next_state, best)
        else:
            future = 0.0
        delta = (
            reward
            + self.effective_gamma(t) * future
            - learn.value(state, action)
        )
        learn.add(state, action, self.alpha * delta)
        return delta

    def update_batch(
        self,
        transitions: Sequence[
            Tuple[Hashable, Hashable, float, Hashable, List[Hashable], int]
        ],
    ) -> np.ndarray:
        """Double-estimator updates for a transition batch; returns δs.

        Sequential by necessity: each update consumes one coin flip
        that decides which table the update (and any lazy-init draw)
        lands in, so cross-transition fusion would reorder the
        ``doubleq-coin`` and ``qtable-init`` streams and break
        bit-identity with the serial path.  The argmax/value gathers
        inside each update are still single numpy calls over the
        interned dense rows.
        """
        return np.array(
            [self.update(*tr) for tr in transitions], dtype=np.float64
        )
