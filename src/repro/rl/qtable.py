"""Tabular action-value storage.

The paper's evaluation table "Q: S x A" maps (workflow state, schedule
action) to a value.  :class:`QTable` is a sparse dict-backed table whose
unseen entries are initialized *at random* on first touch — "Start Q(s, a)
for all s, a at random" (Algorithm 1) — from a dedicated stream so results
are reproducible.  States and actions may be any hashable, JSON-encodable
values; ReASSIgN uses string states and ``(activation_id, vm_id)`` tuples.
"""

from __future__ import annotations

import json
from typing import Dict, Hashable, Iterable, List, Optional, Tuple

import numpy as np

from repro.util.rng import RngService
from repro.util.validate import ValidationError

__all__ = ["QTable"]

State = Hashable
Action = Hashable


def _encode_key(key) -> list:
    """Tuple keys become lists for JSON; scalars pass through."""
    if isinstance(key, tuple):
        return list(key)
    return key


def _decode_key(key):
    """Invert :func:`_encode_key` (lists back to tuples)."""
    if isinstance(key, list):
        return tuple(key)
    return key


class QTable:
    """Sparse Q(s, a) table with random lazy initialization.

    Parameters
    ----------
    init_scale:
        Unseen entries are drawn uniformly from ``[0, init_scale)``.  A
        small positive scale implements the paper's random initialization
        while keeping initial values near-neutral.
    seed:
        Seed for the initialization stream.
    """

    def __init__(self, init_scale: float = 1e-3, seed: int = 0) -> None:
        if init_scale < 0:
            raise ValidationError("init_scale must be >= 0")
        self._values: Dict[Tuple[State, Action], float] = {}
        self._init_scale = float(init_scale)
        self._rng: np.random.Generator = RngService(seed).stream("qtable-init")

    def __len__(self) -> int:
        return len(self._values)

    def value(self, state: State, action: Action) -> float:
        """Q(s, a); initializes the entry randomly on first access."""
        key = (state, action)
        v = self._values.get(key)
        if v is None:
            v = float(self._rng.uniform(0.0, self._init_scale))
            self._values[key] = v
        return v

    def peek(self, state: State, action: Action) -> Optional[float]:
        """Q(s, a) without initializing (None if unseen)."""
        return self._values.get((state, action))

    def set(self, state: State, action: Action, value: float) -> None:
        """Overwrite Q(s, a)."""
        self._values[(state, action)] = float(value)

    def add(self, state: State, action: Action, delta: float) -> float:
        """Q(s, a) += delta; returns the new value."""
        new = self.value(state, action) + float(delta)
        self._values[(state, action)] = new
        return new

    def max_value(self, state: State, actions: Iterable[Action]) -> float:
        """max_a Q(s, a) over the given actions (0.0 for an empty set).

        An empty action set corresponds to a terminal/unavailable state,
        whose future value is zero by convention.
        """
        best = None
        for action in actions:
            v = self.value(state, action)
            if best is None or v > best:
                best = v
        return best if best is not None else 0.0

    def best_action(
        self,
        state: State,
        actions: Iterable[Action],
        rng: Optional[np.random.Generator] = None,
    ) -> Action:
        """argmax_a Q(s, a); ties broken randomly (or by sort order)."""
        actions = list(actions)
        if not actions:
            raise ValidationError("best_action needs a non-empty action set")
        values = [self.value(state, a) for a in actions]
        top = max(values)
        ties = [a for a, v in zip(actions, values) if v >= top - 1e-15]
        if len(ties) == 1 or rng is None:
            return ties[0]
        return ties[int(rng.integers(len(ties)))]

    def items(self) -> List[Tuple[State, Action, float]]:
        """All (state, action, value) triples, deterministically ordered."""
        return sorted(
            ((s, a, v) for (s, a), v in self._values.items()),
            key=lambda t: (repr(t[0]), repr(t[1])),
        )

    # -- persistence ---------------------------------------------------------

    def to_json(self) -> str:
        """Serialize all entries (states/actions must be JSON-encodable)."""
        entries = [
            [_encode_key(s), _encode_key(a), v] for s, a, v in self.items()
        ]
        return json.dumps({"init_scale": self._init_scale, "entries": entries})

    @classmethod
    def from_json(cls, text: str, seed: int = 0) -> "QTable":
        """Restore a table serialized by :meth:`to_json`."""
        try:
            data = json.loads(text)
        except json.JSONDecodeError as exc:
            raise ValidationError(f"malformed QTable JSON: {exc}") from exc
        table = cls(init_scale=float(data.get("init_scale", 1e-3)), seed=seed)
        for s, a, v in data.get("entries", []):
            table.set(_decode_key(s), _decode_key(a), float(v))
        return table

    def copy(self) -> "QTable":
        """Independent copy (shares no state, fresh init stream)."""
        out = QTable(init_scale=self._init_scale)
        out._values = dict(self._values)
        return out
