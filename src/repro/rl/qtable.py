"""Tabular action-value storage.

The paper's evaluation table "Q: S x A" maps (workflow state, schedule
action) to a value.  :class:`QTable` stores that table behind one of
three interchangeable backends:

- ``backend="array"`` (the default) interns states and actions to
  contiguous integer ids and keeps the Q-values in a growable dense
  ``numpy`` array with an explicit lazy-init mask.  ``max_value`` /
  ``best_action`` become masked vector reductions over precomputed
  action-id slices, which is what makes the ReASSIgN decision loop fast
  (see ``docs/performance.md``).
- ``backend="shard"`` keeps the same interned dense layout but
  partitions the state-id axis into fixed-size numpy shards
  (:mod:`repro.rl.qshard`): state-axis growth appends shards instead of
  copying the whole table, shards can be ``numpy.memmap``-backed, and
  the table saves/loads shard-by-shard via a canonical-JSON manifest
  (:meth:`QTable.save_shards` / :meth:`QTable.load_shards`).
- ``backend="dict"`` is the legacy sparse dict-backed table, kept as an
  escape hatch and as the reference the equivalence suite compares the
  dense backends against.

Both backends are **bit-identical**: unseen entries are initialized *at
random* on first touch — "Start Q(s, a) for all s, a at random"
(Algorithm 1) — from a dedicated stream, and the array backend draws in
exactly the same first-touch order as the dict backend, so every float,
every tie-break and the serialized JSON agree byte for byte.  States and
actions may be any hashable, JSON-encodable values; ReASSIgN uses string
states and ``(activation_id, vm_id)`` tuples.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import (
    Any,
    Dict,
    Hashable,
    Iterable,
    List,
    Optional,
    Sequence,
    Tuple,
    Union,
)

import numpy as np

from repro.rl.qshard import DEFAULT_SHARD_ROWS, ShardStore
from repro.util.rng import RngService
from repro.util.validate import ValidationError

__all__ = ["QTable", "QTableSnapshot"]

State = Hashable
Action = Hashable

#: Backends accepted by :class:`QTable`.
_BACKENDS = ("array", "dict", "shard")

#: Action-id slices memoized per actions-tuple identity (see
#: ``QTable._action_slice``).  Sized to cover the working set of
#: interned cross-product tuples a learning run cycles through
#: (``EpisodeState.action_pairs`` hands out ~one distinct tuple per
#: (ready, idle) configuration, a few thousand per run on mid-size
#: workflows); each entry is just an id array plus an ensured-state
#: set, so memory stays negligible.
_ID_MEMO_LIMIT = 4096

#: Below this many actions the batched reductions use a plain Python
#: loop over the dense row instead of a numpy reduction: the median
#: ReASSIgN action set is ~3 pairs, where interpreter arithmetic beats
#: numpy's per-call overhead.  ``max`` and the ``>= top - 1e-15`` tie
#: band are order-independent IEEE float64 comparisons, so both code
#: paths produce bit-identical results.
_SCALAR_REDUCTION_LIMIT = 32


class QTableSnapshot:
    """Immutable, version-stamped capture of a :class:`QTable`'s state.

    Produced by :meth:`QTable.snapshot` and consumed by
    :meth:`QTable.restore`.  A snapshot carries *everything* that
    determines future draws and reads: the backend payload (dense
    arrays / shard store / sparse dict plus the interning maps) **and**
    the lazy-init RNG stream's bit-generator state, so a restored table
    replays the exact same first-touch initialization draws the
    original would have.  Snapshots are backend-specific — restoring
    onto a table with a different backend raises.

    The payload copies are made at snapshot time and copied again on
    restore, so one snapshot can seed any number of tables (the
    distributed learner ships one per rollout wave) without aliasing.

    Delta snapshots (``QTable.snapshot(since=K)``) carry only the rows
    touched at or after version ``K`` plus the (small) interning maps;
    ``base_version`` records ``K`` so :meth:`QTable.restore` can refuse
    to patch a table that is not exactly at that base.  Full snapshots
    have ``base_version is None``.
    """

    __slots__ = (
        "backend", "version", "init_scale", "rng_state", "payload",
        "base_version",
    )

    def __init__(
        self,
        backend: str,
        version: int,
        init_scale: float,
        rng_state: Dict[str, Any],
        payload: Tuple[Any, ...],
        base_version: Optional[int] = None,
    ) -> None:
        self.backend = backend
        self.version = version
        self.init_scale = init_scale
        self.rng_state = rng_state
        self.payload = payload
        self.base_version = base_version


def _encode_key(key) -> list:
    """Tuple keys become lists for JSON; scalars pass through."""
    if isinstance(key, tuple):
        return list(key)
    return key


def _decode_key(key):
    """Invert :func:`_encode_key` (lists back to tuples)."""
    if isinstance(key, list):
        return tuple(key)
    return key


class QTable:
    """Q(s, a) table with random lazy initialization.

    Parameters
    ----------
    init_scale:
        Unseen entries are drawn uniformly from ``[0, init_scale)``.  A
        small positive scale implements the paper's random initialization
        while keeping initial values near-neutral.
    seed:
        Seed for the initialization stream.
    backend:
        ``"array"`` (default) for the interned dense storage,
        ``"shard"`` for the sharded, optionally memmap-backed dense
        storage, ``"dict"`` for the legacy sparse table.  Results are
        bit-identical in all three.
    shard_rows / shard_dir:
        ``"shard"`` backend only: rows per shard and an optional
        directory for ``numpy.memmap``-backed shards
        (see :mod:`repro.rl.qshard`).
    """

    def __init__(
        self,
        init_scale: float = 1e-3,
        seed: int = 0,
        backend: str = "array",
        shard_rows: int = DEFAULT_SHARD_ROWS,
        shard_dir: Optional[Union[str, Path]] = None,
    ) -> None:
        if init_scale < 0:
            raise ValidationError("init_scale must be >= 0")
        if backend not in _BACKENDS:
            allowed = ", ".join(repr(b) for b in sorted(_BACKENDS))
            raise ValidationError(
                f"backend must be one of {allowed}, got {backend!r}"
            )
        if shard_dir is not None and backend != "shard":
            raise ValidationError(
                f"shard_dir is only valid with backend='shard', "
                f"got backend={backend!r}"
            )
        self._backend = backend
        self._init_scale = float(init_scale)
        # monotone mutation-era counter for the distributed learner:
        # bumped explicitly (bump_version) after each committed episode
        # and restored alongside content by restore(), so "snapshot
        # version == table version" certifies byte-identical content
        self._version = 0
        self._rng: np.random.Generator = RngService(seed).stream("qtable-init")
        if backend == "dict":
            self._values: Dict[Tuple[State, Action], float] = {}
        else:
            # interning maps: state/action -> contiguous int id
            self._state_ids: Dict[State, int] = {}
            self._states: List[State] = []
            self._action_ids: Dict[Action, int] = {}
            self._actions: List[Action] = []
            # dense storage: Q-values + "has been touched" mask.  The
            # shard backend swaps the monolithic arrays for a
            # ShardStore; everything above the row level is shared.
            if backend == "shard":
                self._store = ShardStore(
                    shard_rows=shard_rows, directory=shard_dir
                )
            else:
                self._q = np.zeros((0, 0), dtype=np.float64)
                self._known = np.zeros((0, 0), dtype=bool)
            self._n_known = 0
            # id(actions-tuple) -> (strong ref, action-id array, action
            # ids as a plain int list, set of state ids already
            # lazy-initialized against it); the strong ref keeps the id
            # stable, so the identity check below can never confuse two
            # tuples, and the ensured-set check is sound because
            # known-ness is monotone (entries never un-initialize)
            self._id_memo: Dict[
                int, Tuple[Tuple[Action, ...], np.ndarray, List[int], set]
            ] = {}
            # sid -> version era of the row's last marked write.  The
            # superset source for delta snapshots: snapshot(since=K)
            # ships exactly the rows with era >= K.  Every QTable write
            # path marks; code that writes a row *directly* (the fused
            # engine, the replay kernels) must call mark_row_dirty —
            # over-marking is sound (the delta just carries an extra
            # row whose content already matches), under-marking is not.
            self._row_era: Dict[int, int] = {}

    @property
    def backend(self) -> str:
        """The storage backend (``array``/``dict``/``shard``)."""
        return self._backend

    def stats(self) -> Dict[str, Any]:
        """Size counters for sweep logs: interned ids, entries, bytes.

        ``nbytes`` is the dense storage footprint (Q-values + lazy-init
        mask); the dict backend has no dense storage and reports
        ``None``.  The shard backend adds its shard geometry so memmap
        growth is observable.
        """
        if self._backend == "dict":
            return {
                "backend": self._backend,
                "n_states": len({s for (s, _a) in self._values}),
                "n_actions": len({a for (_s, a) in self._values}),
                "n_known": len(self._values),
                "nbytes": None,
            }
        out: Dict[str, Any] = {
            "backend": self._backend,
            "n_states": len(self._states),
            "n_actions": len(self._actions),
            "n_known": self._n_known,
        }
        if self._backend == "shard":
            out["nbytes"] = self._store.nbytes
            out["n_shards"] = self._store.n_shards
            out["shard_rows"] = self._store.shard_rows
            out["memmapped"] = self._store.memmapped
        else:
            out["nbytes"] = int(self._q.nbytes + self._known.nbytes)
        return out

    def __len__(self) -> int:
        if self._backend == "dict":
            return len(self._values)
        return self._n_known

    # -- interning (array backend) -------------------------------------------

    def _grow(self, rows: int, cols: int) -> None:
        """Grow the dense storage to at least (rows, cols), geometrically."""
        old_r, old_c = self._q.shape
        new_r = max(rows, old_r, 4)
        new_c = max(cols, old_c, 16)
        if new_r > old_r:
            new_r = max(new_r, 2 * old_r)
        if new_c > old_c:
            new_c = max(new_c, 2 * old_c)
        q = np.zeros((new_r, new_c), dtype=np.float64)
        known = np.zeros((new_r, new_c), dtype=bool)
        if old_r and old_c:
            q[:old_r, :old_c] = self._q
            known[:old_r, :old_c] = self._known
        self._q = q
        self._known = known

    def _state_id(self, state: State) -> int:
        sid = self._state_ids.get(state)
        if sid is None:
            sid = len(self._states)
            self._state_ids[state] = sid
            self._states.append(state)
            if self._backend == "shard":
                self._store.ensure_rows(sid + 1)
            elif sid >= self._q.shape[0]:
                self._grow(sid + 1, self._q.shape[1])
        return sid

    def _action_id(self, action: Action) -> int:
        aid = self._action_ids.get(action)
        if aid is None:
            aid = len(self._actions)
            self._action_ids[action] = aid
            self._actions.append(action)
            if self._backend == "shard":
                self._store.ensure_cols(aid + 1)
            elif aid >= self._q.shape[1]:
                self._grow(self._q.shape[0], aid + 1)
        return aid

    def _action_slice(
        self, actions: Sequence[Action]
    ) -> Tuple[Tuple[Action, ...], np.ndarray, List[int], set]:
        """Memo entry for an actions batch, keyed on tuple identity.

        The simulator hands schedulers a *cached* cross-product tuple
        that stays the same object until the ready/idle sets change
        (``SimulationContext.action_pairs``), so successive ``select`` /
        Q-update calls hit the memo instead of re-interning every pair.
        Interning never draws from the init stream, so warming the memo
        cannot perturb lazy initialization.
        """
        is_tuple = type(actions) is tuple
        if is_tuple:
            memo = self._id_memo.get(id(actions))
            if memo is not None and memo[0] is actions:
                return memo
        act_get = self._action_ids.get
        id_list = [
            aid if (aid := act_get(a)) is not None else self._action_id(a)
            for a in actions
        ]
        ids = np.array(id_list, dtype=np.intp)
        entry = (tuple(actions), ids, id_list, set())
        if is_tuple:
            if len(self._id_memo) >= _ID_MEMO_LIMIT:
                self._id_memo.pop(next(iter(self._id_memo)))
            self._id_memo[id(actions)] = entry
        return entry

    def _ensure_known(self, sid: int, aids: np.ndarray) -> None:
        """Lazy-init any untouched (sid, aid) entries, in slice order.

        One ``uniform`` call per fresh entry, in the order the actions
        appear — the exact draw sequence of the dict backend's per-entry
        first touch (duplicates are re-checked so they draw only once).
        Storage-agnostic: the draw order depends only on the visit
        order, so array and shard backends stay bit-identical.
        """
        if self._backend == "shard":
            known = self._store.known_row(sid)
        else:
            known = self._known[sid]
        fresh = np.flatnonzero(~known[aids])
        if fresh.size:
            q = (
                self._store.q_row(sid)
                if self._backend == "shard"
                else self._q[sid]
            )
            self._row_era[sid] = self._version
            scale = self._init_scale
            rng = self._rng
            for pos in fresh:
                aid = aids[pos]
                if not known[aid]:
                    q[aid] = rng.uniform(0.0, scale)
                    known[aid] = True
                    self._n_known += 1

    # -- point access ---------------------------------------------------------

    def value(self, state: State, action: Action) -> float:
        """Q(s, a); initializes the entry randomly on first access."""
        if self._backend == "dict":
            key = (state, action)
            v = self._values.get(key)
            if v is None:
                v = float(self._rng.uniform(0.0, self._init_scale))
                self._values[key] = v
            return v
        sid = self._state_id(state)
        aid = self._action_id(action)
        if self._backend == "shard":
            qrow = self._store.q_row(sid)
            krow = self._store.known_row(sid)
            if krow[aid]:
                return float(qrow[aid])
            v = float(self._rng.uniform(0.0, self._init_scale))
            qrow[aid] = v
            krow[aid] = True
            self._n_known += 1
            self._row_era[sid] = self._version
            return v
        if self._known[sid, aid]:
            return float(self._q[sid, aid])
        v = float(self._rng.uniform(0.0, self._init_scale))
        self._q[sid, aid] = v
        self._known[sid, aid] = True
        self._n_known += 1
        self._row_era[sid] = self._version
        return v

    def peek(self, state: State, action: Action) -> Optional[float]:
        """Q(s, a) without initializing (None if unseen)."""
        if self._backend == "dict":
            return self._values.get((state, action))
        sid = self._state_ids.get(state)
        aid = self._action_ids.get(action)
        if sid is None or aid is None:
            return None
        if self._backend == "shard":
            if not self._store.known_row(sid)[aid]:
                return None
            return float(self._store.q_row(sid)[aid])
        if not self._known[sid, aid]:
            return None
        return float(self._q[sid, aid])

    def set(self, state: State, action: Action, value: float) -> None:
        """Overwrite Q(s, a)."""
        if self._backend == "dict":
            self._values[(state, action)] = float(value)
            return
        sid = self._state_id(state)
        aid = self._action_id(action)
        self._row_era[sid] = self._version
        if self._backend == "shard":
            krow = self._store.known_row(sid)
            if not krow[aid]:
                krow[aid] = True
                self._n_known += 1
            self._store.q_row(sid)[aid] = float(value)
            return
        if not self._known[sid, aid]:
            self._known[sid, aid] = True
            self._n_known += 1
        self._q[sid, aid] = float(value)

    def add(self, state: State, action: Action, delta: float) -> float:
        """Q(s, a) += delta; returns the new value."""
        new = self.value(state, action) + float(delta)
        if self._backend == "dict":
            self._values[(state, action)] = new
        elif self._backend == "shard":
            sid = self._state_ids[state]
            self._row_era[sid] = self._version
            self._store.q_row(sid)[self._action_ids[action]] = new
        else:
            sid = self._state_ids[state]
            self._row_era[sid] = self._version
            self._q[sid, self._action_ids[action]] = new
        return new

    # -- batched reductions ----------------------------------------------------

    def max_value(self, state: State, actions: Iterable[Action]) -> float:
        """max_a Q(s, a) over the given actions (0.0 for an empty set).

        An empty action set corresponds to a terminal/unavailable state,
        whose future value is zero by convention.
        """
        if self._backend == "dict":
            best = None
            for action in actions:
                v = self.value(state, action)
                if best is None or v > best:
                    best = v
            return best if best is not None else 0.0
        if not isinstance(actions, (tuple, list)):
            actions = list(actions)
        if not actions:
            return 0.0
        sid = self._state_id(state)
        _, aids, id_list, ensured = self._action_slice(actions)
        if sid not in ensured:
            self._ensure_known(sid, aids)
            ensured.add(sid)
        row = (
            self._store.q_row(sid)
            if self._backend == "shard"
            else self._q[sid]
        )
        if len(id_list) < _SCALAR_REDUCTION_LIMIT:
            # scalar loop beats numpy call overhead on tiny slices; the
            # result is the same float either way (a max is a max)
            best = row[id_list[0]]
            for aid in id_list[1:]:
                v = row[aid]
                if v > best:
                    best = v
            return float(best)
        return float(row.take(aids).max())

    def best_action(
        self,
        state: State,
        actions: Iterable[Action],
        rng: Optional[np.random.Generator] = None,
    ) -> Action:
        """argmax_a Q(s, a); ties broken randomly (or by sort order)."""
        if self._backend == "dict":
            actions = list(actions)
            if not actions:
                raise ValidationError("best_action needs a non-empty action set")
            values = [self.value(state, a) for a in actions]
            top = max(values)
            ties = [a for a, v in zip(actions, values) if v >= top - 1e-15]
            if len(ties) == 1 or rng is None:
                return ties[0]
            return ties[int(rng.integers(len(ties)))]
        if not isinstance(actions, (tuple, list)):
            actions = list(actions)
        if not actions:
            raise ValidationError("best_action needs a non-empty action set")
        sid = self._state_id(state)
        _, aids, id_list, ensured = self._action_slice(actions)
        if sid not in ensured:
            self._ensure_known(sid, aids)
            ensured.add(sid)
        row = (
            self._store.q_row(sid)
            if self._backend == "shard"
            else self._q[sid]
        )
        # same float comparisons as the dict path: max, then the
        # >= top - 1e-15 tie band, then one draw over the tie count
        if len(id_list) < _SCALAR_REDUCTION_LIMIT:
            values_list = [row[aid] for aid in id_list]
            cut = max(values_list) - 1e-15
            tie_list = [i for i, v in enumerate(values_list) if v >= cut]
            if len(tie_list) == 1 or rng is None:
                return actions[tie_list[0]]
            return actions[tie_list[int(rng.integers(len(tie_list)))]]
        values = row.take(aids)
        ties = np.flatnonzero(values >= values.max() - 1e-15)
        if ties.size == 1 or rng is None:
            return actions[int(ties[0])]
        return actions[int(ties[int(rng.integers(ties.size))])]

    def gather(self, state: State, actions: Sequence[Action]) -> np.ndarray:
        """Q(s, a) over an action batch as one numpy gather.

        Lazy-initializes fresh entries first, in action order — the
        same draw sequence as per-action :meth:`value` calls — then
        reads the whole batch with a single ``take`` over the interned
        dense row.  This is the gather primitive of the batched
        engine's vectorized selection/update kernels.
        """
        if self._backend == "dict":
            return np.array(
                [self.value(state, a) for a in actions], dtype=np.float64
            )
        if not actions:
            return np.zeros(0, dtype=np.float64)
        sid = self._state_id(state)
        _, aids, _id_list, ensured = self._action_slice(actions)
        if sid not in ensured:
            self._ensure_known(sid, aids)
            ensured.add(sid)
        row = (
            self._store.q_row(sid)
            if self._backend == "shard"
            else self._q[sid]
        )
        return row.take(aids)

    def scatter(
        self, state: State, actions: Sequence[Action], values: np.ndarray
    ) -> None:
        """Overwrite Q(s, a) over an action batch in one numpy scatter.

        The batch counterpart of :meth:`set`.  Duplicate actions in the
        batch resolve to the last written value (numpy fancy-assignment
        semantics match a sequential loop there).
        """
        if len(actions) != len(values):
            raise ValidationError(
                f"scatter needs one value per action: "
                f"{len(actions)} actions, {len(values)} values"
            )
        if self._backend == "dict":
            for a, v in zip(actions, values):
                self.set(state, a, float(v))
            return
        if not actions:
            return
        sid = self._state_id(state)
        _, aids, _id_list, _ensured = self._action_slice(actions)
        self._row_era[sid] = self._version
        if self._backend == "shard":
            qrow = self._store.q_row(sid)
            krow = self._store.known_row(sid)
        else:
            qrow = self._q[sid]
            krow = self._known[sid]
        self._n_known += int(np.count_nonzero(~krow[np.unique(aids)]))
        krow[aids] = True
        qrow[aids] = values

    def items(self) -> List[Tuple[State, Action, float]]:
        """All (state, action, value) triples, deterministically ordered."""
        if self._backend == "dict":
            triples = ((s, a, v) for (s, a), v in self._values.items())
        elif self._backend == "shard":
            n_actions = len(self._actions)
            triples = (
                (
                    self._states[sid],
                    self._actions[aid],
                    float(self._store.q_row(sid)[aid]),
                )
                for sid in range(len(self._states))
                for aid in np.flatnonzero(
                    self._store.known_row(sid)[:n_actions]
                )
            )
        else:
            sids, aids = np.nonzero(
                self._known[: len(self._states), : len(self._actions)]
            )
            triples = (
                (
                    self._states[sid],
                    self._actions[aid],
                    float(self._q[sid, aid]),
                )
                for sid, aid in zip(sids, aids)
            )
        return sorted(triples, key=lambda t: (repr(t[0]), repr(t[1])))

    # -- persistence ---------------------------------------------------------

    def to_json(self) -> str:
        """Serialize all entries (states/actions must be JSON-encodable)."""
        entries = [
            [_encode_key(s), _encode_key(a), v] for s, a, v in self.items()
        ]
        return json.dumps(
            {"init_scale": self._init_scale, "entries": entries},
            sort_keys=True,
        )

    @classmethod
    def from_json(cls, text: str, seed: int = 0, backend: str = "array") -> "QTable":
        """Restore a table serialized by :meth:`to_json`."""
        try:
            data = json.loads(text)
        except json.JSONDecodeError as exc:
            raise ValidationError(f"malformed QTable JSON: {exc}") from exc
        table = cls(
            init_scale=float(data.get("init_scale", 1e-3)),
            seed=seed,
            backend=backend,
        )
        for s, a, v in data.get("entries", []):
            table.set(_decode_key(s), _decode_key(a), float(v))
        return table

    def save_shards(self, directory: Union[str, Path]) -> Path:
        """Persist a shard-backed table shard-by-shard (+ manifest).

        Writes one ``.npz`` per used shard and a canonical-JSON
        ``manifest.json`` carrying the shard layout plus this table's
        interning maps in id order, so :meth:`load_shards` restores the
        exact intern order (unlike :meth:`from_json`, which re-interns
        in sorted-entry order).  Returns the manifest path.
        """
        if self._backend != "shard":
            raise ValidationError(
                f"save_shards requires backend='shard', "
                f"got {self._backend!r}"
            )
        return self._store.save(
            directory,
            rows_used=len(self._states),
            cols_used=len(self._actions),
            extra={
                "init_scale": self._init_scale,
                "states": [_encode_key(s) for s in self._states],
                "actions": [_encode_key(a) for a in self._actions],
            },
        )

    @classmethod
    def load_shards(
        cls,
        directory: Union[str, Path],
        seed: int = 0,
        shard_dir: Optional[Union[str, Path]] = None,
    ) -> "QTable":
        """Restore a table saved by :meth:`save_shards`.

        ``seed`` re-derives a fresh init stream (same convention as
        :meth:`from_json`); ``shard_dir`` re-memmaps the restored
        values there instead of loading them into RAM.
        """
        store, manifest = ShardStore.load(directory, shard_dir)
        table = cls(
            init_scale=float(manifest.get("init_scale", 1e-3)),
            seed=seed,
            backend="shard",
            shard_rows=store.shard_rows,
        )
        table._store = store
        table._states = [_decode_key(s) for s in manifest["states"]]
        table._state_ids = {s: i for i, s in enumerate(table._states)}
        table._actions = [_decode_key(a) for a in manifest["actions"]]
        table._action_ids = {a: i for i, a in enumerate(table._actions)}
        table._n_known = int(
            sum(
                int(store.known_row(sid)[: len(table._actions)].sum())
                for sid in range(len(table._states))
            )
        )
        # loaded rows have unknown write history: mark them all at the
        # current era so delta snapshots never under-report them
        table._row_era = {sid: 0 for sid in range(len(table._states))}
        return table

    def copy(self) -> "QTable":
        """Independent copy (shares no state, fresh init stream)."""
        if self._backend == "shard":
            out = QTable(
                init_scale=self._init_scale,
                backend="shard",
                shard_rows=self._store.shard_rows,
            )
        else:
            out = QTable(init_scale=self._init_scale, backend=self._backend)
        if self._backend == "dict":
            out._values = dict(self._values)
        else:
            out._state_ids = dict(self._state_ids)
            out._states = list(self._states)
            out._action_ids = dict(self._action_ids)
            out._actions = list(self._actions)
            if self._backend == "shard":
                out._store = self._store.copy()
            else:
                out._q = self._q.copy()
                out._known = self._known.copy()
            out._n_known = self._n_known
            out._row_era = dict(self._row_era)
        out._version = self._version
        return out

    # -- versioned snapshots (distributed learning) --------------------------

    @property
    def version(self) -> int:
        """Monotone mutation-era counter (see :meth:`bump_version`)."""
        return self._version

    def bump_version(self) -> int:
        """Advance the version counter; returns the new version.

        The table does not bump itself on writes — per-step increments
        would make the counter meaningless across the thousands of
        updates inside one episode.  The owner (the distributed
        learner) bumps once per committed episode instead, which is the
        granularity at which snapshots are taken and compared.
        """
        self._version += 1
        return self._version

    def mark_row_dirty(self, sid: int) -> None:
        """Record that row ``sid`` is (about to be) written directly.

        The fused engine and the replay kernels write Q-rows through
        raw array references the table never sees; they mark the row
        here (once per episode is enough — the era only changes when
        the version does) so delta snapshots stay a superset of the
        rows that actually changed.
        """
        self._row_era[sid] = self._version

    def snapshot(self, since: Optional[int] = None) -> QTableSnapshot:
        """Capture the table state as a :class:`QTableSnapshot`.

        Includes the interning maps, the dense/shard/dict storage, the
        lazy-init mask and — crucially — the ``qtable-init`` stream's
        bit-generator state, so a restored table draws the exact same
        first-touch initialization values in the exact same order as
        the original.  (``copy()`` deliberately does *not* carry the
        stream: it hands out an independent table.  Snapshots exist to
        clone the table's future, which is what speculative rollout
        actors need.)

        ``since=K`` returns a *delta* snapshot instead: only the rows
        whose write era is ``>= K`` (a superset of the rows that
        changed after version ``K``), gathered into one dense block —
        for the shard backend this skips copying the untouched shards
        entirely.  A holder of the table's exact version-``K`` state
        reaches the full current state by restoring the delta
        (:meth:`restore` patches the rows in place).  The dict backend
        has no row structure and falls back to a full snapshot.
        """
        payload: Tuple[Any, ...]
        if since is not None and self._backend != "dict":
            if since < 0 or since > self._version:
                raise ValidationError(
                    f"since must be in [0, {self._version}], got {since}"
                )
            n_cols = len(self._actions)
            rows = sorted(
                sid for sid, era in self._row_era.items() if era >= since
            )
            rows_idx = np.asarray(rows, dtype=np.int64)
            q_block = np.empty((len(rows), n_cols), dtype=np.float64)
            known_block = np.empty((len(rows), n_cols), dtype=bool)
            if self._backend == "shard":
                for i, sid in enumerate(rows):
                    q_block[i] = self._store.q_row(sid)[:n_cols]
                    known_block[i] = self._store.known_row(sid)[:n_cols]
            else:
                q_block[:] = self._q[rows_idx, :n_cols]
                known_block[:] = self._known[rows_idx, :n_cols]
            return QTableSnapshot(
                backend=self._backend,
                version=self._version,
                init_scale=self._init_scale,
                rng_state=self._rng.bit_generator.state,
                payload=(
                    rows_idx,
                    q_block,
                    known_block,
                    dict(self._state_ids),
                    list(self._states),
                    dict(self._action_ids),
                    list(self._actions),
                    self._n_known,
                ),
                base_version=since,
            )
        if self._backend == "dict":
            payload = (dict(self._values),)
        elif self._backend == "shard":
            payload = (
                self._store.copy(),
                dict(self._state_ids),
                list(self._states),
                dict(self._action_ids),
                list(self._actions),
                self._n_known,
            )
        else:
            payload = (
                self._q.copy(),
                self._known.copy(),
                dict(self._state_ids),
                list(self._states),
                dict(self._action_ids),
                list(self._actions),
                self._n_known,
            )
        return QTableSnapshot(
            backend=self._backend,
            version=self._version,
            init_scale=self._init_scale,
            rng_state=self._rng.bit_generator.state,
            payload=payload,
        )

    def restore(self, snap: QTableSnapshot) -> None:
        """Restore state captured by :meth:`snapshot` (same backend only).

        Restores content, interning maps, init-stream state *and* the
        stamped version, so rolling back to a snapshot re-enters that
        mutation era exactly.  The id-keyed action-slice memo is
        discarded: its ensured-state sets describe the pre-restore
        table and object ids may alias, so keeping it would be unsound.

        A *delta* snapshot (``snapshot(since=K)``) patches in place
        instead of replacing storage: the table must currently hold the
        exact version-``K`` state the delta was computed against
        (enforced via the version counter), then the delta's rows are
        scattered over it and the maps/stream/version adopted — landing
        on a state bit-identical to restoring a full snapshot of the
        same moment.
        """
        if snap.backend != self._backend:
            raise ValidationError(
                f"cannot restore a {snap.backend!r} snapshot into a "
                f"{self._backend!r} table"
            )
        if snap.base_version is not None:
            if self._version != snap.base_version:
                raise ValidationError(
                    f"delta snapshot patches version {snap.base_version}, "
                    f"but this table is at version {self._version}"
                )
            (
                rows_idx, q_block, known_block,
                sids, states, aids, actions, n_known,
            ) = snap.payload
            self._init_scale = snap.init_scale
            self._state_ids = dict(sids)
            self._states = list(states)
            self._action_ids = dict(aids)
            self._actions = list(actions)
            n_rows = len(self._states)
            n_cols = len(self._actions)
            if self._backend == "shard":
                self._store.ensure_rows(n_rows)
                self._store.ensure_cols(n_cols)
                for i, sid in enumerate(rows_idx):
                    self._store.q_row(int(sid))[:n_cols] = q_block[i]
                    self._store.known_row(int(sid))[:n_cols] = known_block[i]
            else:
                if (
                    n_rows > self._q.shape[0]
                    or n_cols > self._q.shape[1]
                ):
                    self._grow(n_rows, n_cols)
                if rows_idx.size:
                    self._q[rows_idx, :n_cols] = q_block
                    self._known[rows_idx, :n_cols] = known_block
            self._n_known = n_known
            self._id_memo = {}
            era = snap.version
            for sid in rows_idx:
                self._row_era[int(sid)] = era
            self._rng.bit_generator.state = snap.rng_state
            self._version = snap.version
            return
        self._init_scale = snap.init_scale
        if self._backend == "dict":
            self._values = dict(snap.payload[0])
        else:
            if self._backend == "shard":
                store, sids, states, aids, actions, n_known = snap.payload
                self._store = store.copy()
            else:
                q, known, sids, states, aids, actions, n_known = snap.payload
                self._q = q.copy()
                self._known = known.copy()
            self._state_ids = dict(sids)
            self._states = list(states)
            self._action_ids = dict(aids)
            self._actions = list(actions)
            self._n_known = n_known
            self._id_memo = {}
        self._rng.bit_generator.state = snap.rng_state
        self._version = snap.version

    # -- pickling ------------------------------------------------------------

    def __getstate__(self) -> Dict[str, Any]:
        """Drop the id-keyed memo: object ids do not survive a pickle."""
        state = self.__dict__.copy()
        state.pop("_id_memo", None)
        return state

    def __setstate__(self, state: Dict[str, Any]) -> None:
        self.__dict__.update(state)
        if self._backend != "dict":
            self._id_memo = {}
