"""Action-selection policies.

**Important convention.** The paper states (twice — §II and §III-C) that
"with probability ε the best action is taken ... otherwise an action is
selected at random".  That is the *inverse* of the textbook ε-greedy
(where ε is the exploration probability): here ε is the **exploitation
probability**.  Its evaluation is consistent with that reading — the best
Table III/IV results use ε = 0.1, i.e. heavy exploration across the 100
learning episodes.  :class:`EpsilonGreedyPolicy` implements the paper's
convention by default; pass ``epsilon_is_exploration=True`` for the
textbook one.
"""

from __future__ import annotations

import abc
import math
from typing import Hashable, List, Optional

import numpy as np

from repro.rl.qtable import QTable
from repro.util.validate import ValidationError, check_probability

__all__ = [
    "ActionPolicy",
    "EpsilonGreedyPolicy",
    "DecayingEpsilonPolicy",
    "SoftmaxPolicy",
]


class ActionPolicy(abc.ABC):
    """Chooses an action given a Q-table, a state and the legal actions."""

    @abc.abstractmethod
    def choose(
        self,
        qtable: QTable,
        state: Hashable,
        actions: List[Hashable],
        rng: np.random.Generator,
    ) -> Hashable:
        """Return one of ``actions``."""

    def episode_finished(self) -> None:
        """Hook for per-episode schedules (decay); default no-op."""


class EpsilonGreedyPolicy(ActionPolicy):
    """The paper's ε-greedy: exploit with probability ε, else random.

    Parameters
    ----------
    epsilon:
        Probability in [0, 1].
    epsilon_is_exploration:
        When True, use the textbook convention instead (explore with
        probability ε).
    """

    #: Outcome of the most recent ε-coin: ``True`` if the last
    #: :meth:`choose` explored, ``False`` if it exploited, ``None``
    #: before the first call.  Read by the decision-trace recorder
    #: (:class:`repro.sim.trace.TracingScheduler`) so rollout actors can
    #: log the draw without perturbing the stream.
    last_explored: Optional[bool] = None

    def __init__(self, epsilon: float, epsilon_is_exploration: bool = False) -> None:
        self.epsilon = check_probability("epsilon", epsilon)
        self.epsilon_is_exploration = bool(epsilon_is_exploration)

    def _exploit_probability(self) -> float:
        if self.epsilon_is_exploration:
            return 1.0 - self.epsilon
        return self.epsilon

    def choose(self, qtable, state, actions, rng):
        if not actions:
            raise ValidationError("cannot choose from an empty action set")
        if rng.random() < self._exploit_probability():
            self.last_explored = False
            return qtable.best_action(state, actions, rng)
        self.last_explored = True
        return actions[int(rng.integers(len(actions)))]

    def choose_batch(
        self,
        qtables: List[QTable],
        state: Hashable,
        action_batches: List[List[Hashable]],
        rngs: List[np.random.Generator],
    ) -> List[Optional[Hashable]]:
        """ε-greedy selection for B lockstep lanes in one call.

        One decision per lane, in lane order.  The per-lane RNG streams
        are part of the bit-identity contract — lane b's draws must not
        depend on B — so the exploration coins cannot be fused into one
        vectorized draw; what *is* batched is the Q-value read inside
        each exploitation, which is a single numpy gather over the
        lane's interned dense row (``QTable.best_action``).  Lanes with
        an empty action batch yield ``None`` ("do nothing").
        """
        if not (len(qtables) == len(action_batches) == len(rngs)):
            raise ValidationError(
                "choose_batch needs one qtable, action batch and rng "
                f"per lane: got {len(qtables)}/{len(action_batches)}/"
                f"{len(rngs)}"
            )
        return [
            self.choose(qtable, state, actions, rng) if actions else None
            for qtable, actions, rng in zip(qtables, action_batches, rngs)
        ]


class DecayingEpsilonPolicy(EpsilonGreedyPolicy):
    """Exploitation probability that anneals toward 1.0 across episodes.

    Starts at ``epsilon`` and approaches ``epsilon_final`` geometrically
    with per-episode factor ``decay`` — an extension the paper's future
    work hints at ("more episodes" should shift from exploring to
    exploiting).
    """

    def __init__(
        self,
        epsilon: float = 0.1,
        epsilon_final: float = 0.95,
        decay: float = 0.97,
    ) -> None:
        super().__init__(epsilon)
        self.epsilon_final = check_probability("epsilon_final", epsilon_final)
        self.decay = check_probability("decay", decay)

    def episode_finished(self) -> None:
        # move epsilon a (1-decay) fraction of the way to its target
        self.epsilon = self.epsilon_final + (self.epsilon - self.epsilon_final) * self.decay


class SoftmaxPolicy(ActionPolicy):
    """Boltzmann exploration: P(a) ∝ exp(Q(s, a) / temperature)."""

    def __init__(self, temperature: float = 1.0) -> None:
        if temperature <= 0:
            raise ValidationError("temperature must be > 0")
        self.temperature = float(temperature)

    def choose(self, qtable, state, actions, rng):
        if not actions:
            raise ValidationError("cannot choose from an empty action set")
        values = np.array([qtable.value(state, a) for a in actions])
        logits = values / self.temperature
        logits -= logits.max()  # numerical stability
        probs = np.exp(logits)
        total = probs.sum()
        if not math.isfinite(total) or total <= 0:
            return actions[int(rng.integers(len(actions)))]
        probs /= total
        return actions[int(rng.choice(len(actions), p=probs))]
