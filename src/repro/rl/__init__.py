"""Reinforcement-learning core: Q-tables, policies, rewards and agents.

Implements the paper's §II machinery — tabular Q-learning (Algorithm 1)
with the ε-greedy convention *as written in the paper* (ε is the
probability of exploiting, not exploring) — plus the Costa-et-al.-derived
reward function of §III-B, and SARSA / Double Q-learning variants used by
the ablation benchmarks.
"""

from repro.rl.qtable import QTable, QTableSnapshot
from repro.rl.replay import ReplayKernel
from repro.rl.policy import (
    ActionPolicy,
    EpsilonGreedyPolicy,
    DecayingEpsilonPolicy,
    SoftmaxPolicy,
)
from repro.rl.reward import PerformanceReward, VmPerformanceTracker
from repro.rl.cost_reward import CostAwarePerformanceReward
from repro.rl.qlearning import QLearningAgent, EpisodeStats
from repro.rl.sarsa import SarsaAgent
from repro.rl.qlambda import QLambdaAgent
from repro.rl.double_q import DoubleQAgent
from repro.rl.environment import DiscreteEnv, WORKFLOW_STATES
from repro.rl.toy import ChainEnv, CliffWalk, GridWorld, TwoArmBandit

__all__ = [
    "QTable",
    "QTableSnapshot",
    "ReplayKernel",
    "ActionPolicy",
    "EpsilonGreedyPolicy",
    "DecayingEpsilonPolicy",
    "SoftmaxPolicy",
    "PerformanceReward",
    "CostAwarePerformanceReward",
    "VmPerformanceTracker",
    "QLearningAgent",
    "EpisodeStats",
    "SarsaAgent",
    "QLambdaAgent",
    "DoubleQAgent",
    "DiscreteEnv",
    "WORKFLOW_STATES",
    "ChainEnv",
    "TwoArmBandit",
    "GridWorld",
    "CliffWalk",
]
