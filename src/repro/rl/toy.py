"""Small reference MDPs for validating the tabular agents.

Standard environments from the RL literature, sized so full convergence
takes milliseconds — used by the test suite to certify each agent's
update rule, and available to users for sanity-checking custom policies
or rewards before wiring them into the scheduling loop.
"""

from __future__ import annotations

from typing import List, Tuple

from repro.rl.environment import DiscreteEnv
from repro.util.validate import ValidationError

__all__ = ["ChainEnv", "TwoArmBandit", "GridWorld", "CliffWalk"]


class ChainEnv(DiscreteEnv):
    """States 0..n; 'right' reaches the +10 goal, 'left' retreats.

    Optimal policy: always 'right'.  The per-step −0.1 makes dawdling
    costly, so value must propagate the terminal reward back along the
    chain — the classic credit-assignment benchmark (and where
    :class:`~repro.rl.qlambda.QLambdaAgent` visibly beats one-step
    Q-learning).
    """

    def __init__(self, n: int = 5) -> None:
        if n < 1:
            raise ValidationError("chain length must be >= 1")
        self.n = n
        self.state = 0

    def reset(self) -> int:
        self.state = 0
        return 0

    def actions(self, state) -> List[str]:
        return [] if state >= self.n else ["left", "right"]

    def step(self, action) -> Tuple[int, float, bool]:
        if action == "right":
            self.state += 1
        else:
            self.state = max(0, self.state - 1)
        done = self.state >= self.n
        return self.state, (10.0 if done else -0.1), done


class TwoArmBandit(DiscreteEnv):
    """One state, two deterministic arms (1.0 vs 0.2).

    The smallest possible check that an agent's argmax and update wiring
    agree: after training, Q('s','good') must equal 1.0 exactly.
    """

    def reset(self) -> str:
        return "s"

    def actions(self, state) -> List[str]:
        return [] if state == "done" else ["good", "bad"]

    def step(self, action) -> Tuple[str, float, bool]:
        return "done", (1.0 if action == "good" else 0.2), True


class GridWorld(DiscreteEnv):
    """A w×h grid: start at (0, 0), goal at the opposite corner.

    Moves cost −1; reaching the goal pays +20.  Optimal return is
    ``20 - (w + h - 2)``.
    """

    MOVES = {"up": (0, -1), "down": (0, 1), "left": (-1, 0), "right": (1, 0)}

    def __init__(self, width: int = 4, height: int = 4) -> None:
        if width < 2 or height < 2:
            raise ValidationError("grid must be at least 2x2")
        self.width = width
        self.height = height
        self.pos = (0, 0)

    @property
    def goal(self) -> Tuple[int, int]:
        return (self.width - 1, self.height - 1)

    def reset(self) -> Tuple[int, int]:
        self.pos = (0, 0)
        return self.pos

    def actions(self, state) -> List[str]:
        return [] if state == self.goal else sorted(self.MOVES)

    def step(self, action) -> Tuple[Tuple[int, int], float, bool]:
        dx, dy = self.MOVES[action]
        x = min(max(self.pos[0] + dx, 0), self.width - 1)
        y = min(max(self.pos[1] + dy, 0), self.height - 1)
        self.pos = (x, y)
        done = self.pos == self.goal
        return self.pos, (20.0 if done else -1.0), done


class CliffWalk(DiscreteEnv):
    """Sutton & Barto's cliff: the shortest path skirts a −100 drop.

    The canonical environment separating Q-learning (walks the cliff
    edge — optimal but risky under an exploring policy) from SARSA
    (learns the safer detour).  Stepping off the cliff returns to the
    start with −100; reaching the goal ends the episode.
    """

    def __init__(self, width: int = 6) -> None:
        if width < 3:
            raise ValidationError("cliff width must be >= 3")
        self.width = width
        self.height = 3
        self.pos = (0, self.height - 1)

    @property
    def goal(self) -> Tuple[int, int]:
        return (self.width - 1, self.height - 1)

    def reset(self) -> Tuple[int, int]:
        self.pos = (0, self.height - 1)
        return self.pos

    def actions(self, state) -> List[str]:
        return [] if state == self.goal else ["up", "down", "left", "right"]

    def step(self, action) -> Tuple[Tuple[int, int], float, bool]:
        dx, dy = GridWorld.MOVES[action]
        x = min(max(self.pos[0] + dx, 0), self.width - 1)
        y = min(max(self.pos[1] + dy, 0), self.height - 1)
        # the bottom row between start and goal is the cliff
        if y == self.height - 1 and 0 < x < self.width - 1:
            self.pos = (0, self.height - 1)
            return self.pos, -100.0, False
        self.pos = (x, y)
        if self.pos == self.goal:
            return self.pos, 0.0, True
        return self.pos, -1.0, False
