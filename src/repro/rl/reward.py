"""The ReASSIgN reward function (paper §III-B, after Costa et al.).

Per executed activation *i* on VM *j* the paper defines

- ``Pi_j  = tt_i * mu + (1 - mu) * tf_i``       (single-execution index)
- ``P̄i_j = t̄e * mu + (1 - mu) * t̄f``  over vm_j's history   (Eq. 4)
- ``P̄w   = t̄e * mu + (1 - mu) * t̄f``  over all activations  (Eq. 5)
- crisp partial reward ``r_i = -1 if P̄i_j > P̄w + stdv else +1``  (Eq. 6)
- smoothed reward ``r^t = r^{t-1} + rho * (r_i - r^{t-1})``

Smaller performance indices are better (they are time-valued), so a VM
whose average index exceeds the global average by more than one standard
deviation is punished.

The paper does not pin down *which* standard deviation ``stdv`` is; the
reading that makes Eq. 6 dimensionally and statistically coherent — and
the one we implement — is the dispersion of the per-VM average indices
``{P̄i_j}`` across VMs (how much VMs deviate from the fleet mean).  With
fewer than two VMs observed the stdv is 0 and Eq. 6 degenerates to a
straight mean comparison.

All aggregates use O(1) online accumulators (Welford) so a reward step is
constant-time regardless of history length.
"""

from __future__ import annotations

import math
from typing import Dict, Iterable, List, Tuple

from repro.util.stats import RunningStats
from repro.util.validate import ValidationError, check_probability

__all__ = ["VmPerformanceTracker", "PerformanceReward"]


class VmPerformanceTracker:
    """Execution/queue time history of one VM."""

    def __init__(self, mu: float) -> None:
        self.mu = check_probability("mu", mu)
        self.exec_times = RunningStats()
        self.queue_times = RunningStats()

    def observe(self, te: float, tf: float) -> None:
        """Record one activation's execution (te) and queue (tf) times."""
        if te < 0 or tf < 0:
            raise ValidationError(f"times must be >= 0, got te={te}, tf={tf}")
        self.exec_times.push(te)
        self.queue_times.push(tf)

    @property
    def count(self) -> int:
        return self.exec_times.count

    @property
    def mean_index(self) -> float:
        """``P̄i_j`` (Eq. 4) — 0.0 when the VM has no history."""
        return (
            self.exec_times.mean * self.mu
            + (1.0 - self.mu) * self.queue_times.mean
        )


class PerformanceReward:
    """Stateful reward model shared across an entire learning run.

    The paper carries "all relevant learning and analysis information"
    across episodes, so by default the performance history persists across
    :meth:`start_episode` calls and only the smoothed reward ``r^t``
    resets to 0 (Algorithm 2 line ``r^t <- 0``).

    Parameters
    ----------
    mu:
        Balance between total/execution time and queue time (paper uses
        0.5 in all experiments).
    rho:
        Smoothing weight of the crisp partial reward against the previous
        reward.
    """

    def __init__(self, mu: float = 0.5, rho: float = 0.5) -> None:
        self.mu = check_probability("mu", mu)
        self.rho = check_probability("rho", rho)
        self._vms: Dict[int, VmPerformanceTracker] = {}
        self._global_exec = RunningStats()
        self._global_queue = RunningStats()
        self._reward = 0.0

    # -- episode control ----------------------------------------------------

    def start_episode(self, keep_history: bool = True) -> None:
        """Begin a new episode: r^t resets; history persists by default."""
        self._reward = 0.0
        if not keep_history:
            self._vms.clear()
            self._global_exec = RunningStats()
            self._global_queue = RunningStats()

    # -- observations -------------------------------------------------------

    def observe(self, vm_id: int, te: float, tf: float) -> None:
        """Record one execution without computing a reward (replay/bootstrap)."""
        tracker = self._vms.get(vm_id)
        if tracker is None:
            tracker = self._vms[vm_id] = VmPerformanceTracker(self.mu)
        tracker.observe(te, tf)
        self._global_exec.push(te)
        self._global_queue.push(tf)

    # -- the paper's quantities ----------------------------------------------

    def single_index(self, te: float, tf: float) -> float:
        """``Pi = tt * mu + (1 - mu) * tf`` for one execution."""
        return (te + tf) * self.mu + (1.0 - self.mu) * tf

    def vm_index(self, vm_id: int) -> float:
        """``P̄i_j`` of one VM (Eq. 4); 0.0 for an unobserved VM."""
        tracker = self._vms.get(vm_id)
        return tracker.mean_index if tracker is not None else 0.0

    def global_index(self) -> float:
        """``P̄w`` over all activations (Eq. 5)."""
        return (
            self._global_exec.mean * self.mu
            + (1.0 - self.mu) * self._global_queue.mean
        )

    def index_std(self) -> float:
        """``stdv`` — dispersion of per-VM average indices across VMs.

        Inlined Welford recurrence (the exact float-op order of
        :meth:`repro.util.stats.RunningStats.push`, so the result is
        bit-identical to pushing through a fresh accumulator): this runs
        once per reward step, i.e. once per dispatched activation, and
        is the hottest pure-Python loop in the learning path.
        """
        n = 0
        mean = 0.0
        m2 = 0.0
        for tracker in self._vms.values():
            if tracker.count:
                x = tracker.mean_index
                n += 1
                delta = x - mean
                mean += delta / n
                m2 += delta * (x - mean)
        return math.sqrt(m2 / n) if n >= 2 else 0.0

    def partial_reward(self, vm_id: int) -> float:
        """Crisp ``r_i`` (Eq. 6) for the VM's current history."""
        if self.vm_index(vm_id) > self.global_index() + self.index_std():
            return -1.0
        return 1.0

    # -- the reward step -----------------------------------------------------

    @property
    def reward(self) -> float:
        """Current smoothed reward ``r^t``."""
        return self._reward

    def step(self, vm_id: int, te: float, tf: float) -> float:
        """Observe one execution and return the updated smoothed reward.

        Implements the full §III-B sequence: update vm_j's and the global
        history with (te, tf), compute the crisp ``r_i`` and fold it into
        ``r^t = r^{t-1} + rho * (r_i - r^{t-1})``.
        """
        self.observe(vm_id, te, tf)
        r_i = self.partial_reward(vm_id)
        self._reward = self._reward + self.rho * (r_i - self._reward)
        return self._reward

    # -- introspection -------------------------------------------------------

    def vm_ids(self) -> List[int]:
        """VMs with at least one observation."""
        return sorted(self._vms)

    def snapshot(self) -> List[Tuple[int, int, float]]:
        """(vm_id, n_observations, P̄i_j) per VM — for provenance dumps."""
        return [
            (vm_id, self._vms[vm_id].count, self._vms[vm_id].mean_index)
            for vm_id in self.vm_ids()
        ]

    def bootstrap(self, history: Iterable[Tuple[int, float, float]]) -> None:
        """Seed the model from prior provenance: (vm_id, te, tf) triples."""
        for vm_id, te, tf in history:
            self.observe(int(vm_id), float(te), float(tf))
