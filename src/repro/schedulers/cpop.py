"""CPOP — Critical-Path-on-a-Processor (Topcuoglu et al., 2002).

The companion algorithm to HEFT from the same paper.  Priorities are
``rank_u + rank_d`` (upward plus downward rank); the nodes whose
priority equals the entry node's lie on the critical path, and all of
them are pinned to the single *critical-path processor* — the one that
minimizes the path's total execution cost.  Everything else is placed
by earliest finish time, as in HEFT.

Like our HEFT, processor = VM (single planning slot per VM by default,
matching WorkflowSim), and slot occupancy includes staging.
"""

from __future__ import annotations

from typing import Dict, List, Sequence, Tuple

from repro.dag.graph import Workflow
from repro.schedulers.base import EstimateModel, SchedulingPlan, StaticScheduler
from repro.schedulers.heft import _edge_bytes, upward_ranks
from repro.schedulers.timeline import SlotTimeline
from repro.sim.vm import Vm
from repro.util.validate import ValidationError

__all__ = ["CpopScheduler", "downward_ranks"]


def downward_ranks(
    workflow: Workflow, vms: Sequence[Vm], estimates: EstimateModel
) -> Dict[int, float]:
    """CPOP downward ranks: cost of the heaviest path from an entry.

    ``rank_d(entry) = 0``;
    ``rank_d(i) = max_parent(rank_d(p) + w̄(p) + c̄(p, i))``.
    """
    if not vms:
        raise ValidationError("need at least one VM")
    slot_speeds: List[float] = []
    for vm in vms:
        slot_speeds.extend([vm.type.speed] * vm.capacity)
    mean_bw = sum(vm.type.bandwidth_bytes_per_s for vm in vms) / len(vms)

    def w_bar(node: int) -> float:
        runtime = workflow.activation(node).runtime
        return sum(runtime / s for s in slot_speeds) / len(slot_speeds)

    def c_bar(parent: int, child: int) -> float:
        n, size = _edge_bytes(workflow, parent, child)
        return n * estimates.latency + size / mean_bw

    ranks: Dict[int, float] = {}
    for node in workflow.topological_order():
        parents = workflow.parents(node)
        ranks[node] = max(
            (ranks[p] + w_bar(p) + c_bar(p, node) for p in parents),
            default=0.0,
        )
    return ranks


class CpopScheduler(StaticScheduler):
    """Static CPOP planner.

    Parameters
    ----------
    single_slot_vms:
        As in :class:`~repro.schedulers.heft.HeftScheduler`: plan one
        task per VM at a time (default, WorkflowSim-faithful).
    """

    name = "CPOP"

    def __init__(self, estimates=None, single_slot_vms: bool = True) -> None:
        super().__init__(estimates)
        self.single_slot_vms = bool(single_slot_vms)

    def _critical_path(
        self, workflow: Workflow, priority: Dict[int, float]
    ) -> List[int]:
        """Walk the max-priority chain from the entry node."""
        entries = workflow.entries()
        if not entries:
            return []
        top = max(priority.values())
        start = max(entries, key=lambda n: (priority[n], -n))
        path = [start]
        current = start
        while True:
            children = workflow.children(current)
            if not children:
                break
            nxt = max(children, key=lambda n: (priority[n], -n))
            path.append(nxt)
            current = nxt
        return path

    def plan(self, workflow: Workflow, vms: Sequence[Vm]) -> SchedulingPlan:
        """Compute the CPOP plan."""
        workflow.validate()
        if len(workflow) == 0:
            raise ValidationError("cannot plan an empty workflow")
        up = upward_ranks(workflow, vms, self.estimates)
        down = downward_ranks(workflow, vms, self.estimates)
        priority = {n: up[n] + down[n] for n in workflow.activation_ids}

        cp_nodes = set(self._critical_path(workflow, priority))
        # the CP processor minimizes the path's total compute cost
        cp_vm = min(
            vms,
            key=lambda vm: (
                sum(
                    self.estimates.compute_time(workflow.activation(n), vm)
                    for n in cp_nodes
                ),
                vm.id,
            ),
        )

        slots: Dict[int, List[SlotTimeline]] = {
            vm.id: [
                SlotTimeline()
                for _ in range(1 if self.single_slot_vms else vm.capacity)
            ]
            for vm in vms
        }
        placement: Dict[int, int] = {}
        finish: Dict[int, float] = {}
        # CPOP's priority (rank_u + rank_d) is NOT monotone along edges,
        # so schedule from a ready queue: highest priority among nodes
        # whose parents are all placed (the paper's priority queue).
        pending_parents = {
            n: len(workflow.parents(n)) for n in workflow.activation_ids
        }
        ready = {n for n, k in pending_parents.items() if k == 0}
        order: List[int] = []

        while ready:
            node = max(ready, key=lambda n: (priority[n], -n))
            ready.discard(node)
            order.append(node)
            ac = workflow.activation(node)
            release = max(
                (finish[p] for p in workflow.parents(node)), default=0.0
            )
            if node in cp_nodes:
                candidates = [cp_vm]
            else:
                candidates = list(vms)
            best: Tuple[float, float, int, int] = (float("inf"), 0.0, -1, -1)
            for vm in candidates:
                duration = self.estimates.total_time(ac, vm, placement, workflow)
                for slot_idx, timeline in enumerate(slots[vm.id]):
                    start = timeline.earliest_start(release, duration)
                    eft = start + duration
                    if eft < best[0] - 1e-12:
                        best = (eft, start, vm.id, slot_idx)
            eft, start, vm_id, slot_idx = best
            slots[vm_id][slot_idx].reserve(start, eft - start)
            placement[node] = vm_id
            finish[node] = eft
            for child in workflow.children(node):
                pending_parents[child] -= 1
                if pending_parents[child] == 0:
                    ready.add(child)

        return SchedulingPlan(assignment=placement, priority=order, name=self.name)
