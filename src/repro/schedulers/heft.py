"""HEFT — Heterogeneous Earliest Finish Time (Topcuoglu et al., 2002).

The paper's baseline.  Two phases:

1. **Task prioritization** — upward rank ``rank_u(i) = w̄(i) + max_j
   (c̄(i,j) + rank_u(j))`` where ``w̄`` is the mean execution cost over
   processors and ``c̄`` the mean communication cost of the edge.
2. **Processor selection** — tasks in descending rank are placed on the
   processor minimizing their earliest finish time, with the *insertion*
   policy (gaps left by earlier placements may be reused).

Adaptation to this simulator: each vCPU of each VM is one HEFT
"processor", and, because staging occupies the consuming slot here
(shared-storage pulls rather than point-to-point overlapped sends), a
task's slot occupancy is ``stage-in + compute + publish`` and its earliest
start is bounded by its parents' finish times.  Placement on the parent's
VM removes that parent's stage-in cost, so HEFT still sees data locality.
"""

from __future__ import annotations

from typing import Dict, List, Sequence, Tuple

from repro.dag.activation import Activation
from repro.dag.graph import Workflow
from repro.schedulers.base import EstimateModel, SchedulingPlan, StaticScheduler
from repro.schedulers.timeline import SlotTimeline
from repro.sim.vm import Vm
from repro.util.validate import ValidationError

__all__ = ["HeftScheduler", "upward_ranks"]


def _edge_bytes(workflow: Workflow, parent: int, child: int) -> Tuple[int, float]:
    """(n_files, total_bytes) flowing along edge parent->child."""
    parent_ac = workflow.activation(parent)
    child_ac = workflow.activation(child)
    produced = {f.name: f.size_bytes for f in parent_ac.outputs}
    n, total = 0, 0.0
    for f in child_ac.inputs:
        if f.name in produced:
            n += 1
            total += produced[f.name]
    return n, total


def upward_ranks(
    workflow: Workflow, vms: Sequence[Vm], estimates: EstimateModel
) -> Dict[int, float]:
    """HEFT upward ranks for every activation.

    Mean execution cost averages over *slots* (so an 8-vCPU VM counts 8
    times — it really does offer 8 placement options), and mean
    communication cost uses the fleet's mean bandwidth.
    """
    if not vms:
        raise ValidationError("need at least one VM")
    slot_speeds: List[float] = []
    for vm in vms:
        slot_speeds.extend([vm.type.speed] * vm.capacity)
    mean_bw = sum(vm.type.bandwidth_bytes_per_s for vm in vms) / len(vms)

    def w_bar(ac: Activation) -> float:
        return sum(ac.runtime / s for s in slot_speeds) / len(slot_speeds)

    def c_bar(parent: int, child: int) -> float:
        n, size = _edge_bytes(workflow, parent, child)
        return n * estimates.latency + size / mean_bw

    ranks: Dict[int, float] = {}
    for node in reversed(workflow.topological_order()):
        ac = workflow.activation(node)
        best_child = 0.0
        for child in workflow.children(node):
            best_child = max(best_child, c_bar(node, child) + ranks[child])
        ranks[node] = w_bar(ac) + best_child
    return ranks


class HeftScheduler(StaticScheduler):
    """Static HEFT planner.

    Parameters
    ----------
    single_slot_vms:
        When True (default), each VM is one HEFT "processor" executing one
        task at a time — the classic formulation and what WorkflowSim's
        HEFT (the paper's actual baseline) does.  This is why the paper's
        Table V shows HEFT spreading the initial activations sequentially
        over all nine VMs instead of exploiting the 2xlarge's eight vCPUs.
        Set False for a capacity-aware variant that plans per vCPU slot.
    """

    name = "HEFT"

    def __init__(self, estimates=None, single_slot_vms: bool = True) -> None:
        super().__init__(estimates)
        self.single_slot_vms = bool(single_slot_vms)

    def plan(self, workflow: Workflow, vms: Sequence[Vm]) -> SchedulingPlan:
        """Compute the HEFT plan for ``workflow`` on ``vms``."""
        workflow.validate()
        ranks = upward_ranks(workflow, vms, self.estimates)
        # descending rank, ties by id for determinism
        order = sorted(workflow.activation_ids, key=lambda i: (-ranks[i], i))

        slots: Dict[int, List[SlotTimeline]] = {
            vm.id: [
                SlotTimeline()
                for _ in range(1 if self.single_slot_vms else vm.capacity)
            ]
            for vm in vms
        }
        placement: Dict[int, int] = {}
        finish: Dict[int, float] = {}

        for node in order:
            ac = workflow.activation(node)
            release = max(
                (finish[p] for p in workflow.parents(node)), default=0.0
            )
            best: Tuple[float, float, int, int] = (float("inf"), 0.0, -1, -1)
            for vm in vms:
                duration = self.estimates.total_time(ac, vm, placement, workflow)
                for slot_idx, timeline in enumerate(slots[vm.id]):
                    start = timeline.earliest_start(release, duration)
                    eft = start + duration
                    if eft < best[0] - 1e-12:
                        best = (eft, start, vm.id, slot_idx)
            eft, start, vm_id, slot_idx = best
            if vm_id < 0:
                raise ValidationError("HEFT found no feasible slot")
            slots[vm_id][slot_idx].reserve(start, eft - start)
            placement[node] = vm_id
            finish[node] = eft

        return SchedulingPlan(assignment=placement, priority=order, name=self.name)
