"""Simple online schedulers: FCFS, round-robin, random, greedy MCT.

These decide at simulation decision points with no precomputed plan —
useful baselines and test fixtures.  ``RandomScheduler`` doubles as the
"ε = 1 forever" degenerate case of ReASSIgN.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.schedulers.base import Decision, OnlineScheduler
from repro.sim.simulator import SimulationContext
from repro.util.rng import RngService

__all__ = [
    "FcfsScheduler",
    "RoundRobinScheduler",
    "RandomScheduler",
    "GreedyOnlineScheduler",
]


class FcfsScheduler(OnlineScheduler):
    """First ready activation (lowest id, earliest ready) to the first idle VM."""

    def select(self, ctx: SimulationContext) -> Optional[Decision]:
        ready = ctx.ready_activations
        idle = ctx.idle_vms
        if not ready or not idle:
            return None
        ac = min(ready, key=lambda a: (ctx.ready_time(a.id), a.id))
        vm = min(idle, key=lambda v: v.id)
        return (ac.id, vm.id)


class RoundRobinScheduler(OnlineScheduler):
    """Cycle through VM ids; ready activations taken in id order."""

    def __init__(self) -> None:
        self._cursor = 0

    def select(self, ctx: SimulationContext) -> Optional[Decision]:
        ready = ctx.ready_activations
        idle = ctx.idle_vms
        if not ready or not idle:
            return None
        idle_sorted = sorted(idle, key=lambda v: v.id)
        # advance the cursor to the next idle VM in cyclic id order
        vm = idle_sorted[self._cursor % len(idle_sorted)]
        self._cursor += 1
        return (ready[0].id, vm.id)


class RandomScheduler(OnlineScheduler):
    """Uniformly random (ready activation, idle VM) pairs."""

    def __init__(self, seed: int = 0) -> None:
        self._rng: np.random.Generator = RngService(seed).stream("random-scheduler")

    def select(self, ctx: SimulationContext) -> Optional[Decision]:
        ready = ctx.ready_activations
        idle = ctx.idle_vms
        if not ready or not idle:
            return None
        ac = ready[self._rng.integers(len(ready))]
        vm = idle[self._rng.integers(len(idle))]
        return (ac.id, vm.id)


class GreedyOnlineScheduler(OnlineScheduler):
    """Online MCT: dispatch the longest ready task to its fastest idle VM.

    A myopic but strong baseline: ranking ready work by nominal runtime
    and matching it to the VM minimizing estimated (staging + compute)
    time approximates dynamic min-completion-time scheduling.
    """

    def select(self, ctx: SimulationContext) -> Optional[Decision]:
        ready = ctx.ready_activations
        idle = ctx.idle_vms
        if not ready or not idle:
            return None
        ac = max(ready, key=lambda a: (a.runtime, -a.id))
        vm = min(
            idle,
            key=lambda v: (
                ctx.estimated_stage_in(ac, v) + ctx.estimated_execution(ac, v),
                v.id,
            ),
        )
        return (ac.id, vm.id)
