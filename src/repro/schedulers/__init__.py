"""Scheduling algorithms.

Two families share one simulator interface:

- **online schedulers** decide at simulation decision points
  (:class:`~repro.schedulers.base.OnlineScheduler`): FCFS, round-robin,
  random, MCT — and ReASSIgN itself (in :mod:`repro.core`);
- **static planners** compute a full
  :class:`~repro.schedulers.base.SchedulingPlan` up front
  (:class:`~repro.schedulers.base.StaticScheduler`): HEFT (the paper's
  baseline), Min-Min, Max-Min, Sufferage, OLB — executed through
  :class:`~repro.schedulers.base.PlanFollowingScheduler`.
"""

from repro.schedulers.base import (
    EstimateModel,
    OnlineScheduler,
    PlanFollowingScheduler,
    SchedulingPlan,
    StaticScheduler,
)
from repro.schedulers.budget import BudgetConstrainedScheduler
from repro.schedulers.cpop import CpopScheduler
from repro.schedulers.deadline import DeadlineConstrainedScheduler
from repro.schedulers.heft import HeftScheduler
from repro.schedulers.locality import LocalityScheduler
from repro.schedulers.listsched import (
    MaxMinScheduler,
    MctScheduler,
    MinMinScheduler,
    OlbScheduler,
    SufferageScheduler,
)
from repro.schedulers.online import (
    FcfsScheduler,
    GreedyOnlineScheduler,
    RandomScheduler,
    RoundRobinScheduler,
)

__all__ = [
    "EstimateModel",
    "OnlineScheduler",
    "PlanFollowingScheduler",
    "SchedulingPlan",
    "StaticScheduler",
    "HeftScheduler",
    "CpopScheduler",
    "BudgetConstrainedScheduler",
    "DeadlineConstrainedScheduler",
    "LocalityScheduler",
    "MinMinScheduler",
    "MaxMinScheduler",
    "MctScheduler",
    "SufferageScheduler",
    "OlbScheduler",
    "FcfsScheduler",
    "RoundRobinScheduler",
    "RandomScheduler",
    "GreedyOnlineScheduler",
]
