"""Scheduler interfaces, cost estimates and the scheduling-plan object.

The simulator consults an :class:`OnlineScheduler` at every decision point.
Static algorithms (HEFT & friends) instead produce a
:class:`SchedulingPlan` — an activation→VM assignment plus a dispatch
priority — which :class:`PlanFollowingScheduler` replays online.  This is
exactly the paper's two-stage shape: ReASSIgN's learned plan is replayed
the same way when handed to SciCumulus-RL.
"""

from __future__ import annotations

import abc
import json
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.dag.activation import Activation
from repro.dag.graph import Workflow
from repro.sim.estimates import NominalEstimateCache
from repro.sim.simulator import SimulationContext
from repro.sim.vm import Vm
from repro.util.validate import ValidationError, check_non_negative

__all__ = [
    "Decision",
    "EstimateModel",
    "OnlineScheduler",
    "StaticScheduler",
    "SchedulingPlan",
    "PlanFollowingScheduler",
]

#: A schedule action: (activation id, vm id).
Decision = Tuple[int, int]


class EstimateModel:
    """Planning-time cost estimates, aligned with the simulator defaults.

    Static planners cannot observe fluctuation, so they estimate with the
    nominal model: compute = ``runtime / speed``; staging mirrors
    :class:`~repro.sim.network.SharedStorageNetwork` (inputs not produced
    on the same VM are fetched at the consumer's bandwidth; outputs are
    published at the producer's bandwidth).
    """

    def __init__(
        self,
        latency: float = 0.05,
        upload_outputs: bool = True,
        cache: Optional[NominalEstimateCache] = None,
    ) -> None:
        self.latency = check_non_negative("latency", latency)
        self.upload_outputs = bool(upload_outputs)
        if cache is not None and (
            cache.latency != self.latency
            or cache.upload_outputs != self.upload_outputs
        ):
            raise ValidationError(
                "estimate cache parameters do not match the model's"
            )
        self._cache = cache

    def compute_time(self, activation: Activation, vm: Vm) -> float:
        """Nominal compute seconds of ``activation`` on ``vm``."""
        if self._cache is not None:
            return self._cache.compute_time(activation, vm)
        return vm.execution_time(activation.runtime)

    def stage_in_time(
        self,
        activation: Activation,
        vm: Vm,
        placement: Dict[int, int],
        workflow: Workflow,
    ) -> float:
        """Staging estimate given a (partial) activation->VM ``placement``.

        A file is free if its producer is placed on ``vm``; workflow-input
        files always transfer from shared storage.
        """
        producer_of: Dict[str, int] = {}
        for pid in workflow.parents(activation.id):
            for f in workflow.activation(pid).outputs:
                producer_of[f.name] = pid
        if self._cache is not None:
            # same per-file terms summed in the same order as below, so
            # the cached sum is bit-identical to the uncached one
            total = 0.0
            for name, seconds in self._cache.stage_in_terms(activation, vm):
                pid = producer_of.get(name)
                if pid is not None and placement.get(pid) == vm.id:
                    continue  # already local
                total += seconds
            return total
        bw = vm.type.bandwidth_bytes_per_s
        total = 0.0
        for f in activation.inputs:
            pid = producer_of.get(f.name)
            if pid is not None and placement.get(pid) == vm.id:
                continue  # already local
            total += self.latency + f.size_bytes / bw
        return total

    def stage_out_time(self, activation: Activation, vm: Vm) -> float:
        """Publishing estimate."""
        if not self.upload_outputs:
            return 0.0
        if self._cache is not None:
            return self._cache.stage_out_time(activation, vm)
        bw = vm.type.bandwidth_bytes_per_s
        return sum(self.latency + f.size_bytes / bw for f in activation.outputs)

    def total_time(
        self,
        activation: Activation,
        vm: Vm,
        placement: Dict[int, int],
        workflow: Workflow,
    ) -> float:
        """Staging + compute + publishing estimate."""
        return (
            self.stage_in_time(activation, vm, placement, workflow)
            + self.compute_time(activation, vm)
            + self.stage_out_time(activation, vm)
        )


class OnlineScheduler(abc.ABC):
    """Decision-point scheduler driven by the simulator.

    Subclasses implement :meth:`select`; the remaining hooks default to
    no-ops.  ``select`` must return either a valid ``(activation_id,
    vm_id)`` with the activation READY and the VM idle, or ``None`` — the
    paper's *do nothing* action.
    """

    @abc.abstractmethod
    def select(self, ctx: SimulationContext) -> Optional[Decision]:
        """Choose one schedule action, or None to wait."""

    def on_simulation_start(self, ctx: SimulationContext) -> None:
        """Called once before the first dispatch."""

    def on_dispatched(self, ctx: SimulationContext, pending) -> None:
        """Called right after each dispatch with timing information."""

    def on_activation_finished(self, ctx: SimulationContext, record) -> None:
        """Called at each activation completion."""

    def on_simulation_end(self, ctx: SimulationContext, result) -> None:
        """Called once with the final result."""


@dataclass
class SchedulingPlan:
    """A full activation→VM assignment plus a dispatch priority order.

    Attributes
    ----------
    assignment:
        Maps every activation id to a VM id.
    priority:
        Activation ids in dispatch-preference order (e.g. HEFT's
        descending upward rank).  Must be a permutation of the
        assignment's keys.
    name:
        Label of the producing algorithm (for tables/provenance).
    """

    assignment: Dict[int, int]
    priority: List[int] = field(default_factory=list)
    name: str = "plan"

    def __post_init__(self) -> None:
        self.assignment = {int(k): int(v) for k, v in self.assignment.items()}
        if not self.priority:
            self.priority = sorted(self.assignment)
        if sorted(self.priority) != sorted(self.assignment):
            raise ValidationError(
                "plan priority must be a permutation of assigned activations"
            )

    def vm_of(self, activation_id: int) -> int:
        """VM assigned to an activation."""
        try:
            return self.assignment[activation_id]
        except KeyError:
            raise ValidationError(
                f"plan has no assignment for activation {activation_id}"
            ) from None

    def validate_against(self, workflow: Workflow, vms: Sequence[Vm]) -> None:
        """Check the plan covers the workflow and targets existing VMs."""
        wf_ids = set(workflow.activation_ids)
        plan_ids = set(self.assignment)
        if wf_ids != plan_ids:
            missing = sorted(wf_ids - plan_ids)
            extra = sorted(plan_ids - wf_ids)
            raise ValidationError(
                f"plan/workflow mismatch: missing={missing[:5]} extra={extra[:5]}"
            )
        vm_ids = {vm.id for vm in vms}
        bad = sorted(set(self.assignment.values()) - vm_ids)
        if bad:
            raise ValidationError(f"plan targets unknown VMs {bad}")

    def activations_on(self, vm_id: int) -> List[int]:
        """Activation ids assigned to ``vm_id``, in priority order."""
        rank = {ac: i for i, ac in enumerate(self.priority)}
        return sorted(
            (ac for ac, vm in self.assignment.items() if vm == vm_id),
            key=lambda ac: rank[ac],
        )

    # -- serialization ------------------------------------------------------

    def to_json(self) -> str:
        """Serialize to a JSON string."""
        return json.dumps(
            {
                "name": self.name,
                "assignment": {str(k): v for k, v in self.assignment.items()},
                "priority": self.priority,
            },
            sort_keys=True,
        )

    @classmethod
    def from_json(cls, text: str) -> "SchedulingPlan":
        """Parse a plan serialized by :meth:`to_json`."""
        try:
            data = json.loads(text)
        except json.JSONDecodeError as exc:
            raise ValidationError(f"malformed plan JSON: {exc}") from exc
        return cls(
            assignment={int(k): int(v) for k, v in data["assignment"].items()},
            priority=[int(x) for x in data.get("priority", [])],
            name=data.get("name", "plan"),
        )


class StaticScheduler(abc.ABC):
    """An algorithm that computes a full plan before execution."""

    #: label used in tables
    name: str = "static"

    def __init__(self, estimates: Optional[EstimateModel] = None) -> None:
        self.estimates = estimates if estimates is not None else EstimateModel()

    @abc.abstractmethod
    def plan(self, workflow: Workflow, vms: Sequence[Vm]) -> SchedulingPlan:
        """Compute the plan for ``workflow`` on the fleet ``vms``."""

    def as_online(self, workflow: Workflow, vms: Sequence[Vm]) -> "PlanFollowingScheduler":
        """Plan now and wrap the result for simulator execution."""
        return PlanFollowingScheduler(self.plan(workflow, vms))


class PlanFollowingScheduler(OnlineScheduler):
    """Replays a :class:`SchedulingPlan` at simulation decision points.

    At each point it dispatches the highest-priority READY activation
    whose planned VM is idle; if every ready activation's planned VM is
    busy it does nothing (the plan's placement is honoured exactly — work
    is never stolen by an idle-but-unplanned VM).
    """

    def __init__(self, plan: SchedulingPlan) -> None:
        self.plan = plan
        self._rank = {ac: i for i, ac in enumerate(plan.priority)}
        # derived views cached per (ready_version, idle_version) — the
        # context's monotonic generation counters — so back-to-back
        # decisions at the same instant skip the re-sort / set rebuild
        self._ctx: Optional[SimulationContext] = None
        self._ready_key: Optional[int] = None
        self._ready_sorted: List[Any] = []
        self._idle_key: Optional[int] = None
        self._idle_ids: set = set()

    def on_simulation_start(self, ctx: SimulationContext) -> None:
        self.plan.validate_against(ctx.workflow, ctx.vms)

    def select(self, ctx: SimulationContext) -> Optional[Decision]:
        if ctx is not self._ctx:
            # new simulation context: its version counters are unrelated
            # to the previous one's, so drop both caches
            self._ctx = ctx
            self._ready_key = None
            self._idle_key = None
        ready_key = getattr(ctx, "ready_version", None)
        if ready_key is None or ready_key != self._ready_key:
            self._ready_sorted = sorted(
                ctx.ready_activations,
                key=lambda ac: self._rank.get(ac.id, 1 << 30),
            )
            self._ready_key = ready_key
        idle_key = getattr(ctx, "idle_version", None)
        if idle_key is None or idle_key != self._idle_key:
            self._idle_ids = {vm.id for vm in ctx.idle_vms}
            self._idle_key = idle_key
        idle_ids = self._idle_ids
        for ac in self._ready_sorted:
            vm_id = self.plan.vm_of(ac.id)
            if vm_id in idle_ids:
                return (ac.id, vm_id)
        return None
