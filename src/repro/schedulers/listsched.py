"""Classic list-scheduling heuristics: Min-Min, Max-Min, Sufferage, MCT, OLB.

These are the traditional algorithms the paper's introduction cites next
to HEFT.  All are implemented as static planners over the same slot
timelines HEFT uses (append allocation, no insertion), differing only in
how the next (task, slot) pair is chosen:

- **Min-Min** — among ready tasks, commit the (task, slot) pair with the
  globally minimal earliest finish time (favours short tasks first);
- **Max-Min** — commit the ready task whose *best* finish time is largest
  (favours long tasks first);
- **Sufferage** — commit the ready task that would "suffer" most if denied
  its best slot (best vs second-best VM finish-time difference);
- **MCT** — take tasks in topological order, each to its minimal
  completion-time slot (immediate mode);
- **OLB** — take tasks in topological order, each to the earliest-available
  slot regardless of speed (pure load balancing).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Set, Tuple

from repro.dag.graph import Workflow
from repro.schedulers.base import SchedulingPlan, StaticScheduler
from repro.schedulers.timeline import SlotTimeline
from repro.sim.vm import Vm
from repro.util.validate import ValidationError

__all__ = [
    "MinMinScheduler",
    "MaxMinScheduler",
    "SufferageScheduler",
    "MctScheduler",
    "OlbScheduler",
]


class _PlannerState:
    """Shared planning state: slot timelines + placements + finish times."""

    def __init__(self, workflow: Workflow, vms: Sequence[Vm], estimates) -> None:
        if not vms:
            raise ValidationError("need at least one VM")
        self.workflow = workflow
        self.vms = list(vms)
        self.estimates = estimates
        self.slots: Dict[int, List[SlotTimeline]] = {
            vm.id: [SlotTimeline() for _ in range(vm.capacity)] for vm in vms
        }
        self.placement: Dict[int, int] = {}
        self.finish: Dict[int, float] = {}

    def release_time(self, node: int) -> float:
        """Earliest start implied by the task's parents."""
        return max(
            (self.finish[p] for p in self.workflow.parents(node)), default=0.0
        )

    def best_on_vm(self, node: int, vm: Vm) -> Tuple[float, float, int]:
        """(eft, start, slot_idx) of the best slot of ``vm`` for ``node``."""
        ac = self.workflow.activation(node)
        duration = self.estimates.total_time(ac, vm, self.placement, self.workflow)
        release = self.release_time(node)
        best = (float("inf"), 0.0, -1)
        for idx, timeline in enumerate(self.slots[vm.id]):
            start = timeline.earliest_start(release, duration, insertion=False)
            eft = start + duration
            if eft < best[0] - 1e-12:
                best = (eft, start, idx)
        return best

    def vm_finish_times(self, node: int) -> List[Tuple[float, float, int, int]]:
        """Sorted [(eft, start, vm_id, slot_idx)] across the fleet."""
        out = []
        for vm in self.vms:
            eft, start, slot_idx = self.best_on_vm(node, vm)
            out.append((eft, start, vm.id, slot_idx))
        out.sort(key=lambda t: (t[0], t[2]))
        return out

    def commit(self, node: int, eft: float, start: float, vm_id: int, slot_idx: int) -> None:
        """Reserve the chosen slot and record placement/finish."""
        self.slots[vm_id][slot_idx].reserve(start, eft - start)
        self.placement[node] = vm_id
        self.finish[node] = eft


class _ReadySetScheduler(StaticScheduler):
    """Base for batch-mode heuristics operating on the ready set."""

    def plan(self, workflow: Workflow, vms: Sequence[Vm]) -> SchedulingPlan:
        workflow.validate()
        state = _PlannerState(workflow, vms, self.estimates)
        unplaced_parents: Dict[int, int] = {
            i: len(workflow.parents(i)) for i in workflow.activation_ids
        }
        ready: Set[int] = {i for i, n in unplaced_parents.items() if n == 0}
        priority: List[int] = []
        while ready:
            node, choice = self._pick(state, sorted(ready))
            state.commit(node, *choice)
            priority.append(node)
            ready.discard(node)
            for child in workflow.children(node):
                unplaced_parents[child] -= 1
                if unplaced_parents[child] == 0:
                    ready.add(child)
        return SchedulingPlan(
            assignment=state.placement, priority=priority, name=self.name
        )

    def _pick(
        self, state: _PlannerState, ready: List[int]
    ) -> Tuple[int, Tuple[float, float, int, int]]:
        """Return (node, (eft, start, vm_id, slot_idx)) to commit next."""
        raise NotImplementedError


class MinMinScheduler(_ReadySetScheduler):
    """Min-Min: minimal earliest finish time over all (ready task, slot)."""

    name = "Min-Min"

    def _pick(self, state, ready):
        best_node, best_choice = None, None
        for node in ready:
            choice = state.vm_finish_times(node)[0]
            if best_choice is None or choice[0] < best_choice[0] - 1e-12:
                best_node, best_choice = node, choice
        return best_node, best_choice


class MaxMinScheduler(_ReadySetScheduler):
    """Max-Min: the ready task with the largest best finish time goes first."""

    name = "Max-Min"

    def _pick(self, state, ready):
        best_node, best_choice = None, None
        for node in ready:
            choice = state.vm_finish_times(node)[0]
            if best_choice is None or choice[0] > best_choice[0] + 1e-12:
                best_node, best_choice = node, choice
        return best_node, best_choice


class SufferageScheduler(_ReadySetScheduler):
    """Sufferage: prioritize the task hurt most by losing its best VM."""

    name = "Sufferage"

    def _pick(self, state, ready):
        best_node, best_choice, best_suff = None, None, -1.0
        for node in ready:
            table = state.vm_finish_times(node)
            # sufferage compares the best finish on distinct *VMs*
            first = table[0]
            second_eft = next(
                (eft for eft, _, vm_id, _ in table if vm_id != first[2]),
                first[0],
            )
            suff = second_eft - first[0]
            if suff > best_suff + 1e-12:
                best_node, best_choice, best_suff = node, first, suff
        return best_node, best_choice


class MctScheduler(StaticScheduler):
    """MCT: topological order, each task to its min-completion-time slot."""

    name = "MCT"

    def plan(self, workflow: Workflow, vms: Sequence[Vm]) -> SchedulingPlan:
        workflow.validate()
        state = _PlannerState(workflow, vms, self.estimates)
        order = workflow.topological_order()
        for node in order:
            eft, start, vm_id, slot_idx = state.vm_finish_times(node)[0]
            state.commit(node, eft, start, vm_id, slot_idx)
        return SchedulingPlan(
            assignment=state.placement, priority=order, name=self.name
        )


class OlbScheduler(StaticScheduler):
    """OLB: topological order, each task to the earliest-available slot."""

    name = "OLB"

    def plan(self, workflow: Workflow, vms: Sequence[Vm]) -> SchedulingPlan:
        workflow.validate()
        state = _PlannerState(workflow, vms, self.estimates)
        order = workflow.topological_order()
        for node in order:
            best: Optional[Tuple[float, float, float, int, int]] = None
            release = state.release_time(node)
            ac = workflow.activation(node)
            for vm in state.vms:
                duration = state.estimates.total_time(
                    ac, vm, state.placement, state.workflow
                )
                for idx, timeline in enumerate(state.slots[vm.id]):
                    start = timeline.earliest_start(release, duration, insertion=False)
                    key = (start, vm.id)  # earliest availability, not speed
                    if best is None or key < (best[0], best[3]):
                        best = (start, duration, start + duration, vm.id, idx)
            assert best is not None
            start, duration, eft, vm_id, slot_idx = best
            state.commit(node, eft, start, vm_id, slot_idx)
        return SchedulingPlan(
            assignment=state.placement, priority=order, name=self.name
        )
