"""Data-locality-aware online scheduling.

The paper's related work motivates data-aware placement (Wang et al.,
"Optimizing load balancing and data-locality with data-aware
scheduling").  :class:`LocalityScheduler` is that idea as an online
scheduler for this simulator: among (ready activation, idle VM) pairs it
maximizes the number of input bytes already resident on the candidate VM
(its producers ran there), breaking ties by the smaller estimated
completion time.  On data-heavy workflows (CyberShake) this competes
with compute-oriented heuristics while moving far fewer bytes.
"""

from __future__ import annotations

from typing import Optional, Tuple

from repro.dag.activation import Activation
from repro.schedulers.base import Decision, OnlineScheduler
from repro.sim.simulator import SimulationContext
from repro.sim.vm import Vm

__all__ = ["LocalityScheduler"]


class LocalityScheduler(OnlineScheduler):
    """Greedy maximum-data-affinity dispatch.

    Parameters
    ----------
    locality_weight:
        Seconds of estimated completion time one locally-available
        megabyte is worth.  0 degenerates to pure online MCT; large
        values chase locality even onto slow placements.
    """

    def __init__(self, locality_weight: float = 0.05) -> None:
        if locality_weight < 0:
            raise ValueError("locality_weight must be >= 0")
        self.locality_weight = float(locality_weight)

    def _local_bytes(
        self, ctx: SimulationContext, activation: Activation, vm: Vm
    ) -> float:
        """Input bytes of ``activation`` already present on ``vm``."""
        locations = ctx.file_locations
        return sum(
            f.size_bytes
            for f in activation.inputs
            if locations.get(f.name) == vm.id
        )

    def _score(
        self, ctx: SimulationContext, activation: Activation, vm: Vm
    ) -> Tuple[float, int, int]:
        completion = ctx.estimated_stage_in(activation, vm) + ctx.estimated_execution(
            activation, vm
        )
        bonus = self.locality_weight * self._local_bytes(ctx, activation, vm) / 1e6
        # lower is better; ties resolved deterministically by ids
        return (completion - bonus, activation.id, vm.id)

    def select(self, ctx: SimulationContext) -> Optional[Decision]:
        ready = ctx.ready_activations
        idle = ctx.idle_vms
        if not ready or not idle:
            return None
        best = min(
            ((ac, vm) for ac in ready for vm in idle),
            key=lambda pair: self._score(ctx, pair[0], pair[1]),
        )
        return (best[0].id, best[1].id)
