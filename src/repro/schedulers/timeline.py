"""Per-slot timelines used by static planners.

A :class:`SlotTimeline` tracks the busy intervals of one execution slot
(one vCPU of one VM) during planning, supporting both append-at-end
allocation (list heuristics) and HEFT's insertion policy (reuse of gaps
between already-placed tasks).
"""

from __future__ import annotations

import bisect
from typing import List, Tuple

from repro.util.validate import ValidationError, check_non_negative

__all__ = ["SlotTimeline"]

_EPS = 1e-9


class SlotTimeline:
    """Busy intervals of one planning slot, kept sorted by start time."""

    def __init__(self) -> None:
        self._intervals: List[Tuple[float, float]] = []

    @property
    def intervals(self) -> List[Tuple[float, float]]:
        """Copy of the (start, end) busy intervals."""
        return list(self._intervals)

    @property
    def ready_time(self) -> float:
        """End of the last busy interval (0 when empty)."""
        return self._intervals[-1][1] if self._intervals else 0.0

    def earliest_start(
        self, release: float, duration: float, insertion: bool = True
    ) -> float:
        """Earliest start >= ``release`` where ``duration`` fits.

        With ``insertion=True`` (HEFT policy) gaps between existing
        intervals are considered; otherwise the task goes after the last
        interval.
        """
        check_non_negative("release", release)
        check_non_negative("duration", duration)
        if not insertion or not self._intervals:
            return max(release, self.ready_time)
        # candidate before the first interval
        start = release
        for lo, hi in self._intervals:
            if start + duration <= lo + _EPS:
                return start
            start = max(start, hi)
        return start

    def reserve(self, start: float, duration: float) -> None:
        """Mark ``[start, start + duration)`` busy; overlaps are an error."""
        check_non_negative("start", start)
        check_non_negative("duration", duration)
        end = start + duration
        idx = bisect.bisect_left(self._intervals, (start, end))
        if idx > 0 and self._intervals[idx - 1][1] > start + _EPS:
            raise ValidationError("reservation overlaps an earlier interval")
        if idx < len(self._intervals) and self._intervals[idx][0] < end - _EPS:
            raise ValidationError("reservation overlaps a later interval")
        self._intervals.insert(idx, (start, end))

    def __len__(self) -> int:
        return len(self._intervals)
