"""Budget-constrained list scheduling (after Arabnejad et al., 2016).

The paper's introduction cites "low-time complexity budget-deadline
constrained workflow scheduling on heterogeneous resources" as part of
the cost-model landscape ReASSIgN wants to escape.
:class:`BudgetConstrainedScheduler` implements the core idea as a
HEFT-style planner with a *budget factor*: tasks are prioritized by
upward rank, and each task is placed on the VM minimizing EFT **among
the VMs whose usage cost keeps the plan's spend within the remaining
budget share**; when the budget allows nothing better, the cheapest VM
wins.

Cost here is pay-per-use (busy seconds × hourly price / 3600), matching
:meth:`~repro.sim.metrics.SimulationResult.usage_cost`.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

from repro.dag.graph import Workflow
from repro.schedulers.base import EstimateModel, SchedulingPlan, StaticScheduler
from repro.schedulers.heft import upward_ranks
from repro.schedulers.timeline import SlotTimeline
from repro.sim.vm import Vm
from repro.util.validate import ValidationError, check_non_negative

__all__ = ["BudgetConstrainedScheduler", "cheapest_plan_cost", "heft_plan_cost"]


def _plan_cost(
    workflow: Workflow,
    vms_by_id: Dict[int, Vm],
    assignment: Dict[int, int],
    estimates: EstimateModel,
) -> float:
    """Estimated pay-per-use cost of an assignment."""
    total = 0.0
    for node, vm_id in assignment.items():
        vm = vms_by_id[vm_id]
        duration = estimates.total_time(
            workflow.activation(node), vm, assignment, workflow
        )
        total += duration * vm.type.price_per_hour / 3600.0
    return total


def cheapest_plan_cost(
    workflow: Workflow, vms: Sequence[Vm], estimates: Optional[EstimateModel] = None
) -> float:
    """Lower bound: every task on its cheapest-by-cost VM."""
    estimates = estimates or EstimateModel()
    by_id = {vm.id: vm for vm in vms}
    assignment = {}
    for node in workflow.activation_ids:
        ac = workflow.activation(node)
        cheapest = min(
            vms,
            key=lambda vm: (
                estimates.compute_time(ac, vm) * vm.type.price_per_hour,
                vm.id,
            ),
        )
        assignment[node] = cheapest.id
    return _plan_cost(workflow, by_id, assignment, estimates)


def heft_plan_cost(
    workflow: Workflow, vms: Sequence[Vm], estimates: Optional[EstimateModel] = None
) -> float:
    """Reference point: the cost of the unconstrained HEFT plan."""
    from repro.schedulers.heft import HeftScheduler

    estimates = estimates or EstimateModel()
    plan = HeftScheduler(estimates).plan(workflow, vms)
    return _plan_cost(workflow, {vm.id: vm for vm in vms}, plan.assignment, estimates)


class BudgetConstrainedScheduler(StaticScheduler):
    """HEFT-ranked planning under a monetary budget.

    Parameters
    ----------
    budget:
        Maximum estimated pay-per-use spend (USD).  If even the
        cheapest-possible plan exceeds it, :meth:`plan` raises.
    budget_factor:
        Convenience alternative: budget = cheapest + factor × (HEFT −
        cheapest).  0 reproduces the cheapest plan, 1 leaves HEFT
        unconstrained.  Ignored when ``budget`` is given.
    """

    name = "Budget-HEFT"

    def __init__(
        self,
        budget: Optional[float] = None,
        budget_factor: float = 0.5,
        estimates: Optional[EstimateModel] = None,
        single_slot_vms: bool = True,
    ) -> None:
        super().__init__(estimates)
        if budget is not None:
            check_non_negative("budget", budget)
        self.budget = budget
        self.budget_factor = check_non_negative("budget_factor", budget_factor)
        self.single_slot_vms = bool(single_slot_vms)

    def resolve_budget(self, workflow: Workflow, vms: Sequence[Vm]) -> float:
        """The effective budget for a given problem."""
        if self.budget is not None:
            return self.budget
        lo = cheapest_plan_cost(workflow, vms, self.estimates)
        hi = max(heft_plan_cost(workflow, vms, self.estimates), lo)
        return lo + self.budget_factor * (hi - lo)

    def plan(self, workflow: Workflow, vms: Sequence[Vm]) -> SchedulingPlan:
        """Compute the budget-constrained plan."""
        workflow.validate()
        budget = self.resolve_budget(workflow, vms)
        floor = cheapest_plan_cost(workflow, vms, self.estimates)
        if budget < floor - 1e-9:
            raise ValidationError(
                f"budget ${budget:.4f} is below the cheapest possible plan "
                f"(${floor:.4f})"
            )

        ranks = upward_ranks(workflow, vms, self.estimates)
        order = sorted(workflow.activation_ids, key=lambda n: (-ranks[n], n))
        slots: Dict[int, List[SlotTimeline]] = {
            vm.id: [
                SlotTimeline()
                for _ in range(1 if self.single_slot_vms else vm.capacity)
            ]
            for vm in vms
        }
        placement: Dict[int, int] = {}
        finish: Dict[int, float] = {}
        spent = 0.0
        # per-task budget share: remaining budget spread over remaining
        # tasks proportionally to their cheapest cost
        cheapest_costs = {}
        for node in order:
            ac = workflow.activation(node)
            cheapest_costs[node] = min(
                self.estimates.compute_time(ac, vm)
                * vm.type.price_per_hour / 3600.0
                for vm in vms
            )
        remaining_floor = sum(cheapest_costs.values())

        for node in order:
            ac = workflow.activation(node)
            release = max(
                (finish[p] for p in workflow.parents(node)), default=0.0
            )
            remaining_floor -= cheapest_costs[node]
            candidates: List[Tuple[float, float, float, float, int, int]] = []
            for vm in vms:
                duration = self.estimates.total_time(ac, vm, placement, workflow)
                cost = duration * vm.type.price_per_hour / 3600.0
                # feasible if, after paying this, the rest can still be
                # done at floor prices within the budget
                feasible = spent + cost + remaining_floor <= budget + 1e-9
                for slot_idx, timeline in enumerate(slots[vm.id]):
                    start = timeline.earliest_start(release, duration)
                    candidates.append(
                        (0.0 if feasible else 1.0, start + duration, cost,
                         start, vm.id, slot_idx)
                    )
            # prefer feasible placements by EFT; if none feasible, take the
            # cheapest (the budget floor guarantees this converges)
            feasible_c = [c for c in candidates if c[0] == 0.0]
            if feasible_c:
                chosen = min(feasible_c, key=lambda c: (c[1], c[4]))
            else:
                chosen = min(candidates, key=lambda c: (c[2], c[1], c[4]))
            _, eft, cost, start, vm_id, slot_idx = chosen
            slots[vm_id][slot_idx].reserve(start, eft - start)
            placement[node] = vm_id
            finish[node] = eft
            spent += cost

        return SchedulingPlan(assignment=placement, priority=order, name=self.name)
