"""Deadline-constrained, cost-minimizing planning (the other half of the
budget-deadline literature the paper cites).

:class:`DeadlineConstrainedScheduler` minimizes *pay-per-use cost*
subject to a makespan deadline: tasks are taken in HEFT rank order and
each is placed on the **cheapest** VM whose earliest finish time still
respects the task's *latest finish time* (deadline minus the critical
path remaining below the task); when no placement meets the sub-deadline
the fastest one wins (best effort).

The deadline can be given absolutely or as a ``deadline_factor``
relative to the unconstrained HEFT makespan estimate (factor 1.0 ≈ as
fast as HEFT, larger = more slack to save money).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

from repro.dag.graph import Workflow
from repro.schedulers.base import EstimateModel, SchedulingPlan, StaticScheduler
from repro.schedulers.heft import HeftScheduler, upward_ranks
from repro.schedulers.timeline import SlotTimeline
from repro.sim.vm import Vm
from repro.util.validate import ValidationError, check_positive

__all__ = ["DeadlineConstrainedScheduler", "heft_makespan_estimate"]


def heft_makespan_estimate(
    workflow: Workflow, vms: Sequence[Vm], estimates: Optional[EstimateModel] = None
) -> float:
    """Planning-time makespan estimate of the unconstrained HEFT plan.

    Replays HEFT's own slot timelines, so the estimate is exactly the
    EFT of the last task in HEFT's schedule (no simulation needed).
    """
    estimates = estimates or EstimateModel()
    plan = HeftScheduler(estimates).plan(workflow, vms)
    # replay the plan's placements through timelines to find the EFT
    slots: Dict[int, SlotTimeline] = {vm.id: SlotTimeline() for vm in vms}
    vms_by_id = {vm.id: vm for vm in vms}
    finish: Dict[int, float] = {}
    makespan = 0.0
    for node in plan.priority:
        ac = workflow.activation(node)
        vm = vms_by_id[plan.vm_of(node)]
        duration = estimates.total_time(ac, vm, plan.assignment, workflow)
        release = max((finish[p] for p in workflow.parents(node)), default=0.0)
        start = slots[vm.id].earliest_start(release, duration)
        slots[vm.id].reserve(start, duration)
        finish[node] = start + duration
        makespan = max(makespan, finish[node])
    return makespan


class DeadlineConstrainedScheduler(StaticScheduler):
    """Cheapest placement that keeps every task inside its sub-deadline.

    Parameters
    ----------
    deadline:
        Absolute makespan target in seconds.  Mutually exclusive with
        ``deadline_factor``.
    deadline_factor:
        ``deadline = factor x HEFT-estimate`` (default 1.5: 50% slack to
        trade for savings).
    """

    name = "Deadline-Cheapest"

    def __init__(
        self,
        deadline: Optional[float] = None,
        deadline_factor: float = 1.5,
        estimates: Optional[EstimateModel] = None,
        single_slot_vms: bool = True,
    ) -> None:
        super().__init__(estimates)
        if deadline is not None:
            check_positive("deadline", deadline)
        self.deadline = deadline
        self.deadline_factor = check_positive("deadline_factor", deadline_factor)
        self.single_slot_vms = bool(single_slot_vms)

    def resolve_deadline(self, workflow: Workflow, vms: Sequence[Vm]) -> float:
        """The effective deadline for a given problem."""
        if self.deadline is not None:
            return self.deadline
        return self.deadline_factor * heft_makespan_estimate(
            workflow, vms, self.estimates
        )

    def _downstream_slack(
        self, workflow: Workflow, vms: Sequence[Vm]
    ) -> Dict[int, float]:
        """Per-task reserve: cheapest-case critical path *below* the task.

        A task's latest finish time is ``deadline - slack`` so the rest
        of its chain can still make it at best-case speeds.
        """
        fastest = max(vm.type.speed for vm in vms)
        slack: Dict[int, float] = {}
        for node in reversed(workflow.topological_order()):
            children = workflow.children(node)
            slack[node] = max(
                (
                    slack[c] + workflow.activation(c).runtime / fastest
                    for c in children
                ),
                default=0.0,
            )
        return slack

    def plan(self, workflow: Workflow, vms: Sequence[Vm]) -> SchedulingPlan:
        """Compute the deadline-constrained plan."""
        workflow.validate()
        if len(workflow) == 0:
            raise ValidationError("cannot plan an empty workflow")
        deadline = self.resolve_deadline(workflow, vms)
        slack = self._downstream_slack(workflow, vms)

        ranks = upward_ranks(workflow, vms, self.estimates)
        order = sorted(workflow.activation_ids, key=lambda n: (-ranks[n], n))
        slots: Dict[int, List[SlotTimeline]] = {
            vm.id: [
                SlotTimeline()
                for _ in range(1 if self.single_slot_vms else vm.capacity)
            ]
            for vm in vms
        }
        placement: Dict[int, int] = {}
        finish: Dict[int, float] = {}

        for node in order:
            ac = workflow.activation(node)
            release = max(
                (finish[p] for p in workflow.parents(node)), default=0.0
            )
            latest_finish = deadline - slack[node]
            best_ok: Optional[Tuple[float, float, float, int, int]] = None
            best_any: Optional[Tuple[float, float, int, int]] = None
            for vm in vms:
                duration = self.estimates.total_time(ac, vm, placement, workflow)
                cost = duration * vm.type.price_per_hour / 3600.0
                for slot_idx, timeline in enumerate(slots[vm.id]):
                    start = timeline.earliest_start(release, duration)
                    eft = start + duration
                    if best_any is None or eft < best_any[0] - 1e-12:
                        best_any = (eft, start, vm.id, slot_idx)
                    if eft <= latest_finish + 1e-9:
                        key = (cost, eft, start, vm.id, slot_idx)
                        if best_ok is None or key < best_ok:
                            best_ok = key
            if best_ok is not None:
                _, eft, start, vm_id, slot_idx = best_ok
            else:  # best effort: nothing meets the sub-deadline
                eft, start, vm_id, slot_idx = best_any
            slots[vm_id][slot_idx].reserve(start, eft - start)
            placement[node] = vm_id
            finish[node] = eft

        return SchedulingPlan(assignment=placement, priority=order, name=self.name)
