"""The combined rule registry: per-file rules + project rules.

Everything user-facing that names the rule range (CLI description,
``--help`` epilog, package docstring) is generated from this module so
the advertised range can never rot when a rule lands — the stale
"RL001–RL006" strings this module replaced lived through two rule
additions unnoticed.
"""

from __future__ import annotations

from typing import List, Tuple, Union

from repro.analysis.project import ALL_PROJECT_RULES, ProjectRule
from repro.analysis.rules import ALL_RULES, Rule

__all__ = [
    "ALL_RULE_CODES",
    "AnyRule",
    "rule_catalog",
    "rule_range",
    "select_rules",
]

AnyRule = Union[Rule, ProjectRule]

#: Every registered rule code, in code order.
ALL_RULE_CODES: Tuple[str, ...] = tuple(
    rule.code for rule in (*ALL_RULES, *ALL_PROJECT_RULES)
)


def rule_range() -> str:
    """The advertised range, e.g. ``"RL001-RL013"`` — always current."""
    codes = sorted(ALL_RULE_CODES)
    return f"{codes[0]}-{codes[-1]}" if len(codes) > 1 else codes[0]


def rule_catalog() -> List[Tuple[str, str, str]]:
    """(code, kind, summary) rows for every registered rule, sorted."""
    rows = [("per-file", rule) for rule in ALL_RULES] + [
        ("project", rule) for rule in ALL_PROJECT_RULES
    ]
    return sorted(
        (rule.code, kind, rule.summary) for kind, rule in rows
    )


def select_rules(
    spec: str,
) -> Tuple[List[Rule], List[ProjectRule]]:
    """Resolve a comma-separated code list into (per-file, project) rules.

    Raises ``ValueError`` for unknown codes.
    """
    wanted = {code.strip().upper() for code in spec.split(",") if code.strip()}
    known = set(ALL_RULE_CODES)
    unknown = wanted - known
    if unknown:
        raise ValueError(
            f"unknown rule code(s): {', '.join(sorted(unknown))}; "
            f"known: {', '.join(sorted(known))}"
        )
    return (
        [rule for rule in ALL_RULES if rule.code in wanted],
        [rule for rule in ALL_PROJECT_RULES if rule.code in wanted],
    )
