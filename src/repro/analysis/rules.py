"""The reprolint rule set (RL001–RL007).

Each rule is a small AST pass over one file.  Rules receive a
:class:`FileContext` — the parsed tree plus an import-alias map and a
child→parent node map — and yield :class:`~repro.analysis.findings
.Finding` objects.  Rules restrict themselves to the code paths where
their invariant matters (see each rule's ``applies``): the determinism
contract documented in ``docs/runner.md`` covers the ``repro`` library,
not arbitrary scripts.

Why these rules exist
---------------------
The learning stage replays 100 simulated episodes per (α, γ, ε) cell and
the sweep fans them out over a process pool whose results must be
bit-identical to a serial run.  Global RNG state (RL001), wall-clock
reads (RL002), unordered-set iteration (RL003), unpicklable task
functions (RL004), backwards simulated time (RL005) and unsorted
directory listings (RL006) are exactly the defect classes that break
that guarantee *silently* — the run completes, the numbers are just
wrong.  RL007 is the one performance rule: it flags per-decision
rebuilds of the ready × idle cross product that the simulation context
already caches (``ctx.action_pairs``), the hot-loop regression class
this codebase keeps re-fixing.  ``docs/analysis.md`` documents each
rule with examples.
"""

from __future__ import annotations

import ast
from typing import Dict, Iterator, List, Optional, Sequence, Set, Tuple

from repro.analysis.findings import Finding

__all__ = [
    "FileContext",
    "Rule",
    "ALL_RULES",
    "RuleRL001",
    "RuleRL002",
    "RuleRL003",
    "RuleRL004",
    "RuleRL005",
    "RuleRL006",
    "RuleRL007",
    "RuleRL014",
    "RuleRL015",
]


def _norm(path: str) -> str:
    """Normalize to a ``/``-prefixed POSIX path for substring scoping."""
    p = path.replace("\\", "/")
    while p.startswith("./"):
        p = p[2:]
    return "/" + p


def in_library(path: str) -> bool:
    """True when ``path`` lies inside the ``repro`` package source."""
    return "/repro/" in _norm(path)


def in_subpackages(path: str, names: Sequence[str]) -> bool:
    """True when ``path`` is under ``repro/<name>/`` for any given name."""
    p = _norm(path)
    return in_library(path) and any(f"/{name}/" in p for name in names)


class FileContext:
    """Everything a rule needs about one parsed file."""

    def __init__(self, path: str, tree: ast.Module, source: str) -> None:
        self.path = path
        self.tree = tree
        self.source = source
        #: child node -> parent node, for wrap checks like ``sorted(...)``.
        self.parents: Dict[ast.AST, ast.AST] = {}
        for node in ast.walk(tree):
            for child in ast.iter_child_nodes(node):
                self.parents[child] = node
        self.aliases, self.imported_roots = _collect_imports(tree)

    def resolve(self, node: ast.AST) -> Optional[str]:
        """Resolve a Name/Attribute chain to a dotted module path.

        ``np.random.seed`` resolves to ``numpy.random.seed`` when the file
        has ``import numpy as np``; returns None for expressions that are
        not grounded in an import (locals shadowing a module name never
        trigger import-based rules).
        """
        parts: List[str] = []
        while isinstance(node, ast.Attribute):
            parts.append(node.attr)
            node = node.value
        if not isinstance(node, ast.Name):
            return None
        root = node.id
        if root not in self.aliases:
            return None
        parts.append(self.aliases[root])
        return ".".join(reversed(parts))

    def finding(self, node: ast.AST, rule: str, message: str) -> Finding:
        return Finding(
            path=self.path,
            line=getattr(node, "lineno", 1),
            col=getattr(node, "col_offset", 0),
            rule=rule,
            message=message,
        )


def _collect_imports(tree: ast.Module) -> Tuple[Dict[str, str], Set[str]]:
    """Map locally-bound names to the dotted path they import.

    ``import numpy as np`` -> ``{"np": "numpy"}``;
    ``from random import seed as s`` -> ``{"s": "random.seed"}``.
    """
    aliases: Dict[str, str] = {}
    roots: Set[str] = set()
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                bound = alias.asname or alias.name.split(".")[0]
                target = alias.name if alias.asname else alias.name.split(".")[0]
                aliases[bound] = target
                roots.add(alias.name.split(".")[0])
        elif isinstance(node, ast.ImportFrom) and node.module and node.level == 0:
            for alias in node.names:
                if alias.name == "*":
                    continue
                bound = alias.asname or alias.name
                aliases[bound] = f"{node.module}.{alias.name}"
                roots.add(node.module.split(".")[0])
    return aliases, roots


class Rule:
    """Base class: subclasses set ``code``/``summary`` and implement check."""

    code: str = ""
    summary: str = ""

    def applies(self, path: str) -> bool:
        return in_library(path)

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        raise NotImplementedError
        yield  # pragma: no cover - makes this a generator for typing


# -- RL001: global random state -----------------------------------------------

#: Constructors of *local* generator objects — these are the remedy, not
#: the disease, so they are always allowed.
_NP_RANDOM_ALLOWED = {
    "default_rng",
    "Generator",
    "SeedSequence",
    "BitGenerator",
    "PCG64",
    "PCG64DXSM",
    "Philox",
    "SFC64",
    "MT19937",
}
_STDLIB_RANDOM_ALLOWED = {"Random"}


class RuleRL001(Rule):
    """No global-state ``random.*`` / ``np.random.*`` calls in the library.

    Consuming the process-global stream couples unrelated components: a
    draw in a fluctuation model would shift which VM an ε-greedy policy
    explores.  Use :class:`repro.util.rng.RngService` /
    :func:`repro.util.rng.derive_seed`; constructing local generators
    (``np.random.default_rng(seed)``, ``random.Random(seed)``) is fine.
    """

    code = "RL001"
    summary = "global random state is forbidden; use RngService/derive_seed"

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            dotted = ctx.resolve(node.func)
            if dotted is None:
                continue
            if dotted.startswith("random."):
                tail = dotted.split(".", 1)[1]
                if tail.split(".")[0] not in _STDLIB_RANDOM_ALLOWED:
                    yield ctx.finding(
                        node,
                        self.code,
                        f"call to global-state '{dotted}'; use "
                        "repro.util.rng.RngService (or a seeded "
                        "random.Random instance)",
                    )
            elif dotted.startswith("numpy.random."):
                tail = dotted.split(".")[2]
                if tail not in _NP_RANDOM_ALLOWED:
                    yield ctx.finding(
                        node,
                        self.code,
                        f"call to global-state '{dotted}'; use "
                        "repro.util.rng.RngService / "
                        "numpy.random.default_rng(derive_seed(...))",
                    )


# -- RL002: wall-clock reads ---------------------------------------------------

_BANNED_CLOCKS = {
    "time.time",
    "time.time_ns",
    "time.monotonic",
    "time.monotonic_ns",
    "datetime.datetime.now",
    "datetime.datetime.utcnow",
    "datetime.datetime.today",
    "datetime.date.today",
}


class RuleRL002(Rule):
    """No wall-clock reads inside simulation/learning code paths.

    Simulated components must take time from the event loop (``ctx.now``)
    or an injected clock callable (see
    :class:`repro.scicumulus.provenance.ProvenanceStore`); a wall-clock
    read makes two same-seed runs differ byte-for-byte.
    ``time.perf_counter`` is allowed: it only ever feeds *reported*
    wall-duration metrics (e.g. Table II learning time), never simulated
    state.
    """

    code = "RL002"
    summary = "wall-clock read in simulation/learning code; inject a clock"

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            dotted = ctx.resolve(node.func)
            if dotted in _BANNED_CLOCKS:
                yield ctx.finding(
                    node,
                    self.code,
                    f"wall-clock read '{dotted}()'; inject a clock callable "
                    "(default: simulated/logical time) instead",
                )


# -- RL003: unordered set iteration -------------------------------------------


def _is_set_expr(node: ast.AST, set_names: Set[str]) -> bool:
    """Syntactic heuristic: does this expression produce a set?"""
    if isinstance(node, (ast.Set, ast.SetComp)):
        return True
    if isinstance(node, ast.Call) and isinstance(node.func, ast.Name):
        if node.func.id in {"set", "frozenset"}:
            return True
    if isinstance(node, ast.Name) and node.id in set_names:
        return True
    if isinstance(node, ast.BinOp) and isinstance(
        node.op, (ast.BitOr, ast.BitAnd, ast.Sub)
    ):
        # set algebra keeps set-ness: s1 | s2, s1 & s2, s1 - s2
        return _is_set_expr(node.left, set_names) or _is_set_expr(
            node.right, set_names
        )
    return False


class _ScopeSetTracker(ast.NodeVisitor):
    """Collect, per lexical scope, names bound to set-valued expressions."""

    def __init__(self) -> None:
        self.iters: List[Tuple[ast.AST, ast.expr]] = []
        self._stack: List[Set[str]] = [set()]

    # scope management ------------------------------------------------------
    def _visit_scope(self, node: ast.AST) -> None:
        self._stack.append(set())
        self.generic_visit(node)
        self._stack.pop()

    def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
        self._visit_scope(node)

    def visit_AsyncFunctionDef(self, node: ast.AsyncFunctionDef) -> None:
        self._visit_scope(node)

    def visit_Lambda(self, node: ast.Lambda) -> None:
        self._visit_scope(node)

    # assignment tracking ---------------------------------------------------
    def visit_Assign(self, node: ast.Assign) -> None:
        names = self._stack[-1]
        is_set = _is_set_expr(node.value, names)
        for target in node.targets:
            if isinstance(target, ast.Name):
                if is_set:
                    names.add(target.id)
                else:
                    names.discard(target.id)
        self.generic_visit(node)

    # iteration sites -------------------------------------------------------
    def _record(self, node: ast.AST, iter_expr: ast.expr) -> None:
        if _is_set_expr(iter_expr, self._stack[-1]):
            self.iters.append((node, iter_expr))

    def visit_For(self, node: ast.For) -> None:
        self._record(node, node.iter)
        self.generic_visit(node)

    def _visit_comp(self, node: ast.AST, generators: List[ast.comprehension]) -> None:
        for gen in generators:
            self._record(gen.iter, gen.iter)
        self.generic_visit(node)

    def visit_ListComp(self, node: ast.ListComp) -> None:
        self._visit_comp(node, node.generators)

    def visit_GeneratorExp(self, node: ast.GeneratorExp) -> None:
        self._visit_comp(node, node.generators)

    def visit_DictComp(self, node: ast.DictComp) -> None:
        self._visit_comp(node, node.generators)


class RuleRL003(Rule):
    """No direct iteration over set-typed expressions in ordering-sensitive
    packages (``sim/``, ``schedulers/``, ``rl/``).

    Set iteration order depends on hash seeding and insertion history;
    when it feeds dispatch order or Q-table updates, two identical runs
    can diverge.  Wrap the iterable in ``sorted(...)``.  (Set iteration
    inside another set constructor, ``in`` tests etc. are order-safe but
    beyond this syntactic heuristic — suppress with
    ``# reprolint: disable=RL003`` where provably safe.)
    """

    code = "RL003"
    summary = "iteration over a set without sorted() in ordering-sensitive code"

    def applies(self, path: str) -> bool:
        return in_subpackages(path, ("sim", "schedulers", "rl"))

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        tracker = _ScopeSetTracker()
        tracker.visit(ctx.tree)
        for node, iter_expr in tracker.iters:
            desc = (
                f"'{iter_expr.id}'"
                if isinstance(iter_expr, ast.Name)
                else "a set expression"
            )
            yield ctx.finding(
                node,
                self.code,
                f"iterating {desc} (set-typed) without sorted(); "
                "set order is nondeterministic across runs",
            )


# -- RL004: unpicklable task functions ----------------------------------------

#: Call names whose function argument crosses a process boundary.
_TASK_CONSTRUCTORS = {"Task"}
_RUNNER_METHODS = {"map_values", "submit"}


class RuleRL004(Rule):
    """Functions handed to :mod:`repro.runner.parallel` must be picklable.

    Lambdas and nested functions cannot cross the process boundary with
    ``workers > 1`` — the campaign then dies only in parallel mode, which
    the serial determinism reference never exercises.  Pass module-level
    functions.
    """

    code = "RL004"
    summary = "lambda/nested function passed to the parallel runner"

    def applies(self, path: str) -> bool:  # call sites live in tests too
        return True

    @staticmethod
    def _nested_function_names(tree: ast.Module) -> Set[str]:
        nested: Set[str] = set()

        def walk(node: ast.AST, inside_function: bool) -> None:
            for child in ast.iter_child_nodes(node):
                is_fn = isinstance(
                    child, (ast.FunctionDef, ast.AsyncFunctionDef)
                )
                if is_fn and inside_function:
                    nested.add(child.name)  # type: ignore[union-attr]
                walk(child, inside_function or is_fn)

        walk(tree, False)
        return nested

    def _task_fn_arg(self, call: ast.Call) -> Optional[ast.expr]:
        for kw in call.keywords:
            if kw.arg == "fn":
                return kw.value
        func = call.func
        name = func.id if isinstance(func, ast.Name) else (
            func.attr if isinstance(func, ast.Attribute) else ""
        )
        if name in _TASK_CONSTRUCTORS and len(call.args) >= 2:
            return call.args[1]
        if name in _RUNNER_METHODS and len(call.args) >= 1:
            return call.args[0]
        return None

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        nested = self._nested_function_names(ctx.tree)
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            func = node.func
            name = func.id if isinstance(func, ast.Name) else (
                func.attr if isinstance(func, ast.Attribute) else ""
            )
            if name not in _TASK_CONSTRUCTORS | _RUNNER_METHODS:
                continue
            fn_arg = self._task_fn_arg(node)
            if fn_arg is None:
                continue
            if isinstance(fn_arg, ast.Lambda):
                yield ctx.finding(
                    fn_arg,
                    self.code,
                    f"lambda passed to {name}(); task functions must be "
                    "module-level (picklable) callables",
                )
            elif isinstance(fn_arg, ast.Name) and fn_arg.id in nested:
                yield ctx.finding(
                    fn_arg,
                    self.code,
                    f"nested function '{fn_arg.id}' passed to {name}(); "
                    "task functions must be module-level (picklable) "
                    "callables",
                )


# -- RL005: event-time monotonicity -------------------------------------------

_CLOCK_ATTRS = {"now", "_now"}


def _is_negative_literal(node: ast.expr) -> bool:
    return (
        isinstance(node, ast.UnaryOp)
        and isinstance(node.op, ast.USub)
        and isinstance(node.operand, ast.Constant)
        and isinstance(node.operand.value, (int, float))
    )


def _is_positive_literal(node: ast.expr) -> bool:
    return (
        isinstance(node, ast.Constant)
        and isinstance(node.value, (int, float))
        and not isinstance(node.value, bool)
        and node.value > 0
    )


def _is_self_clock(node: ast.expr) -> bool:
    return (
        isinstance(node, ast.Attribute)
        and node.attr in _CLOCK_ATTRS
        and isinstance(node.value, ast.Name)
        and node.value.id == "self"
    )


class RuleRL005(Rule):
    """Simulated time may never move backwards in Simulator classes.

    The event loop's monotone clock is the foundation of every record's
    ``start_time``/``finish_time``; a literal negative offset on
    ``self.now``/``self._now`` (``self._now -= x``,
    ``self._now = self._now - 5``) is always a bug.
    """

    code = "RL005"
    summary = "simulated clock assigned backwards in a Simulator class"

    def applies(self, path: str) -> bool:
        return True

    @staticmethod
    def _is_simulator_class(node: ast.ClassDef) -> bool:
        if "Simulator" in node.name:
            return True
        for base in node.bases:
            base_name = base.id if isinstance(base, ast.Name) else (
                base.attr if isinstance(base, ast.Attribute) else ""
            )
            if "Simulator" in base_name:
                return True
        return False

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        for cls in ast.walk(ctx.tree):
            if not isinstance(cls, ast.ClassDef) or not self._is_simulator_class(cls):
                continue
            for node in ast.walk(cls):
                if isinstance(node, ast.AugAssign):
                    aug_target = node.target
                    if not (
                        isinstance(aug_target, ast.Attribute)
                        and _is_self_clock(aug_target)
                    ):
                        continue
                    backwards = (
                        isinstance(node.op, ast.Sub)
                        and _is_positive_literal(node.value)
                    ) or (
                        isinstance(node.op, ast.Add)
                        and _is_negative_literal(node.value)
                    )
                    if backwards:
                        yield ctx.finding(
                            node,
                            self.code,
                            f"'self.{aug_target.attr}' moved backwards; "
                            "simulated time must be monotone",
                        )
                elif isinstance(node, ast.Assign):
                    for target in node.targets:
                        if not (
                            isinstance(target, ast.Attribute)
                            and _is_self_clock(target)
                        ):
                            continue
                        value = node.value
                        backwards = _is_negative_literal(value) or (
                            isinstance(value, ast.BinOp)
                            and isinstance(value.op, ast.Sub)
                            and _is_self_clock(value.left)
                            and _is_positive_literal(value.right)
                        )
                        if backwards:
                            yield ctx.finding(
                                node,
                                self.code,
                                f"'self.{target.attr}' assigned backwards; "
                                "simulated time must be monotone",
                            )


# -- RL006: unsorted directory listings ---------------------------------------

_FS_LISTING_FUNCS = {"os.listdir", "os.scandir", "glob.glob", "glob.iglob"}
_FS_LISTING_METHODS = {"iterdir", "glob", "rglob"}


class RuleRL006(Rule):
    """Directory-listing results must be sorted before use in the library.

    ``os.listdir``/``glob.glob``/``Path.iterdir`` return entries in
    filesystem order, which differs across machines and mounts; anything
    derived from an unsorted listing (workflow inputs, result aggregation)
    is irreproducible.  Wrap the call in ``sorted(...)``.
    """

    code = "RL006"
    summary = "unsorted filesystem listing; wrap the call in sorted()"

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            dotted = ctx.resolve(node.func)
            is_listing = dotted in _FS_LISTING_FUNCS or (
                isinstance(node.func, ast.Attribute)
                and node.func.attr in _FS_LISTING_METHODS
                and ctx.resolve(node.func) is None  # method, not module func
            )
            if not is_listing:
                continue
            parent = ctx.parents.get(node)
            sorted_wrapped = (
                isinstance(parent, ast.Call)
                and isinstance(parent.func, ast.Name)
                and parent.func.id == "sorted"
                and parent.args
                and parent.args[0] is node
            )
            if not sorted_wrapped:
                label = dotted or f".{node.func.attr}(...)"  # type: ignore[union-attr]
                yield ctx.finding(
                    node,
                    self.code,
                    f"result of '{label}' used without sorted(); filesystem "
                    "order is nondeterministic across machines",
                )


# -- RL007: per-decision cross-product rebuilds --------------------------------

#: The context views whose cross product ``SimulationContext.action_pairs``
#: already caches (keyed on the ready/idle version counters).
_CACHED_VIEW_ATTRS = {"ready_activations", "idle_vms"}


class RuleRL007(Rule):
    """No per-call list rebuilds of the cached ready × idle cross product.

    ``SimulationContext.action_pairs`` hands out one interned tuple per
    (ready, idle) configuration, invalidated by the state's version
    counters.  A list comprehension that crosses ``ready_activations``
    with ``idle_vms`` rebuilds that product from scratch on *every*
    decision — exactly the hot-loop cost the cache removes — and, being
    a fresh object each call, also defeats downstream identity-keyed
    memoization (the Q-table's action-id slices).  Generator
    expressions are exempt: they stream lazily and are typically used
    for one-off membership/counting, not to materialize the product.
    """

    code = "RL007"
    summary = "ready x idle cross product rebuilt per call; use ctx.action_pairs"

    def applies(self, path: str) -> bool:
        return in_subpackages(path, ("schedulers", "rl", "core"))

    @staticmethod
    def _view_aliases(tree: ast.Module) -> Dict[str, str]:
        """Names assigned from ``<expr>.ready_activations`` / ``.idle_vms``."""
        aliases: Dict[str, str] = {}
        for node in ast.walk(tree):
            if not isinstance(node, ast.Assign):
                continue
            value = node.value
            if (
                isinstance(value, ast.Attribute)
                and value.attr in _CACHED_VIEW_ATTRS
            ):
                for target in node.targets:
                    if isinstance(target, ast.Name):
                        aliases[target.id] = value.attr
        return aliases

    @staticmethod
    def _view_of(node: ast.expr, aliases: Dict[str, str]) -> Optional[str]:
        if isinstance(node, ast.Attribute) and node.attr in _CACHED_VIEW_ATTRS:
            return node.attr
        if isinstance(node, ast.Name):
            return aliases.get(node.id)
        return None

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        aliases = self._view_aliases(ctx.tree)
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.ListComp) or len(node.generators) < 2:
                continue
            views = {
                view
                for gen in node.generators
                if (view := self._view_of(gen.iter, aliases)) is not None
            }
            if views >= _CACHED_VIEW_ATTRS:
                yield ctx.finding(
                    node,
                    self.code,
                    "list comprehension rebuilds the ready x idle cross "
                    "product per call; read the cached "
                    "'ctx.action_pairs' tuple instead",
                )


# -- RL014: Python loops over batch axes --------------------------------------


class RuleRL014(Rule):
    """No per-lane Python loops over batch axes in sim/rl hot paths.

    The lockstep engine advances B lanes through ``(B,)``-shaped numpy
    views (:class:`repro.sim.kernel.BatchEpisodeState`).  A Python
    ``for`` (or comprehension) over ``X.lanes``, ``range(X.batch)`` or
    ``range(len(X.lanes))`` re-introduces per-lane interpreter cost on
    exactly the axis the batched engine amortizes — at B lanes times E
    episodes, a stray scalar loop undoes the lockstep dividend.  Write
    the operation as one vectorized numpy expression over the batch
    arrays instead.
    """

    code = "RL014"
    summary = "Python loop over a batch axis; vectorize over the (B,) arrays"

    def applies(self, path: str) -> bool:
        return in_subpackages(path, ("sim", "rl"))

    @staticmethod
    def _lane_aliases(tree: ast.Module) -> Set[str]:
        """Names assigned from an ``<expr>.lanes`` attribute read."""
        aliases: Set[str] = set()
        for node in ast.walk(tree):
            if not isinstance(node, ast.Assign):
                continue
            value = node.value
            if isinstance(value, ast.Attribute) and value.attr == "lanes":
                for target in node.targets:
                    if isinstance(target, ast.Name):
                        aliases.add(target.id)
        return aliases

    @staticmethod
    def _is_lanes(node: ast.expr, aliases: Set[str]) -> bool:
        if isinstance(node, ast.Attribute) and node.attr == "lanes":
            return True
        return isinstance(node, ast.Name) and node.id in aliases

    def _is_batch_iter(self, node: ast.expr, aliases: Set[str]) -> bool:
        if self._is_lanes(node, aliases):
            return True
        if not (isinstance(node, ast.Call) and isinstance(node.func, ast.Name)):
            return False
        fn = node.func.id
        if fn == "enumerate":
            return bool(node.args) and self._is_lanes(node.args[0], aliases)
        if fn != "range":
            return False
        for arg in node.args:
            if isinstance(arg, ast.Attribute) and arg.attr == "batch":
                return True
            if (
                isinstance(arg, ast.Call)
                and isinstance(arg.func, ast.Name)
                and arg.func.id == "len"
                and arg.args
                and self._is_lanes(arg.args[0], aliases)
            ):
                return True
        return False

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        aliases = self._lane_aliases(ctx.tree)
        for node in ast.walk(ctx.tree):
            iters: List[Tuple[ast.AST, ast.expr]] = []
            if isinstance(node, (ast.For, ast.AsyncFor)):
                iters = [(node, node.iter)]
            elif isinstance(
                node,
                (ast.ListComp, ast.SetComp, ast.DictComp, ast.GeneratorExp),
            ):
                iters = [(gen.iter, gen.iter) for gen in node.generators]
            for anchor, it in iters:
                if self._is_batch_iter(it, aliases):
                    yield ctx.finding(
                        anchor,
                        self.code,
                        "per-lane Python loop over a batch axis "
                        "('.lanes' / 'range(.batch)'); vectorize over "
                        "the (B,)-shaped batch arrays instead",
                    )


# -- RL015: Python loops over trace step arrays -------------------------------

#: The columnar per-step arrays of ``repro.sim.trace.EpisodeTrace``.
#: Attribute reads of these names create "step array" aliases; looping
#: one re-introduces per-step interpreter cost on the replay axis.
_TRACE_STEP_ATTRS = frozenset({
    "pairs_idx", "next_idx", "act_pos", "act_a", "act_v", "explored",
    "te", "tf", "n_finished", "q_value", "table_version",
})


class RuleRL015(Rule):
    """No per-step Python loops over ``EpisodeTrace`` step arrays.

    The trace is columnar on purpose: the replay kernels validate a
    whole stale trace through vectorized gathers
    (:meth:`repro.rl.replay.ReplayKernel.validate_trace`), so a Python
    ``for`` over a step column — ``trace.act_v``, ``range(n_steps)``,
    ``range(len(pairs_idx))``, ``range(act_v.shape[0])`` — walks the
    axis those kernels amortize, at T steps times E episodes per run.
    Hoist the work into one numpy expression over the column, or push
    it behind the replay kernel.  The two sanctioned scans (sequential
    RNG draws, order-sensitive running means) carry inline
    ``reprolint: disable=RL015`` markers explaining why a per-step walk
    is the *contract* there, not an accident.
    """

    code = "RL015"
    summary = "Python loop over EpisodeTrace step arrays; vectorize the column"

    def applies(self, path: str) -> bool:
        return in_subpackages(path, ("rl", "core"))

    @staticmethod
    def _collect_aliases(tree: ast.Module) -> Tuple[Set[str], Set[str]]:
        """(step-array alias names, step-count alias names).

        Step arrays: ``col = <expr>.act_v`` and friends.  Step counts:
        ``n = <expr>.n_steps`` / ``n = len(col)`` /
        ``n = col.shape[0]`` (optionally ``int(...)``-wrapped) — two
        passes so a count derived from an aliased column resolves.
        """
        arrays: Set[str] = set()
        for node in ast.walk(tree):
            if not isinstance(node, ast.Assign):
                continue
            value = node.value
            if (
                isinstance(value, ast.Attribute)
                and value.attr in _TRACE_STEP_ATTRS
            ):
                for target in node.targets:
                    if isinstance(target, ast.Name):
                        arrays.add(target.id)
        counts: Set[str] = set()
        for node in ast.walk(tree):
            if not isinstance(node, ast.Assign):
                continue
            if RuleRL015._is_step_count(node.value, arrays, counts):
                for target in node.targets:
                    if isinstance(target, ast.Name):
                        counts.add(target.id)
        return arrays, counts

    @staticmethod
    def _is_step_array(node: ast.expr, arrays: Set[str]) -> bool:
        if isinstance(node, ast.Attribute):
            if node.attr in _TRACE_STEP_ATTRS:
                return True
            # `trace.steps` / `stale_trace.steps`: the materialized
            # DecisionStep views — same per-step axis, plus the object
            # construction the columns exist to avoid
            return node.attr == "steps" and (
                isinstance(node.value, ast.Name)
                and "trace" in node.value.id.lower()
            )
        return isinstance(node, ast.Name) and node.id in arrays

    @staticmethod
    def _is_step_count(
        node: ast.expr, arrays: Set[str], counts: Set[str]
    ) -> bool:
        if isinstance(node, ast.Attribute) and node.attr == "n_steps":
            return True
        if isinstance(node, ast.Name) and node.id in counts:
            return True
        if isinstance(node, ast.Call) and isinstance(node.func, ast.Name):
            fn = node.func.id
            if fn in ("int", "len") and len(node.args) == 1:
                inner = node.args[0]
                if fn == "len":
                    return RuleRL015._is_step_array(inner, arrays)
                return RuleRL015._is_step_count(inner, arrays, counts)
        # col.shape[0]
        if (
            isinstance(node, ast.Subscript)
            and isinstance(node.value, ast.Attribute)
            and node.value.attr == "shape"
            and RuleRL015._is_step_array(node.value.value, arrays)
        ):
            return True
        return False

    def _is_step_iter(
        self, node: ast.expr, arrays: Set[str], counts: Set[str]
    ) -> bool:
        if self._is_step_array(node, arrays):
            return True
        if not (isinstance(node, ast.Call) and isinstance(node.func, ast.Name)):
            return False
        fn = node.func.id
        if fn == "enumerate":
            return bool(node.args) and self._is_step_array(
                node.args[0], arrays
            )
        if fn == "zip":
            return any(self._is_step_array(arg, arrays) for arg in node.args)
        if fn == "range":
            return any(
                self._is_step_count(arg, arrays, counts) for arg in node.args
            )
        return False

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        arrays, counts = self._collect_aliases(ctx.tree)
        for node in ast.walk(ctx.tree):
            iters: List[Tuple[ast.AST, ast.expr]] = []
            if isinstance(node, (ast.For, ast.AsyncFor)):
                iters = [(node, node.iter)]
            elif isinstance(
                node,
                (ast.ListComp, ast.SetComp, ast.DictComp, ast.GeneratorExp),
            ):
                iters = [(gen.iter, gen.iter) for gen in node.generators]
            for anchor, it in iters:
                if self._is_step_iter(it, arrays, counts):
                    yield ctx.finding(
                        anchor,
                        self.code,
                        "per-step Python loop over an EpisodeTrace step "
                        "array ('trace.act_v' / 'range(n_steps)'); "
                        "vectorize over the column or go through the "
                        "replay kernel",
                    )


#: The default rule registry, in code order.
ALL_RULES: Tuple[Rule, ...] = (
    RuleRL001(),
    RuleRL002(),
    RuleRL003(),
    RuleRL004(),
    RuleRL005(),
    RuleRL006(),
    RuleRL007(),
    RuleRL014(),
    RuleRL015(),
)
