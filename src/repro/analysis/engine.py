"""The reprolint engine: discovery, two-phase analysis, suppression, baseline.

The engine is deliberately dependency-free (stdlib ``ast`` + ``tokenize``
only) so the lint gate runs anywhere the repo's tests run.  Analysis is
two-phase:

1. **Per-file pass** — walk the given paths in **sorted** order (the
   analyzer obeys its own RL006 rule), parse each ``*.py`` once, run the
   per-file rules (RL001–RL007) and extract the cross-file facts
   (:func:`repro.analysis.project.extract_facts`).  With a cache
   attached, unchanged files skip this phase entirely: their findings
   and facts replay from ``.reprolint-cache.json`` byte-for-byte.
2. **Project pass** — assemble every file's facts into a
   :class:`~repro.analysis.project.ProjectIndex` and run the project
   rules (RL008–RL013) over it.  This pass always runs live (it is
   cheap — facts, not trees) so cross-file checks see the whole
   program even on a fully warm cache.

Suppression
-----------
A finding is suppressed by a comment on its own line::

    frobnicate(random.random())  # reprolint: disable=RL001
    legacy_call()                # reprolint: disable=all
    two_problems()               # reprolint: disable=RL001,RL003

Suppressions apply to project-rule findings too (matched on the line
the finding is reported at).

Baseline
--------
:func:`load_baseline` / :func:`write_baseline` read and write a JSON
baseline (``{"version": 1, "findings": [{"rule", "path", "line"}, ...]}``).
Findings whose ``(rule, path, line)`` key appears in the baseline are
dropped, letting a new rule land without blocking CI while the tree is
swept clean.  The committed ``reprolint-baseline.json`` is empty — the
tree *is* clean — and exists to keep that workflow one flag away.
"""

from __future__ import annotations

import ast
import hashlib
import io
import json
import re
import tokenize
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple

from repro.analysis.cache import AnalysisCache, CacheStats, ruleset_fingerprint
from repro.analysis.findings import SYNTAX_ERROR_RULE, Finding
from repro.analysis.project import (
    ALL_PROJECT_RULES,
    FileFacts,
    ProjectIndex,
    ProjectRule,
    extract_facts,
    _module_of,
)
from repro.analysis.rules import ALL_RULES, FileContext, Rule

__all__ = [
    "AnalysisReport",
    "analyze_source",
    "analyze_sources",
    "analyze_paths",
    "analyze_project",
    "iter_python_files",
    "suppressed_lines",
    "load_baseline",
    "write_baseline",
    "apply_baseline",
    "DEFAULT_EXCLUDED_DIRS",
    "DEFAULT_EXCLUDED_PATHS",
    "BaselineError",
]

#: Directory *names* skipped wherever they appear during discovery.
DEFAULT_EXCLUDED_DIRS: Tuple[str, ...] = (
    "__pycache__",
    ".git",
    ".venv",
)

#: Path *fragments* skipped during discovery.  Scoped, unlike the name
#: list above: only the analyzer's own deliberately-violating snippets
#: under ``tests/analysis/fixtures`` are exempt — a future
#: ``src/repro/**/fixtures/`` package would still be linted.
DEFAULT_EXCLUDED_PATHS: Tuple[str, ...] = (
    "tests/analysis/fixtures",
)

_SUPPRESS_RE = re.compile(
    r"#\s*reprolint:\s*disable=([A-Za-z0-9_]+(?:\s*,\s*[A-Za-z0-9_]+)*|all)"
)


class BaselineError(ValueError):
    """Raised for malformed baseline files."""


def suppressed_lines(source: str) -> Dict[int, Set[str]]:
    """Map line number -> set of suppressed rule codes (``{"all"}`` = any)."""
    out: Dict[int, Set[str]] = {}
    try:
        tokens = tokenize.generate_tokens(io.StringIO(source).readline)
        for tok in tokens:
            if tok.type != tokenize.COMMENT:
                continue
            match = _SUPPRESS_RE.search(tok.string)
            if match is None:
                continue
            codes = {c.strip() for c in match.group(1).split(",") if c.strip()}
            out.setdefault(tok.start[0], set()).update(codes)
    except tokenize.TokenizeError:
        pass  # the parse step will report the syntax error
    return out


def _analyze_one(
    source: str,
    posix: str,
    rules: Sequence[Rule],
) -> Tuple[List[Finding], FileFacts, Dict[int, Set[str]]]:
    """Phase 1 for one file: per-file findings + facts + suppression map."""
    try:
        tree = ast.parse(source, filename=posix)
    except SyntaxError as exc:
        finding = Finding(
            path=posix,
            line=exc.lineno or 1,
            col=(exc.offset or 1) - 1,
            rule=SYNTAX_ERROR_RULE,
            message=f"cannot parse file: {exc.msg}",
        )
        return [finding], FileFacts(path=posix, module=_module_of(posix)), {}
    ctx = FileContext(posix, tree, source)
    suppressed = suppressed_lines(source)
    findings: List[Finding] = []
    for rule in rules:
        if not rule.applies(posix):
            continue
        for finding in rule.check(ctx):
            codes = suppressed.get(finding.line, set())
            if "all" in codes or finding.rule in codes:
                continue
            findings.append(finding)
    return sorted(findings), extract_facts(ctx), suppressed


def analyze_source(
    source: str,
    path: str,
    rules: Sequence[Rule] = ALL_RULES,
) -> List[Finding]:
    """Run every applicable **per-file** rule over one file's source text.

    ``path`` is used both for reporting and for rule scoping, so virtual
    paths (as the fixture tests use) steer which rules run.  Project
    rules need a whole-program index — use :func:`analyze_sources` or
    :func:`analyze_project` for those.
    """
    posix = path.replace("\\", "/")
    findings, _, _ = _analyze_one(source, posix, rules)
    return findings


def analyze_sources(
    named_sources: Sequence[Tuple[str, str]],
    rules: Sequence[Rule] = ALL_RULES,
    project_rules: Sequence[ProjectRule] = ALL_PROJECT_RULES,
) -> List[Finding]:
    """Run both phases over in-memory ``(virtual_path, source)`` pairs.

    The fixture tests use this to exercise cross-file rules without a
    filesystem; results are sorted exactly like :func:`analyze_project`.
    """
    findings: List[Finding] = []
    all_facts: List[FileFacts] = []
    suppressions: Dict[str, Dict[int, Set[str]]] = {}
    for path, source in sorted(named_sources):
        posix = path.replace("\\", "/")
        file_findings, facts, suppressed = _analyze_one(source, posix, rules)
        findings.extend(file_findings)
        all_facts.append(facts)
        suppressions[posix] = suppressed
    findings.extend(
        _run_project_rules(ProjectIndex(all_facts), project_rules, suppressions)
    )
    return sorted(findings)


def _run_project_rules(
    index: ProjectIndex,
    project_rules: Sequence[ProjectRule],
    suppressions: Dict[str, Dict[int, Set[str]]],
) -> List[Finding]:
    """Phase 2: run every project rule, honouring per-line suppressions."""
    findings: List[Finding] = []
    for rule in project_rules:
        for finding in rule.check(index):
            codes = suppressions.get(finding.path, {}).get(finding.line, set())
            if "all" in codes or finding.rule in codes:
                continue
            findings.append(finding)
    return findings


def iter_python_files(
    paths: Sequence[str],
    excluded_dirs: Iterable[str] = DEFAULT_EXCLUDED_DIRS,
    excluded_paths: Iterable[str] = DEFAULT_EXCLUDED_PATHS,
) -> List[Path]:
    """Expand files/directories into a sorted, de-duplicated ``*.py`` list.

    ``excluded_dirs`` are bare directory names matched anywhere in a
    candidate's path; ``excluded_paths`` are ``/``-joined fragments
    matched as a contiguous path infix (scoped exclusion).
    """
    excluded = set(excluded_dirs)
    fragments = ["/%s/" % frag.strip("/").replace("\\", "/")
                 for frag in excluded_paths]
    out: List[Path] = []
    seen: Set[Path] = set()
    for raw in paths:
        root = Path(raw)
        if root.is_file():
            candidates = [root]
        elif root.is_dir():
            candidates = sorted(root.rglob("*.py"))
        else:
            raise FileNotFoundError(f"no such file or directory: {raw}")
        for candidate in candidates:
            if candidate.suffix != ".py":
                continue
            if any(part in excluded for part in candidate.parts):
                continue
            posix = "/" + candidate.as_posix().lstrip("/")
            if any(frag in posix for frag in fragments):
                continue
            if candidate in seen:
                continue
            seen.add(candidate)
            out.append(candidate)
    return sorted(out)


@dataclass
class AnalysisReport:
    """Result of a full two-phase run."""

    findings: List[Finding]
    files_scanned: int
    cache: Optional[CacheStats] = None


def analyze_project(
    paths: Sequence[str],
    rules: Sequence[Rule] = ALL_RULES,
    project_rules: Sequence[ProjectRule] = ALL_PROJECT_RULES,
    excluded_dirs: Iterable[str] = DEFAULT_EXCLUDED_DIRS,
    excluded_paths: Iterable[str] = DEFAULT_EXCLUDED_PATHS,
    cache_file: Optional[str] = None,
) -> AnalysisReport:
    """Analyze every python file under ``paths`` (both phases).

    With ``cache_file`` set, unchanged files replay their phase-1
    results from the cache; findings are byte-identical with and
    without the cache (sorted output, content-addressed entries).
    """
    cache: Optional[AnalysisCache] = None
    if cache_file is not None:
        codes = [r.code for r in rules] + [r.code for r in project_rules]
        cache = AnalysisCache(cache_file, ruleset_fingerprint(codes))

    findings: List[Finding] = []
    all_facts: List[FileFacts] = []
    suppressions: Dict[str, Dict[int, Set[str]]] = {}
    files = iter_python_files(paths, excluded_dirs, excluded_paths)
    for file in files:
        posix = file.as_posix()
        blob = file.read_bytes()
        digest = hashlib.sha256(blob).hexdigest()
        entry = cache.lookup(posix, digest) if cache is not None else None
        if entry is None:
            source = blob.decode("utf-8")
            file_findings, facts, suppressed = _analyze_one(
                source, posix, rules
            )
            if cache is not None:
                cache.store(posix, digest, file_findings, facts, suppressed)
        else:
            file_findings, facts, suppressed = entry
        findings.extend(file_findings)
        all_facts.append(facts)
        suppressions[posix] = suppressed

    findings.extend(
        _run_project_rules(ProjectIndex(all_facts), project_rules, suppressions)
    )
    if cache is not None:
        cache.save()
    return AnalysisReport(
        findings=sorted(findings),
        files_scanned=len(files),
        cache=cache.stats if cache is not None else None,
    )


def analyze_paths(
    paths: Sequence[str],
    rules: Sequence[Rule] = ALL_RULES,
    excluded_dirs: Iterable[str] = DEFAULT_EXCLUDED_DIRS,
    project_rules: Sequence[ProjectRule] = ALL_PROJECT_RULES,
) -> Tuple[List[Finding], int]:
    """Back-compat wrapper: ``(findings, files_scanned)`` for both phases."""
    report = analyze_project(
        paths,
        rules=rules,
        project_rules=project_rules,
        excluded_dirs=excluded_dirs,
    )
    return report.findings, report.files_scanned


# -- baseline ------------------------------------------------------------------


def load_baseline(path: str) -> Set[Tuple[str, str, int]]:
    """Read a baseline file into a set of ``(rule, path, line)`` keys."""
    try:
        payload = json.loads(Path(path).read_text(encoding="utf-8"))
    except (OSError, json.JSONDecodeError) as exc:
        raise BaselineError(f"cannot read baseline {path!r}: {exc}") from exc
    if not isinstance(payload, dict) or "findings" not in payload:
        raise BaselineError(
            f"baseline {path!r} must be an object with a 'findings' list"
        )
    keys: Set[Tuple[str, str, int]] = set()
    for entry in payload["findings"]:
        try:
            keys.add((str(entry["rule"]), str(entry["path"]), int(entry["line"])))
        except (TypeError, KeyError) as exc:
            raise BaselineError(
                f"baseline {path!r} has a malformed entry: {entry!r}"
            ) from exc
    return keys


def write_baseline(path: str, findings: Sequence[Finding]) -> None:
    """Write the current findings as a baseline file (sorted, stable)."""
    payload = {
        "version": 1,
        "findings": [
            {"rule": f.rule, "path": f.path, "line": f.line}
            for f in sorted(findings)
        ],
    }
    Path(path).write_text(
        json.dumps(payload, indent=2, sort_keys=True) + "\n", encoding="utf-8"
    )


def apply_baseline(
    findings: Sequence[Finding], baseline: Set[Tuple[str, str, int]]
) -> List[Finding]:
    """Drop findings whose key is present in the baseline."""
    return [f for f in findings if f.key() not in baseline]
