"""The reprolint engine: file discovery, suppression, baseline filtering.

The engine is deliberately dependency-free (stdlib ``ast`` + ``tokenize``
only) so the lint gate runs anywhere the repo's tests run.  It walks the
given paths in **sorted** order — the analyzer obeys its own RL006 rule —
parses each ``*.py`` once, and hands the tree to every applicable rule.

Suppression
-----------
A finding is suppressed by a comment on its own line::

    frobnicate(random.random())  # reprolint: disable=RL001
    legacy_call()                # reprolint: disable=all
    two_problems()               # reprolint: disable=RL001,RL003

Baseline
--------
:func:`load_baseline` / :func:`write_baseline` read and write a JSON
baseline (``{"version": 1, "findings": [{"rule", "path", "line"}, ...]}``).
Findings whose ``(rule, path, line)`` key appears in the baseline are
dropped, letting a new rule land without blocking CI while the tree is
swept clean.  The committed ``reprolint-baseline.json`` is empty — the
tree *is* clean — and exists to keep that workflow one flag away.
"""

from __future__ import annotations

import ast
import io
import json
import re
import tokenize
from pathlib import Path
from typing import Dict, Iterable, List, Sequence, Set, Tuple

from repro.analysis.findings import SYNTAX_ERROR_RULE, Finding
from repro.analysis.rules import ALL_RULES, FileContext, Rule

__all__ = [
    "analyze_source",
    "analyze_paths",
    "iter_python_files",
    "suppressed_lines",
    "load_baseline",
    "write_baseline",
    "apply_baseline",
    "DEFAULT_EXCLUDED_DIRS",
    "BaselineError",
]

#: Directory names skipped during discovery.  ``fixtures`` holds the
#: analyzer's own deliberately-violating test snippets.
DEFAULT_EXCLUDED_DIRS: Tuple[str, ...] = (
    "__pycache__",
    ".git",
    ".venv",
    "fixtures",
)

_SUPPRESS_RE = re.compile(
    r"#\s*reprolint:\s*disable=([A-Za-z0-9_]+(?:\s*,\s*[A-Za-z0-9_]+)*|all)"
)


class BaselineError(ValueError):
    """Raised for malformed baseline files."""


def suppressed_lines(source: str) -> Dict[int, Set[str]]:
    """Map line number -> set of suppressed rule codes (``{"all"}`` = any)."""
    out: Dict[int, Set[str]] = {}
    try:
        tokens = tokenize.generate_tokens(io.StringIO(source).readline)
        for tok in tokens:
            if tok.type != tokenize.COMMENT:
                continue
            match = _SUPPRESS_RE.search(tok.string)
            if match is None:
                continue
            codes = {c.strip() for c in match.group(1).split(",") if c.strip()}
            out.setdefault(tok.start[0], set()).update(codes)
    except tokenize.TokenizeError:
        pass  # the parse step will report the syntax error
    return out


def analyze_source(
    source: str,
    path: str,
    rules: Sequence[Rule] = ALL_RULES,
) -> List[Finding]:
    """Run every applicable rule over one file's source text.

    ``path`` is used both for reporting and for rule scoping, so virtual
    paths (as the fixture tests use) steer which rules run.
    """
    posix = path.replace("\\", "/")
    try:
        tree = ast.parse(source, filename=posix)
    except SyntaxError as exc:
        return [
            Finding(
                path=posix,
                line=exc.lineno or 1,
                col=(exc.offset or 1) - 1,
                rule=SYNTAX_ERROR_RULE,
                message=f"cannot parse file: {exc.msg}",
            )
        ]
    ctx = FileContext(posix, tree, source)
    suppressed = suppressed_lines(source)
    findings: List[Finding] = []
    for rule in rules:
        if not rule.applies(posix):
            continue
        for finding in rule.check(ctx):
            codes = suppressed.get(finding.line, set())
            if "all" in codes or finding.rule in codes:
                continue
            findings.append(finding)
    return sorted(findings)


def iter_python_files(
    paths: Sequence[str],
    excluded_dirs: Iterable[str] = DEFAULT_EXCLUDED_DIRS,
) -> List[Path]:
    """Expand files/directories into a sorted, de-duplicated ``*.py`` list."""
    excluded = set(excluded_dirs)
    out: List[Path] = []
    seen: Set[Path] = set()
    for raw in paths:
        root = Path(raw)
        if root.is_file():
            candidates = [root]
        elif root.is_dir():
            candidates = sorted(root.rglob("*.py"))
        else:
            raise FileNotFoundError(f"no such file or directory: {raw}")
        for candidate in candidates:
            if candidate.suffix != ".py":
                continue
            if any(part in excluded for part in candidate.parts):
                continue
            if candidate in seen:
                continue
            seen.add(candidate)
            out.append(candidate)
    return sorted(out)


def analyze_paths(
    paths: Sequence[str],
    rules: Sequence[Rule] = ALL_RULES,
    excluded_dirs: Iterable[str] = DEFAULT_EXCLUDED_DIRS,
) -> Tuple[List[Finding], int]:
    """Analyze every python file under ``paths``.

    Returns ``(findings, files_scanned)`` with findings sorted by
    location for stable output.
    """
    findings: List[Finding] = []
    files = iter_python_files(paths, excluded_dirs)
    for file in files:
        source = file.read_text(encoding="utf-8")
        findings.extend(analyze_source(source, file.as_posix(), rules))
    return sorted(findings), len(files)


# -- baseline ------------------------------------------------------------------


def load_baseline(path: str) -> Set[Tuple[str, str, int]]:
    """Read a baseline file into a set of ``(rule, path, line)`` keys."""
    try:
        payload = json.loads(Path(path).read_text(encoding="utf-8"))
    except (OSError, json.JSONDecodeError) as exc:
        raise BaselineError(f"cannot read baseline {path!r}: {exc}") from exc
    if not isinstance(payload, dict) or "findings" not in payload:
        raise BaselineError(
            f"baseline {path!r} must be an object with a 'findings' list"
        )
    keys: Set[Tuple[str, str, int]] = set()
    for entry in payload["findings"]:
        try:
            keys.add((str(entry["rule"]), str(entry["path"]), int(entry["line"])))
        except (TypeError, KeyError) as exc:
            raise BaselineError(
                f"baseline {path!r} has a malformed entry: {entry!r}"
            ) from exc
    return keys


def write_baseline(path: str, findings: Sequence[Finding]) -> None:
    """Write the current findings as a baseline file (sorted, stable)."""
    payload = {
        "version": 1,
        "findings": [
            {"rule": f.rule, "path": f.path, "line": f.line}
            for f in sorted(findings)
        ],
    }
    Path(path).write_text(
        json.dumps(payload, indent=2, sort_keys=True) + "\n", encoding="utf-8"
    )


def apply_baseline(
    findings: Sequence[Finding], baseline: Set[Tuple[str, str, int]]
) -> List[Finding]:
    """Drop findings whose key is present in the baseline."""
    return [f for f in findings if f.key() not in baseline]
