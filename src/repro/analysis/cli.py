"""The ``reprolint`` command line (also ``python -m repro.analysis``).

Exit codes: 0 = clean, 1 = findings reported, 2 = usage/IO error —
matching the convention of ruff/mypy so CI treats all three gates alike.

The advertised rule range and the ``--help`` epilog are generated from
:mod:`repro.analysis.registry`, so they can never lag the rule set.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional, Sequence, Tuple

from repro.analysis.cache import DEFAULT_CACHE_FILE
from repro.analysis.engine import (
    DEFAULT_EXCLUDED_DIRS,
    DEFAULT_EXCLUDED_PATHS,
    BaselineError,
    analyze_project,
    apply_baseline,
    load_baseline,
    write_baseline,
)
from repro.analysis.project import ALL_PROJECT_RULES, ProjectRule
from repro.analysis.registry import rule_catalog, rule_range, select_rules
from repro.analysis.report import FORMATS, render
from repro.analysis.rules import ALL_RULES, Rule

__all__ = ["main", "build_parser"]


def _epilog() -> str:
    rows = [f"  {code}  [{kind}]  {summary}"
            for code, kind, summary in rule_catalog()]
    return "rules:\n" + "\n".join(rows)


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="reprolint",
        description=(
            "AST-based determinism & simulation-invariant analyzer for the "
            f"ReASSIgN reproduction (rules {rule_range()}; per-file + "
            "whole-program phases; see docs/analysis.md)"
        ),
        epilog=_epilog(),
        formatter_class=argparse.RawDescriptionHelpFormatter,
    )
    parser.add_argument(
        "paths",
        nargs="*",
        default=["src"],
        help="files or directories to analyze (default: src)",
    )
    parser.add_argument(
        "--format",
        choices=FORMATS,
        default="text",
        help="output format (default: text)",
    )
    parser.add_argument(
        "--select",
        metavar="CODES",
        default=None,
        help="comma-separated rule codes to run (default: all rules)",
    )
    parser.add_argument(
        "--baseline",
        metavar="FILE",
        default=None,
        help="JSON baseline; findings listed in it are not reported",
    )
    parser.add_argument(
        "--write-baseline",
        metavar="FILE",
        default=None,
        help="write current findings to FILE as a baseline and exit 0",
    )
    parser.add_argument(
        "--exclude",
        metavar="NAME_OR_PATH",
        action="append",
        default=[],
        help=(
            "additional directory name (no slash) or path fragment "
            "(with slash) to skip; repeatable. Always skipped: "
            f"{', '.join(DEFAULT_EXCLUDED_DIRS + DEFAULT_EXCLUDED_PATHS)}"
        ),
    )
    parser.add_argument(
        "--cache-file",
        metavar="FILE",
        nargs="?",
        const=DEFAULT_CACHE_FILE,
        default=None,
        help=(
            "enable the incremental analysis cache, stored at FILE "
            f"(default when the flag is given: {DEFAULT_CACHE_FILE}); "
            "unchanged files replay cached findings byte-for-byte"
        ),
    )
    parser.add_argument(
        "--list-rules",
        action="store_true",
        help="print the rule catalogue and exit",
    )
    return parser


def _select(
    spec: Optional[str],
) -> Tuple[List[Rule], List[ProjectRule]]:
    if spec is None:
        return list(ALL_RULES), list(ALL_PROJECT_RULES)
    return select_rules(spec)


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)

    if args.list_rules:
        for code, kind, summary in rule_catalog():
            print(f"{code}  [{kind}]  {summary}")
        return 0

    try:
        rules, project_rules = _select(args.select)
    except ValueError as exc:
        print(f"reprolint: error: {exc}", file=sys.stderr)
        return 2

    excluded_dirs = list(DEFAULT_EXCLUDED_DIRS)
    excluded_paths = list(DEFAULT_EXCLUDED_PATHS)
    for extra in args.exclude:
        (excluded_paths if "/" in extra else excluded_dirs).append(extra)

    try:
        report = analyze_project(
            args.paths,
            rules=rules,
            project_rules=project_rules,
            excluded_dirs=excluded_dirs,
            excluded_paths=excluded_paths,
            cache_file=args.cache_file,
        )
    except FileNotFoundError as exc:
        print(f"reprolint: error: {exc}", file=sys.stderr)
        return 2
    findings = report.findings

    if args.write_baseline is not None:
        write_baseline(args.write_baseline, findings)
        print(
            f"reprolint: wrote {len(findings)} finding(s) to baseline "
            f"{args.write_baseline}"
        )
        return 0

    if args.baseline is not None:
        try:
            findings = apply_baseline(findings, load_baseline(args.baseline))
        except BaselineError as exc:
            print(f"reprolint: error: {exc}", file=sys.stderr)
            return 2

    print(render(findings, report.files_scanned, args.format, report.cache))
    return 1 if findings else 0


if __name__ == "__main__":  # pragma: no cover - exercised via __main__.py
    raise SystemExit(main())
