"""The ``reprolint`` command line (also ``python -m repro.analysis``).

Exit codes: 0 = clean, 1 = findings reported, 2 = usage/IO error —
matching the convention of ruff/mypy so CI treats all three gates alike.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional, Sequence

from repro.analysis.engine import (
    DEFAULT_EXCLUDED_DIRS,
    BaselineError,
    analyze_paths,
    apply_baseline,
    load_baseline,
    write_baseline,
)
from repro.analysis.report import FORMATS, render
from repro.analysis.rules import ALL_RULES, Rule

__all__ = ["main", "build_parser"]


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="reprolint",
        description=(
            "AST-based determinism & simulation-invariant analyzer for the "
            "ReASSIgN reproduction (rules RL001-RL006; see docs/analysis.md)"
        ),
    )
    parser.add_argument(
        "paths",
        nargs="*",
        default=["src"],
        help="files or directories to analyze (default: src)",
    )
    parser.add_argument(
        "--format",
        choices=FORMATS,
        default="text",
        help="output format (default: text)",
    )
    parser.add_argument(
        "--select",
        metavar="CODES",
        default=None,
        help="comma-separated rule codes to run (default: all rules)",
    )
    parser.add_argument(
        "--baseline",
        metavar="FILE",
        default=None,
        help="JSON baseline; findings listed in it are not reported",
    )
    parser.add_argument(
        "--write-baseline",
        metavar="FILE",
        default=None,
        help="write current findings to FILE as a baseline and exit 0",
    )
    parser.add_argument(
        "--exclude",
        metavar="DIRNAME",
        action="append",
        default=[],
        help=(
            "additional directory name to skip (repeatable; "
            f"always skipped: {', '.join(DEFAULT_EXCLUDED_DIRS)})"
        ),
    )
    parser.add_argument(
        "--list-rules",
        action="store_true",
        help="print the rule catalogue and exit",
    )
    return parser


def _select_rules(spec: Optional[str]) -> List[Rule]:
    if spec is None:
        return list(ALL_RULES)
    wanted = {code.strip().upper() for code in spec.split(",") if code.strip()}
    known = {rule.code for rule in ALL_RULES}
    unknown = wanted - known
    if unknown:
        raise ValueError(
            f"unknown rule code(s): {', '.join(sorted(unknown))}; "
            f"known: {', '.join(sorted(known))}"
        )
    return [rule for rule in ALL_RULES if rule.code in wanted]


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)

    if args.list_rules:
        for rule in ALL_RULES:
            print(f"{rule.code}  {rule.summary}")
        return 0

    try:
        rules = _select_rules(args.select)
    except ValueError as exc:
        print(f"reprolint: error: {exc}", file=sys.stderr)
        return 2

    excluded = tuple(DEFAULT_EXCLUDED_DIRS) + tuple(args.exclude)
    try:
        findings, files_scanned = analyze_paths(
            args.paths, rules=rules, excluded_dirs=excluded
        )
    except FileNotFoundError as exc:
        print(f"reprolint: error: {exc}", file=sys.stderr)
        return 2

    if args.write_baseline is not None:
        write_baseline(args.write_baseline, findings)
        print(
            f"reprolint: wrote {len(findings)} finding(s) to baseline "
            f"{args.write_baseline}"
        )
        return 0

    if args.baseline is not None:
        try:
            findings = apply_baseline(findings, load_baseline(args.baseline))
        except BaselineError as exc:
            print(f"reprolint: error: {exc}", file=sys.stderr)
            return 2

    print(render(findings, files_scanned, args.format))
    return 1 if findings else 0


if __name__ == "__main__":  # pragma: no cover - exercised via __main__.py
    raise SystemExit(main())
