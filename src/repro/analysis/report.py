"""Reprolint output formats: human text, machine JSON, GitHub annotations."""

from __future__ import annotations

import json
from typing import Sequence

from repro.analysis.findings import Finding

__all__ = ["render", "FORMATS"]

FORMATS = ("text", "json", "github")


def _render_text(findings: Sequence[Finding], files_scanned: int) -> str:
    lines = [str(f) for f in findings]
    noun = "finding" if len(findings) == 1 else "findings"
    lines.append(
        f"reprolint: {len(findings)} {noun} in {files_scanned} file(s) scanned"
    )
    return "\n".join(lines)


def _render_json(findings: Sequence[Finding], files_scanned: int) -> str:
    return json.dumps(
        {
            "files_scanned": files_scanned,
            "findings": [
                {
                    "path": f.path,
                    "line": f.line,
                    "col": f.col,
                    "rule": f.rule,
                    "message": f.message,
                }
                for f in findings
            ],
        },
        indent=2,
        sort_keys=True,
    )


def _render_github(findings: Sequence[Finding], files_scanned: int) -> str:
    # https://docs.github.com/actions/reference/workflow-commands
    lines = [
        f"::error file={f.path},line={f.line},col={f.col + 1},"
        f"title=reprolint {f.rule}::{f.message}"
        for f in findings
    ]
    lines.append(
        f"::notice title=reprolint::{len(findings)} finding(s) in "
        f"{files_scanned} file(s) scanned"
    )
    return "\n".join(lines)


def render(findings: Sequence[Finding], files_scanned: int, fmt: str) -> str:
    """Render findings in ``fmt`` (one of :data:`FORMATS`)."""
    if fmt == "text":
        return _render_text(findings, files_scanned)
    if fmt == "json":
        return _render_json(findings, files_scanned)
    if fmt == "github":
        return _render_github(findings, files_scanned)
    raise ValueError(f"unknown format {fmt!r}; expected one of {FORMATS}")
