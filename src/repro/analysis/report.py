"""Reprolint output formats: human text, machine JSON, GitHub annotations,
and SARIF 2.1.0 for GitHub code scanning.

All formats are deterministic (sorted findings in, canonical JSON out)
and all carry severity: ``text`` prints it inline, ``github`` maps it to
``::error``/``::warning`` workflow commands, ``json``/``sarif`` carry it
as a field.  When the engine ran with a cache, the summary includes the
hit/miss counts — CI's warm run greps for them.
"""

from __future__ import annotations

import json
from typing import Any, Dict, List, Optional, Sequence

from repro.analysis.cache import CacheStats
from repro.analysis.findings import Finding
from repro.analysis.registry import rule_catalog

__all__ = ["render", "FORMATS"]

FORMATS = ("text", "json", "github", "sarif")

#: SARIF is pinned to the published 2.1.0 schema; the test suite
#: validates :func:`_render_sarif` output against a vendored copy.
_SARIF_VERSION = "2.1.0"
_SARIF_SCHEMA_URI = "https://json.schemastore.org/sarif-2.1.0.json"


def _cache_suffix(cache: Optional[CacheStats]) -> str:
    if cache is None:
        return ""
    return f" (cache: {cache.hits} hits, {cache.misses} misses)"


def _render_text(
    findings: Sequence[Finding],
    files_scanned: int,
    cache: Optional[CacheStats],
) -> str:
    lines = [str(f) for f in findings]
    noun = "finding" if len(findings) == 1 else "findings"
    lines.append(
        f"reprolint: {len(findings)} {noun} in {files_scanned} file(s) "
        f"scanned{_cache_suffix(cache)}"
    )
    return "\n".join(lines)


def _render_json(
    findings: Sequence[Finding],
    files_scanned: int,
    cache: Optional[CacheStats],
) -> str:
    payload: Dict[str, Any] = {
        "files_scanned": files_scanned,
        "findings": [f.to_dict() for f in findings],
    }
    if cache is not None:
        payload["cache"] = {"hits": cache.hits, "misses": cache.misses}
    return json.dumps(payload, indent=2, sort_keys=True)


def _render_github(
    findings: Sequence[Finding],
    files_scanned: int,
    cache: Optional[CacheStats],
) -> str:
    # https://docs.github.com/actions/reference/workflow-commands
    lines = [
        f"::{'error' if f.severity == 'error' else 'warning'} "
        f"file={f.path},line={f.line},col={f.col + 1},"
        f"title=reprolint {f.rule}::{f.message}"
        for f in findings
    ]
    lines.append(
        f"::notice title=reprolint::{len(findings)} finding(s) in "
        f"{files_scanned} file(s) scanned{_cache_suffix(cache)}"
    )
    return "\n".join(lines)


def _render_sarif(
    findings: Sequence[Finding],
    files_scanned: int,
    cache: Optional[CacheStats],
) -> str:
    """SARIF 2.1.0: one run, the full rule catalog, one result per finding."""
    catalog = rule_catalog()
    rule_index = {code: i for i, (code, _, _) in enumerate(catalog)}
    rules: List[Dict[str, Any]] = [
        {
            "id": code,
            "shortDescription": {"text": summary},
            "properties": {"kind": kind},
        }
        for code, kind, summary in catalog
    ]
    results: List[Dict[str, Any]] = []
    for f in findings:
        result: Dict[str, Any] = {
            "ruleId": f.rule,
            "level": "error" if f.severity == "error" else "warning",
            "message": {"text": f.message},
            "locations": [
                {
                    "physicalLocation": {
                        "artifactLocation": {"uri": f.path},
                        "region": {
                            "startLine": f.line,
                            "startColumn": f.col + 1,
                        },
                    }
                }
            ],
        }
        if f.rule in rule_index:
            result["ruleIndex"] = rule_index[f.rule]
        results.append(result)
    properties: Dict[str, Any] = {"filesScanned": files_scanned}
    if cache is not None:
        properties["cacheHits"] = cache.hits
        properties["cacheMisses"] = cache.misses
    payload = {
        "$schema": _SARIF_SCHEMA_URI,
        "version": _SARIF_VERSION,
        "runs": [
            {
                "tool": {
                    "driver": {
                        "name": "reprolint",
                        "informationUri": (
                            "https://github.com/reassign-repro/repro"
                        ),
                        "rules": rules,
                    }
                },
                "results": results,
                "columnKind": "utf16CodeUnits",
                "properties": properties,
            }
        ],
    }
    return json.dumps(payload, indent=2, sort_keys=True)


def render(
    findings: Sequence[Finding],
    files_scanned: int,
    fmt: str,
    cache: Optional[CacheStats] = None,
) -> str:
    """Render findings in ``fmt`` (one of :data:`FORMATS`)."""
    if fmt == "text":
        return _render_text(findings, files_scanned, cache)
    if fmt == "json":
        return _render_json(findings, files_scanned, cache)
    if fmt == "github":
        return _render_github(findings, files_scanned, cache)
    if fmt == "sarif":
        return _render_sarif(findings, files_scanned, cache)
    raise ValueError(f"unknown format {fmt!r}; expected one of {FORMATS}")
