"""Finding model shared by the reprolint engine, rules and reporters.

A :class:`Finding` is one rule violation at one source location.  Its
:meth:`Finding.key` identity — ``(rule, path, line)`` — is what baseline
files match on, so re-running the analyzer on an unchanged tree always
reproduces the same keys.

Findings carry a severity tier: ``"error"`` for violations of the
determinism contract itself, ``"warning"`` for order-fragility that is
deterministic today but one refactor away from drift (e.g. float sums
over insertion-ordered dict values).  Both tiers gate the CLI exit code
— the tree is expected to be clean of *all* findings — but reporters
map them to the matching annotation level (GitHub ``::warning``, SARIF
``"warning"``).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, Tuple

__all__ = ["Finding", "SEVERITIES", "SYNTAX_ERROR_RULE"]

#: Pseudo-rule code reported when a file cannot be parsed at all.
SYNTAX_ERROR_RULE = "RL000"

#: Allowed severity tiers, strongest first.
SEVERITIES: Tuple[str, ...] = ("error", "warning")


@dataclass(frozen=True, order=True)
class Finding:
    """One rule violation.

    Attributes
    ----------
    path:
        POSIX-style path of the offending file, as given on the command
        line (relative paths stay relative, so findings are stable
        across machines).
    line, col:
        1-based line and 0-based column of the offending node.
    rule:
        Rule code (``RL001`` … ``RL013``, or :data:`SYNTAX_ERROR_RULE`).
    message:
        Human-readable explanation with the repo-specific remedy.
    severity:
        ``"error"`` or ``"warning"`` (see :data:`SEVERITIES`).
    """

    path: str
    line: int
    col: int
    rule: str
    message: str
    severity: str = "error"

    def key(self) -> Tuple[str, str, int]:
        """Baseline identity: ``(rule, path, line)``."""
        return (self.rule, self.path, self.line)

    def to_dict(self) -> Dict[str, Any]:
        """JSON-ready form (used by the report and the analysis cache)."""
        return {
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "rule": self.rule,
            "message": self.message,
            "severity": self.severity,
        }

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "Finding":
        """Inverse of :meth:`to_dict`."""
        return cls(
            path=str(data["path"]),
            line=int(data["line"]),
            col=int(data["col"]),
            rule=str(data["rule"]),
            message=str(data["message"]),
            severity=str(data.get("severity", "error")),
        )

    def __str__(self) -> str:
        return (
            f"{self.path}:{self.line}:{self.col}: "
            f"{self.rule} [{self.severity}] {self.message}"
        )
