"""Finding model shared by the reprolint engine, rules and reporters.

A :class:`Finding` is one rule violation at one source location.  Its
:meth:`Finding.key` identity — ``(rule, path, line)`` — is what baseline
files (:mod:`repro.analysis.baseline`) match on, so re-running the
analyzer on an unchanged tree always reproduces the same keys.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

__all__ = ["Finding", "SYNTAX_ERROR_RULE"]

#: Pseudo-rule code reported when a file cannot be parsed at all.
SYNTAX_ERROR_RULE = "RL000"


@dataclass(frozen=True, order=True)
class Finding:
    """One rule violation.

    Attributes
    ----------
    path:
        POSIX-style path of the offending file, as given on the command
        line (relative paths stay relative, so findings are stable
        across machines).
    line, col:
        1-based line and 0-based column of the offending node.
    rule:
        Rule code (``RL001`` … ``RL006``, or :data:`SYNTAX_ERROR_RULE`).
    message:
        Human-readable explanation with the repo-specific remedy.
    """

    path: str
    line: int
    col: int
    rule: str
    message: str

    def key(self) -> Tuple[str, str, int]:
        """Baseline identity: ``(rule, path, line)``."""
        return (self.rule, self.path, self.line)

    def __str__(self) -> str:
        return f"{self.path}:{self.line}:{self.col}: {self.rule} {self.message}"
