"""Incremental analysis cache (``.reprolint-cache.json``).

Warm CI runs should be near-instant: per-file findings and extracted
:class:`~repro.analysis.project.FileFacts` are keyed by the file's
content sha256, so an unchanged file is never re-parsed — its cached
findings are replayed byte-for-byte and its cached facts feed the
(cheap) phase-2 project rules, which always run against the full index.

Invalidation is deliberately coarse where it must be:

- the whole cache is dropped when the **rule-set fingerprint** changes —
  the fingerprint hashes the selected rule codes, the facts schema
  version and the source bytes of the entire ``repro.analysis`` package,
  so editing any rule (per-file *or* project) or the engine itself
  invalidates every entry rather than replaying stale results;
- a single changed file misses only for itself, but because project
  rules re-run over all facts every time, its new facts immediately
  participate in every cross-file check.

The cache file is canonical JSON (sorted keys) and safe to delete at
any time; a corrupt or version-skewed file is treated as empty.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Dict, List, Optional, Sequence, Set, Tuple

from repro.analysis.findings import Finding
from repro.analysis.project import FACTS_SCHEMA_VERSION, FileFacts

__all__ = [
    "AnalysisCache",
    "CacheStats",
    "DEFAULT_CACHE_FILE",
    "ruleset_fingerprint",
]

#: Conventional cache location (the CLI's ``--cache-file`` default value).
DEFAULT_CACHE_FILE = ".reprolint-cache.json"

_CACHE_VERSION = 1


def ruleset_fingerprint(rule_codes: Sequence[str]) -> str:
    """Fingerprint the active rule set *and* the analyzer implementation.

    Hashes the sorted selected rule codes, the facts schema version and
    the bytes of every module in ``repro.analysis``, so any change to a
    rule, the extraction logic or the engine invalidates every cached
    entry (the "ProjectRule active-dirty" case included: project rules
    are part of this package, so editing one changes the fingerprint).
    """
    digest = hashlib.sha256()
    digest.update(f"cache-version:{_CACHE_VERSION}\n".encode("utf-8"))
    digest.update(f"facts-schema:{FACTS_SCHEMA_VERSION}\n".encode("utf-8"))
    for code in sorted(rule_codes):
        digest.update(f"rule:{code}\n".encode("utf-8"))
    package_dir = Path(__file__).resolve().parent
    for source in sorted(package_dir.glob("*.py")):
        digest.update(f"file:{source.name}\n".encode("utf-8"))
        digest.update(source.read_bytes())
    return digest.hexdigest()


@dataclass
class CacheStats:
    """Hit/miss counters for one analysis run."""

    hits: int = 0
    misses: int = 0


#: One cache lookup result: (per-file findings, facts, suppressed lines).
CacheEntry = Tuple[List[Finding], FileFacts, Dict[int, Set[str]]]


class AnalysisCache:
    """Content-addressed store of per-file analysis results."""

    def __init__(self, path: str, fingerprint: str) -> None:
        self.path = path
        self.fingerprint = fingerprint
        self.stats = CacheStats()
        self._entries: Dict[str, Dict[str, Any]] = self._load()

    def _load(self) -> Dict[str, Any]:
        try:
            payload = json.loads(Path(self.path).read_text(encoding="utf-8"))
        except (OSError, json.JSONDecodeError, UnicodeDecodeError):
            return {}
        if not isinstance(payload, dict):
            return {}
        if payload.get("version") != _CACHE_VERSION:
            return {}
        if payload.get("fingerprint") != self.fingerprint:
            return {}  # rule set or analyzer changed: drop everything
        files = payload.get("files")
        return dict(files) if isinstance(files, dict) else {}

    def lookup(self, file_key: str, sha256: str) -> Optional[CacheEntry]:
        """Return the cached entry for ``file_key`` iff its content matches."""
        entry = self._entries.get(file_key)
        if entry is None or entry.get("sha256") != sha256:
            self.stats.misses += 1
            return None
        try:
            findings = [Finding.from_dict(d) for d in entry["findings"]]
            facts = FileFacts.from_dict(entry["facts"])
            suppressions = {
                int(line): set(str(c) for c in codes)
                for line, codes in entry["suppressions"].items()
            }
        except (KeyError, TypeError, ValueError):
            self.stats.misses += 1
            return None
        self.stats.hits += 1
        return findings, facts, suppressions

    def store(
        self,
        file_key: str,
        sha256: str,
        findings: Sequence[Finding],
        facts: FileFacts,
        suppressions: Dict[int, Set[str]],
    ) -> None:
        """Record one freshly-analyzed file."""
        self._entries[file_key] = {
            "sha256": sha256,
            "findings": [f.to_dict() for f in findings],
            "facts": facts.to_dict(),
            "suppressions": {
                str(line): sorted(codes)
                for line, codes in sorted(suppressions.items())
            },
        }

    def save(self) -> None:
        """Write the cache back as canonical JSON (best effort)."""
        payload = {
            "version": _CACHE_VERSION,
            "fingerprint": self.fingerprint,
            "files": self._entries,
        }
        try:
            Path(self.path).write_text(
                json.dumps(payload, indent=1, sort_keys=True) + "\n",
                encoding="utf-8",
            )
        except OSError:
            pass  # an unwritable cache must never fail the lint gate
