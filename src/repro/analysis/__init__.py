"""reprolint — AST-based determinism & simulation-invariant analysis.

The repo's reproducibility guarantees (bit-identical parallel sweeps,
same-seed provenance; see ``docs/runner.md``) are enforced dynamically by
the determinism regression tests and *statically* by this package, in
two phases: per-file rules catch single-file defects (global RNG state,
wall-clock reads, unordered-set iteration, unpicklable parallel tasks,
backwards simulated time, unsorted directory listings, hot-loop
cross-product rebuilds), and whole-program :class:`ProjectRule` passes
relate facts across files (RNG stream-name collisions, non-canonical
persisted JSON, broken seed plumbing, event-priority drift, kernel
mutation, order-sensitive float reductions).

The advertised range below is generated from the rule registry — see
``repro.analysis.registry`` — so it is always current: rules {rule_range}
({n_rules} rules).

Run it as ``reprolint`` (console script) or ``python -m repro.analysis``;
rule catalogue and rationale live in ``docs/analysis.md``.
"""

from repro.analysis.cache import AnalysisCache, CacheStats, ruleset_fingerprint
from repro.analysis.engine import (
    AnalysisReport,
    analyze_paths,
    analyze_project,
    analyze_source,
    analyze_sources,
    apply_baseline,
    load_baseline,
    write_baseline,
)
from repro.analysis.findings import Finding
from repro.analysis.project import (
    ALL_PROJECT_RULES,
    FileFacts,
    ProjectIndex,
    ProjectRule,
    extract_facts,
)
from repro.analysis.registry import ALL_RULE_CODES, rule_catalog, rule_range
from repro.analysis.report import render
from repro.analysis.rules import ALL_RULES, FileContext, Rule

__all__ = [
    "ALL_PROJECT_RULES",
    "ALL_RULES",
    "ALL_RULE_CODES",
    "AnalysisCache",
    "AnalysisReport",
    "CacheStats",
    "FileContext",
    "FileFacts",
    "Finding",
    "ProjectIndex",
    "ProjectRule",
    "Rule",
    "analyze_paths",
    "analyze_project",
    "analyze_source",
    "analyze_sources",
    "apply_baseline",
    "extract_facts",
    "load_baseline",
    "render",
    "rule_catalog",
    "rule_range",
    "ruleset_fingerprint",
    "write_baseline",
]

# The docstring advertises the rule range; fill it in from the registry
# so it can never rot when a rule lands (this module is imported, the
# placeholder is formatted exactly once).
if __doc__ is not None:
    __doc__ = __doc__.format(
        rule_range=rule_range(), n_rules=len(ALL_RULE_CODES)
    )
