"""reprolint — AST-based determinism & simulation-invariant analysis.

The repo's reproducibility guarantees (bit-identical parallel sweeps,
same-seed provenance; see ``docs/runner.md``) are enforced dynamically by
the determinism regression tests and *statically* by this package: six
repo-specific rules (RL001–RL006) catch global RNG state, wall-clock
reads, unordered-set iteration, unpicklable parallel tasks, backwards
simulated time and unsorted directory listings at lint time.

Run it as ``reprolint`` (console script) or ``python -m repro.analysis``;
rule catalogue and rationale live in ``docs/analysis.md``.
"""

from repro.analysis.engine import (
    analyze_paths,
    analyze_source,
    apply_baseline,
    load_baseline,
    write_baseline,
)
from repro.analysis.findings import Finding
from repro.analysis.report import render
from repro.analysis.rules import ALL_RULES, FileContext, Rule

__all__ = [
    "ALL_RULES",
    "FileContext",
    "Finding",
    "Rule",
    "analyze_paths",
    "analyze_source",
    "apply_baseline",
    "load_baseline",
    "render",
    "write_baseline",
]
