"""Phase 2 of reprolint: whole-program (cross-file) invariant analysis.

Phase 1 (:mod:`repro.analysis.engine`) parses every file once and calls
:func:`extract_facts` on each tree, distilling the handful of facts the
cross-file rules need — RNG stream names, ``json.dumps`` call sites,
event-type priority constants, ``EpisodeKernel`` aliases — into a small,
JSON-serializable :class:`FileFacts` record.  Phase 2 assembles the
records into a :class:`ProjectIndex` and runs every :class:`ProjectRule`
over it.

The split is what makes the incremental cache possible: facts (not
trees) are what project rules consume, so a warm run can skip parsing
entirely for unchanged files and still re-run every cross-file check
against the full project.

Rules RL008–RL013 live here; the per-file rules RL001–RL007 stay in
:mod:`repro.analysis.rules` with an unchanged API.
"""

from __future__ import annotations

import ast
from dataclasses import asdict, dataclass, field
from typing import Any, Dict, Iterator, List, Optional, Sequence, Tuple

from repro.analysis.findings import Finding
from repro.analysis.rules import FileContext, in_library, in_subpackages

__all__ = [
    "FileFacts",
    "ProjectIndex",
    "ProjectRule",
    "ALL_PROJECT_RULES",
    "extract_facts",
    "RuleRL008",
    "RuleRL009",
    "RuleRL010",
    "RuleRL011",
    "RuleRL012",
    "RuleRL013",
]

#: Bump whenever the :class:`FileFacts` schema or extraction logic
#: changes; it feeds the cache fingerprint so stale facts are never
#: replayed into newer project rules.
FACTS_SCHEMA_VERSION = 1


# -- fact records --------------------------------------------------------------


@dataclass(frozen=True)
class StreamCall:
    """A named RNG stream derivation: ``.stream("x")``, ``.spawn_seed("x")``
    or ``derive_seed(root, "x")`` with a literal name."""

    name: str
    line: int
    col: int
    kind: str  # "stream" | "derive_seed" | "spawn_seed"


@dataclass(frozen=True)
class DumpsCall:
    """One ``json.dumps`` call site."""

    line: int
    col: int
    sort_keys: bool
    func: str  # enclosing function name ("" at module level)


@dataclass(frozen=True)
class RngConstruction:
    """Construction of a generator object (``default_rng``, ``Random``…)."""

    factory: str
    line: int
    col: int
    n_args: int
    seeded: bool  # an argument is grounded in a seed/derive_seed expression


@dataclass(frozen=True)
class UnusedSeedParam:
    """A function that accepts ``seed`` but never reads it while
    constructing randomness."""

    func: str
    line: int
    col: int


@dataclass(frozen=True)
class EventEnumFact:
    """An ``IntEnum`` of event types: member (name, value, line) triples."""

    name: str
    line: int
    members: Tuple[Tuple[str, int, int], ...]


@dataclass(frozen=True)
class PriorityTableFact:
    """A module-level literal ``PRIORITY_TABLE`` of (name, value) pairs."""

    line: int
    entries: Tuple[Tuple[str, int], ...]


@dataclass(frozen=True)
class KernelMutation:
    """An attribute assignment/deletion on an EpisodeKernel-typed object."""

    target: str
    line: int
    col: int


@dataclass(frozen=True)
class UnorderedReduction:
    """``sum``/``max``/``min`` over a set expression or ``.values()`` view."""

    func: str
    kind: str  # "set" | "dict_values"
    has_key: bool
    line: int
    col: int


@dataclass
class FileFacts:
    """Everything the project rules need to know about one file."""

    path: str
    module: str
    stream_calls: List[StreamCall] = field(default_factory=list)
    dumps_calls: List[DumpsCall] = field(default_factory=list)
    rng_constructions: List[RngConstruction] = field(default_factory=list)
    unused_seed_params: List[UnusedSeedParam] = field(default_factory=list)
    event_enums: List[EventEnumFact] = field(default_factory=list)
    priority_table: Optional[PriorityTableFact] = None
    kernel_mutations: List[KernelMutation] = field(default_factory=list)
    unordered_reductions: List[UnorderedReduction] = field(default_factory=list)
    writes_files: bool = False
    defines_kernel_class: bool = False

    def to_dict(self) -> Dict[str, Any]:
        """JSON-ready form (lists of plain dicts/lists)."""
        return asdict(self)

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "FileFacts":
        """Inverse of :meth:`to_dict` (tolerates JSON's tuple->list)."""
        table = data.get("priority_table")
        return cls(
            path=str(data["path"]),
            module=str(data["module"]),
            stream_calls=[StreamCall(**d) for d in data.get("stream_calls", [])],
            dumps_calls=[DumpsCall(**d) for d in data.get("dumps_calls", [])],
            rng_constructions=[
                RngConstruction(**d) for d in data.get("rng_constructions", [])
            ],
            unused_seed_params=[
                UnusedSeedParam(**d) for d in data.get("unused_seed_params", [])
            ],
            event_enums=[
                EventEnumFact(
                    name=str(d["name"]),
                    line=int(d["line"]),
                    members=tuple(
                        (str(n), int(v), int(ln)) for n, v, ln in d["members"]
                    ),
                )
                for d in data.get("event_enums", [])
            ],
            priority_table=(
                None
                if table is None
                else PriorityTableFact(
                    line=int(table["line"]),
                    entries=tuple(
                        (str(n), int(v)) for n, v in table["entries"]
                    ),
                )
            ),
            kernel_mutations=[
                KernelMutation(**d) for d in data.get("kernel_mutations", [])
            ],
            unordered_reductions=[
                UnorderedReduction(**d)
                for d in data.get("unordered_reductions", [])
            ],
            writes_files=bool(data.get("writes_files", False)),
            defines_kernel_class=bool(data.get("defines_kernel_class", False)),
        )


# -- fact extraction -----------------------------------------------------------


def _module_of(path: str) -> str:
    """Dotted module guess: ``src/repro/rl/double_q.py`` -> ``repro.rl.double_q``."""
    posix = path.replace("\\", "/")
    parts = [p for p in posix.split("/") if p]
    if "repro" in parts:
        parts = parts[parts.index("repro"):]
    else:
        parts = parts[-1:]
    if parts and parts[-1].endswith(".py"):
        parts[-1] = parts[-1][:-3]
    if parts and parts[-1] == "__init__":
        parts = parts[:-1]
    return ".".join(parts)


_RNG_FACTORIES = {
    "numpy.random.default_rng",
    "numpy.random.Generator",
    "random.Random",
}

_SEED_CALL_NAMES = {"derive_seed", "spawn_seed", "stream", "child", "seed_for"}

_REDUCTIONS = {"sum", "max", "min"}


def _dotted_name(node: ast.expr) -> Optional[str]:
    """``a.b.c`` for pure Name/Attribute chains, else None."""
    parts: List[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if not isinstance(node, ast.Name):
        return None
    parts.append(node.id)
    return ".".join(reversed(parts))


def _mentions_seed(nodes: Sequence[ast.expr]) -> bool:
    """True when any expression is grounded in a seed-like source."""
    for root in nodes:
        for node in ast.walk(root):
            if isinstance(node, ast.Name) and "seed" in node.id.lower():
                return True
            if isinstance(node, ast.Attribute) and "seed" in node.attr.lower():
                return True
            if isinstance(node, ast.Constant) and isinstance(node.value, int):
                # a literal seed: deterministic, blessed by RL001
                return True
            if isinstance(node, ast.Call):
                func = node.func
                if isinstance(func, ast.Name) and (
                    func.id in _SEED_CALL_NAMES or func.id == "RngService"
                ):
                    return True
                if isinstance(func, ast.Attribute) and (
                    func.attr in _SEED_CALL_NAMES
                ):
                    return True
    return False


def _is_set_like(node: ast.expr) -> bool:
    """Syntactic set detector (no name tracking; direct expressions only)."""
    if isinstance(node, (ast.Set, ast.SetComp)):
        return True
    if isinstance(node, ast.Call) and isinstance(node.func, ast.Name):
        if node.func.id in {"set", "frozenset"}:
            return True
    if isinstance(node, ast.BinOp) and isinstance(
        node.op, (ast.BitOr, ast.BitAnd, ast.Sub)
    ):
        return _is_set_like(node.left) or _is_set_like(node.right)
    return False


def _is_values_view(node: ast.expr) -> bool:
    return (
        isinstance(node, ast.Call)
        and isinstance(node.func, ast.Attribute)
        and node.func.attr == "values"
        and not node.args
        and not node.keywords
    )


def _reduction_kind(arg: ast.expr) -> Optional[str]:
    """Classify a reduction's first argument, looking through genexprs."""
    if isinstance(arg, ast.GeneratorExp) and arg.generators:
        return _reduction_kind(arg.generators[0].iter)
    if _is_set_like(arg):
        return "set"
    if _is_values_view(arg):
        return "dict_values"
    return None


def _function_args(node: ast.FunctionDef) -> List[ast.arg]:
    a = node.args
    return [*a.posonlyargs, *a.args, *a.kwonlyargs]


def _annotation_mentions(ann: Optional[ast.expr], name: str) -> bool:
    if ann is None:
        return False
    for node in ast.walk(ann):
        if isinstance(node, ast.Name) and node.id == name:
            return True
        if isinstance(node, ast.Attribute) and node.attr == name:
            return True
        if isinstance(node, ast.Constant) and isinstance(node.value, str):
            if name in node.value:
                return True
    return False


def _enclosing_function(ctx: FileContext, node: ast.AST) -> str:
    cur: Optional[ast.AST] = node
    while cur is not None:
        cur = ctx.parents.get(cur)
        if isinstance(cur, (ast.FunctionDef, ast.AsyncFunctionDef)):
            return cur.name
    return ""


def _literal_str(node: ast.expr) -> Optional[str]:
    if isinstance(node, ast.Constant) and isinstance(node.value, str):
        return node.value
    return None


def _is_int_enum_base(ctx: FileContext, base: ast.expr) -> bool:
    dotted = ctx.resolve(base)
    if dotted == "enum.IntEnum":
        return True
    name = base.id if isinstance(base, ast.Name) else (
        base.attr if isinstance(base, ast.Attribute) else ""
    )
    return name == "IntEnum"


def _extract_event_enums(ctx: FileContext) -> List[EventEnumFact]:
    out: List[EventEnumFact] = []
    for node in ast.walk(ctx.tree):
        if not isinstance(node, ast.ClassDef):
            continue
        if "Event" not in node.name:
            continue
        if not any(_is_int_enum_base(ctx, base) for base in node.bases):
            continue
        members: List[Tuple[str, int, int]] = []
        for stmt in node.body:
            if (
                isinstance(stmt, ast.Assign)
                and len(stmt.targets) == 1
                and isinstance(stmt.targets[0], ast.Name)
                and isinstance(stmt.value, ast.Constant)
                and isinstance(stmt.value.value, int)
                and not isinstance(stmt.value.value, bool)
            ):
                members.append(
                    (stmt.targets[0].id, stmt.value.value, stmt.lineno)
                )
        if members:
            out.append(
                EventEnumFact(
                    name=node.name, line=node.lineno, members=tuple(members)
                )
            )
    return out


def _extract_priority_table(ctx: FileContext) -> Optional[PriorityTableFact]:
    for stmt in ctx.tree.body:
        target: Optional[ast.expr] = None
        value: Optional[ast.expr] = None
        if isinstance(stmt, ast.Assign) and len(stmt.targets) == 1:
            target, value = stmt.targets[0], stmt.value
        elif isinstance(stmt, ast.AnnAssign) and stmt.value is not None:
            target, value = stmt.target, stmt.value
        if not (isinstance(target, ast.Name) and target.id == "PRIORITY_TABLE"):
            continue
        if not isinstance(value, (ast.Tuple, ast.List)):
            continue
        entries: List[Tuple[str, int]] = []
        for elt in value.elts:
            if not isinstance(elt, (ast.Tuple, ast.List)) or len(elt.elts) != 2:
                return PriorityTableFact(line=stmt.lineno, entries=tuple(entries))
            name = _literal_str(elt.elts[0])
            val = elt.elts[1]
            if name is None or not (
                isinstance(val, ast.Constant) and isinstance(val.value, int)
            ):
                return PriorityTableFact(line=stmt.lineno, entries=tuple(entries))
            entries.append((name, val.value))
        return PriorityTableFact(line=stmt.lineno, entries=tuple(entries))
    return None


def _extract_kernel_mutations(
    ctx: FileContext,
) -> Tuple[List[KernelMutation], bool]:
    defines = any(
        isinstance(node, ast.ClassDef) and node.name == "EpisodeKernel"
        for node in ast.walk(ctx.tree)
    )
    # pass 1: names/attribute chains that hold an EpisodeKernel
    kernel_exprs: set[str] = set()
    for node in ast.walk(ctx.tree):
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            for arg in _function_args(node):
                if _annotation_mentions(arg.annotation, "EpisodeKernel"):
                    kernel_exprs.add(arg.arg)
        elif isinstance(node, ast.AnnAssign):
            dotted = _dotted_name(node.target) if isinstance(
                node.target, (ast.Name, ast.Attribute)
            ) else None
            if dotted and _annotation_mentions(node.annotation, "EpisodeKernel"):
                kernel_exprs.add(dotted)
    # pass 2 (fixpoint-free, two sweeps): propagate through assignments
    for _ in range(2):
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Assign):
                continue
            value_dotted = _dotted_name(node.value) if isinstance(
                node.value, (ast.Name, ast.Attribute)
            ) else None
            is_kernel_value = value_dotted in kernel_exprs
            if isinstance(node.value, ast.Call):
                callee = _dotted_name(node.value.func)
                if callee is not None and callee.split(".")[-1] == "EpisodeKernel":
                    is_kernel_value = True
            if not is_kernel_value:
                continue
            for target in node.targets:
                if isinstance(target, (ast.Name, ast.Attribute)):
                    dotted = _dotted_name(target)
                    if dotted:
                        kernel_exprs.add(dotted)
    # pass 3: attribute writes whose base is a tracked kernel expression
    mutations: List[KernelMutation] = []

    def record(target: ast.expr) -> None:
        if not isinstance(target, ast.Attribute):
            return
        base = _dotted_name(target.value)
        if base in kernel_exprs:
            mutations.append(
                KernelMutation(
                    target=f"{base}.{target.attr}",
                    line=target.lineno,
                    col=target.col_offset,
                )
            )

    for node in ast.walk(ctx.tree):
        if isinstance(node, ast.Assign):
            for target in node.targets:
                record(target)
        elif isinstance(node, ast.AugAssign):
            record(node.target)
        elif isinstance(node, ast.Delete):
            for target in node.targets:
                record(target)
    return mutations, defines


def extract_facts(ctx: FileContext) -> FileFacts:
    """Distill one parsed file into the facts the project rules consume."""
    facts = FileFacts(path=ctx.path, module=_module_of(ctx.path))

    for node in ast.walk(ctx.tree):
        if not isinstance(node, ast.Call):
            continue
        func = node.func

        # named stream derivations ----------------------------------------
        if isinstance(func, ast.Attribute) and func.attr in {
            "stream",
            "spawn_seed",
        }:
            if node.args:
                name = _literal_str(node.args[0])
                if name is not None:
                    facts.stream_calls.append(
                        StreamCall(
                            name=name,
                            line=node.lineno,
                            col=node.col_offset,
                            kind=func.attr,
                        )
                    )
        dotted = ctx.resolve(func)
        if (
            dotted == "repro.util.rng.derive_seed"
            or (isinstance(func, ast.Name) and func.id == "derive_seed")
        ) and len(node.args) >= 2:
            name = _literal_str(node.args[1])
            if name is not None:
                facts.stream_calls.append(
                    StreamCall(
                        name=name,
                        line=node.lineno,
                        col=node.col_offset,
                        kind="derive_seed",
                    )
                )

        # json.dumps call sites -------------------------------------------
        if dotted == "json.dumps":
            sort_keys = any(
                kw.arg == "sort_keys"
                and isinstance(kw.value, ast.Constant)
                and kw.value.value is True
                for kw in node.keywords
            )
            facts.dumps_calls.append(
                DumpsCall(
                    line=node.lineno,
                    col=node.col_offset,
                    sort_keys=sort_keys,
                    func=_enclosing_function(ctx, node),
                )
            )

        # generator constructions -----------------------------------------
        if dotted in _RNG_FACTORIES:
            arg_exprs = list(node.args) + [kw.value for kw in node.keywords]
            facts.rng_constructions.append(
                RngConstruction(
                    factory=dotted,
                    line=node.lineno,
                    col=node.col_offset,
                    n_args=len(arg_exprs),
                    seeded=_mentions_seed(arg_exprs),
                )
            )

        # file-write markers ----------------------------------------------
        if isinstance(func, ast.Name) and func.id == "open":
            mode: Optional[str] = None
            if len(node.args) >= 2:
                mode = _literal_str(node.args[1])
            for kw in node.keywords:
                if kw.arg == "mode":
                    mode = _literal_str(kw.value)
            if mode is not None and any(c in mode for c in "wxa"):
                facts.writes_files = True
        if isinstance(func, ast.Attribute) and func.attr == "write_text":
            facts.writes_files = True

        # order-sensitive reductions --------------------------------------
        if (
            isinstance(func, ast.Name)
            and func.id in _REDUCTIONS
            and node.args
        ):
            kind = _reduction_kind(node.args[0])
            if kind is not None:
                facts.unordered_reductions.append(
                    UnorderedReduction(
                        func=func.id,
                        kind=kind,
                        has_key=any(kw.arg == "key" for kw in node.keywords),
                        line=node.lineno,
                        col=node.col_offset,
                    )
                )

    # seed parameters never threaded into randomness ----------------------
    for node in ast.walk(ctx.tree):
        if not isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            continue
        if not any(arg.arg == "seed" for arg in _function_args(node)):
            continue
        seed_read = False
        constructs_rng = False
        for inner in ast.walk(node):
            if isinstance(inner, ast.Name) and inner.id == "seed":
                seed_read = True
            if isinstance(inner, ast.Call):
                inner_dotted = ctx.resolve(inner.func)
                if inner_dotted in _RNG_FACTORIES or inner_dotted == (
                    "repro.util.rng.RngService"
                ):
                    constructs_rng = True
                inner_func = inner.func
                if isinstance(inner_func, ast.Name) and inner_func.id == (
                    "RngService"
                ):
                    constructs_rng = True
                if isinstance(inner_func, ast.Attribute) and inner_func.attr == (
                    "stream"
                ):
                    constructs_rng = True
        if constructs_rng and not seed_read:
            facts.unused_seed_params.append(
                UnusedSeedParam(
                    func=node.name, line=node.lineno, col=node.col_offset
                )
            )

    facts.event_enums = _extract_event_enums(ctx)
    facts.priority_table = _extract_priority_table(ctx)
    facts.kernel_mutations, facts.defines_kernel_class = (
        _extract_kernel_mutations(ctx)
    )
    return facts


# -- the project index ---------------------------------------------------------


class ProjectIndex:
    """Sorted, queryable collection of every analyzed file's facts."""

    def __init__(self, facts: Sequence[FileFacts]) -> None:
        self.files: Tuple[FileFacts, ...] = tuple(
            sorted(facts, key=lambda f: f.path)
        )
        self.by_path: Dict[str, FileFacts] = {f.path: f for f in self.files}

    def library_files(self) -> Iterator[FileFacts]:
        """Facts for files inside the ``repro`` package source."""
        for facts in self.files:
            if in_library(facts.path):
                yield facts


# -- project rules -------------------------------------------------------------


class ProjectRule:
    """Base class for cross-file rules; subclasses implement :meth:`check`.

    Unlike :class:`repro.analysis.rules.Rule`, a project rule sees the
    whole :class:`ProjectIndex` at once, so it can relate call sites in
    different modules.  Findings must be yielded in a deterministic
    order (the index is pre-sorted by path).
    """

    code: str = ""
    summary: str = ""
    default_severity: str = "error"

    def finding(
        self,
        facts: FileFacts,
        line: int,
        col: int,
        message: str,
        severity: Optional[str] = None,
    ) -> Finding:
        return Finding(
            path=facts.path,
            line=line,
            col=col,
            rule=self.code,
            message=message,
            severity=severity or self.default_severity,
        )

    def check(self, index: ProjectIndex) -> Iterator[Finding]:
        raise NotImplementedError
        yield  # pragma: no cover - makes this a generator for typing


class RuleRL008(ProjectRule):
    """Cross-module RNG stream-name collisions.

    :func:`repro.util.rng.derive_seed` maps (root seed, name) to a
    stream, so two modules deriving the *same literal name* from equal
    root seeds draw from identical streams — draws in one silently
    correlate with draws in the other, which is exactly the isolation
    the named-stream design exists to prevent.  Give each module its own
    prefix (``"service-arrivals"``, ``"reassign-policy"`` …).
    """

    code = "RL008"
    summary = "same RNG stream name derived in more than one module"

    def check(self, index: ProjectIndex) -> Iterator[Finding]:
        owners: Dict[str, List[Tuple[FileFacts, StreamCall]]] = {}
        for facts in index.library_files():
            for call in facts.stream_calls:
                owners.setdefault(call.name, []).append((facts, call))
        for name in sorted(owners):
            sites = owners[name]
            modules = sorted({facts.module for facts, _ in sites})
            if len(modules) < 2:
                continue
            for facts, call in sites:
                others = ", ".join(m for m in modules if m != facts.module)
                yield self.finding(
                    facts,
                    call.line,
                    call.col,
                    f"RNG stream name '{name}' is also derived in {others}; "
                    "equal root seeds would make the streams identical — "
                    "use a module-specific stream name",
                )


class RuleRL009(ProjectRule):
    """Non-canonical JSON for persisted artifacts.

    Serializers that feed fixtures, metrics, baselines or provenance
    must emit canonical JSON (``sort_keys=True``): dict iteration order
    is insertion history, so a refactor that builds the same payload in
    a different order silently changes the bytes every golden-fixture
    and byte-identity test compares.  Flags ``json.dumps`` without
    ``sort_keys=True`` inside ``to_json``-style serializers and in
    modules that write files.
    """

    code = "RL009"
    summary = "json.dumps without sort_keys=True in artifact-writing code"

    @staticmethod
    def _is_serializer(func: str) -> bool:
        return (
            func == "to_json"
            or func.endswith("_to_json")
            or func.startswith(("save_", "write_", "dump_"))
        )

    def check(self, index: ProjectIndex) -> Iterator[Finding]:
        for facts in index.library_files():
            for call in facts.dumps_calls:
                if call.sort_keys:
                    continue
                if self._is_serializer(call.func) or facts.writes_files:
                    where = (
                        f"in serializer '{call.func}'"
                        if self._is_serializer(call.func)
                        else "in a file-writing module"
                    )
                    yield self.finding(
                        facts,
                        call.line,
                        call.col,
                        f"json.dumps {where} without sort_keys=True; "
                        "persisted artifacts must be canonical JSON",
                    )


class RuleRL010(ProjectRule):
    """Broken seed plumbing around generator construction.

    A ``default_rng()`` with no arguments seeds from OS entropy — two
    same-seed runs then differ.  A generator whose arguments are not
    grounded in a seed expression (``derive_seed``/``RngService``/
    a ``seed``-named value/a literal), or a ``seed`` parameter that a
    randomness-constructing function accepts but never reads, are the
    same defect one step removed.
    """

    code = "RL010"
    summary = "RNG constructed without derived-seed plumbing"

    def check(self, index: ProjectIndex) -> Iterator[Finding]:
        for facts in index.library_files():
            for ctor in facts.rng_constructions:
                if ctor.n_args == 0:
                    yield self.finding(
                        facts,
                        ctor.line,
                        ctor.col,
                        f"'{ctor.factory}()' with no seed draws from OS "
                        "entropy; pass derive_seed(...)/RngService-derived "
                        "state",
                    )
                elif not ctor.seeded:
                    yield self.finding(
                        facts,
                        ctor.line,
                        ctor.col,
                        f"'{ctor.factory}(...)' arguments are not grounded "
                        "in a seed expression; thread derive_seed(...)/"
                        "RngService through",
                    )
            for param in facts.unused_seed_params:
                yield self.finding(
                    facts,
                    param.line,
                    param.col,
                    f"'{param.func}' accepts a 'seed' parameter but never "
                    "reads it while constructing randomness; thread the "
                    "seed into the generator",
                )


class RuleRL011(ProjectRule):
    """Event-type priorities must be unique, ordered and table-checked.

    The event loop orders simultaneous events by ``int(EventType)``; a
    duplicate value silently merges two priorities and reorders the
    loop, and a member defined out of value order hides the real
    processing order from readers.  The enum must also match the
    machine-readable ``PRIORITY_TABLE`` literal next to it, so adding an
    event type is a conscious two-line change the diff shows clearly.
    """

    code = "RL011"
    summary = "event-type priorities must be unique/ordered and match PRIORITY_TABLE"

    def check(self, index: ProjectIndex) -> Iterator[Finding]:
        for facts in index.library_files():
            if not in_subpackages(facts.path, ("sim",)):
                continue
            for enum in facts.event_enums:
                seen: Dict[int, str] = {}
                prev_value: Optional[int] = None
                for name, value, line in enum.members:
                    if value in seen:
                        yield self.finding(
                            facts,
                            line,
                            0,
                            f"{enum.name}.{name} reuses priority {value} "
                            f"(already {enum.name}.{seen[value]}); duplicate "
                            "priorities silently reorder the event loop",
                        )
                    else:
                        seen[value] = name
                    if prev_value is not None and value < prev_value:
                        yield self.finding(
                            facts,
                            line,
                            0,
                            f"{enum.name}.{name} = {value} is defined out of "
                            "priority order; keep members sorted by value",
                        )
                    prev_value = value
                if facts.priority_table is None:
                    yield self.finding(
                        facts,
                        enum.line,
                        0,
                        f"{enum.name} has no machine-readable PRIORITY_TABLE "
                        "literal; add one so priority changes are explicit "
                        "in diffs",
                    )
                else:
                    enum_pairs = tuple((n, v) for n, v, _ in enum.members)
                    if facts.priority_table.entries != enum_pairs:
                        yield self.finding(
                            facts,
                            facts.priority_table.line,
                            0,
                            f"PRIORITY_TABLE does not match {enum.name} "
                            "(names, values and order must be identical)",
                        )


class RuleRL012(ProjectRule):
    """No mutation of kernel-owned state outside the kernel module.

    :class:`repro.sim.kernel.EpisodeKernel` is immutable by contract —
    it is shared across episodes, planners and (fingerprint-validated)
    worker processes.  Assigning to an attribute of a kernel-typed
    object anywhere else aliases mutable state into that shared
    structure and breaks single-tenancy; put per-episode state on
    ``EpisodeState`` instead.
    """

    code = "RL012"
    summary = "attribute mutation on an EpisodeKernel-typed object"

    def check(self, index: ProjectIndex) -> Iterator[Finding]:
        for facts in index.library_files():
            if facts.defines_kernel_class:
                continue  # the kernel module builds itself
            for mutation in facts.kernel_mutations:
                yield self.finding(
                    facts,
                    mutation.line,
                    mutation.col,
                    f"assignment to '{mutation.target}' mutates an "
                    "EpisodeKernel; kernels are immutable — move the "
                    "state onto EpisodeState",
                )


class RuleRL013(ProjectRule):
    """Order-sensitive float reductions over unordered collections.

    Float addition is not associative: ``sum()`` over a ``set`` (order
    depends on hash/insertion history) or over ``dict.values()`` (order
    is insertion history, one refactor away from changing) yields bytes
    that drift when the iteration order does.  ``max``/``min`` are only
    order-sensitive when a ``key=`` makes ties possible.  Reduce over
    ``sorted(...)`` keys instead.  Set reductions are errors; dict-value
    reductions are warnings (deterministic today, fragile tomorrow).
    """

    code = "RL013"
    summary = "sum/max/min over a set or dict.values() in order-sensitive code"

    def check(self, index: ProjectIndex) -> Iterator[Finding]:
        for facts in index.library_files():
            in_scope = in_subpackages(facts.path, ("sim", "rl")) or (
                facts.path.replace("\\", "/").endswith("/metrics.py")
            )
            if not in_scope:
                continue
            for red in facts.unordered_reductions:
                order_sensitive = red.func == "sum" or (
                    red.func in {"max", "min"} and red.has_key
                )
                if not order_sensitive:
                    continue
                severity = "error" if red.kind == "set" else "warning"
                source = (
                    "a set expression"
                    if red.kind == "set"
                    else "dict.values()"
                )
                yield self.finding(
                    facts,
                    red.line,
                    red.col,
                    f"{red.func}() over {source}: float reduction order "
                    "follows iteration order; iterate sorted keys instead",
                    severity=severity,
                )


#: The default project-rule registry, in code order.
ALL_PROJECT_RULES: Tuple[ProjectRule, ...] = (
    RuleRL008(),
    RuleRL009(),
    RuleRL010(),
    RuleRL011(),
    RuleRL012(),
    RuleRL013(),
)
