"""The ReASSIgN algorithm (paper Algorithm 2).

Two pieces:

- :class:`ReassignScheduler` — an
  :class:`~repro.schedulers.base.OnlineScheduler` that makes ε-greedy
  decisions over a Q-table keyed by ``(workflow state, (activation, VM))``
  and performs the Eq.-3 update after every dispatch, using the §III-B
  reward computed from the activation's queue time ``tf`` and execution
  time ``te``;
- :class:`ReassignLearner` — the episode loop: run ``maxIter`` simulated
  executions (episodes) with learning on, carrying the Q-table and the
  per-VM performance history across episodes, then extract the learned
  plan with one pure-exploitation replay.

Faithfulness notes.

1. **ε convention.** The paper's *text* says "with probability ε the
   best action is taken ... otherwise random" (exploit-with-ε).  Its
   *data* says otherwise: Table III degrades monotonically as ε grows
   (259s at ε = 0.1 → 829s at ε = 1.0 for γ = 1.0), which is only
   consistent with the textbook convention (ε = exploration
   probability) — an ε = 1.0 agent behaves uniformly at random and
   produces the bad plans the table shows.  We follow the data:
   ``ReassignParams.epsilon_is_exploration`` defaults to True.  Set it
   False to run the text-literal convention.
2. **The reported plan** is the *final episode's* realized schedule —
   "the generated final scheduling plan" — and the simulated execution
   time (Table III's metric) is that episode's makespan.  A pure-greedy
   replay is additionally available via :meth:`ReassignLearner
   .extract_plan`.
3. **γ^t discounting**: the discount is applied as γ^t with t the
   within-episode decision index, matching Eq. 3 / Algorithm 2 (γ = 1.0
   recovers the standard constant discount; those are the paper's best
   rows).
4. The Q-update happens at dispatch time using the activation's planned
   execution time — possible because the learning environment is a
   simulator that resolves execution time deterministically at dispatch,
   exactly as the paper's sequential Algorithm 2 assumes.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Callable, List, Optional, Sequence, Tuple

from repro.core.episode import EpisodeRecord, LearningResult
from repro.rl.environment import AVAILABLE, UNAVAILABLE
from repro.rl.policy import EpsilonGreedyPolicy
from repro.rl.qtable import QTable
from repro.rl.reward import PerformanceReward
from repro.schedulers.base import Decision, OnlineScheduler, SchedulingPlan
from repro.sim.failures import FailureModel
from repro.sim.fluctuation import BurstThrottleFluctuation, FluctuationModel
from repro.sim.kernel import EpisodeKernel, PendingExecution, kernel_fingerprint
from repro.sim.metrics import SimulationResult
from repro.sim.migration import MigrationModel
from repro.sim.network import NetworkModel
from repro.sim.simulator import SimulationContext
from repro.sim.vm import Vm, as_single_slot
from repro.dag.graph import Workflow
from repro.util.rng import RngService
from repro.util.validate import ValidationError, check_probability

__all__ = [
    "ReassignParams",
    "ReassignScheduler",
    "ReassignLearner",
    "SimulatedLearningClock",
]


class SimulatedLearningClock:
    """Deterministic clock for ``ReassignLearner``'s learning-time metric.

    Starts at 0.0 and advances only when told to (the learner advances it
    by each episode's makespan), so ``learning_time`` becomes the total
    *simulated* seconds spent learning — machine-independent and
    bit-identical across serial/parallel runs, matching
    :attr:`~repro.core.episode.LearningResult.simulated_learning_time`.
    """

    def __init__(self) -> None:
        self._now = 0.0

    def advance(self, seconds: float) -> None:
        """Move the clock forward by ``seconds`` simulated seconds."""
        self._now += float(seconds)

    def __call__(self) -> float:
        return self._now


@dataclass(frozen=True)
class ReassignParams:
    """Hyper-parameters of Algorithm 2.

    ``alpha``, ``gamma``, ``epsilon`` are the swept Q-learning parameters
    (each took values in {0.1, 0.5, 1.0} in the paper); ``mu`` balances
    execution vs queue time in the performance indices (paper: 0.5);
    ``rho`` smooths the crisp reward; ``episodes`` is maxIter (paper: 100).
    """

    alpha: float = 0.5
    gamma: float = 1.0
    epsilon: float = 0.1
    mu: float = 0.5
    rho: float = 0.5
    episodes: int = 100
    discount_power: bool = True
    qtable_init_scale: float = 1e-3
    #: TD update rule: "qlearning" (the paper), "sarsa" or "doubleq"
    #: (ablation A2 variants)
    rule: str = "qlearning"
    #: True (default) = textbook ε-greedy (ε explores) — the reading the
    #: paper's Table III data supports; False = the paper's literal text
    epsilon_is_exploration: bool = True
    #: >1 splits the paper's single "available" state into progress
    #: buckets ("available:p0".."available:p{n-1}" by fraction of
    #: finished activations) — an extension that restores the discount's
    #: role (see docs/rl.md); 1 = the paper's aggregated state
    state_buckets: int = 1
    #: "full" (the paper: per-VM history accumulates over every episode)
    #: or "episode" (statistics reset each episode, keeping the crisp
    #: reward responsive — mitigates the stale-history lock-in that
    #: degrades late episodes on some workloads; see EXPERIMENTS.md)
    reward_memory: str = "full"
    #: Q-table storage backend: "array" (interned dense fast path),
    #: "shard" (sharded, optionally memmap-backed dense storage — see
    #: repro.rl.qshard) or "dict" (legacy sparse table).  Bit-identical
    #: results in all three; the dict path is kept as an escape hatch
    #: and as the reference the equivalence suite checks against (see
    #: docs/performance.md).
    qtable_backend: str = "array"

    def __post_init__(self) -> None:
        check_probability("alpha", self.alpha)
        check_probability("gamma", self.gamma)
        check_probability("epsilon", self.epsilon)
        check_probability("mu", self.mu)
        check_probability("rho", self.rho)
        if self.alpha == 0:
            raise ValidationError("alpha must be > 0")
        if self.episodes < 1:
            raise ValidationError("episodes must be >= 1")
        if self.rule not in ("qlearning", "sarsa", "doubleq"):
            raise ValidationError(
                f"rule must be qlearning/sarsa/doubleq, got {self.rule!r}"
            )
        if self.state_buckets < 1:
            raise ValidationError("state_buckets must be >= 1")
        if self.reward_memory not in ("full", "episode"):
            raise ValidationError(
                f"reward_memory must be full/episode, got {self.reward_memory!r}"
            )
        if self.qtable_backend not in ("array", "dict", "shard"):
            raise ValidationError(
                f"qtable_backend must be array/dict/shard, "
                f"got {self.qtable_backend!r}"
            )

    def label(self) -> str:
        """Short table label, e.g. ``a=0.5 g=1.0 e=0.1``."""
        return f"a={self.alpha:g} g={self.gamma:g} e={self.epsilon:g}"


class ReassignScheduler(OnlineScheduler):
    """One episode's decision maker + learner.

    The same instance is reused across episodes so that the Q-table,
    policy RNG and performance history persist (the paper interconnects
    episodes through exactly this state).

    Parameters
    ----------
    params:
        Hyper-parameters.
    qtable / reward:
        Shared learning state; fresh ones are created if omitted.
    learning:
        When False the scheduler is a pure-exploitation replayer (used to
        extract the final plan) — no Q updates, no reward updates.
    """

    def __init__(
        self,
        params: ReassignParams,
        qtable: Optional[QTable] = None,
        reward: Optional[PerformanceReward] = None,
        seed: int = 0,
        learning: bool = True,
    ) -> None:
        self.params = params
        self.qtable = (
            qtable
            if qtable is not None
            else QTable(
                init_scale=params.qtable_init_scale,
                seed=seed,
                backend=params.qtable_backend,
            )
        )
        if params.rule == "doubleq":
            # the behaviour policy reads Q_A + Q_B; updates flip a coin
            self._qtable_b = QTable(
                init_scale=params.qtable_init_scale,
                seed=RngService(seed).spawn_seed("qtable-b"),
                backend=params.qtable_backend,
            )
            # NOT "doubleq-coin": repro.rl.double_q owns that stream name,
            # and sharing it would correlate the two coins under equal
            # root seeds (RL008).
            self._coin = RngService(seed).stream("reassign-doubleq-coin")
        else:
            self._qtable_b = None
            self._coin = None
        self.reward = (
            reward
            if reward is not None
            else PerformanceReward(mu=params.mu, rho=params.rho)
        )
        self.learning = bool(learning)
        if learning:
            self.policy = EpsilonGreedyPolicy(
                params.epsilon,
                epsilon_is_exploration=params.epsilon_is_exploration,
            )
        else:  # pure exploitation (greedy replay)
            self.policy = EpsilonGreedyPolicy(1.0)
        # repro.core.batch's fused fast path replays this exact stream
        # (bit-identity contract), so the name is shared by design
        self._rng = RngService(seed).stream("reassign-policy")  # reprolint: disable=RL008
        # per-episode state
        self._t = 1
        self._steps = 0
        self._reward_sum = 0.0
        self._last_state: str = AVAILABLE
        # SARSA carries one pending (s, a, r, gamma_t) between decisions
        self._sarsa_pending: Optional[Tuple[str, Decision, float, float]] = None

    # -- episode lifecycle ---------------------------------------------------

    def on_simulation_start(self, ctx: SimulationContext) -> None:
        """Algorithm 2 per-episode reset: t <- 1, r^t <- 0, s <- available."""
        self._t = 1
        self._steps = 0
        self._reward_sum = 0.0
        self._last_state = AVAILABLE
        self._sarsa_pending = None
        self.reward.start_episode(
            keep_history=(self.params.reward_memory == "full")
        )

    # -- the MDP view ---------------------------------------------------------

    @staticmethod
    def _enumerate_actions(ctx: SimulationContext) -> Sequence[Decision]:
        """The k x m schedule actions available right now.

        The context's cached cross product: the same tuple object comes
        back until the ready or idle set changes, so the Q-table's
        action-id memo hits instead of re-interning every pair.
        """
        return ctx.action_pairs

    def _available_label(self, ctx: SimulationContext) -> str:
        """The (possibly progress-bucketed) available-state label."""
        buckets = self.params.state_buckets
        if buckets <= 1:
            return AVAILABLE
        total = len(ctx.workflow)
        done = ctx.n_finished  # O(1) counter; == non-failed record count
        bucket = min(buckets - 1, int(buckets * done / max(total, 1)))
        return f"{AVAILABLE}:p{bucket}"

    def _observe_state(self, ctx: SimulationContext) -> str:
        """available iff some activation is READY and some VM idle."""
        if ctx.ready_activations and ctx.idle_vms:
            return self._available_label(ctx)
        return UNAVAILABLE

    # -- decisions -----------------------------------------------------------

    def select(self, ctx: SimulationContext) -> Optional[Decision]:
        actions = self._enumerate_actions(ctx)
        if not actions:
            return None  # "do nothing"
        state = self._available_label(ctx)
        self._last_state = state
        action = self.policy.choose(self.qtable, state, actions, self._rng)
        if self.learning and self._sarsa_pending is not None:
            # SARSA's delayed update: we now know the on-policy next action
            s, a, r_t, gamma_t = self._sarsa_pending
            future = self.qtable.value(state, action)
            delta = r_t + gamma_t * future - self.qtable.value(s, a)
            self.qtable.add(s, a, self.params.alpha * delta)
            self._sarsa_pending = None
        return action

    def _gamma_t(self) -> float:
        return (
            self.params.gamma ** self._t
            if self.params.discount_power
            else self.params.gamma
        )

    def _q_update(self, action: Decision, r_t: float, ctx: SimulationContext) -> None:
        """Eq. 3 (Q-learning) or its double-estimator variant."""
        next_state = self._observe_state(ctx)
        next_actions = self._enumerate_actions(ctx)
        gamma_t = self._gamma_t()
        if self.params.rule == "doubleq":
            assert self._qtable_b is not None and self._coin is not None
            if self._coin.random() < 0.5:
                learn, evaluate = self.qtable, self._qtable_b
            else:
                learn, evaluate = self._qtable_b, self.qtable
            if next_actions:
                best = learn.best_action(next_state, next_actions)
                future = evaluate.value(next_state, best)
            else:
                future = 0.0
            delta = r_t + gamma_t * future - learn.value(self._last_state, action)
            learn.add(self._last_state, action, self.params.alpha * delta)
        else:
            future = self.qtable.max_value(next_state, next_actions)
            q_sa = self.qtable.value(self._last_state, action)
            delta = r_t + gamma_t * future - q_sa
            self.qtable.add(self._last_state, action, self.params.alpha * delta)

    def on_dispatched(
        self, ctx: SimulationContext, pending: PendingExecution
    ) -> None:
        """The §III-B/§III-C step: reward + Eq. 3 Q-update for the action."""
        if not self.learning:
            return
        action = (pending.activation_id, pending.vm_id)
        te = pending.planned_execution_time
        tf = pending.queue_time
        r_t = self.reward.step(pending.vm_id, te, tf)
        self._reward_sum += r_t
        if self.params.rule == "sarsa":
            # defer until the next on-policy action is known
            self._sarsa_pending = (self._last_state, action, r_t, self._gamma_t())
        else:
            self._q_update(action, r_t, ctx)
        self._t += 1
        self._steps += 1

    def on_simulation_end(
        self, ctx: SimulationContext, result: SimulationResult
    ) -> None:
        if self.learning and self._sarsa_pending is not None:
            # terminal flush: no next action, future value 0
            s, a, r_t, _ = self._sarsa_pending
            delta = r_t - self.qtable.value(s, a)
            self.qtable.add(s, a, self.params.alpha * delta)
            self._sarsa_pending = None

    def qtable_json(self) -> str:
        """Serialize the learned table (Q_A + Q_B materialized for doubleq)."""
        if self._qtable_b is None:
            return self.qtable.to_json()
        combined = QTable(init_scale=0.0)
        for s, a, v in self.qtable.items():
            combined.set(s, a, v + self._qtable_b.value(s, a))
        return combined.to_json()

    # -- episode summary ------------------------------------------------------

    @property
    def episode_steps(self) -> int:
        return self._steps

    @property
    def episode_mean_reward(self) -> float:
        return self._reward_sum / self._steps if self._steps else 0.0

    @property
    def episode_final_reward(self) -> float:
        return self.reward.reward


class ReassignLearner:
    """Algorithm 2's outer loop: learn over episodes, then emit the plan.

    Parameters
    ----------
    workflow / vms:
        The workload and fleet (the paper: Montage-50 on a Table-I fleet).
    params:
        Hyper-parameters.
    network / fluctuation / failures / migrations:
        Environment models for the *learning* simulator.  The default
        fluctuation is a deterministic burst-throttle model: the paper
        builds its simulation dataset "based on the performance
        requirements of workflows in real executions", and the dominant
        real-execution effect on a t2 fleet is micro-instance credit
        exhaustion.  Being deterministic, it keeps episodes reproducible
        while letting the agent *experience* the dynamic that HEFT's cost
        model cannot express.  Pass
        :class:`~repro.sim.fluctuation.NoFluctuation` for a fully nominal
        environment.
    seed:
        Root seed (policy exploration, Q init, simulator models).
    prior_qtable_json / prior_history:
        Provenance from earlier runs: a serialized Q-table and past
        ``(vm_id, te, tf)`` observations to bootstrap the reward model —
        "all information associated with the previous episodes is loaded
        allowing the progression of learning" (§III-C).
    reward:
        Custom reward model (e.g.
        :class:`~repro.rl.cost_reward.CostAwarePerformanceReward`);
        default is the paper's §III-B reward with the params' µ and ρ.
    clock:
        Zero-argument callable read at the start and end of
        :meth:`learn` to produce ``learning_time``.  Defaults to
        ``time.perf_counter`` (wall clock).  Pass a
        :class:`SimulatedLearningClock` for a deterministic,
        machine-independent metric: the learner advances it by each
        episode's makespan, so ``learning_time`` equals
        ``simulated_learning_time`` (``--timing simulated``).
    """

    def __init__(
        self,
        workflow: Workflow,
        vms: Sequence[Vm],
        params: Optional[ReassignParams] = None,
        *,
        network: Optional[NetworkModel] = None,
        fluctuation: Optional[FluctuationModel] = None,
        failures: Optional[FailureModel] = None,
        migrations: Optional[MigrationModel] = None,
        seed: int = 0,
        max_attempts: int = 1,
        prior_qtable_json: Optional[str] = None,
        prior_history: Optional[List[Tuple[int, float, float]]] = None,
        single_slot_learning: bool = False,
        reward: Optional[PerformanceReward] = None,
        clock: Optional[Callable[[], float]] = None,
    ) -> None:
        self.workflow = workflow
        # The default learning fleet is pe-aware (a VM is "idle" while any
        # vCPU slot is free), which is what lets ReASSIgN concentrate work
        # on the 2xlarge as the paper's Table V shows.  Set
        # ``single_slot_learning=True`` for strict one-task-per-VM
        # WorkflowSim processors (the paper's binary idle/busy VM state,
        # taken literally).
        self.vms = as_single_slot(vms) if single_slot_learning else list(vms)
        self.params = params if params is not None else ReassignParams()
        self.seed = int(seed)
        if fluctuation is None:
            # provenance-calibrated default: deterministic micro throttling
            # (a busy micro exhausts its burst credits within an episode)
            fluctuation = BurstThrottleFluctuation(
                credit_seconds=60.0, throttle_factor=2.0
            )
        self._sim_kwargs = dict(
            network=network,
            fluctuation=fluctuation,
            failures=failures,
            migrations=migrations,
            max_attempts=max_attempts,
        )
        # One kernel for the whole learning run: the DAG topology, index
        # maps and nominal estimate caches are built once; each episode
        # only resets the O(n) mutable state (see docs/architecture.md).
        self._kernel: Optional[EpisodeKernel] = None
        self._clock: Callable[[], float] = (
            clock if clock is not None else time.perf_counter
        )
        # duck-typed: only SimulatedLearningClock-style clocks advance
        self._clock_advance: Optional[Callable[[float], None]] = getattr(
            clock, "advance", None
        )
        qtable = (
            QTable.from_json(
                prior_qtable_json,
                seed=seed,
                backend=self.params.qtable_backend,
            )
            if prior_qtable_json
            else None
        )
        self.scheduler = ReassignScheduler(
            self.params, qtable=qtable, reward=reward, seed=seed, learning=True
        )
        if prior_history:
            self.scheduler.reward.bootstrap(prior_history)

    def kernel_fingerprint(self) -> Optional[str]:
        """Structural digest of this learner's kernel configuration.

        ``None`` when an environment model cannot be canonicalized —
        worker-side kernel caching is then skipped for this learner
        (see :func:`repro.sim.kernel.kernel_fingerprint`).
        """
        return kernel_fingerprint(self.workflow, self.vms, **self._sim_kwargs)

    def _build_kernel(self) -> EpisodeKernel:
        return EpisodeKernel(self.workflow, self.vms, **self._sim_kwargs)

    def adopt_kernel(self, kernel: EpisodeKernel, fingerprint: str) -> None:
        """Adopt an externally built kernel (batched-engine sharing).

        :func:`repro.core.batch.learn_batch` groups lanes by kernel
        fingerprint and builds one kernel per group; the other lanes
        adopt it through here.  ``fingerprint`` is the
        :func:`~repro.sim.kernel.kernel_fingerprint` of the
        configuration that built ``kernel``; it must equal this
        learner's own — episodes only reset the O(n) mutable state, so
        a structurally different kernel would silently change every
        simulated number.
        """
        if self._kernel is not None:
            raise ValidationError(
                "learner already has a kernel; adopt_kernel must run "
                "before the first episode"
            )
        mine = self.kernel_fingerprint()
        if mine is None or mine != fingerprint:
            raise ValidationError(
                "kernel fingerprint mismatch; cannot adopt a kernel "
                "built for a different configuration"
            )
        self._kernel = kernel

    @property
    def kernel(self) -> EpisodeKernel:
        """The learner's episode kernel (built lazily, reused per episode).

        Inside a parallel-runner worker executing a task that declared a
        ``kernel_fingerprint``, the kernel comes from the worker's shared
        cache instead of being rebuilt per task — guarded by recomputing
        the fingerprint here, so a declared fingerprint that does not
        match this learner's actual configuration is simply ignored.
        Safe because ``run_episode`` resets all shared mutable state at
        entry and scrubs it on exit.
        """
        if self._kernel is None:
            from repro.runner.parallel import (
                active_kernel_fingerprint,
                shared_kernel,
            )

            declared = active_kernel_fingerprint()
            if declared is not None and declared == self.kernel_fingerprint():
                self._kernel = shared_kernel(declared, self._build_kernel)
            else:
                self._kernel = self._build_kernel()
        return self._kernel

    def learn(self) -> LearningResult:
        """Run ``params.episodes`` learning episodes and extract the plan.

        The learning environment is deterministic given the seed, so each
        episode replays the same cloud while the policy's exploration
        varies — matching WorkflowSim-based learning in the paper.  All
        episodes reuse one :class:`~repro.sim.kernel.EpisodeKernel`; the
        per-episode seeds (and therefore every simulated number) are
        identical to the historical one-simulator-per-episode path.
        """
        kernel = self.kernel
        rng = RngService(self.seed)
        episodes: List[EpisodeRecord] = []
        last_result = None
        started = self._clock()
        for episode_idx in range(self.params.episodes):
            result = kernel.run_episode(
                self.scheduler, rng.spawn_seed(f"episode:{episode_idx}")
            )
            if self._clock_advance is not None:
                self._clock_advance(result.makespan)
            last_result = result
            episodes.append(
                EpisodeRecord(
                    episode=episode_idx,
                    makespan=result.makespan,
                    final_state=result.final_state,
                    steps=self.scheduler.episode_steps,
                    mean_reward=self.scheduler.episode_mean_reward,
                    final_reward=self.scheduler.episode_final_reward,
                    assignment=result.assignment,
                )
            )
        learning_time = self._clock() - started

        # The paper submits "the generated final scheduling plan": the
        # schedule the final episode actually realized, whose makespan is
        # the Table III metric.  If that episode failed, fall back to a
        # greedy replay.
        if last_result is not None and last_result.succeeded:
            order = sorted(
                last_result.records, key=lambda r: (r.start_time, r.activation_id)
            )
            plan = SchedulingPlan(
                assignment=last_result.assignment,
                priority=[r.activation_id for r in order],
                name=f"ReASSIgN({self.params.label()})",
            )
            simulated_makespan = last_result.makespan
        else:
            plan, simulated_makespan = self.extract_plan()
        return LearningResult(
            plan=plan,
            episodes=episodes,
            learning_time=learning_time,
            simulated_makespan=simulated_makespan,
            qtable_json=self.scheduler.qtable_json(),
        )

    def extract_plan(self) -> Tuple[SchedulingPlan, float]:
        """Replay greedily (pure exploitation, learning off) and read the plan.

        Returns the plan and its simulated makespan.  This is the
        alternative to the paper's final-episode plan: a deterministic
        pure-exploitation readout of the learned Q-table.
        """
        greedy = ReassignScheduler(
            self.params,
            qtable=self.scheduler.qtable,
            reward=self.scheduler.reward,
            seed=self.seed,
            learning=False,
        )
        result = self.kernel.run_episode(
            # repro.core.batch's greedy fallback replays this seed name
            greedy,
            RngService(self.seed).spawn_seed("greedy"),  # reprolint: disable=RL008
        )
        if not result.succeeded:
            raise ValidationError(
                "greedy replay did not finish successfully; cannot extract a plan"
            )
        order = sorted(
            result.records, key=lambda r: (r.start_time, r.activation_id)
        )
        plan = SchedulingPlan(
            assignment=result.assignment,
            priority=[r.activation_id for r in order],
            name=f"ReASSIgN({self.params.label()})",
        )
        return plan, result.makespan
