"""The (α, γ, ε) parameter sweep behind the paper's Tables II and III.

The paper varies each of the three Q-learning parameters over
``{0.1, 0.5, 1.0}`` (27 combinations) for each of the three Table-I
fleets — 81 learning runs — and reports per combination the wall-clock
*learning time* (Table II) and the *simulated execution time* of the
learned plan (Table III).  :func:`sweep_parameters` reproduces one
fleet's 27-run column; the benchmark harness stacks three fleets.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence, Tuple

from repro.core.episode import LearningResult
from repro.core.reassign import ReassignLearner, ReassignParams
from repro.dag.graph import Workflow
from repro.sim.vm import Vm
from repro.util.validate import ValidationError

__all__ = ["SweepRecord", "sweep_parameters", "PAPER_GRID"]

#: the paper's parameter values for alpha, gamma and epsilon
PAPER_GRID: Tuple[float, ...] = (0.1, 0.5, 1.0)


@dataclass(frozen=True)
class SweepRecord:
    """One (α, γ, ε) cell of the sweep."""

    alpha: float
    gamma: float
    epsilon: float
    learning_time: float  #: Table II cell (seconds, wall clock)
    simulated_makespan: float  #: Table III cell (seconds, simulated)
    result: LearningResult

    @property
    def params(self) -> Tuple[float, float, float]:
        return (self.alpha, self.gamma, self.epsilon)


def sweep_parameters(
    workflow: Workflow,
    vms: Sequence[Vm],
    *,
    alphas: Sequence[float] = PAPER_GRID,
    gammas: Sequence[float] = PAPER_GRID,
    epsilons: Sequence[float] = PAPER_GRID,
    episodes: int = 100,
    mu: float = 0.5,
    rho: float = 0.5,
    seed: int = 0,
    learner_factory=None,
) -> List[SweepRecord]:
    """Run a learning run per (α, γ, ε) combination on one fleet.

    ``learner_factory(workflow, vms, params, seed)`` may be supplied to
    customize the environment models; it must return a
    :class:`~repro.core.reassign.ReassignLearner`-compatible object with a
    ``learn()`` method.
    """
    if not alphas or not gammas or not epsilons:
        raise ValidationError("sweep needs non-empty parameter lists")

    def default_factory(wf, fleet, params, run_seed):
        return ReassignLearner(wf, fleet, params, seed=run_seed)

    factory = learner_factory if learner_factory is not None else default_factory

    records: List[SweepRecord] = []
    for alpha in alphas:
        for gamma in gammas:
            for epsilon in epsilons:
                params = ReassignParams(
                    alpha=alpha,
                    gamma=gamma,
                    epsilon=epsilon,
                    mu=mu,
                    rho=rho,
                    episodes=episodes,
                )
                learner = factory(workflow, vms, params, seed)
                result = learner.learn()
                records.append(
                    SweepRecord(
                        alpha=alpha,
                        gamma=gamma,
                        epsilon=epsilon,
                        learning_time=result.learning_time,
                        simulated_makespan=result.simulated_makespan,
                        result=result,
                    )
                )
    return records


def best_record(records: Sequence[SweepRecord]) -> SweepRecord:
    """The cell with the smallest simulated makespan."""
    if not records:
        raise ValidationError("no sweep records")
    return min(records, key=lambda r: (r.simulated_makespan, r.params))
