"""The (α, γ, ε) parameter sweep behind the paper's Tables II and III.

The paper varies each of the three Q-learning parameters over
``{0.1, 0.5, 1.0}`` (27 combinations) for each of the three Table-I
fleets — 81 learning runs — and reports per combination the wall-clock
*learning time* (Table II) and the *simulated execution time* of the
learned plan (Table III).  :func:`sweep_parameters` reproduces one
fleet's 27-run column; the benchmark harness stacks three fleets.

Cells are independent learning runs, so the sweep fans out through
:class:`repro.runner.ParallelRunner`: pass ``workers=N`` to use N
processes.  Every cell's learner is seeded with the sweep's root seed
(the paper's semantics — each combination is one run of Algorithm 2
from the same initial conditions), so **results are bit-identical for
any worker count**; only the wall-clock ``learning_time`` fields differ
between runs.  Pass ``timing="simulated"`` to report the deterministic
simulated learning time instead of the wall clock (what the determinism
regression tests render Table II from).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, List, Optional, Sequence, Tuple

from repro.core.batch import BatchSpec, learn_batch
from repro.core.episode import LearningResult
from repro.core.reassign import (
    ReassignLearner,
    ReassignParams,
    SimulatedLearningClock,
)
from repro.dag.graph import Workflow
from repro.runner import ParallelRunner, Task
from repro.runner.parallel import ProgressFn, pack_payloads
from repro.sim.vm import Vm
from repro.util.validate import ValidationError

__all__ = [
    "SweepRecord",
    "sweep_parameters",
    "sweep_tasks",
    "run_sweep_batch",
    "run_sweep_cell_distributed",
    "flatten_sweep_values",
    "PAPER_GRID",
]

#: the paper's parameter values for alpha, gamma and epsilon
PAPER_GRID: Tuple[float, ...] = (0.1, 0.5, 1.0)

#: ``factory(workflow, vms, params, seed)`` -> a ``learn()``-able object.
LearnerFactory = Callable[[Workflow, Sequence[Vm], ReassignParams, int], Any]

#: one cell's task payload: (workflow, vms, params, factory, timing)
CellPayload = Tuple[Workflow, List[Vm], ReassignParams, Optional[LearnerFactory], str]


@dataclass(frozen=True)
class SweepRecord:
    """One (α, γ, ε) cell of the sweep."""

    alpha: float
    gamma: float
    epsilon: float
    learning_time: float  #: Table II cell (seconds, wall clock)
    simulated_makespan: float  #: Table III cell (seconds, simulated)
    result: LearningResult

    @property
    def params(self) -> Tuple[float, float, float]:
        return (self.alpha, self.gamma, self.epsilon)


def default_learner_factory(
    workflow: Workflow,
    vms: Sequence[Vm],
    params: ReassignParams,
    run_seed: int,
) -> ReassignLearner:
    """The standard cell learner (module-level, hence picklable)."""
    return ReassignLearner(workflow, vms, params, seed=run_seed)


def run_sweep_cell(payload: CellPayload, seed: int) -> SweepRecord:
    """Execute one sweep cell — the :class:`~repro.runner.Task` function.

    ``payload`` is ``(workflow, vms, params, factory, timing)``; the
    runner supplies the seed.  Module-level so process-pool workers can
    unpickle it.
    """
    workflow, vms, params, factory, timing = payload
    if factory is None:
        # default cells route learning_time through the injectable clock:
        # wall clock normally, the deterministic simulated clock under
        # timing="simulated" (custom factories keep full control instead)
        learner: Any = ReassignLearner(
            workflow,
            vms,
            params,
            seed=seed,
            clock=SimulatedLearningClock() if timing == "simulated" else None,
        )
    else:
        learner = factory(workflow, vms, params, seed)
    result = learner.learn()
    learning_time = (
        result.simulated_learning_time
        if timing == "simulated"
        else result.learning_time
    )
    return SweepRecord(
        alpha=params.alpha,
        gamma=params.gamma,
        epsilon=params.epsilon,
        learning_time=learning_time,
        simulated_makespan=result.simulated_makespan,
        result=result,
    )


def run_sweep_cell_distributed(
    payload: Tuple[Workflow, List[Vm], ReassignParams, str, int, int],
    seed: int,
) -> SweepRecord:
    """Execute one sweep cell through the distributed actor/learner engine.

    ``payload`` is ``(workflow, vms, params, timing, actors, batch)``;
    ``batch`` is the number of chained episodes each actor rolls out per
    wave chunk.  The engine is bit-identical to the serial learner at
    any ``(actors, batch)`` combination (see
    :func:`repro.core.distributed.learn_distributed`), so records match
    :func:`run_sweep_cell` byte for byte.
    """
    from repro.core.distributed import learn_distributed

    workflow, vms, params, timing, actors, batch = payload
    result = learn_distributed(
        workflow, vms, params, seed=seed, n_actors=actors, batch=batch,
        timing=timing,
    )
    learning_time = (
        result.simulated_learning_time
        if timing == "simulated"
        else result.learning_time
    )
    return SweepRecord(
        alpha=params.alpha,
        gamma=params.gamma,
        epsilon=params.epsilon,
        learning_time=learning_time,
        simulated_makespan=result.simulated_makespan,
        result=result,
    )


def run_sweep_batch(
    payload: Tuple[CellPayload, ...], seed: int
) -> List[SweepRecord]:
    """Execute a packed batch of sweep cells through the batched engine.

    ``payload`` is a tuple of :data:`CellPayload` entries (all with
    ``factory=None``) sharing one workflow/fleet configuration;
    :func:`repro.core.batch.learn_batch` drives them as lockstep lanes
    over one shared kernel.  Every cell still runs from the same root
    ``seed`` the runner supplies (the paper's semantics), so the records
    are bit-identical to :func:`run_sweep_cell` run per cell.
    """
    specs = [
        BatchSpec(workflow=workflow, vms=vms, params=params, seed=seed)
        for workflow, vms, params, _factory, _timing in payload
    ]
    timing = payload[0][4]
    results = learn_batch(specs, timing=timing)
    records = []
    for (_wf, _vms, params, _factory, _timing), result in zip(
        payload, results
    ):
        learning_time = (
            result.simulated_learning_time
            if timing == "simulated"
            else result.learning_time
        )
        records.append(
            SweepRecord(
                alpha=params.alpha,
                gamma=params.gamma,
                epsilon=params.epsilon,
                learning_time=learning_time,
                simulated_makespan=result.simulated_makespan,
                result=result,
            )
        )
    return records


def flatten_sweep_values(values: Sequence[Any]) -> List[SweepRecord]:
    """Flatten mixed per-cell / per-batch task values into cell order.

    Batched tasks return ``List[SweepRecord]`` (one per packed cell, in
    pack order) while unbatched tasks return a single
    :class:`SweepRecord`; packs are consecutive grid cells, so a simple
    flatten restores grid order.
    """
    records: List[SweepRecord] = []
    for value in values:
        if isinstance(value, list):
            records.extend(value)
        else:
            records.append(value)
    return records


def sweep_tasks(
    workflow: Workflow,
    vms: Sequence[Vm],
    *,
    alphas: Sequence[float],
    gammas: Sequence[float],
    epsilons: Sequence[float],
    episodes: int,
    mu: float = 0.5,
    rho: float = 0.5,
    seed: int = 0,
    learner_factory: Optional[LearnerFactory] = None,
    timing: str = "wall",
    key_prefix: Tuple[Any, ...] = (),
    batch: int = 1,
    actors: int = 1,
) -> List[Task]:
    """Build the cell tasks of one fleet's (α, γ, ε) grid.

    Exposed so callers (e.g. :func:`repro.experiments.sweeps
    .run_paper_sweep`) can combine several fleets' grids into a single
    runner batch.  Task keys are ``key_prefix + (alpha, gamma,
    epsilon)``; every cell carries the sweep's root seed explicitly
    (same-seed-per-cell is the paper's semantics).

    ``batch > 1`` packs up to that many consecutive default cells into
    one :func:`run_sweep_batch` task (keys ``key_prefix + ("batch",
    i)``), so each task drives its cells as lockstep lanes over one
    shared kernel — same records, fewer kernel resets and Python
    round-trips.  Custom ``learner_factory`` cells are never packed
    (the factory contract is one learner per cell).  Flatten mixed
    results with :func:`flatten_sweep_values`.

    ``actors > 1`` routes every cell through the distributed
    actor/learner engine (:func:`run_sweep_cell_distributed`) instead —
    bit-identical records again, but each cell spends its parallelism
    *inside* the run.  The flags compose: with ``actors > 1``, ``batch``
    becomes the number of chained episodes each actor rolls out per
    speculative wave chunk (instead of the lockstep pack size), so
    ``actors=4, batch=8`` means four actors each speculating eight
    episodes ahead.  ``actors > 1`` is still mutually exclusive with a
    custom ``learner_factory``.
    """
    if not alphas or not gammas or not epsilons:
        raise ValidationError("sweep needs non-empty parameter lists")
    if timing not in ("wall", "simulated"):
        raise ValidationError(f"timing must be wall/simulated, got {timing!r}")
    if batch < 1:
        raise ValidationError(f"batch must be >= 1, got {batch}")
    if actors < 1:
        raise ValidationError(f"actors must be >= 1, got {actors}")
    if actors > 1 and learner_factory is not None:
        raise ValidationError(
            "actors > 1 requires the default learner (no learner_factory)"
        )
    tasks: List[Task] = []
    vms = list(vms)
    # Every default cell builds the same (workflow, fleet, env-model)
    # kernel, so declare its digest once and each pool worker will build
    # that kernel at most once for the whole grid.  Custom factories may
    # configure the environment arbitrarily, so no digest is declared.
    fingerprint: Optional[str] = None
    if learner_factory is None:
        fingerprint = ReassignLearner(workflow, vms).kernel_fingerprint()
    payloads: List[CellPayload] = []
    for alpha in alphas:
        for gamma in gammas:
            for epsilon in epsilons:
                params = ReassignParams(
                    alpha=alpha,
                    gamma=gamma,
                    epsilon=epsilon,
                    mu=mu,
                    rho=rho,
                    episodes=episodes,
                )
                payloads.append(
                    (workflow, vms, params, learner_factory, timing)
                )
    if batch > 1 and actors == 1 and learner_factory is None:
        for i, pack in enumerate(pack_payloads(payloads, batch)):
            tasks.append(
                Task(
                    key=key_prefix + ("batch", i),
                    fn=run_sweep_batch,
                    payload=pack,
                    seed=seed,
                    kernel_fingerprint=fingerprint,
                )
            )
        return tasks
    for cell in payloads:
        _wf, _vms, params, _factory, _timing = cell
        key = key_prefix + (params.alpha, params.gamma, params.epsilon)
        if actors > 1:
            tasks.append(
                Task(
                    key=key,
                    fn=run_sweep_cell_distributed,
                    payload=(workflow, vms, params, timing, actors, batch),
                    seed=seed,
                    kernel_fingerprint=fingerprint,
                )
            )
        else:
            tasks.append(
                Task(
                    key=key,
                    fn=run_sweep_cell,
                    payload=cell,
                    seed=seed,
                    kernel_fingerprint=fingerprint,
                )
            )
    return tasks


def sweep_parameters(
    workflow: Workflow,
    vms: Sequence[Vm],
    *,
    alphas: Sequence[float] = PAPER_GRID,
    gammas: Sequence[float] = PAPER_GRID,
    epsilons: Sequence[float] = PAPER_GRID,
    episodes: int = 100,
    mu: float = 0.5,
    rho: float = 0.5,
    seed: int = 0,
    learner_factory: Optional[LearnerFactory] = None,
    workers: Optional[int] = 1,
    timing: str = "wall",
    progress: Optional[ProgressFn] = None,
    batch: int = 1,
    actors: int = 1,
) -> List[SweepRecord]:
    """Run a learning run per (α, γ, ε) combination on one fleet.

    ``learner_factory(workflow, vms, params, seed)`` may be supplied to
    customize the environment models; it must return a
    :class:`~repro.core.reassign.ReassignLearner`-compatible object with
    a ``learn()`` method — and must be picklable (module-level) when
    ``workers > 1``.

    ``workers`` fans cells out over a process pool (1 = serial, 0 = all
    cores, None = the ``REPRO_WORKERS`` environment variable); ``batch``
    packs that many consecutive cells per task into the batched lockstep
    engine (see :func:`sweep_tasks`).  Records are always returned in
    grid order (α outermost, ε innermost) and are identical for every
    worker count and batch size.
    """
    tasks = sweep_tasks(
        workflow,
        vms,
        alphas=alphas,
        gammas=gammas,
        epsilons=epsilons,
        episodes=episodes,
        mu=mu,
        rho=rho,
        seed=seed,
        learner_factory=learner_factory,
        timing=timing,
        batch=batch,
        actors=actors,
    )
    runner = ParallelRunner(
        workers=workers,
        run_id=f"sweep:{workflow.name}",
        seed=seed,
        progress=progress,
    )
    return flatten_sweep_values([r.value for r in runner.run(tasks)])


def best_record(records: Sequence[SweepRecord]) -> SweepRecord:
    """The cell with the smallest simulated makespan."""
    if not records:
        raise ValidationError("no sweep records")
    return min(records, key=lambda r: (r.simulated_makespan, r.params))
