"""The (α, γ, ε) parameter sweep behind the paper's Tables II and III.

The paper varies each of the three Q-learning parameters over
``{0.1, 0.5, 1.0}`` (27 combinations) for each of the three Table-I
fleets — 81 learning runs — and reports per combination the wall-clock
*learning time* (Table II) and the *simulated execution time* of the
learned plan (Table III).  :func:`sweep_parameters` reproduces one
fleet's 27-run column; the benchmark harness stacks three fleets.

Cells are independent learning runs, so the sweep fans out through
:class:`repro.runner.ParallelRunner`: pass ``workers=N`` to use N
processes.  Every cell's learner is seeded with the sweep's root seed
(the paper's semantics — each combination is one run of Algorithm 2
from the same initial conditions), so **results are bit-identical for
any worker count**; only the wall-clock ``learning_time`` fields differ
between runs.  Pass ``timing="simulated"`` to report the deterministic
simulated learning time instead of the wall clock (what the determinism
regression tests render Table II from).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, List, Optional, Sequence, Tuple

from repro.core.episode import LearningResult
from repro.core.reassign import (
    ReassignLearner,
    ReassignParams,
    SimulatedLearningClock,
)
from repro.dag.graph import Workflow
from repro.runner import ParallelRunner, Task
from repro.runner.parallel import ProgressFn
from repro.sim.vm import Vm
from repro.util.validate import ValidationError

__all__ = ["SweepRecord", "sweep_parameters", "sweep_tasks", "PAPER_GRID"]

#: the paper's parameter values for alpha, gamma and epsilon
PAPER_GRID: Tuple[float, ...] = (0.1, 0.5, 1.0)

#: ``factory(workflow, vms, params, seed)`` -> a ``learn()``-able object.
LearnerFactory = Callable[[Workflow, Sequence[Vm], ReassignParams, int], Any]

#: one cell's task payload: (workflow, vms, params, factory, timing)
CellPayload = Tuple[Workflow, List[Vm], ReassignParams, Optional[LearnerFactory], str]


@dataclass(frozen=True)
class SweepRecord:
    """One (α, γ, ε) cell of the sweep."""

    alpha: float
    gamma: float
    epsilon: float
    learning_time: float  #: Table II cell (seconds, wall clock)
    simulated_makespan: float  #: Table III cell (seconds, simulated)
    result: LearningResult

    @property
    def params(self) -> Tuple[float, float, float]:
        return (self.alpha, self.gamma, self.epsilon)


def default_learner_factory(
    workflow: Workflow,
    vms: Sequence[Vm],
    params: ReassignParams,
    run_seed: int,
) -> ReassignLearner:
    """The standard cell learner (module-level, hence picklable)."""
    return ReassignLearner(workflow, vms, params, seed=run_seed)


def run_sweep_cell(payload: CellPayload, seed: int) -> SweepRecord:
    """Execute one sweep cell — the :class:`~repro.runner.Task` function.

    ``payload`` is ``(workflow, vms, params, factory, timing)``; the
    runner supplies the seed.  Module-level so process-pool workers can
    unpickle it.
    """
    workflow, vms, params, factory, timing = payload
    if factory is None:
        # default cells route learning_time through the injectable clock:
        # wall clock normally, the deterministic simulated clock under
        # timing="simulated" (custom factories keep full control instead)
        learner: Any = ReassignLearner(
            workflow,
            vms,
            params,
            seed=seed,
            clock=SimulatedLearningClock() if timing == "simulated" else None,
        )
    else:
        learner = factory(workflow, vms, params, seed)
    result = learner.learn()
    learning_time = (
        result.simulated_learning_time
        if timing == "simulated"
        else result.learning_time
    )
    return SweepRecord(
        alpha=params.alpha,
        gamma=params.gamma,
        epsilon=params.epsilon,
        learning_time=learning_time,
        simulated_makespan=result.simulated_makespan,
        result=result,
    )


def sweep_tasks(
    workflow: Workflow,
    vms: Sequence[Vm],
    *,
    alphas: Sequence[float],
    gammas: Sequence[float],
    epsilons: Sequence[float],
    episodes: int,
    mu: float = 0.5,
    rho: float = 0.5,
    seed: int = 0,
    learner_factory: Optional[LearnerFactory] = None,
    timing: str = "wall",
    key_prefix: Tuple[Any, ...] = (),
) -> List[Task]:
    """Build the cell tasks of one fleet's (α, γ, ε) grid.

    Exposed so callers (e.g. :func:`repro.experiments.sweeps
    .run_paper_sweep`) can combine several fleets' grids into a single
    runner batch.  Task keys are ``key_prefix + (alpha, gamma,
    epsilon)``; every cell carries the sweep's root seed explicitly
    (same-seed-per-cell is the paper's semantics).
    """
    if not alphas or not gammas or not epsilons:
        raise ValidationError("sweep needs non-empty parameter lists")
    if timing not in ("wall", "simulated"):
        raise ValidationError(f"timing must be wall/simulated, got {timing!r}")
    tasks: List[Task] = []
    vms = list(vms)
    # Every default cell builds the same (workflow, fleet, env-model)
    # kernel, so declare its digest once and each pool worker will build
    # that kernel at most once for the whole grid.  Custom factories may
    # configure the environment arbitrarily, so no digest is declared.
    fingerprint: Optional[str] = None
    if learner_factory is None:
        fingerprint = ReassignLearner(workflow, vms).kernel_fingerprint()
    for alpha in alphas:
        for gamma in gammas:
            for epsilon in epsilons:
                params = ReassignParams(
                    alpha=alpha,
                    gamma=gamma,
                    epsilon=epsilon,
                    mu=mu,
                    rho=rho,
                    episodes=episodes,
                )
                tasks.append(
                    Task(
                        key=key_prefix + (alpha, gamma, epsilon),
                        fn=run_sweep_cell,
                        payload=(workflow, vms, params, learner_factory, timing),
                        seed=seed,
                        kernel_fingerprint=fingerprint,
                    )
                )
    return tasks


def sweep_parameters(
    workflow: Workflow,
    vms: Sequence[Vm],
    *,
    alphas: Sequence[float] = PAPER_GRID,
    gammas: Sequence[float] = PAPER_GRID,
    epsilons: Sequence[float] = PAPER_GRID,
    episodes: int = 100,
    mu: float = 0.5,
    rho: float = 0.5,
    seed: int = 0,
    learner_factory: Optional[LearnerFactory] = None,
    workers: Optional[int] = 1,
    timing: str = "wall",
    progress: Optional[ProgressFn] = None,
) -> List[SweepRecord]:
    """Run a learning run per (α, γ, ε) combination on one fleet.

    ``learner_factory(workflow, vms, params, seed)`` may be supplied to
    customize the environment models; it must return a
    :class:`~repro.core.reassign.ReassignLearner`-compatible object with
    a ``learn()`` method — and must be picklable (module-level) when
    ``workers > 1``.

    ``workers`` fans cells out over a process pool (1 = serial, 0 = all
    cores, None = the ``REPRO_WORKERS`` environment variable).  Records
    are always returned in grid order (α outermost, ε innermost) and are
    identical for every worker count.
    """
    tasks = sweep_tasks(
        workflow,
        vms,
        alphas=alphas,
        gammas=gammas,
        epsilons=epsilons,
        episodes=episodes,
        mu=mu,
        rho=rho,
        seed=seed,
        learner_factory=learner_factory,
        timing=timing,
    )
    runner = ParallelRunner(
        workers=workers,
        run_id=f"sweep:{workflow.name}",
        seed=seed,
        progress=progress,
    )
    return [r.value for r in runner.run(tasks)]


def best_record(records: Sequence[SweepRecord]) -> SweepRecord:
    """The cell with the smallest simulated makespan."""
    if not records:
        raise ValidationError("no sweep records")
    return min(records, key=lambda r: (r.simulated_makespan, r.params))
