"""Deterministic distributed learning: speculative actors + ordered replay.

``learn_distributed`` splits ``ReassignLearner.learn()`` into N rollout
**actors** and one **learner** without giving up the repo's
bit-reproducibility contract: the returned
:class:`~repro.core.episode.LearningResult` is byte-identical to the
serial learner's for *any* actor count (pinned across
actors ∈ {1, 2, 4, 7} in ``tests/test_distributed_learning.py``).

How it works
------------

- **Wave dispatch.**  With the true learner state committed through
  episode ``C``, one versioned checkpoint (a
  :meth:`QTable.snapshot() <repro.rl.qtable.QTable.snapshot>` plus the
  policy-stream and reward state) is shipped to the actor fleet, and
  episode ``C+j`` is assigned to actor ``perm[(C+j) % N]`` — a fixed
  actor→episode interleave drawn once from the sha256
  :func:`~repro.util.rng.derive_seed` scheme, so the assignment is
  itself reproducible.  Actor ``j`` therefore simulates its episode at
  snapshot *staleness* ``j``: the wave head (``j = 0``) runs against
  the exact committed state, the rest run **speculatively**.
- **Traces.**  Every actor episode logs a compact per-step decision
  trace (:class:`~repro.sim.trace.DecisionStep`: the interned action
  space, ε-draw outcome, chosen action, observed ``(te, tf)``, reward
  and Q-write, all stamped with the consulted table version).
- **Ordered replay.**  The learner consumes traces in strict episode
  order.  A trace whose base version still equals the true table's
  version is provably exact — the engine is deterministic and the
  actor started from byte-identical state — so its Q-writes are
  adopted directly and cheaply.  A stale trace is *validated*: each
  step is replayed against the true table through
  :class:`~repro.rl.replay.ReplayKernel` (the per-step gather/scatter
  form of the PR 8 ``update_batch`` primitives), performing every true
  draw in order; a step whose ε-draw outcome and argmax are unchanged
  by the staleness applies directly, and the first mismatching step
  triggers a deterministic in-learner re-simulation of the episode —
  the authoritative recomputation of the divergent suffix — from a
  rollback checkpoint.
- **Speculation throttle.**  A deterministic AIMD controller adapts
  the wave width to the measured speculation hit-rate (halve on an
  all-miss wave, double on an all-hit one, probe periodically), so
  workloads whose per-episode Q-drift defeats speculation degrade
  gracefully to exact-base dispatch instead of paying for doomed
  rollouts.  Hits are deterministic, hence so is the throttle — and
  the logged hit-rate statistics.

Execution modes: ``"pool"`` runs the actors as long-lived
:class:`~repro.runner.parallel.ParallelRunner` worker processes (one
persistent pool for the whole run, per-worker kernel reuse via the
shared kernel cache); ``"inline"`` runs the same wave/commit pipeline
in-process with the wave head driving the true state directly — and,
because sequential in-process speculation can never pay for itself,
pins the wave width to 1 unless ``validate_exact`` audits are on;
``"auto"`` picks ``pool`` only when both the actor count and the
host's usable cores exceed one.
"""

from __future__ import annotations

import copy
import math
import os
import time
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

from repro.core.batch import BatchSpec, _final_plan, _Lane
from repro.core.episode import EpisodeRecord, LearningResult
from repro.core.lane import (
    EpisodeOutcome,
    _drive_episode,
    _FastLane,
    _LiteResult,
    fast_lane_eligible,
)
from repro.core.reassign import (
    ReassignLearner,
    ReassignParams,
    ReassignScheduler,
    SimulatedLearningClock,
)
from repro.dag.graph import Workflow
from repro.rl.replay import ReplayKernel
from repro.sim.failures import FailureModel
from repro.sim.fluctuation import FluctuationModel
from repro.sim.kernel import BatchEpisodeState, EpisodeKernel
from repro.sim.metrics import SimulationResult
from repro.sim.migration import MigrationModel
from repro.sim.network import NetworkModel
from repro.sim.trace import (
    EpisodeTrace,
    ReplayContext,
    ReplayPending,
    TraceBuilder,
    TracingScheduler,
)
from repro.sim.vm import Vm
from repro.util.rng import RngService, derive_seed
from repro.util.validate import ValidationError

__all__ = ["learn_distributed"]

_MODES = ("auto", "inline", "pool")

#: With the throttle collapsed to width 1, re-probe speculation every
#: this many waves (costs at most one re-simulation per probe).
_PROBE_INTERVAL = 16
#: Stop probing for good after this many consecutive all-miss probes —
#: the workload's per-episode Q-drift has proven speculation hopeless.
_PROBE_GIVEUP = 2

#: (t, steps, reward_sum, reward EWMA, per-VM Welford state ×5, global
#: Welford state ×4) — everything mutable on a _FastLane besides the
#: Q-table itself.
_RewardState = Tuple[
    int, int, float, float, Dict[int, int], List[int], List[float],
    List[int], List[float], List[float], int, float, int, float,
]

#: Fused checkpoint: Q-table snapshot + policy-stream state + reward.
_FusedBase = Tuple[Any, Dict[str, Any], _RewardState]


def host_cores() -> int:
    """Usable CPU cores (affinity-aware where the platform supports it)."""
    getaff = getattr(os, "sched_getaffinity", None)
    if getaff is not None:
        try:
            return max(1, len(getaff(0)))
        except OSError:  # pragma: no cover - platform quirk
            pass
    return max(1, os.cpu_count() or 1)


# -- fused-chain checkpointing ------------------------------------------------


def _fused_checkpoint(
    lane: _FastLane, since: Optional[int] = None
) -> _FusedBase:
    """Capture everything a rollout actor needs to *become* this lane.

    ``since=K`` captures the Q-table as a version-delta instead
    (:meth:`QTable.snapshot`): only the rows touched at or after
    version ``K`` travel, so a pool-transported checkpoint serializes
    the touched rows plus the small lane scalars rather than the whole
    store.  The receiver must hold the exact version-``K`` table the
    delta patches (workers keep the pristine version-0 state cached and
    reconstruct from there).
    """
    reward_state: _RewardState = (
        lane.t, lane.steps, lane.reward_sum, lane.reward,
        dict(lane.pos), list(lane.exec_n), list(lane.exec_mean),
        list(lane.queue_n), list(lane.queue_mean), list(lane.index),
        lane.g_exec_n, lane.g_exec_mean, lane.g_queue_n, lane.g_queue_mean,
    )
    return (
        lane.qtable.snapshot(since=since),
        lane.rng.bit_generator.state,
        reward_state,
    )


def _fused_restore(lane: _FastLane, base: _FusedBase) -> None:
    """Restore a lane from a checkpoint (reusable: copies on the way in)."""
    snap, rng_state, rw = base
    lane.qtable.restore(snap)
    # rolling the table back invalidates the lean loop's action-slice
    # cache (its id_lists assume monotonic interning)
    lane.pairs_memo = {}
    # restore() swaps the backing store object on the shard backend
    lane.store = (
        lane.qtable._store
        if lane.params.qtable_backend == "shard"
        else None
    )
    lane.rng.bit_generator.state = rng_state
    (lane.t, lane.steps, lane.reward_sum, lane.reward) = rw[0], rw[1], rw[2], rw[3]
    lane.pos = dict(rw[4])
    lane.exec_n = list(rw[5])
    lane.exec_mean = list(rw[6])
    lane.queue_n = list(rw[7])
    lane.queue_mean = list(rw[8])
    lane.index = list(rw[9])
    lane.g_exec_n = rw[10]
    lane.g_exec_mean = rw[11]
    lane.g_queue_n = rw[12]
    lane.g_queue_mean = rw[13]


def _reward_step(lane: _FastLane, vm_id: int, te: float, tf: float) -> float:
    """The §III-B reward, op-for-op as the fused loop inlines it."""
    pos = lane.pos.get(vm_id)
    if pos is None:
        pos = len(lane.pos)
        lane.pos[vm_id] = pos
        lane.exec_n.append(0)
        lane.exec_mean.append(0.0)
        lane.queue_n.append(0)
        lane.queue_mean.append(0.0)
        lane.index.append(0.0)
    n = lane.exec_n[pos] + 1
    lane.exec_n[pos] = n
    mean = lane.exec_mean[pos]
    mean += (te - mean) / n
    lane.exec_mean[pos] = mean
    qn = lane.queue_n[pos] + 1
    lane.queue_n[pos] = qn
    qmean = lane.queue_mean[pos]
    qmean += (tf - qmean) / qn
    lane.queue_mean[pos] = qmean
    r_mu = lane.mu
    vm_index = mean * r_mu + (1.0 - r_mu) * qmean
    lane.index[pos] = vm_index
    lane.g_exec_n += 1
    lane.g_exec_mean += (te - lane.g_exec_mean) / lane.g_exec_n
    lane.g_queue_n += 1
    lane.g_queue_mean += (tf - lane.g_queue_mean) / lane.g_queue_n
    global_index = lane.g_exec_mean * r_mu + (1.0 - r_mu) * lane.g_queue_mean
    sn = 0
    smean = 0.0
    sm2 = 0.0
    for x in lane.index:
        sn += 1
        d = x - smean
        smean += d / sn
        sm2 += d * (x - smean)
    std = math.sqrt(sm2 / sn) if sn >= 2 else 0.0
    r_i = -1.0 if vm_index > global_index + std else 1.0
    lane.reward = lane.reward + lane.rho * (r_i - lane.reward)
    return lane.reward


# -- actor-side episode execution ---------------------------------------------


def _run_fused_chunk(
    kernel: EpisodeKernel,
    params: ReassignParams,
    spec_seed: int,
    base: _FusedBase,
    chunk: Sequence[int],
    env_seeds: Sequence[int],
    actor: int,
    want_post: bool,
    last_episode: int,
    lane: Optional[_FastLane] = None,
    bstate: Optional[BatchEpisodeState] = None,
) -> List[EpisodeTrace]:
    """One speculative wave chunk: B chained episodes from one ``base``.

    The lane is restored from ``base`` once, then runs the chunk's
    episodes back to back — episode ``i`` speculates on the lane's own
    evolution through episodes ``0..i-1``, exactly how the true learner
    chain would evolve if the whole chunk is adopted.  Every trace is
    stamped with the chunk's base version; ``want_post`` attaches the
    post-chunk checkpoint to the *last* trace (wholesale adoption).

    ``lane``/``bstate`` optionally reuse caller-owned scratch objects
    (the lane is restored in place, the batch view ``reset()`` in
    place) instead of rebuilding per chunk.  Episodes other than the
    run's ``last_episode`` run lite — their traces carry the
    completion-ordered assignment instead of full records.
    """
    if lane is None:
        lane = _FastLane(params, spec_seed)
    _fused_restore(lane, base)
    base_version = lane.qtable.version
    n = len(chunk)
    if bstate is None or bstate.batch < n:
        bstate = BatchEpisodeState(kernel, n)
    bstate.reset()
    out: List[EpisodeTrace] = []
    for i, episode in enumerate(chunk):
        steps = TraceBuilder()
        result = _drive_episode(
            kernel, lane, env_seeds[i], trace=steps,
            lite=episode != last_episode,
        )
        bstate.snapshot(i, result.makespan, lane.steps)
        lite = not isinstance(result, SimulationResult)
        out.append(
            EpisodeTrace(
                episode=episode,
                seed=env_seeds[i],
                actor=actor,
                base_version=base_version,
                steps=steps,
                makespan=float(bstate.makespan[i]),
                final_state=result.final_state,
                records=None if lite else list(result.records),
                assignment=result.assignment if lite else None,
                steps_count=int(bstate.steps[i]),
                reward_sum=lane.reward_sum,
                final_reward=lane.reward,
                post_state=None,
            )
        )
    if want_post:
        # want_post chunks travel back through the pool: ship the
        # post-chunk table as a delta over the wave base the learner
        # still holds (the chunk never bumps the version, so every row
        # it touched is stamped with the base era)
        out[-1].post_state = _fused_checkpoint(lane, since=base_version)
    return out


def _run_generic_chunk(
    kernel: EpisodeKernel,
    sched: ReassignScheduler,
    chunk: Sequence[int],
    env_seeds: Sequence[int],
    actor: int,
    want_post: bool,
) -> List[EpisodeTrace]:
    """One speculative chunk driving a private scheduler copy, chained."""
    base_version = sched.qtable.version
    out: List[EpisodeTrace] = []
    for i, episode in enumerate(chunk):
        proxy = TracingScheduler(sched)
        result = kernel.run_episode(proxy, env_seeds[i])
        out.append(
            EpisodeTrace(
                episode=episode,
                seed=env_seeds[i],
                actor=actor,
                base_version=base_version,
                steps=proxy.steps,
                makespan=result.makespan,
                final_state=result.final_state,
                records=list(result.records),
                steps_count=sched.episode_steps,
                reward_sum=sched._reward_sum,
                final_reward=sched.episode_final_reward,
                post_state=None,
            )
        )
    if want_post:
        out[-1].post_state = sched
    return out


#: Worker-process scratch caches (persistent pool workers only): the
#: fused lane keyed by (root seed, params) and the batch view keyed by
#: (kernel identity, width).  Both are fully re-initialized per chunk
#: (restore / reset), so reuse can never leak state between chunks; the
#: view entry pins its kernel, so the id key cannot be recycled.
_WORKER_LANES: Dict[Tuple[int, ReassignParams], _FastLane] = {}
_WORKER_VIEWS: Dict[Tuple[int, int], BatchEpisodeState] = {}
#: Pristine version-0 Q-table snapshot per lane key — the local base
#: that cumulative delta checkpoints (snapshot(since=0)) patch onto.
#: Purely a function of (seed, params), so it never goes stale.
_WORKER_BASE0: Dict[Tuple[int, ReassignParams], Any] = {}


def _actor_task(payload: Tuple[Any, ...], seed: int) -> List[EpisodeTrace]:
    """Worker-side rollout task (one chunk; kernel reused per worker).

    The payload ships the full spec so the worker can rebuild (or pull
    from its shared cache, via the task's declared kernel fingerprint)
    the episode kernel, plus the wave-base learner state.  ``seed`` is
    the runner's derived per-task seed; the episodes' env seeds travel
    in the payload because they must match the serial learner's
    ``spawn_seed(f"episode:{i}")`` exactly.
    """
    (spec, fused, base, chunk, chunk_seeds, actor, want_post,
     last_episode) = payload
    learner = ReassignLearner(
        spec.workflow,
        spec.vms,
        spec.params,
        network=spec.network,
        fluctuation=spec.fluctuation,
        failures=spec.failures,
        migrations=spec.migrations,
        seed=spec.seed,
        max_attempts=spec.max_attempts,
        single_slot_learning=spec.single_slot_learning,
    )
    kernel = learner.kernel
    if fused:
        lkey = (spec.seed, learner.params)
        lane = _WORKER_LANES.get(lkey)
        if lane is None:
            lane = _FastLane(learner.params, spec.seed)
            _WORKER_LANES[lkey] = lane
            _WORKER_BASE0[lkey] = lane.qtable.snapshot()
        if base[0].base_version is not None:
            # cumulative delta: re-seat the pristine version-0 table,
            # then _fused_restore patches the touched rows in place
            lane.qtable.restore(_WORKER_BASE0[lkey])
        vkey = (id(kernel), len(chunk))
        bstate = _WORKER_VIEWS.get(vkey)
        if bstate is None or bstate.kernel is not kernel:
            bstate = BatchEpisodeState(kernel, len(chunk))
            _WORKER_VIEWS[vkey] = bstate
        return _run_fused_chunk(
            kernel, learner.params, spec.seed, base, chunk, chunk_seeds,
            actor, want_post, last_episode, lane=lane, bstate=bstate,
        )
    # base is this process's private unpickled scheduler copy
    return _run_generic_chunk(
        kernel, base, chunk, chunk_seeds, actor, want_post,
    )


# -- learner-side ordered replay ----------------------------------------------


def _precompute_rewards(lane: _FastLane, trace: EpisodeTrace) -> List[float]:
    """Every §III-B reward of a trace, ahead of the validation scan.

    Op-for-op ``_reward_step`` over the trace's columnar arrays —
    rewards depend only on the traced ``(vm, te, tf)`` sequence, never
    on the Q-table or a draw, so hoisting them out of the replay loop
    is unobservable: a fully validated trace applies them all, and a
    divergent one rolls the lane (reward state included) back to its
    checkpoint.
    """
    act_v = trace.act_v
    te_col = trace.te
    tf_col = trace.tf
    out: List[float] = []
    for i in range(int(act_v.shape[0])):  # reprolint: disable=RL015  (running means are order-sensitive)
        r_t = _reward_step(
            lane, int(act_v[i]), float(te_col[i]), float(tf_col[i])
        )
        lane.reward_sum += r_t
        out.append(r_t)
    return out


def _replay_fused(
    lane: _FastLane, trace: EpisodeTrace, params: ReassignParams
) -> Tuple[bool, int]:
    """Validate a stale trace against the true lane.

    Performs every true draw in trace order (ε-coin, tie-breaks,
    lazy-init) and applies each validated update through the
    replay-apply kernels.  Returns ``(ok, divergence_step)`` — on the
    first step whose true selection differs from the traced action the
    lane is left mid-episode and the caller rolls back and re-simulates.

    When the Q-row is fully initialized (the steady state after the
    first few episodes) the whole trace goes through the columnar
    batched pass — rewards precomputed, pool resolved once, one
    Q-row gather (:meth:`ReplayKernel.validate_trace`).  A cold table
    falls back to the step-wise kernels, whose lazy first-touch draws
    the batched pass cannot reorder.
    """
    lane.start_episode()
    rk = ReplayKernel(lane.qtable, lane.exploit_p, params.alpha)
    rng_random = lane.rng.random
    rng_integers = lane.rng.integers
    gamma = params.gamma
    discount_power = params.discount_power
    entries = rk.begin_trace(trace)
    if entries is not None:
        n = trace.n_steps
        rewards = _precompute_rewards(lane, trace)
        if discount_power:
            gammas = [gamma ** t for t in range(1, n + 1)]
        else:
            gammas = [gamma] * n
        ok, div = rk.validate_trace(
            trace, entries, rewards, gammas, rng_random, rng_integers
        )
        if ok:
            lane.t += n
            lane.steps += n
        return ok, div
    for i, step in enumerate(trace.steps):  # reprolint: disable=RL015  (fallback: draws are sequential)
        action, sel_aid = rk.choose(step.pairs, rng_random, rng_integers)
        if action != step.action:
            return False, i
        r_t = _reward_step(lane, action[1], step.te, step.tf)
        lane.reward_sum += r_t
        gamma_t = gamma ** lane.t if discount_power else gamma
        future = rk.future(step.next_pairs)
        rk.apply(action, sel_aid, r_t, gamma_t, future)
        lane.t += 1
        lane.steps += 1
    return True, len(trace.steps)


def _replay_generic(
    sched: ReassignScheduler, trace: EpisodeTrace, workflow: Workflow
) -> Tuple[bool, int]:
    """Validate a stale trace by driving the true scheduler's own hooks."""
    sched.on_simulation_start(ReplayContext((), workflow))
    for i, step in enumerate(trace.steps):  # reprolint: disable=RL015  (drives the true scheduler's own hooks)
        ctx = ReplayContext(step.pairs, workflow, step.n_finished)
        got = sched.select(ctx)
        if got != step.action:
            return False, i
        sched.on_dispatched(
            ReplayContext(step.next_pairs, workflow, step.n_finished),
            ReplayPending(step.action[0], step.action[1], step.te, step.tf),
        )
    sched.on_simulation_end(ReplayContext((), workflow), None)
    return True, len(trace.steps)


def _result_from_trace(
    kernel: EpisodeKernel, trace: EpisodeTrace
) -> EpisodeOutcome:
    """Reconstruct the episode's simulation outcome from its trace.

    Lite traces (no records — every episode except the run's final one)
    reconstruct to a :class:`~repro.core.lane._LiteResult`; everything a
    committed episode reads off it (makespan, final state, assignment)
    is byte-identical to the full result's.
    """
    # lite marker: the trace carries the completion-ordered assignment
    # instead of records (EpisodeTrace normalizes records=None to [])
    if trace.assignment is not None:
        return _LiteResult(
            makespan=trace.makespan,
            final_state=trace.final_state,
            assignment=trace.assignment,
        )
    return SimulationResult(
        workflow_name=kernel.workflow.name,
        records=list(trace.records),
        makespan=trace.makespan,
        final_state=trace.final_state,
        vms=list(kernel.vms),
    )


# -- the distributed learner --------------------------------------------------


def learn_distributed(
    workflow: Workflow,
    vms: Sequence[Vm],
    params: Optional[ReassignParams] = None,
    *,
    seed: int = 0,
    network: Optional[NetworkModel] = None,
    fluctuation: Optional[FluctuationModel] = None,
    failures: Optional[FailureModel] = None,
    migrations: Optional[MigrationModel] = None,
    max_attempts: int = 1,
    single_slot_learning: bool = False,
    n_actors: int = 1,
    batch: int = 1,
    mode: str = "auto",
    timing: str = "wall",
    validate_exact: bool = False,
    stats_out: Optional[Dict[str, Any]] = None,
) -> LearningResult:
    """Distributed actor/learner training, bit-identical to serial.

    Parameters mirror :class:`~repro.core.reassign.ReassignLearner`;
    the additions:

    n_actors:
        Rollout actor count (≥ 1).  Any value yields byte-identical
        results; it only changes how episodes are produced.
    batch:
        Episodes per actor wave chunk (≥ 1).  Each actor speculates
        ``batch`` *consecutive* episodes chained from one snapshot
        (the fused lockstep lanes of :mod:`repro.core.batch` driven
        end to end), so checkpoint shipping, worker dispatch and lane
        setup amortize across the chunk.  Like ``n_actors``, any value
        yields byte-identical results.
    mode:
        ``"pool"`` (persistent worker processes), ``"inline"``
        (in-process actors, no IPC), or ``"auto"`` (pool only when
        both ``n_actors`` and the usable core count exceed one).
    timing:
        ``"wall"`` or ``"simulated"`` — same semantics as
        :func:`~repro.core.batch.learn_batch`; use ``"simulated"``
        when comparing results bit-for-bit.
    validate_exact:
        Test knob: force even guaranteed-exact wave-head episodes
        through the full validation replay (every step must then hit —
        asserted by the equivalence suite; guards snapshot fidelity).
    stats_out:
        Optional dict populated with run statistics (speculation
        hit-rate, re-simulation count, wave geometry, host cores).
        Kept outside :class:`~repro.core.episode.LearningResult` so
        the result stays byte-comparable to serial learning.
    """
    if n_actors < 1:
        raise ValidationError(f"n_actors must be >= 1, got {n_actors}")
    if batch < 1:
        raise ValidationError(f"batch must be >= 1, got {batch}")
    if mode not in _MODES:
        allowed = ", ".join(repr(m) for m in _MODES)
        raise ValidationError(f"mode must be one of {allowed}, got {mode!r}")
    if timing not in ("wall", "simulated"):
        raise ValidationError(
            f"timing must be 'wall' or 'simulated', got {timing!r}"
        )
    params = params if params is not None else ReassignParams()
    simulated = timing == "simulated"
    spec = BatchSpec(
        workflow=workflow,
        vms=vms,
        params=params,
        seed=int(seed),
        network=network,
        fluctuation=fluctuation,
        failures=failures,
        migrations=migrations,
        max_attempts=max_attempts,
        single_slot_learning=single_slot_learning,
    )
    learner = ReassignLearner(
        spec.workflow,
        spec.vms,
        params,
        network=spec.network,
        fluctuation=spec.fluctuation,
        failures=spec.failures,
        migrations=spec.migrations,
        seed=spec.seed,
        max_attempts=spec.max_attempts,
        single_slot_learning=spec.single_slot_learning,
        clock=SimulatedLearningClock() if simulated else None,
    )
    kernel = learner.kernel
    fused = fast_lane_eligible(params)
    chain_lane = _FastLane(params, spec.seed) if fused else None
    chain_sched = learner.scheduler

    if mode == "auto":
        effective_mode = (
            "pool" if n_actors > 1 and host_cores() > 1 else "inline"
        )
    else:
        effective_mode = mode
    pool = effective_mode == "pool"

    episodes = params.episodes
    rng = RngService(spec.seed)
    env_seeds = [
        rng.spawn_seed(f"episode:{i}") for i in range(episodes)
    ]
    # fixed actor→episode interleave off the sha256 derive_seed scheme
    interleave = (
        RngService(derive_seed(spec.seed, "actor-interleave"))
        .stream("actor-interleave")
        .permutation(n_actors)
    )

    fp = learner.kernel_fingerprint()
    runner = None
    if pool:
        from repro.runner.parallel import ParallelRunner, Task

        runner = ParallelRunner(
            workers=n_actors,
            run_id=f"distributed-learn:{spec.seed}",
            seed=spec.seed,
            chunk_size=1,
            persistent=True,
        )

    records: List[EpisodeRecord] = []
    last_result: Optional[SimulationResult] = None
    elapsed = 0.0
    exact_commits = 0
    spec_hits = 0
    spec_misses = 0
    resims = 0
    waves = 0
    # Inline mode never speculates: a speculative episode costs a full
    # actor rollout plus a replay even when it hits, and sequential
    # in-process execution can never recoup that — the wave head driven
    # directly on the chain is already optimal.  The pool (where actors
    # genuinely overlap the learner) and validate_exact (an audit mode,
    # and the inline test bed for the speculation machinery) run the
    # adaptive width.  Width never affects results, only wall time.
    speculate = pool or validate_exact
    width = n_actors if speculate else 1
    waves_since_probe = 0
    probe_pending = False
    probe_failures = 0
    wall_started = time.perf_counter()

    def current_version() -> int:
        if chain_lane is not None:
            return chain_lane.qtable.version
        return chain_sched.qtable.version

    def bump_version() -> None:
        if chain_lane is not None:
            chain_lane.qtable.bump_version()
        else:
            chain_sched.qtable.bump_version()

    try:
        committed = 0
        if not speculate and not pool:
            # plain inline: every episode is exact and driven directly
            # on the learner chain, so the wave machinery (checkpoints,
            # traces, AIMD throttle) is pure overhead — a dedicated
            # loop keeps this serial-equivalent path at the fused
            # engine's floor cost
            for e in range(episodes):
                waves += 1
                result: EpisodeOutcome
                if fused:
                    assert chain_lane is not None
                    # all but the final episode run "lite": no
                    # ActivationRecord construction — the plan only ever
                    # reads the last full result
                    result = _drive_episode(
                        kernel, chain_lane, env_seeds[e],
                        lite=e + 1 < episodes,
                    )
                    ep_steps = chain_lane.steps
                    ep_reward_sum = chain_lane.reward_sum
                    ep_final_reward = chain_lane.reward
                else:
                    result = kernel.run_episode(chain_sched, env_seeds[e])
                    ep_steps = chain_sched.episode_steps
                    ep_reward_sum = chain_sched._reward_sum
                    ep_final_reward = chain_sched.episode_final_reward
                exact_commits += 1
                bump_version()
                if simulated:
                    elapsed += result.makespan
                if isinstance(result, SimulationResult):
                    last_result = result
                records.append(
                    EpisodeRecord(
                        episode=e,
                        makespan=result.makespan,
                        final_state=result.final_state,
                        steps=ep_steps,
                        mean_reward=(
                            ep_reward_sum / ep_steps if ep_steps else 0.0
                        ),
                        final_reward=ep_final_reward,
                        assignment=result.assignment,
                    )
                )
            committed = episodes
        last_episode = episodes - 1
        scratch_lane: Optional[_FastLane] = None
        scratch_view: Optional[BatchEpisodeState] = None

        def commit(
            e: int,
            result: EpisodeOutcome,
            ep_steps: int,
            ep_reward_sum: float,
            ep_final_reward: float,
        ) -> None:
            nonlocal elapsed, last_result
            bump_version()
            if simulated:
                elapsed += result.makespan
            if isinstance(result, SimulationResult):
                last_result = result
            records.append(
                EpisodeRecord(
                    episode=e,
                    makespan=result.makespan,
                    final_state=result.final_state,
                    steps=ep_steps,
                    mean_reward=(
                        ep_reward_sum / ep_steps if ep_steps else 0.0
                    ),
                    final_reward=ep_final_reward,
                    assignment=result.assignment,
                )
            )

        while committed < episodes:
            waves += 1
            # one wave = up to `width` chunks of up to `batch`
            # consecutive episodes; chunk j speculates at chunk
            # staleness j (its episodes chain on the actor's own
            # evolution, so within-chunk episodes add no staleness)
            n_chunks = min(
                width, -(-(episodes - committed) // batch)
            )
            chunks: List[List[int]] = []
            start = committed
            for _ in range(n_chunks):
                stop = min(start + batch, episodes)
                chunks.append(list(range(start, stop)))
                start = stop
            head_on_chain = (
                not pool and not validate_exact
            )  # head chunk drives the true state directly when inline

            # wave base: needed for every shipped chunk (pool) and for
            # inline speculative actors / validate_exact heads
            need_base = pool or n_chunks > 1 or validate_exact
            base: Any = None
            if need_base:
                if fused:
                    assert chain_lane is not None
                    # pool bases travel as cumulative deltas over the
                    # pristine version-0 table every worker can rebuild
                    # locally: the payload serializes only the touched
                    # Q-rows instead of the whole store
                    base = _fused_checkpoint(
                        chain_lane, since=0 if pool else None
                    )
                else:
                    base = copy.deepcopy(chain_sched)

            # -- rollout ------------------------------------------------
            traces: List[Optional[List[EpisodeTrace]]] = [None] * n_chunks
            if pool:
                assert runner is not None
                tasks = []
                for j, chunk in enumerate(chunks):
                    actor = int(interleave[(chunk[0] // batch) % n_actors])
                    want_post = j == 0 and not validate_exact
                    tasks.append(
                        Task(
                            key=("chunk", chunk[0]),
                            fn=_actor_task,
                            payload=(
                                spec, fused, base, chunk,
                                [env_seeds[e] for e in chunk],
                                actor, want_post, last_episode,
                            ),
                            seed=derive_seed(
                                spec.seed, f"actor-episode:{chunk[0]}"
                            ),
                            kernel_fingerprint=fp,
                        )
                    )
                for res in runner.run(tasks):
                    traces[res.index] = res.value
            else:
                for j, chunk in enumerate(chunks):
                    actor = int(interleave[(chunk[0] // batch) % n_actors])
                    if j == 0 and head_on_chain:
                        continue  # driven on the true chain below
                    if fused:
                        if scratch_lane is None:
                            scratch_lane = _FastLane(params, spec.seed)
                        if (
                            scratch_view is None
                            or scratch_view.batch < len(chunk)
                        ):
                            scratch_view = BatchEpisodeState(
                                kernel, len(chunk)
                            )
                        traces[j] = _run_fused_chunk(
                            kernel, params, spec.seed, base, chunk,
                            [env_seeds[e] for e in chunk], actor,
                            want_post=False, last_episode=last_episode,
                            lane=scratch_lane, bstate=scratch_view,
                        )
                    else:
                        traces[j] = _run_generic_chunk(
                            kernel, copy.deepcopy(base), chunk,
                            [env_seeds[e] for e in chunk], actor,
                            want_post=False,
                        )

            # -- ordered consume ---------------------------------------
            wave_hits0 = spec_hits
            wave_misses0 = spec_misses
            for j, chunk in enumerate(chunks):
                if j == 0 and not pool and head_on_chain:
                    # inline head chunk: the actor *is* the learner
                    # chain, and its traces would never be replayed — so
                    # none are recorded
                    for e in chunk:
                        result: EpisodeOutcome
                        if fused:
                            assert chain_lane is not None
                            result = _drive_episode(
                                kernel, chain_lane, env_seeds[e],
                                lite=e != last_episode,
                            )
                            ep_stats = (
                                chain_lane.steps,
                                chain_lane.reward_sum,
                                chain_lane.reward,
                            )
                        else:
                            result = kernel.run_episode(
                                chain_sched, env_seeds[e]
                            )
                            ep_stats = (
                                chain_sched.episode_steps,
                                chain_sched._reward_sum,
                                chain_sched.episode_final_reward,
                            )
                        exact_commits += 1
                        commit(e, result, *ep_stats)
                    continue
                chunk_traces = traces[j]
                assert chunk_traces is not None
                exact_chunk = (
                    chunk_traces[0].base_version == current_version()
                    and chunk_traces[-1].post_state is not None
                    and not validate_exact
                )
                if exact_chunk:
                    # provably the truth: deterministic engine chained
                    # from byte-identical state — adopt the actor's
                    # post-chunk state wholesale, commit every episode
                    if fused:
                        assert chain_lane is not None
                        _fused_restore(
                            chain_lane, chunk_traces[-1].post_state
                        )
                    else:
                        chain_sched = chunk_traces[-1].post_state
                        learner.scheduler = chain_sched
                    for trace in chunk_traces:
                        exact_commits += 1
                        commit(
                            trace.episode,
                            _result_from_trace(kernel, trace),
                            trace.steps_count,
                            trace.reward_sum,
                            trace.final_reward,
                        )
                    continue
                for trace in chunk_traces:
                    e = trace.episode
                    speculative = trace.base_version != current_version()
                    if fused:
                        assert chain_lane is not None
                        ckpt = _fused_checkpoint(chain_lane)
                        ok, _div = _replay_fused(
                            chain_lane, trace, params
                        )
                    else:
                        ckpt = copy.deepcopy(chain_sched)
                        ok, _div = _replay_generic(
                            chain_sched, trace, workflow
                        )
                    if ok:
                        result = _result_from_trace(kernel, trace)
                        if fused:
                            assert chain_lane is not None
                            ep_stats = (
                                chain_lane.steps,
                                chain_lane.reward_sum,
                                chain_lane.reward,
                            )
                        else:
                            ep_stats = (
                                chain_sched.episode_steps,
                                chain_sched._reward_sum,
                                chain_sched.episode_final_reward,
                            )
                        if speculative:
                            spec_hits += 1
                        else:
                            exact_commits += 1
                    else:
                        # deterministic in-learner re-simulation of the
                        # episode (the divergent suffix made the whole
                        # speculative episode moot)
                        resims += 1
                        if speculative:
                            spec_misses += 1
                        if fused:
                            assert chain_lane is not None
                            _fused_restore(chain_lane, ckpt)
                            result = _drive_episode(
                                kernel, chain_lane, env_seeds[e]
                            )
                            ep_stats = (
                                chain_lane.steps,
                                chain_lane.reward_sum,
                                chain_lane.reward,
                            )
                        else:
                            chain_sched = ckpt
                            learner.scheduler = chain_sched
                            result = kernel.run_episode(
                                chain_sched, env_seeds[e]
                            )
                            ep_stats = (
                                chain_sched.episode_steps,
                                chain_sched._reward_sum,
                                chain_sched.episode_final_reward,
                            )
                    commit(e, result, *ep_stats)
            committed = chunks[-1][-1] + 1

            # -- deterministic AIMD speculation throttle ---------------
            # halve on an all-miss wave, double on an all-hit one, keep
            # on a mixed wave; after 16 all-exact waves at width 1,
            # probe width 2 once (costs at most one re-simulation), and
            # give probing up for good once two consecutive probes miss
            # — on a host where speculation never pays, the engine must
            # converge to pure serial cost.  Hits are deterministic,
            # hence so is the throttle; width never affects results.
            wave_hits = spec_hits - wave_hits0
            wave_misses = spec_misses - wave_misses0
            n_speculative = wave_hits + wave_misses
            waves_since_probe += 1
            if n_speculative > 0:
                if wave_misses == n_speculative:
                    width = max(1, width // 2)
                    if probe_pending:
                        probe_failures += 1
                else:
                    if wave_hits == n_speculative:
                        width = min(n_actors, width * 2)
                    probe_failures = 0
                probe_pending = False
                waves_since_probe = 0
            elif (
                speculate
                and width == 1
                and n_actors > 1
                and probe_failures < _PROBE_GIVEUP
                and waves_since_probe >= _PROBE_INTERVAL
            ):
                width = 2
                probe_pending = True
                waves_since_probe = 0
    finally:
        if runner is not None:
            runner.close()

    if not simulated:
        elapsed = time.perf_counter() - wall_started

    if stats_out is not None:
        speculative_total = spec_hits + spec_misses
        stats_out.update(
            n_actors=n_actors,
            batch=batch,
            mode=effective_mode,
            episodes=episodes,
            waves=waves,
            exact_commits=exact_commits,
            speculative_hits=spec_hits,
            speculative_misses=spec_misses,
            resims=resims,
            # None = never speculated (plain inline pins the width to 1);
            # distinct from a measured 0.0 on an all-miss run
            speculative_hit_rate=(
                spec_hits / speculative_total if speculative_total else None
            ),
            hit_rate=(
                (exact_commits + spec_hits) / episodes if episodes else None
            ),
            final_width=width,
            host_cores=host_cores(),
        )

    # -- final plan & result (mirrors learn() / learn_batch) ----------------
    if fused:
        assert chain_lane is not None
        lane = _Lane(
            spec=spec,
            params=params,
            learner=learner,
            fast=chain_lane,
            rng=RngService(spec.seed),
            records=records,
            last_result=last_result,
            elapsed=elapsed,
        )
        plan, simulated_makespan = _final_plan(lane, kernel)
        return LearningResult(
            plan=plan,
            episodes=records,
            learning_time=elapsed,
            simulated_makespan=simulated_makespan,
            qtable_json=chain_lane.qtable.to_json(),
        )
    from repro.schedulers.base import SchedulingPlan

    if last_result is not None and last_result.succeeded:
        order = sorted(
            last_result.records,
            key=lambda r: (r.start_time, r.activation_id),
        )
        plan = SchedulingPlan(
            assignment=last_result.assignment,
            priority=[r.activation_id for r in order],
            name=f"ReASSIgN({params.label()})",
        )
        simulated_makespan = last_result.makespan
    else:
        plan, simulated_makespan = learner.extract_plan()
    return LearningResult(
        plan=plan,
        episodes=records,
        learning_time=elapsed,
        simulated_makespan=simulated_makespan,
        qtable_json=chain_sched.qtable_json(),
    )
