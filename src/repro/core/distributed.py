"""Deterministic distributed learning: speculative actors + ordered replay.

``learn_distributed`` splits ``ReassignLearner.learn()`` into N rollout
**actors** and one **learner** without giving up the repo's
bit-reproducibility contract: the returned
:class:`~repro.core.episode.LearningResult` is byte-identical to the
serial learner's for *any* actor count (pinned across
actors ∈ {1, 2, 4, 7} in ``tests/test_distributed_learning.py``).

How it works
------------

- **Wave dispatch.**  With the true learner state committed through
  episode ``C``, one versioned checkpoint (a
  :meth:`QTable.snapshot() <repro.rl.qtable.QTable.snapshot>` plus the
  policy-stream and reward state) is shipped to the actor fleet, and
  episode ``C+j`` is assigned to actor ``perm[(C+j) % N]`` — a fixed
  actor→episode interleave drawn once from the sha256
  :func:`~repro.util.rng.derive_seed` scheme, so the assignment is
  itself reproducible.  Actor ``j`` therefore simulates its episode at
  snapshot *staleness* ``j``: the wave head (``j = 0``) runs against
  the exact committed state, the rest run **speculatively**.
- **Traces.**  Every actor episode logs a compact per-step decision
  trace (:class:`~repro.sim.trace.DecisionStep`: the interned action
  space, ε-draw outcome, chosen action, observed ``(te, tf)``, reward
  and Q-write, all stamped with the consulted table version).
- **Ordered replay.**  The learner consumes traces in strict episode
  order.  A trace whose base version still equals the true table's
  version is provably exact — the engine is deterministic and the
  actor started from byte-identical state — so its Q-writes are
  adopted directly and cheaply.  A stale trace is *validated*: each
  step is replayed against the true table through
  :class:`~repro.rl.replay.ReplayKernel` (the per-step gather/scatter
  form of the PR 8 ``update_batch`` primitives), performing every true
  draw in order; a step whose ε-draw outcome and argmax are unchanged
  by the staleness applies directly, and the first mismatching step
  triggers a deterministic in-learner re-simulation of the episode —
  the authoritative recomputation of the divergent suffix — from a
  rollback checkpoint.
- **Speculation throttle.**  A deterministic AIMD controller adapts
  the wave width to the measured speculation hit-rate (halve on an
  all-miss wave, double on an all-hit one, probe periodically), so
  workloads whose per-episode Q-drift defeats speculation degrade
  gracefully to exact-base dispatch instead of paying for doomed
  rollouts.  Hits are deterministic, hence so is the throttle — and
  the logged hit-rate statistics.

Execution modes: ``"pool"`` runs the actors as long-lived
:class:`~repro.runner.parallel.ParallelRunner` worker processes (one
persistent pool for the whole run, per-worker kernel reuse via the
shared kernel cache); ``"inline"`` runs the same wave/commit pipeline
in-process with the wave head driving the true state directly — and,
because sequential in-process speculation can never pay for itself,
pins the wave width to 1 unless ``validate_exact`` audits are on;
``"auto"`` picks ``pool`` only when both the actor count and the
host's usable cores exceed one.
"""

from __future__ import annotations

import copy
import math
import os
import time
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

from repro.core.batch import (
    BatchSpec,
    _drive_episode,
    _FastLane,
    _final_plan,
    _Lane,
    fast_lane_eligible,
)
from repro.core.episode import EpisodeRecord, LearningResult
from repro.core.reassign import (
    ReassignLearner,
    ReassignParams,
    ReassignScheduler,
    SimulatedLearningClock,
)
from repro.dag.graph import Workflow
from repro.rl.replay import ReplayKernel
from repro.sim.failures import FailureModel
from repro.sim.fluctuation import FluctuationModel
from repro.sim.kernel import EpisodeKernel
from repro.sim.metrics import SimulationResult
from repro.sim.migration import MigrationModel
from repro.sim.network import NetworkModel
from repro.sim.trace import (
    DecisionStep,
    EpisodeTrace,
    ReplayContext,
    ReplayPending,
    TracingScheduler,
)
from repro.sim.vm import Vm
from repro.util.rng import RngService, derive_seed
from repro.util.validate import ValidationError

__all__ = ["learn_distributed"]

_MODES = ("auto", "inline", "pool")

#: With the throttle collapsed to width 1, re-probe speculation every
#: this many waves (costs at most one re-simulation per probe).
_PROBE_INTERVAL = 16
#: Stop probing for good after this many consecutive all-miss probes —
#: the workload's per-episode Q-drift has proven speculation hopeless.
_PROBE_GIVEUP = 2

#: (t, steps, reward_sum, reward EWMA, per-VM Welford state ×5, global
#: Welford state ×4) — everything mutable on a _FastLane besides the
#: Q-table itself.
_RewardState = Tuple[
    int, int, float, float, Dict[int, int], List[int], List[float],
    List[int], List[float], List[float], int, float, int, float,
]

#: Fused checkpoint: Q-table snapshot + policy-stream state + reward.
_FusedBase = Tuple[Any, Dict[str, Any], _RewardState]


def host_cores() -> int:
    """Usable CPU cores (affinity-aware where the platform supports it)."""
    getaff = getattr(os, "sched_getaffinity", None)
    if getaff is not None:
        try:
            return max(1, len(getaff(0)))
        except OSError:  # pragma: no cover - platform quirk
            pass
    return max(1, os.cpu_count() or 1)


# -- fused-chain checkpointing ------------------------------------------------


def _fused_checkpoint(lane: _FastLane) -> _FusedBase:
    """Capture everything a rollout actor needs to *become* this lane."""
    reward_state: _RewardState = (
        lane.t, lane.steps, lane.reward_sum, lane.reward,
        dict(lane.pos), list(lane.exec_n), list(lane.exec_mean),
        list(lane.queue_n), list(lane.queue_mean), list(lane.index),
        lane.g_exec_n, lane.g_exec_mean, lane.g_queue_n, lane.g_queue_mean,
    )
    return (
        lane.qtable.snapshot(),
        lane.rng.bit_generator.state,
        reward_state,
    )


def _fused_restore(lane: _FastLane, base: _FusedBase) -> None:
    """Restore a lane from a checkpoint (reusable: copies on the way in)."""
    snap, rng_state, rw = base
    lane.qtable.restore(snap)
    # restore() swaps the backing store object on the shard backend
    lane.store = (
        lane.qtable._store
        if lane.params.qtable_backend == "shard"
        else None
    )
    lane.rng.bit_generator.state = rng_state
    (lane.t, lane.steps, lane.reward_sum, lane.reward) = rw[0], rw[1], rw[2], rw[3]
    lane.pos = dict(rw[4])
    lane.exec_n = list(rw[5])
    lane.exec_mean = list(rw[6])
    lane.queue_n = list(rw[7])
    lane.queue_mean = list(rw[8])
    lane.index = list(rw[9])
    lane.g_exec_n = rw[10]
    lane.g_exec_mean = rw[11]
    lane.g_queue_n = rw[12]
    lane.g_queue_mean = rw[13]


def _reward_step(lane: _FastLane, vm_id: int, te: float, tf: float) -> float:
    """The §III-B reward, op-for-op as the fused loop inlines it."""
    pos = lane.pos.get(vm_id)
    if pos is None:
        pos = len(lane.pos)
        lane.pos[vm_id] = pos
        lane.exec_n.append(0)
        lane.exec_mean.append(0.0)
        lane.queue_n.append(0)
        lane.queue_mean.append(0.0)
        lane.index.append(0.0)
    n = lane.exec_n[pos] + 1
    lane.exec_n[pos] = n
    mean = lane.exec_mean[pos]
    mean += (te - mean) / n
    lane.exec_mean[pos] = mean
    qn = lane.queue_n[pos] + 1
    lane.queue_n[pos] = qn
    qmean = lane.queue_mean[pos]
    qmean += (tf - qmean) / qn
    lane.queue_mean[pos] = qmean
    r_mu = lane.mu
    vm_index = mean * r_mu + (1.0 - r_mu) * qmean
    lane.index[pos] = vm_index
    lane.g_exec_n += 1
    lane.g_exec_mean += (te - lane.g_exec_mean) / lane.g_exec_n
    lane.g_queue_n += 1
    lane.g_queue_mean += (tf - lane.g_queue_mean) / lane.g_queue_n
    global_index = lane.g_exec_mean * r_mu + (1.0 - r_mu) * lane.g_queue_mean
    sn = 0
    smean = 0.0
    sm2 = 0.0
    for x in lane.index:
        sn += 1
        d = x - smean
        smean += d / sn
        sm2 += d * (x - smean)
    std = math.sqrt(sm2 / sn) if sn >= 2 else 0.0
    r_i = -1.0 if vm_index > global_index + std else 1.0
    lane.reward = lane.reward + lane.rho * (r_i - lane.reward)
    return lane.reward


# -- actor-side episode execution ---------------------------------------------


def _trace_from_fused(
    lane: _FastLane,
    result: SimulationResult,
    steps: List[DecisionStep],
    episode: int,
    env_seed: int,
    actor: int,
    base_version: int,
    want_post: bool,
) -> EpisodeTrace:
    return EpisodeTrace(
        episode=episode,
        seed=env_seed,
        actor=actor,
        base_version=base_version,
        steps=steps,
        makespan=result.makespan,
        final_state=result.final_state,
        records=list(result.records),
        steps_count=lane.steps,
        reward_sum=lane.reward_sum,
        final_reward=lane.reward,
        post_state=_fused_checkpoint(lane) if want_post else None,
    )


def _run_fused_actor(
    kernel: EpisodeKernel,
    params: ReassignParams,
    spec_seed: int,
    base: _FusedBase,
    episode: int,
    env_seed: int,
    actor: int,
    want_post: bool,
) -> EpisodeTrace:
    """One speculative episode on a scratch lane restored from ``base``."""
    lane = _FastLane(params, spec_seed)
    _fused_restore(lane, base)
    base_version = lane.qtable.version
    steps: List[DecisionStep] = []
    result = _drive_episode(kernel, lane, env_seed, trace=steps)
    return _trace_from_fused(
        lane, result, steps, episode, env_seed, actor, base_version,
        want_post,
    )


def _run_generic_actor(
    kernel: EpisodeKernel,
    sched: ReassignScheduler,
    episode: int,
    env_seed: int,
    actor: int,
    want_post: bool,
) -> EpisodeTrace:
    """One speculative episode driving a private scheduler copy."""
    base_version = sched.qtable.version
    proxy = TracingScheduler(sched)
    result = kernel.run_episode(proxy, env_seed)
    return EpisodeTrace(
        episode=episode,
        seed=env_seed,
        actor=actor,
        base_version=base_version,
        steps=proxy.steps,
        makespan=result.makespan,
        final_state=result.final_state,
        records=list(result.records),
        steps_count=sched.episode_steps,
        reward_sum=sched._reward_sum,
        final_reward=sched.episode_final_reward,
        post_state=sched if want_post else None,
    )


def _actor_task(payload: Tuple[Any, ...], seed: int) -> EpisodeTrace:
    """Worker-side rollout task (one episode; kernel reused per worker).

    The payload ships the full spec so the worker can rebuild (or pull
    from its shared cache, via the task's declared kernel fingerprint)
    the episode kernel, plus the wave-base learner state.  ``seed`` is
    the runner's derived per-task seed; the episode's env seed travels
    in the payload because it must match the serial learner's
    ``spawn_seed(f"episode:{i}")`` exactly.
    """
    (spec, fused, base, episode, env_seed, actor, want_post) = payload
    learner = ReassignLearner(
        spec.workflow,
        spec.vms,
        spec.params,
        network=spec.network,
        fluctuation=spec.fluctuation,
        failures=spec.failures,
        migrations=spec.migrations,
        seed=spec.seed,
        max_attempts=spec.max_attempts,
        single_slot_learning=spec.single_slot_learning,
    )
    kernel = learner.kernel
    if fused:
        return _run_fused_actor(
            kernel, learner.params, spec.seed, base, episode, env_seed,
            actor, want_post,
        )
    # base is this process's private unpickled scheduler copy
    return _run_generic_actor(
        kernel, base, episode, env_seed, actor, want_post,
    )


# -- learner-side ordered replay ----------------------------------------------


def _replay_fused(
    lane: _FastLane, trace: EpisodeTrace, params: ReassignParams
) -> Tuple[bool, int]:
    """Validate a stale trace against the true lane, step by step.

    Performs every true draw in trace order (ε-coin, tie-breaks,
    lazy-init) and applies each validated update through the
    replay-apply kernels.  Returns ``(ok, divergence_step)`` — on the
    first step whose true selection differs from the traced action the
    lane is left mid-episode and the caller rolls back and re-simulates.
    """
    lane.start_episode()
    rk = ReplayKernel(lane.qtable, lane.exploit_p, params.alpha)
    rng_random = lane.rng.random
    rng_integers = lane.rng.integers
    gamma = params.gamma
    discount_power = params.discount_power
    for i, step in enumerate(trace.steps):
        action, sel_aid = rk.choose(step.pairs, rng_random, rng_integers)
        if action != step.action:
            return False, i
        r_t = _reward_step(lane, action[1], step.te, step.tf)
        lane.reward_sum += r_t
        gamma_t = gamma ** lane.t if discount_power else gamma
        future = rk.future(step.next_pairs)
        rk.apply(action, sel_aid, r_t, gamma_t, future)
        lane.t += 1
        lane.steps += 1
    return True, len(trace.steps)


def _replay_generic(
    sched: ReassignScheduler, trace: EpisodeTrace, workflow: Workflow
) -> Tuple[bool, int]:
    """Validate a stale trace by driving the true scheduler's own hooks."""
    sched.on_simulation_start(ReplayContext((), workflow))
    for i, step in enumerate(trace.steps):
        ctx = ReplayContext(step.pairs, workflow, step.n_finished)
        got = sched.select(ctx)
        if got != step.action:
            return False, i
        sched.on_dispatched(
            ReplayContext(step.next_pairs, workflow, step.n_finished),
            ReplayPending(step.action[0], step.action[1], step.te, step.tf),
        )
    sched.on_simulation_end(ReplayContext((), workflow), None)
    return True, len(trace.steps)


def _result_from_trace(
    kernel: EpisodeKernel, trace: EpisodeTrace
) -> SimulationResult:
    """Reconstruct the episode's simulation outcome from its trace."""
    return SimulationResult(
        workflow_name=kernel.workflow.name,
        records=list(trace.records),
        makespan=trace.makespan,
        final_state=trace.final_state,
        vms=list(kernel.vms),
    )


# -- the distributed learner --------------------------------------------------


def learn_distributed(
    workflow: Workflow,
    vms: Sequence[Vm],
    params: Optional[ReassignParams] = None,
    *,
    seed: int = 0,
    network: Optional[NetworkModel] = None,
    fluctuation: Optional[FluctuationModel] = None,
    failures: Optional[FailureModel] = None,
    migrations: Optional[MigrationModel] = None,
    max_attempts: int = 1,
    single_slot_learning: bool = False,
    n_actors: int = 1,
    mode: str = "auto",
    timing: str = "wall",
    validate_exact: bool = False,
    stats_out: Optional[Dict[str, Any]] = None,
) -> LearningResult:
    """Distributed actor/learner training, bit-identical to serial.

    Parameters mirror :class:`~repro.core.reassign.ReassignLearner`;
    the additions:

    n_actors:
        Rollout actor count (≥ 1).  Any value yields byte-identical
        results; it only changes how episodes are produced.
    mode:
        ``"pool"`` (persistent worker processes), ``"inline"``
        (in-process actors, no IPC), or ``"auto"`` (pool only when
        both ``n_actors`` and the usable core count exceed one).
    timing:
        ``"wall"`` or ``"simulated"`` — same semantics as
        :func:`~repro.core.batch.learn_batch`; use ``"simulated"``
        when comparing results bit-for-bit.
    validate_exact:
        Test knob: force even guaranteed-exact wave-head episodes
        through the full validation replay (every step must then hit —
        asserted by the equivalence suite; guards snapshot fidelity).
    stats_out:
        Optional dict populated with run statistics (speculation
        hit-rate, re-simulation count, wave geometry, host cores).
        Kept outside :class:`~repro.core.episode.LearningResult` so
        the result stays byte-comparable to serial learning.
    """
    if n_actors < 1:
        raise ValidationError(f"n_actors must be >= 1, got {n_actors}")
    if mode not in _MODES:
        allowed = ", ".join(repr(m) for m in _MODES)
        raise ValidationError(f"mode must be one of {allowed}, got {mode!r}")
    if timing not in ("wall", "simulated"):
        raise ValidationError(
            f"timing must be 'wall' or 'simulated', got {timing!r}"
        )
    params = params if params is not None else ReassignParams()
    simulated = timing == "simulated"
    spec = BatchSpec(
        workflow=workflow,
        vms=vms,
        params=params,
        seed=int(seed),
        network=network,
        fluctuation=fluctuation,
        failures=failures,
        migrations=migrations,
        max_attempts=max_attempts,
        single_slot_learning=single_slot_learning,
    )
    learner = ReassignLearner(
        spec.workflow,
        spec.vms,
        params,
        network=spec.network,
        fluctuation=spec.fluctuation,
        failures=spec.failures,
        migrations=spec.migrations,
        seed=spec.seed,
        max_attempts=spec.max_attempts,
        single_slot_learning=spec.single_slot_learning,
        clock=SimulatedLearningClock() if simulated else None,
    )
    kernel = learner.kernel
    fused = fast_lane_eligible(params)
    chain_lane = _FastLane(params, spec.seed) if fused else None
    chain_sched = learner.scheduler

    if mode == "auto":
        effective_mode = (
            "pool" if n_actors > 1 and host_cores() > 1 else "inline"
        )
    else:
        effective_mode = mode
    pool = effective_mode == "pool"

    episodes = params.episodes
    rng = RngService(spec.seed)
    env_seeds = [
        rng.spawn_seed(f"episode:{i}") for i in range(episodes)
    ]
    # fixed actor→episode interleave off the sha256 derive_seed scheme
    interleave = (
        RngService(derive_seed(spec.seed, "actor-interleave"))
        .stream("actor-interleave")
        .permutation(n_actors)
    )

    fp = learner.kernel_fingerprint()
    runner = None
    if pool:
        from repro.runner.parallel import ParallelRunner, Task

        runner = ParallelRunner(
            workers=n_actors,
            run_id=f"distributed-learn:{spec.seed}",
            seed=spec.seed,
            chunk_size=1,
            persistent=True,
        )

    records: List[EpisodeRecord] = []
    last_result: Optional[SimulationResult] = None
    elapsed = 0.0
    exact_commits = 0
    spec_hits = 0
    spec_misses = 0
    resims = 0
    waves = 0
    # Inline mode never speculates: a speculative episode costs a full
    # actor rollout plus a replay even when it hits, and sequential
    # in-process execution can never recoup that — the wave head driven
    # directly on the chain is already optimal.  The pool (where actors
    # genuinely overlap the learner) and validate_exact (an audit mode,
    # and the inline test bed for the speculation machinery) run the
    # adaptive width.  Width never affects results, only wall time.
    speculate = pool or validate_exact
    width = n_actors if speculate else 1
    waves_since_probe = 0
    probe_pending = False
    probe_failures = 0
    wall_started = time.perf_counter()

    def current_version() -> int:
        if chain_lane is not None:
            return chain_lane.qtable.version
        return chain_sched.qtable.version

    def bump_version() -> None:
        if chain_lane is not None:
            chain_lane.qtable.bump_version()
        else:
            chain_sched.qtable.bump_version()

    try:
        committed = 0
        if not speculate and not pool:
            # plain inline: every episode is exact and driven directly
            # on the learner chain, so the wave machinery (checkpoints,
            # traces, AIMD throttle) is pure overhead — a dedicated
            # loop keeps this serial-equivalent path at the fused
            # engine's floor cost
            for e in range(episodes):
                waves += 1
                if fused:
                    assert chain_lane is not None
                    result = _drive_episode(kernel, chain_lane, env_seeds[e])
                    ep_steps = chain_lane.steps
                    ep_reward_sum = chain_lane.reward_sum
                    ep_final_reward = chain_lane.reward
                else:
                    result = kernel.run_episode(chain_sched, env_seeds[e])
                    ep_steps = chain_sched.episode_steps
                    ep_reward_sum = chain_sched._reward_sum
                    ep_final_reward = chain_sched.episode_final_reward
                exact_commits += 1
                bump_version()
                if simulated:
                    elapsed += result.makespan
                last_result = result
                records.append(
                    EpisodeRecord(
                        episode=e,
                        makespan=result.makespan,
                        final_state=result.final_state,
                        steps=ep_steps,
                        mean_reward=(
                            ep_reward_sum / ep_steps if ep_steps else 0.0
                        ),
                        final_reward=ep_final_reward,
                        assignment=result.assignment,
                    )
                )
            committed = episodes
        while committed < episodes:
            waves += 1
            k = min(width, episodes - committed)
            wave_episodes = list(range(committed, committed + k))
            head_on_chain = (
                not pool and not validate_exact
            )  # wave head drives the true state directly when inline

            # wave base: needed for every shipped episode (pool) and for
            # inline speculative actors / validate_exact heads
            need_base = pool or k > 1 or validate_exact
            base: Any = None
            if need_base:
                if fused:
                    assert chain_lane is not None
                    base = _fused_checkpoint(chain_lane)
                else:
                    base = copy.deepcopy(chain_sched)

            # -- rollout ------------------------------------------------
            traces: List[Optional[EpisodeTrace]] = [None] * k
            if pool:
                assert runner is not None
                tasks = []
                for j, e in enumerate(wave_episodes):
                    actor = int(interleave[e % n_actors])
                    want_post = j == 0 and not validate_exact
                    tasks.append(
                        Task(
                            key=("episode", e),
                            fn=_actor_task,
                            payload=(
                                spec, fused, base, e, env_seeds[e],
                                actor, want_post,
                            ),
                            seed=derive_seed(spec.seed, f"actor-episode:{e}"),
                            kernel_fingerprint=fp,
                        )
                    )
                for res in runner.run(tasks):
                    traces[res.index] = res.value
            else:
                for j, e in enumerate(wave_episodes):
                    actor = int(interleave[e % n_actors])
                    if j == 0 and head_on_chain:
                        continue  # driven on the true chain below
                    if fused:
                        traces[j] = _run_fused_actor(
                            kernel, params, spec.seed, base, e,
                            env_seeds[e], actor, want_post=False,
                        )
                    else:
                        traces[j] = _run_generic_actor(
                            kernel, copy.deepcopy(base), e, env_seeds[e],
                            actor, want_post=False,
                        )

            # -- ordered consume ---------------------------------------
            wave_hits0 = spec_hits
            wave_misses0 = spec_misses
            for j, e in enumerate(wave_episodes):
                result: SimulationResult
                if j == 0 and not pool and head_on_chain:
                    # inline wave head: the actor *is* the learner
                    # chain, and its trace would never be replayed — so
                    # none is recorded
                    if fused:
                        assert chain_lane is not None
                        result = _drive_episode(
                            kernel, chain_lane, env_seeds[e]
                        )
                        ep_steps = chain_lane.steps
                        ep_reward_sum = chain_lane.reward_sum
                        ep_final_reward = chain_lane.reward
                    else:
                        result = kernel.run_episode(
                            chain_sched, env_seeds[e]
                        )
                        ep_steps = chain_sched.episode_steps
                        ep_reward_sum = chain_sched._reward_sum
                        ep_final_reward = chain_sched.episode_final_reward
                    exact_commits += 1
                else:
                    trace = traces[j]
                    assert trace is not None
                    exact = (
                        trace.base_version == current_version()
                        and trace.post_state is not None
                        and not validate_exact
                    )
                    if exact:
                        # provably the truth: deterministic engine from
                        # byte-identical state — adopt the actor's
                        # post-episode state wholesale
                        if fused:
                            assert chain_lane is not None
                            _fused_restore(chain_lane, trace.post_state)
                        else:
                            chain_sched = trace.post_state
                            learner.scheduler = chain_sched
                        result = _result_from_trace(kernel, trace)
                        ep_steps = trace.steps_count
                        ep_reward_sum = trace.reward_sum
                        ep_final_reward = trace.final_reward
                        exact_commits += 1
                    else:
                        speculative = trace.base_version != current_version()
                        if fused:
                            assert chain_lane is not None
                            ckpt = _fused_checkpoint(chain_lane)
                            ok, _div = _replay_fused(
                                chain_lane, trace, params
                            )
                        else:
                            ckpt = copy.deepcopy(chain_sched)
                            ok, _div = _replay_generic(
                                chain_sched, trace, workflow
                            )
                        if ok:
                            result = _result_from_trace(kernel, trace)
                            if fused:
                                assert chain_lane is not None
                                ep_steps = chain_lane.steps
                                ep_reward_sum = chain_lane.reward_sum
                                ep_final_reward = chain_lane.reward
                            else:
                                ep_steps = chain_sched.episode_steps
                                ep_reward_sum = chain_sched._reward_sum
                                ep_final_reward = (
                                    chain_sched.episode_final_reward
                                )
                            if speculative:
                                spec_hits += 1
                            else:
                                exact_commits += 1
                        else:
                            # deterministic in-learner re-simulation of
                            # the episode (the divergent suffix made the
                            # whole speculative episode moot)
                            resims += 1
                            if speculative:
                                spec_misses += 1
                            if fused:
                                assert chain_lane is not None
                                _fused_restore(chain_lane, ckpt)
                                result = _drive_episode(
                                    kernel, chain_lane, env_seeds[e]
                                )
                                ep_steps = chain_lane.steps
                                ep_reward_sum = chain_lane.reward_sum
                                ep_final_reward = chain_lane.reward
                            else:
                                chain_sched = ckpt
                                learner.scheduler = chain_sched
                                result = kernel.run_episode(
                                    chain_sched, env_seeds[e]
                                )
                                ep_steps = chain_sched.episode_steps
                                ep_reward_sum = chain_sched._reward_sum
                                ep_final_reward = (
                                    chain_sched.episode_final_reward
                                )
                bump_version()
                if simulated:
                    elapsed += result.makespan
                last_result = result
                records.append(
                    EpisodeRecord(
                        episode=e,
                        makespan=result.makespan,
                        final_state=result.final_state,
                        steps=ep_steps,
                        mean_reward=(
                            ep_reward_sum / ep_steps if ep_steps else 0.0
                        ),
                        final_reward=ep_final_reward,
                        assignment=result.assignment,
                    )
                )
            committed += k

            # -- deterministic AIMD speculation throttle ---------------
            # halve on an all-miss wave, double on an all-hit one, keep
            # on a mixed wave; after 16 all-exact waves at width 1,
            # probe width 2 once (costs at most one re-simulation), and
            # give probing up for good once two consecutive probes miss
            # — on a host where speculation never pays, the engine must
            # converge to pure serial cost.  Hits are deterministic,
            # hence so is the throttle; width never affects results.
            wave_hits = spec_hits - wave_hits0
            wave_misses = spec_misses - wave_misses0
            n_speculative = wave_hits + wave_misses
            waves_since_probe += 1
            if n_speculative > 0:
                if wave_misses == n_speculative:
                    width = max(1, width // 2)
                    if probe_pending:
                        probe_failures += 1
                else:
                    if wave_hits == n_speculative:
                        width = min(n_actors, width * 2)
                    probe_failures = 0
                probe_pending = False
                waves_since_probe = 0
            elif (
                speculate
                and width == 1
                and n_actors > 1
                and probe_failures < _PROBE_GIVEUP
                and waves_since_probe >= _PROBE_INTERVAL
            ):
                width = 2
                probe_pending = True
                waves_since_probe = 0
    finally:
        if runner is not None:
            runner.close()

    if not simulated:
        elapsed = time.perf_counter() - wall_started

    if stats_out is not None:
        speculative_total = spec_hits + spec_misses
        stats_out.update(
            n_actors=n_actors,
            mode=effective_mode,
            episodes=episodes,
            waves=waves,
            exact_commits=exact_commits,
            speculative_hits=spec_hits,
            speculative_misses=spec_misses,
            resims=resims,
            # None = never speculated (plain inline pins the width to 1);
            # distinct from a measured 0.0 on an all-miss run
            speculative_hit_rate=(
                spec_hits / speculative_total if speculative_total else None
            ),
            hit_rate=(
                (exact_commits + spec_hits) / episodes if episodes else None
            ),
            final_width=width,
            host_cores=host_cores(),
        )

    # -- final plan & result (mirrors learn() / learn_batch) ----------------
    if fused:
        assert chain_lane is not None
        lane = _Lane(
            spec=spec,
            params=params,
            learner=learner,
            fast=chain_lane,
            rng=RngService(spec.seed),
            records=records,
            last_result=last_result,
            elapsed=elapsed,
        )
        plan, simulated_makespan = _final_plan(lane, kernel)
        return LearningResult(
            plan=plan,
            episodes=records,
            learning_time=elapsed,
            simulated_makespan=simulated_makespan,
            qtable_json=chain_lane.qtable.to_json(),
        )
    from repro.schedulers.base import SchedulingPlan

    if last_result is not None and last_result.succeeded:
        order = sorted(
            last_result.records,
            key=lambda r: (r.start_time, r.activation_id),
        )
        plan = SchedulingPlan(
            assignment=last_result.assignment,
            priority=[r.activation_id for r in order],
            name=f"ReASSIgN({params.label()})",
        )
        simulated_makespan = last_result.makespan
    else:
        plan, simulated_makespan = learner.extract_plan()
    return LearningResult(
        plan=plan,
        episodes=records,
        learning_time=elapsed,
        simulated_makespan=simulated_makespan,
        qtable_json=chain_sched.qtable_json(),
    )
