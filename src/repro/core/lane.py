"""The fused episode stepper: one lane, one episode, zero indirection.

This module is the reusable core of both batched engines: the lockstep
batch engine (:mod:`repro.core.batch`) and the distributed
actor/learner pipeline (:mod:`repro.core.distributed`) drive learning
episodes through :func:`_drive_episode`, which fuses the event loop,
the ε-greedy selection, the §III-B reward and the Eq.-3 Q-update into
a single function over one :class:`_FastLane`.

**Bit-identity contract (non-negotiable).**  Every float operation
replicates ``EpisodeKernel.run_episode`` driving a
``ReassignScheduler`` in the same order, so results are bit-identical
to the serial learner for the same spec — see
:mod:`repro.core.batch`'s module docstring for the full contract and
the pinning tests.

Two loop bodies implement that contract:

- :func:`_drive_general` handles every event type (boots, migrations,
  revocations, failures, generic fluctuation models);
- :func:`_drive_lean` is a specialized variant for the by-far-hottest
  regime — a draw-free kernel (no failures / migrations /
  revocations), shared staging, and no pending boot events after
  reset.  In that regime the only event type that can ever exist is
  ``ACTIVATION_DONE``, and its priority (2) sorts *before*
  ``DISPATCH`` (5) at equal times, so the generic heap interleaving
  collapses to "pop the completion cluster at time t, then run the
  dispatch phase inline".  That lets the lean loop drop the ``Event``
  / ``PendingExecution`` / dispatch-event allocations, keep a plain
  tuple heap, mirror the single Q-row as a Python float list for
  scalar reductions, and localize the state's version counters —
  while performing **exactly** the same RNG draws and float ops as the
  general loop (the selection values are the same IEEE doubles whether
  read from the numpy row or its float-list mirror, and the skipped
  work — in-flight bookkeeping, busy-time integration without a
  throttle model, attempt lookups without failures — is provably dead
  in the regime).

Both bodies support **lite mode** (``lite=True``): per-activation
:class:`~repro.sim.metrics.ActivationRecord` construction is replaced
by a completion-ordered ``{activation_id: vm_id}`` assignment map and
the episode returns a :class:`_LiteResult`.  Everything a caller reads
off a non-final episode (makespan, final state, assignment) is
preserved byte-for-byte; only the run's final episode needs full
records (plan extraction sorts them), so callers pass ``lite=False``
there.  Lite mode is honored by the lean body; the general body
records fully regardless (correct either way — lite is purely a
performance hint).
"""

from __future__ import annotations

import math
from bisect import bisect_left, insort
from heapq import heappop, heappush
from itertools import product
from typing import Dict, List, Optional, Tuple, Union

import numpy as np

from repro.core.reassign import ReassignParams
from repro.dag.activation import ActivationState
from repro.rl.environment import AVAILABLE
from repro.rl.qshard import ShardStore
from repro.rl.qtable import QTable
from repro.sim.events import Event, EventType
from repro.sim.failures import NoFailures
from repro.sim.fluctuation import BurstThrottleFluctuation, NoFluctuation
from repro.sim.kernel import (
    _PAIRS_INTERN_LIMIT,
    EpisodeKernel,
    PendingExecution,
    SimulationError,
)
from repro.sim.metrics import ActivationRecord, SimulationResult
from repro.sim.trace import TraceBuilder
from repro.util.rng import RngService

__all__ = [
    "EpisodeOutcome",
    "_FastLane",
    "_LiteResult",
    "_drive_episode",
    "fast_lane_eligible",
]

_DONE = EventType.ACTIVATION_DONE
_DISPATCH = EventType.DISPATCH
_VM_READY = EventType.VM_READY
_PRI_DONE = int(_DONE)
_PRI_DISPATCH = int(_DISPATCH)
_READY = ActivationState.READY
_RUNNING = ActivationState.RUNNING
_FINISHED = ActivationState.FINISHED
_LOCKED = ActivationState.LOCKED

_SUCCEEDED = "successfully finished"

#: Below this slice width the lean loop reduces over the Python-float
#: row mirror instead of gathering through numpy.  A pure performance
#: knob: both paths perform identical comparisons and draws (ties are
#: enumerated in the same order), so the crossover cannot affect
#: results — it was measured on the Montage-50 protocol.
_LEAN_SCALAR_LIMIT = 256


def _drive_general(
    kernel: EpisodeKernel,
    lane: _FastLane,
    trace: Optional[TraceBuilder],
    lite: bool,
) -> SimulationResult:
    """The general loop body (state already reset; handles every event).

    ``lite`` is accepted for signature parity but ignored: regimes that
    reach this body (failures, migrations, boots, generic fluctuation)
    are rare enough that full records are always kept — a full
    :class:`~repro.sim.metrics.SimulationResult` satisfies every lite
    caller.
    """
    del lite
    state = kernel.state
    vms = kernel.vms
    estimates = kernel.estimates
    fluct = kernel.fluctuation
    failures = kernel.failures
    no_fail = type(failures) is NoFailures
    if type(fluct) is BurstThrottleFluctuation:
        fl_mode = 1
        fl_throttle = fluct.throttle_factor
        fl_credit = fluct.credit_seconds
        fl_maxv = fluct.burstable_max_vcpus
    elif type(fluct) is NoFluctuation:
        fl_mode = 0
        fl_throttle = fl_credit = 0.0
        fl_maxv = 0
    else:
        fl_mode = 2
        fl_throttle = fl_credit = 0.0
        fl_maxv = 0
    completed = False
    try:
        queue = state.queue
        heap = queue._heap
        counter = queue._counter
        max_attempts = kernel.max_attempts
        horizon = kernel.horizon
        n_total = kernel.n_activations
        ac_by_id = kernel._ac_by_id
        vm_by_id = kernel.vm_by_id
        children = kernel._children
        unfinished = state._unfinished_parents
        shared_staging = kernel._shared_staging
        network = kernel.network
        busy_time = state.busy_time
        file_locations = state.file_locations
        fl_get = file_locations.get
        in_flight = state.in_flight
        ready_time = state.ready_time
        attempts = state.attempts
        ready_ids = state._ready_ids
        records = state.records
        interned = state._pairs_interned
        if shared_staging:
            terms_memo = estimates._stage_in_terms
            cmp_memo = estimates._compute
            out_memo = estimates._stage_out

        # RL locals (one lane: its own table, policy stream, reward)
        params = lane.params
        table = lane.qtable
        store = lane.store
        rng_random = lane.rng.random
        rng_integers = lane.rng.integers
        exploit_p = lane.exploit_p
        alpha = params.alpha
        gamma = params.gamma
        discount_power = params.discount_power
        sid = table._state_id(AVAILABLE)
        # the whole episode writes through this one row: one era mark
        # keeps delta snapshots (QTable.snapshot(since=...)) sound
        table.mark_row_dirty(sid)
        slice_memo = table._action_slice
        # one-entry identity cache over slice_memo: the update's
        # next_pairs is usually the next selection's pairs (same
        # object, via the interner), so most lookups collapse to a
        # single `is` check (entry[0] is the actions tuple itself;
        # priming with () draws nothing and interns nothing)
        sm_entry = slice_memo(())
        t_rl = 1
        steps = 0
        reward_sum = 0.0

        # inlined PerformanceReward state (Welford mean pushes)
        r_mu = lane.mu
        r_rho = lane.rho
        r_pos = lane.pos
        r_exec_n = lane.exec_n
        r_exec_mean = lane.exec_mean
        r_queue_n = lane.queue_n
        r_queue_mean = lane.queue_mean
        r_index = lane.index
        g_exec_n = lane.g_exec_n
        g_exec_mean = lane.g_exec_mean
        g_queue_n = lane.g_queue_n
        g_queue_mean = lane.g_queue_mean
        reward = 0.0

        # single-slot content caches keyed on the monotonic versions
        ready_tup_v = -1
        ready_tup: Tuple[int, ...] = ()
        idle_ids_v = -1
        idle_ids: Tuple[int, ...] = ()

        # incremental idleness: with no boot/migration/revocation events
        # pending (and none ever scheduled by the models), a VM is idle
        # iff it has a free slot — maintained inline at the two mutation
        # sites instead of rebuilt per (now, version) key
        inc_idle = not heap
        # busy-bitmask idle memo: bit i set ⟺ vms[i] is full.  The two
        # mutation sites keep busy_mask current, so an idle swap is one
        # dict hit on identity-stable tuples instead of a rebuild.
        vm_bits = {vm.id: 1 << i for i, vm in enumerate(vms)}
        idle_by_mask = state._idle_by_mask
        busy_mask = 0
        if inc_idle:
            for i, vm in enumerate(vms):
                if len(vm.running) >= vm.type.vcpus:
                    busy_mask |= 1 << i
            idle = idle_by_mask.get(busy_mask, ())
            if not idle and busy_mask not in idle_by_mask:
                idle = tuple(
                    [vm for vm in vms if len(vm.running) < vm.type.vcpus]
                )
                idle_by_mask[busy_mask] = idle
            if idle != state._idle_cache:
                state._idle_cache = idle
                state._idle_version += 1
        else:
            idle = ()

        state.dispatch_scheduled = True
        heappush(
            heap,
            (state.now, _PRI_DISPATCH, next(counter),
             Event(state.now, _DISPATCH)),
        )

        while True:
            if state._n_finished == n_total:
                break
            if state._n_failed and not state._n_running and not ready_ids:
                if n_total == state._n_finished + state._n_failed:
                    break
            event = None
            while heap:
                item = heappop(heap)
                ev = item[3]
                if not ev.cancelled:
                    event = ev
                    break
            if event is None:
                raise SimulationError(
                    f"simulation deadlocked at t={state.now:.3f}: workflow "
                    f"state {state.workflow_state()!r} with no pending events"
                )
            t = event.time
            now = state.now
            if t < now - 1e-9:
                raise SimulationError("event time regressed (internal bug)")
            if t > now:
                now = t
                state.now = t
            if now > horizon:
                raise SimulationError(
                    f"simulation exceeded horizon {horizon}"
                )
            etype = event.type
            if etype is _DONE:
                pending = event.payload
                aid_ = pending.activation_id
                ac = ac_by_id[aid_]
                vm = vm_by_id[pending.vm_id]
                vm.running.remove(aid_)
                state._vm_version += 1
                if inc_idle and len(vm.running) + 1 == vm.type.vcpus:
                    busy_mask &= ~vm_bits[vm.id]
                    idle = idle_by_mask.get(busy_mask, ())
                    if not idle and busy_mask not in idle_by_mask:
                        idle = tuple([
                            v for v in vms
                            if len(v.running) < v.type.vcpus
                        ])
                        idle_by_mask[busy_mask] = idle
                    state._idle_cache = idle
                    state._idle_version += 1
                del in_flight[aid_]
                busy_time[vm.id] += now - pending.dispatch_time
                outcome = pending.outcome
                if outcome == "success":
                    for f in ac.outputs:
                        file_locations[f.name] = vm.id
                    records.append(ActivationRecord(
                        activation_id=aid_,
                        activity=ac.activity,
                        vm_id=vm.id,
                        ready_time=pending.ready_time,
                        start_time=pending.dispatch_time,
                        finish_time=now,
                        stage_in_time=pending.stage_in,
                        attempts=pending.attempt + 1,
                        failed=False,
                    ))
                    state._records_cache = None
                    ac.state = _FINISHED
                    state._n_running -= 1
                    state._n_finished += 1
                    released = False
                    for child_id in children[aid_]:
                        remaining = unfinished[child_id] - 1
                        unfinished[child_id] = remaining
                        if remaining == 0:
                            child = ac_by_id[child_id]
                            if child.state is _LOCKED:
                                child.state = _READY
                                insort(ready_ids, child_id)
                                ready_time[child_id] = now
                                released = True
                    if released:
                        state._ready_cache = None
                        state._ready_version += 1
                elif outcome == "retry":
                    attempts[aid_] = pending.attempt + 1
                    state.make_ready(ac, was_running=True)
                else:
                    records.append(ActivationRecord(
                        activation_id=aid_,
                        activity=ac.activity,
                        vm_id=vm.id,
                        ready_time=pending.ready_time,
                        start_time=pending.dispatch_time,
                        finish_time=now,
                        stage_in_time=pending.stage_in,
                        attempts=pending.attempt + 1,
                        failed=True,
                    ))
                    state._records_cache = None
                    state.finish_failure(ac)
                if not state.dispatch_scheduled:
                    state.dispatch_scheduled = True
                    heappush(
                        heap,
                        (now, _PRI_DISPATCH, next(counter),
                         Event(now, _DISPATCH)),
                    )
            elif etype is _DISPATCH:
                state.dispatch_scheduled = False
                while ready_ids:
                    if not inc_idle:
                        key = (now, state._vm_version)
                        if key != state._idle_key:
                            state._idle_key = key
                            rebuilt = tuple([
                                vm for vm in vms
                                if not vm.migrating
                                and now >= vm.available_at
                                and vm.type.vcpus > len(vm.running)
                            ])
                            if rebuilt != state._idle_cache:
                                state._idle_cache = rebuilt
                                state._idle_version += 1
                        idle = state._idle_cache
                    if not idle:
                        break
                    pkey = (state._ready_version, state._idle_version)
                    if pkey != state._pairs_key:
                        state._pairs_key = pkey
                        rv, iv = pkey
                        if rv != ready_tup_v:
                            ready_tup_v = rv
                            ready_tup = tuple(ready_ids)
                        if iv != idle_ids_v:
                            idle_ids_v = iv
                            idle_ids = tuple([vm.id for vm in idle])
                        content = (ready_tup, idle_ids)
                        pairs = interned.get(content)
                        if pairs is None:
                            pairs = tuple(product(ready_tup, idle_ids))
                            if len(interned) >= _PAIRS_INTERN_LIMIT:
                                interned.pop(next(iter(interned)))
                            interned[content] = pairs
                        state._pairs_cache = pairs
                    else:
                        pairs = state._pairs_cache
                    # ε-greedy selection, inlined (one gather per step)
                    if rng_random() < exploit_p:
                        if sm_entry[0] is not pairs:
                            sm_entry = slice_memo(pairs)
                        entry = sm_entry
                        aids, id_list, ensured = entry[1], entry[2], entry[3]
                        if sid not in ensured:
                            # full-row shortcut: with the single bucket
                            # row fully initialized, _ensure_known has
                            # nothing left to draw — skip its mask scan
                            if (
                                table._n_known != len(table._actions)
                                or len(table._states) != 1
                            ):
                                table._ensure_known(sid, aids)
                            ensured.add(sid)
                        row = (
                            store.q_row(sid)
                            if store is not None
                            else table._q[sid]
                        )
                        if len(id_list) < 32:
                            values_list = [row[a] for a in id_list]
                            cut = max(values_list) - 1e-15
                            tie_list = [
                                i for i, v in enumerate(values_list)
                                if v >= cut
                            ]
                            if len(tie_list) == 1:
                                i = tie_list[0]
                            else:
                                i = tie_list[int(rng_integers(len(tie_list)))]
                        else:
                            values = row.take(aids)
                            i = int(values.argmax())
                            band = values >= values[i] - 1e-15
                            cnt = int(band.sum())
                            if cnt > 1:
                                ties = np.flatnonzero(band)
                                i = int(ties[int(rng_integers(cnt))])
                        action = pairs[i]
                        sel_aid: Optional[int] = id_list[i]
                    else:
                        i = int(rng_integers(len(pairs)))
                        action = pairs[i]
                        sel_aid = None
                    act_pos = i
                    activation_id, vm_id = action
                    ac = ac_by_id[activation_id]
                    vm = vm_by_id[vm_id]
                    attempt = attempts.get(activation_id, 0)
                    ekey = (activation_id, vm_id)
                    if shared_staging:
                        terms = terms_memo.get(ekey)
                        if terms is None:
                            terms = estimates.stage_in_terms(ac, vm)
                        stage_in = 0.0
                        for name, seconds in terms:
                            if fl_get(name) != vm_id:
                                stage_in += seconds
                    else:
                        stage_in = network.stage_in_time(
                            ac, vm, file_locations
                        )
                    if fl_mode == 0:
                        factor = 1.0
                    elif fl_mode == 1:
                        factor = (
                            fl_throttle
                            if vm.type.vcpus <= fl_maxv
                            and busy_time[vm_id] > fl_credit
                            else 1.0
                        )
                    else:
                        # generic model ⟹ not draw-free ⟹ reset() ran
                        # and the state's fluctuation stream exists
                        factor = fluct.factor(
                            vm, now, busy_time[vm_id], state.rng_fluct
                        )
                    if shared_staging:
                        compute = cmp_memo.get(ekey)
                        if compute is None:
                            compute = estimates.compute_time(ac, vm)
                        compute *= factor
                        stage_out = out_memo.get(ekey)
                        if stage_out is None:
                            stage_out = estimates.stage_out_time(ac, vm)
                    else:
                        compute = estimates.compute_time(ac, vm) * factor
                        stage_out = network.stage_out_time(ac, vm)
                    if no_fail:
                        fails = False
                    else:
                        fails = failures.attempt_fails(
                            ac, vm, attempt, state.rng_fail
                        )
                    if fails:
                        duration = (
                            stage_in
                            + compute * failures.failure_runtime_fraction
                        )
                        outcome = (
                            "retry" if attempt + 1 < max_attempts
                            else "failure"
                        )
                    else:
                        duration = stage_in + compute + stage_out
                        outcome = "success"
                    # start_running, inlined
                    ac.state = _RUNNING
                    del ready_ids[bisect_left(ready_ids, activation_id)]
                    state._n_running += 1
                    state._ready_cache = None
                    state._ready_version += 1
                    vm.running.add(activation_id)
                    state._vm_version += 1
                    if inc_idle and len(vm.running) == vm.type.vcpus:
                        busy_mask |= vm_bits[vm_id]
                        idle = idle_by_mask.get(busy_mask, ())
                        if not idle and busy_mask not in idle_by_mask:
                            idle = tuple([
                                v for v in vms
                                if len(v.running) < v.type.vcpus
                            ])
                            idle_by_mask[busy_mask] = idle
                        state._idle_cache = idle
                        state._idle_version += 1
                    planned_finish = now + duration
                    a_ready_time = ready_time[activation_id]
                    pending = PendingExecution(
                        activation_id=activation_id,
                        vm_id=vm_id,
                        ready_time=a_ready_time,
                        dispatch_time=now,
                        stage_in=stage_in,
                        exec_duration=duration,
                        planned_finish=planned_finish,
                        attempt=attempt,
                        outcome=outcome,
                    )
                    ev = Event(planned_finish, _DONE, pending)
                    pending.event = ev
                    heappush(
                        heap, (planned_finish, _PRI_DONE, next(counter), ev)
                    )
                    in_flight[activation_id] = pending
                    # PerformanceReward.step, inlined (te, tf)
                    te = duration
                    tf = now - a_ready_time
                    pos = r_pos.get(vm_id)
                    if pos is None:
                        pos = len(r_pos)
                        r_pos[vm_id] = pos
                        r_exec_n.append(0)
                        r_exec_mean.append(0.0)
                        r_queue_n.append(0)
                        r_queue_mean.append(0.0)
                        r_index.append(0.0)
                    n = r_exec_n[pos] + 1
                    r_exec_n[pos] = n
                    mean = r_exec_mean[pos]
                    mean += (te - mean) / n
                    r_exec_mean[pos] = mean
                    qn = r_queue_n[pos] + 1
                    r_queue_n[pos] = qn
                    qmean = r_queue_mean[pos]
                    qmean += (tf - qmean) / qn
                    r_queue_mean[pos] = qmean
                    vm_index = mean * r_mu + (1.0 - r_mu) * qmean
                    r_index[pos] = vm_index
                    g_exec_n += 1
                    g_exec_mean += (te - g_exec_mean) / g_exec_n
                    g_queue_n += 1
                    g_queue_mean += (tf - g_queue_mean) / g_queue_n
                    global_index = (
                        g_exec_mean * r_mu + (1.0 - r_mu) * g_queue_mean
                    )
                    # §III-B penalty test, short-circuited: std >= 0, so
                    # a VM at or below the global index can never trip
                    # `vm_index > global_index + std` — the Welford scan
                    # over per-VM indexes only runs when it can matter
                    # (bit-identical: the scan is unchanged when taken)
                    if vm_index > global_index:
                        sn = 0
                        smean = 0.0
                        sm2 = 0.0
                        for x in r_index:
                            sn += 1
                            delta = x - smean
                            smean += delta / sn
                            sm2 += delta * (x - smean)
                        std = math.sqrt(sm2 / sn) if sn >= 2 else 0.0
                        r_i = -1.0 if vm_index > global_index + std else 1.0
                    else:
                        r_i = 1.0
                    reward = reward + r_rho * (r_i - reward)
                    r_t = reward
                    reward_sum += r_t
                    # next-state pairs (post-dispatch view)
                    if ready_ids:
                        if not inc_idle:
                            key = (now, state._vm_version)
                            if key != state._idle_key:
                                state._idle_key = key
                                rebuilt = tuple([
                                    vm for vm in vms
                                    if not vm.migrating
                                    and now >= vm.available_at
                                    and vm.type.vcpus > len(vm.running)
                                ])
                                if rebuilt != state._idle_cache:
                                    state._idle_cache = rebuilt
                                    state._idle_version += 1
                            idle = state._idle_cache
                        if idle:
                            pkey = (
                                state._ready_version, state._idle_version
                            )
                            if pkey != state._pairs_key:
                                state._pairs_key = pkey
                                rv, iv = pkey
                                if rv != ready_tup_v:
                                    ready_tup_v = rv
                                    ready_tup = tuple(ready_ids)
                                if iv != idle_ids_v:
                                    idle_ids_v = iv
                                    idle_ids = tuple(
                                        [vm.id for vm in idle]
                                    )
                                content = (ready_tup, idle_ids)
                                next_pairs = interned.get(content)
                                if next_pairs is None:
                                    next_pairs = tuple(
                                        product(ready_tup, idle_ids)
                                    )
                                    if len(interned) >= _PAIRS_INTERN_LIMIT:
                                        interned.pop(next(iter(interned)))
                                    interned[content] = next_pairs
                                state._pairs_cache = next_pairs
                            else:
                                next_pairs = state._pairs_cache
                        else:
                            next_pairs = ()
                    else:
                        next_pairs = ()
                    gamma_t = gamma ** t_rl if discount_power else gamma
                    if next_pairs:
                        if sm_entry[0] is not next_pairs:
                            sm_entry = slice_memo(next_pairs)
                        entry = sm_entry
                        aids, id_list, ensured = (
                            entry[1], entry[2], entry[3]
                        )
                        if sid not in ensured:
                            # full-row shortcut: with the single bucket
                            # row fully initialized, _ensure_known has
                            # nothing left to draw — skip its mask scan
                            if (
                                table._n_known != len(table._actions)
                                or len(table._states) != 1
                            ):
                                table._ensure_known(sid, aids)
                            ensured.add(sid)
                        row = (
                            store.q_row(sid)
                            if store is not None
                            else table._q[sid]
                        )
                        if len(id_list) < 32:
                            best = row[id_list[0]]
                            for a in id_list[1:]:
                                v = row[a]
                                if v > best:
                                    best = v
                            future = float(best)
                        else:
                            future = float(row.take(aids).max())
                    else:
                        future = 0.0
                    explored = sel_aid is None
                    if sel_aid is None:
                        sel_aid = table._action_id(action)
                    if store is not None:
                        known_row = store.known_row(sid)
                        qrow = store.q_row(sid)
                    else:
                        known_row = table._known[sid]
                        qrow = table._q[sid]
                    if known_row[sel_aid]:
                        q_sa = float(qrow[sel_aid])
                    else:
                        q_sa = float(
                            table._rng.uniform(0.0, table._init_scale)
                        )
                        qrow[sel_aid] = q_sa
                        known_row[sel_aid] = True
                        table._n_known += 1
                    delta = r_t + gamma_t * future - q_sa
                    q_new = q_sa + float(alpha * delta)
                    qrow[sel_aid] = q_new
                    if trace is not None:
                        trace.append(
                            pairs, action, act_pos, explored, te, tf,
                            next_pairs, state._n_finished, r_t, q_new,
                            table._version,
                        )
                    t_rl += 1
                    steps += 1
            elif etype is _VM_READY:
                if not state.dispatch_scheduled:
                    state.dispatch_scheduled = True
                    heappush(
                        heap,
                        (now, _PRI_DISPATCH, next(counter),
                         Event(now, _DISPATCH)),
                    )
            elif etype is EventType.MIGRATION_START:
                kernel._begin_migration(event.payload)
            elif etype is EventType.REVOCATION:
                kernel._revoke(event.payload)
            elif etype is EventType.MIGRATION_END:
                vm = vm_by_id[event.payload]
                vm.migrating = False
                state._vm_version += 1
                if not state.dispatch_scheduled:
                    state.dispatch_scheduled = True
                    heappush(
                        heap,
                        (now, _PRI_DISPATCH, next(counter),
                         Event(now, _DISPATCH)),
                    )
            else:
                raise SimulationError(f"unhandled event type {etype!r}")

        lane.t = t_rl
        lane.steps = steps
        lane.reward_sum = reward_sum
        lane.reward = reward
        lane.g_exec_n = g_exec_n
        lane.g_exec_mean = g_exec_mean
        lane.g_queue_n = g_queue_n
        lane.g_queue_mean = g_queue_mean
        makespan = max(
            (r.finish_time for r in records), default=state.now
        )
        result = SimulationResult(
            workflow_name=kernel.workflow.name,
            records=list(records),
            makespan=makespan,
            final_state=state.workflow_state(),
            vms=list(vms),
        )
        completed = True
        return result
    finally:
        if not completed:
            state.scrub()


def fast_lane_eligible(params: ReassignParams) -> bool:
    """Whether the fused fast path covers these hyper-parameters.

    The fast path replicates the paper's rule exactly: plain Q-learning
    over the single aggregated "available" state, on a dense (array or
    shard) Q-table backend.  Everything else — SARSA's deferred update,
    double-Q's coin stream, progress buckets, the sparse dict backend —
    runs through the real ``ReassignScheduler`` instead (bit-identical
    either way; only the throughput differs).
    """
    return (
        params.rule == "qlearning"
        and params.state_buckets == 1
        and params.qtable_backend in ("array", "shard")
    )


class _FastLane:
    """Per-lane fused RL state (Q-table, policy stream, reward state).

    The mutable counterpart of ``ReassignScheduler`` for the fast path:
    same Q-table construction, same ``reassign-policy`` stream, same
    Welford accumulators as :class:`~repro.rl.reward.PerformanceReward`
    — flattened into plain lists/scalars the fused loop updates in
    place.
    """

    __slots__ = (
        "params", "qtable", "store", "rng", "exploit_p", "keep_history",
        "t", "steps", "reward_sum", "mu", "rho", "pos", "exec_n",
        "exec_mean", "queue_n", "queue_mean", "index", "g_exec_n",
        "g_exec_mean", "g_queue_n", "g_queue_mean", "reward",
        "pairs_memo",
    )

    params: ReassignParams
    qtable: QTable
    store: Optional[ShardStore]
    rng: np.random.Generator
    exploit_p: float
    keep_history: bool
    t: int
    steps: int
    reward_sum: float
    mu: float
    rho: float
    pos: Dict[int, int]
    exec_n: List[int]
    exec_mean: List[float]
    queue_n: List[int]
    queue_mean: List[float]
    index: List[float]
    g_exec_n: int
    g_exec_mean: float
    g_queue_n: int
    g_queue_mean: float
    reward: float
    #: id(pairs-tuple) → ``[pairs, id_list, ids_array|None, ensured]``
    #: — the lean loop's cross-episode action-slice cache.  Entries pin
    #: their pairs tuple (slot 0), so the id key can never be reused
    #: while the entry lives.  Valid only while the table's action
    #: interning grows monotonically: any ``QTable.restore()`` rollback
    #: MUST clear it (``_fused_restore`` does).
    pairs_memo: Dict[int, List[Any]]

    def __init__(self, params: ReassignParams, seed: int) -> None:
        self.params = params
        self.qtable = QTable(
            init_scale=params.qtable_init_scale,
            seed=seed,
            backend=params.qtable_backend,
        )
        self.store = (
            self.qtable._store
            if params.qtable_backend == "shard"
            else None
        )
        # deliberately the SAME stream as ReassignScheduler: the fast
        # path must replay its exact draws (bit-identity contract)
        self.rng = RngService(seed).stream("reassign-policy")  # reprolint: disable=RL008
        p = params.epsilon
        self.exploit_p = 1.0 - p if params.epsilon_is_exploration else p
        self.keep_history = params.reward_memory == "full"
        self.t = 1
        self.steps = 0
        self.reward_sum = 0.0
        self.mu = params.mu
        self.rho = params.rho
        self.pos = {}
        self.exec_n = []
        self.exec_mean = []
        self.queue_n = []
        self.queue_mean = []
        self.index = []
        self.g_exec_n = 0
        self.g_exec_mean = 0.0
        self.g_queue_n = 0
        self.g_queue_mean = 0.0
        self.reward = 0.0
        self.pairs_memo = {}

    def start_episode(self) -> None:
        """Algorithm 2 per-episode reset (t <- 1, r^t <- 0)."""
        self.t = 1
        self.steps = 0
        self.reward_sum = 0.0
        self.reward = 0.0
        if not self.keep_history:
            self.pos = {}
            self.exec_n = []
            self.exec_mean = []
            self.queue_n = []
            self.queue_mean = []
            self.index = []
            self.g_exec_n = 0
            self.g_exec_mean = 0.0
            self.g_queue_n = 0
            self.g_queue_mean = 0.0


class _LiteResult:
    """A lite episode's outcome: everything but the per-record list.

    ``assignment`` is the completion-ordered ``{activation_id: vm_id}``
    map — byte-identical in content and iteration order to
    ``SimulationResult.assignment`` for the same episode.  Accessing
    ``records`` raises: a lite result must never reach a consumer that
    needs them (the run's final episode is always recorded in full).
    """

    __slots__ = ("makespan", "final_state", "assignment")

    def __init__(
        self,
        makespan: float,
        final_state: str,
        assignment: Dict[int, int],
    ) -> None:
        self.makespan = makespan
        self.final_state = final_state
        self.assignment = assignment

    @property
    def succeeded(self) -> bool:
        return self.final_state == _SUCCEEDED

    @property
    def records(self) -> List[ActivationRecord]:
        raise SimulationError(
            "lite episode outcome carries no ActivationRecords; "
            "run the episode with lite=False"
        )


EpisodeOutcome = Union[SimulationResult, _LiteResult]


def _drive_episode(
    kernel: EpisodeKernel,
    lane: _FastLane,
    seed: int,
    trace: Optional[TraceBuilder] = None,
    lite: bool = False,
) -> EpisodeOutcome:
    """One fully-inlined learning episode on the fast path.

    Resets the kernel's state (stream-free when draw-free), then runs
    the specialized lean body when the regime allows it and the general
    body otherwise — both bit-identical to ``EpisodeKernel.run_episode``
    driving a ``ReassignScheduler`` (see the module docstring).

    When ``trace`` is a :class:`~repro.sim.trace.TraceBuilder`, one
    decision per step is appended to it (the distributed learner's
    rollout actors pass a fresh builder per episode).  Tracing is
    purely observational: it reads values the loop already computed and
    never draws, so traced and untraced episodes are bit-identical.
    ``lite=True`` skips per-activation record construction (see
    :class:`_LiteResult`).
    """
    state = kernel.state
    if kernel.draw_free:
        state.reset_fast()
        lane.start_episode()
        if kernel._shared_staging and not state.queue._heap:
            return _drive_lean(kernel, lane, trace, lite)
    else:
        state.reset(int(seed))
        lane.start_episode()
    return _drive_general(kernel, lane, trace, lite)


def _drive_lean(
    kernel: EpisodeKernel,
    lane: _FastLane,
    trace: Optional[TraceBuilder],
    lite: bool,
) -> EpisodeOutcome:
    """The specialized loop body (state already reset; see module doc).

    Preconditions (checked by :func:`_drive_episode`): ``draw_free``
    kernel, shared staging network, empty event heap after reset.  In
    this regime no event can ever be cancelled, no VM boots, migrates
    or is revoked, no attempt fails, and every heap entry is an
    ``ACTIVATION_DONE`` — so events are plain tuples on a local heap,
    the in-flight map is never consulted, and the per-step structure is
    "dispatch everything possible at t, then pop the next completion
    cluster" (exactly the generic priority order).
    """
    state = kernel.state
    vms = kernel.vms
    estimates = kernel.estimates
    fluct = kernel.fluctuation
    if type(fluct) is BurstThrottleFluctuation:
        fl_mode = 1
        fl_throttle = fluct.throttle_factor
        fl_credit = fluct.credit_seconds
        fl_maxv = fluct.burstable_max_vcpus
    else:
        fl_mode = 0
        fl_throttle = fl_credit = 0.0
        fl_maxv = 0
    busy_time = state.busy_time
    horizon = kernel.horizon
    n_total = kernel.n_activations
    ac_by_id = kernel._ac_by_id
    vm_by_id = kernel.vm_by_id
    children = kernel._children
    unfinished = state._unfinished_parents
    file_locations = state.file_locations
    fl_get = file_locations.get
    ready_time = state.ready_time
    ready_ids = state._ready_ids
    records = state.records
    interned = state._pairs_interned
    terms_memo = estimates._stage_in_terms
    cmp_memo = estimates._compute
    out_memo = estimates._stage_out
    assignment: Dict[int, int] = {}

    # RL locals (one lane: its own table, policy stream, reward)
    params = lane.params
    table = lane.qtable
    store = lane.store
    rng_random = lane.rng.random
    rng_integers = lane.rng.integers
    exploit_p = lane.exploit_p
    alpha = params.alpha
    gamma = params.gamma
    discount_power = params.discount_power
    sid = table._state_id(AVAILABLE)
    # the whole episode writes through this one row: one era mark
    # keeps delta snapshots (QTable.snapshot(since=...)) sound
    table.mark_row_dirty(sid)
    aget = table._action_ids.get
    action_id = table._action_id
    ensure_known = table._ensure_known
    # lane-persistent action-slice cache (invalidated on restore());
    # entry: [pairs, id_list, ids_array|None, ensured].  Building an
    # id_list registers unseen actions left-to-right — the exact
    # first-touch order of QTable._action_slice — and never draws.
    pmemo = lane.pairs_memo
    pmemo_get = pmemo.get
    t_rl = 1
    steps = 0
    reward_sum = 0.0
    tversion = table._version

    # Python-float mirror of the single Q-row: scalar reductions read
    # plain floats (same IEEE doubles as the numpy cells), resynced
    # whenever the table's interning or known-count changes — the only
    # events that can replace or write the row outside this loop's own
    # mirrored writes.
    single_state = len(table._states) == 1
    nk_seen = table._n_known
    na_seen = len(table._actions)
    if store is not None:
        qrow = store.q_row(sid)
        known_row = store.known_row(sid)
    else:
        qrow = table._q[sid]
        known_row = table._known[sid]
    row_list: List[float] = qrow.tolist()
    row_get = row_list.__getitem__
    known_list: List[bool] = known_row.tolist()
    full_row = single_state and nk_seen == na_seen

    # inlined PerformanceReward state (Welford mean pushes)
    r_mu = lane.mu
    r_rho = lane.rho
    r_pos = lane.pos
    r_exec_n = lane.exec_n
    r_exec_mean = lane.exec_mean
    r_queue_n = lane.queue_n
    r_queue_mean = lane.queue_mean
    r_index = lane.index
    g_exec_n = lane.g_exec_n
    g_exec_mean = lane.g_exec_mean
    g_queue_n = lane.g_queue_n
    g_queue_mean = lane.g_queue_mean
    reward = 0.0

    # localized version counters + single-slot content caches (the
    # in-state equivalents only matter to generic consumers; written
    # back in the epilogue, monotonicity preserved)
    rv = state._ready_version
    iv = state._idle_version
    vmv = state._vm_version
    ready_tup_v = -1
    ready_tup: Tuple[int, ...] = ()
    idle_ids_v = -1
    idle_ids: Tuple[int, ...] = ()
    last_pkey: Optional[Tuple[int, int]] = None
    cpairs: Tuple[Tuple[int, int], ...] = ()

    # busy-bitmask idle memo (same shape as the general body)
    vm_bits = {vm.id: 1 << i for i, vm in enumerate(vms)}
    vcap_id = {vm.id: vm.type.vcpus for vm in vms}
    idle_by_mask = state._idle_by_mask
    busy_mask = 0
    for i, vm in enumerate(vms):
        if len(vm.running) >= vm.type.vcpus:
            busy_mask |= 1 << i
    idle = idle_by_mask.get(busy_mask, ())
    if not idle and busy_mask not in idle_by_mask:
        idle = tuple(
            [vm for vm in vms if len(vm.running) < vm.type.vcpus]
        )
        idle_by_mask[busy_mask] = idle
    if idle != state._idle_cache:
        state._idle_cache = idle
        iv += 1

    heap: List[Tuple[float, int, int, int, float, float, float]] = []
    cnt = 0
    now = 0.0
    n_finished = 0

    completed = False
    try:
        while n_finished < n_total:
            # -- dispatch phase at `now` ---------------------------------
            while ready_ids and idle:
                pkey = (rv, iv)
                if pkey != last_pkey:
                    last_pkey = pkey
                    if rv != ready_tup_v:
                        ready_tup_v = rv
                        ready_tup = tuple(ready_ids)
                    if iv != idle_ids_v:
                        idle_ids_v = iv
                        idle_ids = tuple([vm.id for vm in idle])
                    content = (ready_tup, idle_ids)
                    got = interned.get(content)
                    if got is None:
                        got = tuple(product(ready_tup, idle_ids))
                        if len(interned) >= _PAIRS_INTERN_LIMIT:
                            interned.pop(next(iter(interned)))
                        interned[content] = got
                    cpairs = got
                pairs = cpairs
                # ε-greedy selection, inlined (one gather per step)
                if rng_random() < exploit_p:
                    mentry = pmemo_get(id(pairs))
                    if mentry is None or mentry[0] is not pairs:
                        id_list = [
                            aid
                            if (aid := aget(a)) is not None
                            else action_id(a)
                            for a in pairs
                        ]
                        mentry = [pairs, id_list, None, False]
                        pmemo[id(pairs)] = mentry
                        if (
                            table._n_known != nk_seen
                            or len(table._actions) != na_seen
                        ):
                            nk_seen = table._n_known
                            na_seen = len(table._actions)
                            if store is not None:
                                qrow = store.q_row(sid)
                                known_row = store.known_row(sid)
                            else:
                                qrow = table._q[sid]
                                known_row = table._known[sid]
                            row_list = qrow.tolist()
                            row_get = row_list.__getitem__
                            known_list = known_row.tolist()
                            full_row = single_state and nk_seen == na_seen
                    else:
                        id_list = mentry[1]
                    if not mentry[3]:
                        if not full_row:
                            ids = mentry[2]
                            if ids is None:
                                ids = np.array(id_list, dtype=np.intp)
                                mentry[2] = ids
                            ensure_known(sid, ids)
                            nk_seen = table._n_known
                            na_seen = len(table._actions)
                            if store is not None:
                                qrow = store.q_row(sid)
                                known_row = store.known_row(sid)
                            else:
                                qrow = table._q[sid]
                                known_row = table._known[sid]
                            row_list = qrow.tolist()
                            row_get = row_list.__getitem__
                            known_list = known_row.tolist()
                            full_row = single_state and nk_seen == na_seen
                        mentry[3] = True
                    if len(id_list) < _LEAN_SCALAR_LIMIT:
                        values_list = list(map(row_get, id_list))
                        cut = max(values_list) - 1e-15
                        tie_list = [
                            i for i, v in enumerate(values_list)
                            if v >= cut
                        ]
                        if len(tie_list) == 1:
                            ipos = tie_list[0]
                        else:
                            ipos = tie_list[int(rng_integers(len(tie_list)))]
                    else:
                        ids = mentry[2]
                        if ids is None:
                            ids = np.array(id_list, dtype=np.intp)
                            mentry[2] = ids
                        values = qrow.take(ids)
                        ipos = int(values.argmax())
                        band = values >= values[ipos] - 1e-15
                        bcnt = int(band.sum())
                        if bcnt > 1:
                            ties = np.flatnonzero(band)
                            ipos = int(ties[int(rng_integers(bcnt))])
                    action = pairs[ipos]
                    sel_aid: Optional[int] = id_list[ipos]
                else:
                    ipos = int(rng_integers(len(pairs)))
                    action = pairs[ipos]
                    sel_aid = None
                activation_id, vm_id = action
                ac = ac_by_id[activation_id]
                vm = vm_by_id[vm_id]
                terms = terms_memo.get(action)
                if terms is None:
                    terms = estimates.stage_in_terms(ac, vm)
                stage_in = 0.0
                for name, seconds in terms:
                    if fl_get(name) != vm_id:
                        stage_in += seconds
                compute = cmp_memo.get(action)
                if compute is None:
                    compute = estimates.compute_time(ac, vm)
                if fl_mode and (
                    vm.type.vcpus <= fl_maxv
                    and busy_time[vm_id] > fl_credit
                ):
                    compute *= fl_throttle
                stage_out = out_memo.get(action)
                if stage_out is None:
                    stage_out = estimates.stage_out_time(ac, vm)
                duration = stage_in + compute + stage_out
                # start_running, inlined
                ac.state = _RUNNING
                del ready_ids[bisect_left(ready_ids, activation_id)]
                rv += 1
                running = vm.running
                running.add(activation_id)
                vmv += 1
                if len(running) == vcap_id[vm_id]:
                    busy_mask |= vm_bits[vm_id]
                    idle = idle_by_mask.get(busy_mask, ())
                    if not idle and busy_mask not in idle_by_mask:
                        idle = tuple([
                            v for v in vms
                            if len(v.running) < v.type.vcpus
                        ])
                        idle_by_mask[busy_mask] = idle
                    iv += 1
                planned_finish = now + duration
                a_ready_time = ready_time[activation_id]
                cnt += 1
                heappush(
                    heap,
                    (planned_finish, cnt, activation_id, vm_id, now,
                     a_ready_time, stage_in),
                )
                # PerformanceReward.step, inlined (te, tf)
                te = duration
                tf = now - a_ready_time
                pos = r_pos.get(vm_id)
                if pos is None:
                    pos = len(r_pos)
                    r_pos[vm_id] = pos
                    r_exec_n.append(0)
                    r_exec_mean.append(0.0)
                    r_queue_n.append(0)
                    r_queue_mean.append(0.0)
                    r_index.append(0.0)
                n = r_exec_n[pos] + 1
                r_exec_n[pos] = n
                mean = r_exec_mean[pos]
                mean += (te - mean) / n
                r_exec_mean[pos] = mean
                qn = r_queue_n[pos] + 1
                r_queue_n[pos] = qn
                qmean = r_queue_mean[pos]
                qmean += (tf - qmean) / qn
                r_queue_mean[pos] = qmean
                vm_index = mean * r_mu + (1.0 - r_mu) * qmean
                r_index[pos] = vm_index
                g_exec_n += 1
                g_exec_mean += (te - g_exec_mean) / g_exec_n
                g_queue_n += 1
                g_queue_mean += (tf - g_queue_mean) / g_queue_n
                global_index = (
                    g_exec_mean * r_mu + (1.0 - r_mu) * g_queue_mean
                )
                # §III-B penalty test, short-circuited: std >= 0, so a
                # VM at or below the global index can never trip
                # `vm_index > global_index + std` — the Welford scan
                # over per-VM indexes only runs when it can matter
                # (bit-identical: the scan is unchanged when taken)
                if vm_index > global_index:
                    sn = 0
                    smean = 0.0
                    sm2 = 0.0
                    for x in r_index:
                        sn += 1
                        delta0 = x - smean
                        smean += delta0 / sn
                        sm2 += delta0 * (x - smean)
                    std = math.sqrt(sm2 / sn) if sn >= 2 else 0.0
                    r_i = -1.0 if vm_index > global_index + std else 1.0
                else:
                    r_i = 1.0
                reward = reward + r_rho * (r_i - reward)
                r_t = reward
                reward_sum += r_t
                # next-state pairs (post-dispatch view)
                if ready_ids and idle:
                    pkey = (rv, iv)
                    if pkey != last_pkey:
                        last_pkey = pkey
                        if rv != ready_tup_v:
                            ready_tup_v = rv
                            ready_tup = tuple(ready_ids)
                        if iv != idle_ids_v:
                            idle_ids_v = iv
                            idle_ids = tuple([vm.id for vm in idle])
                        content = (ready_tup, idle_ids)
                        got = interned.get(content)
                        if got is None:
                            got = tuple(product(ready_tup, idle_ids))
                            if len(interned) >= _PAIRS_INTERN_LIMIT:
                                interned.pop(next(iter(interned)))
                            interned[content] = got
                        cpairs = got
                    next_pairs = cpairs
                else:
                    next_pairs = ()
                gamma_t = gamma ** t_rl if discount_power else gamma
                if next_pairs:
                    mentry = pmemo_get(id(next_pairs))
                    if mentry is None or mentry[0] is not next_pairs:
                        id_list2 = [
                            aid
                            if (aid := aget(a)) is not None
                            else action_id(a)
                            for a in next_pairs
                        ]
                        mentry = [next_pairs, id_list2, None, False]
                        pmemo[id(next_pairs)] = mentry
                        if (
                            table._n_known != nk_seen
                            or len(table._actions) != na_seen
                        ):
                            nk_seen = table._n_known
                            na_seen = len(table._actions)
                            if store is not None:
                                qrow = store.q_row(sid)
                                known_row = store.known_row(sid)
                            else:
                                qrow = table._q[sid]
                                known_row = table._known[sid]
                            row_list = qrow.tolist()
                            row_get = row_list.__getitem__
                            known_list = known_row.tolist()
                            full_row = single_state and nk_seen == na_seen
                    else:
                        id_list2 = mentry[1]
                    if not mentry[3]:
                        if not full_row:
                            ids = mentry[2]
                            if ids is None:
                                ids = np.array(id_list2, dtype=np.intp)
                                mentry[2] = ids
                            ensure_known(sid, ids)
                            nk_seen = table._n_known
                            na_seen = len(table._actions)
                            if store is not None:
                                qrow = store.q_row(sid)
                                known_row = store.known_row(sid)
                            else:
                                qrow = table._q[sid]
                                known_row = table._known[sid]
                            row_list = qrow.tolist()
                            row_get = row_list.__getitem__
                            known_list = known_row.tolist()
                            full_row = (
                                single_state and nk_seen == na_seen
                            )
                        mentry[3] = True
                    if len(id_list2) < _LEAN_SCALAR_LIMIT:
                        # max over the same floats in the same compare
                        # order as the explicit scan — identical result
                        future = max(map(row_get, id_list2))
                    else:
                        ids = mentry[2]
                        if ids is None:
                            ids = np.array(id_list2, dtype=np.intp)
                            mentry[2] = ids
                        future = float(qrow.take(ids).max())
                else:
                    future = 0.0
                explored = sel_aid is None
                if sel_aid is None:
                    sel_aid = table._action_id(action)
                    if (
                        table._n_known != nk_seen
                        or len(table._actions) != na_seen
                    ):
                        nk_seen = table._n_known
                        na_seen = len(table._actions)
                        if store is not None:
                            qrow = store.q_row(sid)
                            known_row = store.known_row(sid)
                        else:
                            qrow = table._q[sid]
                            known_row = table._known[sid]
                        row_list = qrow.tolist()
                        row_get = row_list.__getitem__
                        known_list = known_row.tolist()
                        full_row = single_state and nk_seen == na_seen
                if known_list[sel_aid]:
                    q_sa = row_list[sel_aid]
                else:
                    q_sa = float(
                        table._rng.uniform(0.0, table._init_scale)
                    )
                    qrow[sel_aid] = q_sa
                    row_list[sel_aid] = q_sa
                    known_row[sel_aid] = True
                    known_list[sel_aid] = True
                    table._n_known += 1
                    nk_seen += 1
                    full_row = single_state and nk_seen == na_seen
                # every operand is a plain Python float here (the numpy
                # gather path converts through float() above), so the
                # product needs no narrowing cast
                delta = r_t + gamma_t * future - q_sa
                q_new = q_sa + alpha * delta
                qrow[sel_aid] = q_new
                row_list[sel_aid] = q_new
                if trace is not None:
                    trace.append(
                        pairs, action, ipos, explored, te, tf,
                        next_pairs, n_finished, r_t, q_new, tversion,
                    )
                t_rl += 1
                steps += 1

            # -- pop the next completion cluster -------------------------
            if not heap:
                raise SimulationError(
                    f"simulation deadlocked at t={now:.3f}: "
                    f"{n_finished}/{n_total} finished with no pending "
                    f"events"
                )
            while True:
                t, _c, aid_, vm_id_, dtime, rtime, sin = heappop(heap)
                now = t
                if now > horizon:
                    raise SimulationError(
                        f"simulation exceeded horizon {horizon}"
                    )
                ac = ac_by_id[aid_]
                vm = vm_by_id[vm_id_]
                running = vm.running
                running.remove(aid_)
                vmv += 1
                if len(running) + 1 == vcap_id[vm_id_]:
                    busy_mask &= ~vm_bits[vm_id_]
                    idle = idle_by_mask.get(busy_mask, ())
                    if not idle and busy_mask not in idle_by_mask:
                        idle = tuple([
                            v for v in vms
                            if len(v.running) < v.type.vcpus
                        ])
                        idle_by_mask[busy_mask] = idle
                    iv += 1
                if fl_mode:
                    busy_time[vm_id_] += now - dtime
                for f in ac.outputs:
                    file_locations[f.name] = vm_id_
                if lite:
                    assignment[aid_] = vm_id_
                else:
                    records.append(ActivationRecord(
                        activation_id=aid_,
                        activity=ac.activity,
                        vm_id=vm_id_,
                        ready_time=rtime,
                        start_time=dtime,
                        finish_time=now,
                        stage_in_time=sin,
                        attempts=1,
                        failed=False,
                    ))
                ac.state = _FINISHED
                n_finished += 1
                released = False
                for child_id in children[aid_]:
                    remaining = unfinished[child_id] - 1
                    unfinished[child_id] = remaining
                    if remaining == 0:
                        child = ac_by_id[child_id]
                        if child.state is _LOCKED:
                            child.state = _READY
                            insort(ready_ids, child_id)
                            ready_time[child_id] = now
                            released = True
                if released:
                    rv += 1
                if not heap or heap[0][0] != now:
                    break

        # -- epilogue: write localized state back ------------------------
        state.now = now
        state._n_finished = n_finished
        state._n_running = 0
        state._vm_version = vmv
        state._ready_version = rv
        state._idle_version = iv
        state._idle_cache = idle
        state._ready_cache = None
        state._records_cache = None
        state._pairs_key = None
        state._pairs_cache = ()
        lane.t = t_rl
        lane.steps = steps
        lane.reward_sum = reward_sum
        lane.reward = reward
        lane.g_exec_n = g_exec_n
        lane.g_exec_mean = g_exec_mean
        lane.g_queue_n = g_queue_n
        lane.g_queue_mean = g_queue_mean
        if lite:
            result: EpisodeOutcome = _LiteResult(
                makespan=now,
                final_state=state.workflow_state(),
                assignment=assignment,
            )
        else:
            makespan = max(
                (r.finish_time for r in records), default=state.now
            )
            result = SimulationResult(
                workflow_name=kernel.workflow.name,
                records=list(records),
                makespan=makespan,
                final_state=state.workflow_state(),
                vms=list(vms),
            )
        completed = True
        return result
    finally:
        if not completed:
            state.scrub()
