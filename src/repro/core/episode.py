"""Episode bookkeeping and learning results.

Algorithm 2 "records all data associated to this episode [so] they can be
used in the next episode".  :class:`EpisodeRecord` is that record;
:class:`LearningResult` bundles a whole run — the learned plan, the final
Q-table, the per-episode history (learning curves) and the wall-clock
learning time that the paper's Table II reports.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Any, Dict, List, Mapping

from repro.schedulers.base import SchedulingPlan
from repro.util.validate import ValidationError

__all__ = ["EpisodeRecord", "LearningResult"]


@dataclass
class EpisodeRecord:
    """Outcome of one learning episode (one simulated workflow run)."""

    episode: int
    makespan: float
    final_state: str
    steps: int  #: schedule actions taken
    mean_reward: float
    final_reward: float  #: r^t at episode end
    assignment: Dict[int, int] = field(default_factory=dict)

    def to_dict(self) -> Dict[str, Any]:
        return {
            "episode": self.episode,
            "makespan": self.makespan,
            "final_state": self.final_state,
            "steps": self.steps,
            "mean_reward": self.mean_reward,
            "final_reward": self.final_reward,
            "assignment": {str(k): v for k, v in self.assignment.items()},
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "EpisodeRecord":
        return cls(
            episode=int(data["episode"]),
            makespan=float(data["makespan"]),
            final_state=str(data["final_state"]),
            steps=int(data["steps"]),
            mean_reward=float(data["mean_reward"]),
            final_reward=float(data["final_reward"]),
            assignment={int(k): int(v) for k, v in data.get("assignment", {}).items()},
        )


@dataclass
class LearningResult:
    """Everything a ReASSIgN learning run produced."""

    plan: SchedulingPlan  #: the plan handed to the SWfMS
    episodes: List[EpisodeRecord]
    learning_time: float  #: wall-clock seconds of the episode loop (Table II)
    simulated_makespan: float  #: makespan of the final plan replay (Table III)
    qtable_json: str  #: serialized Q-table (for provenance / resumption)

    def __post_init__(self) -> None:
        if not self.episodes:
            raise ValidationError("a learning result needs at least one episode")

    @property
    def n_episodes(self) -> int:
        return len(self.episodes)

    @property
    def simulated_learning_time(self) -> float:
        """Total *simulated* seconds spent learning (sum of episode makespans).

        A deterministic stand-in for the wall-clock ``learning_time``:
        it depends only on seeds and parameters, never on machine load,
        so parallel and serial campaigns agree on it bit-for-bit.  The
        determinism test harness renders Table II from this metric.
        """
        return sum(e.makespan for e in self.episodes)

    @property
    def best_episode(self) -> EpisodeRecord:
        """The episode with the smallest makespan (successful ones preferred)."""
        ok = [e for e in self.episodes if e.final_state == "successfully finished"]
        pool = ok if ok else self.episodes
        return min(pool, key=lambda e: (e.makespan, e.episode))

    def makespan_curve(self) -> List[float]:
        """Per-episode makespans (the learning curve of ablation A4)."""
        return [e.makespan for e in self.episodes]

    def reward_curve(self) -> List[float]:
        """Per-episode mean rewards."""
        return [e.mean_reward for e in self.episodes]

    def to_json(self) -> str:
        """Serialize for the provenance store (canonical JSON, RL009)."""
        return json.dumps(
            {
                "plan": json.loads(self.plan.to_json()),
                "episodes": [e.to_dict() for e in self.episodes],
                "learning_time": self.learning_time,
                "simulated_makespan": self.simulated_makespan,
                "qtable": json.loads(self.qtable_json),
            },
            sort_keys=True,
        )

    @classmethod
    def from_json(cls, text: str) -> "LearningResult":
        try:
            data = json.loads(text)
        except json.JSONDecodeError as exc:
            raise ValidationError(f"malformed LearningResult JSON: {exc}") from exc
        return cls(
            plan=SchedulingPlan.from_json(json.dumps(data["plan"])),
            episodes=[EpisodeRecord.from_dict(e) for e in data["episodes"]],
            learning_time=float(data["learning_time"]),
            simulated_makespan=float(data["simulated_makespan"]),
            qtable_json=json.dumps(data["qtable"]),
        )
