"""ReASSIgN — RL-based Activation Scheduling of ScIeNtific workflows.

The paper's primary contribution (§III): an episodic Q-learning scheduler
that learns an activation→VM plan inside the simulator and emits it for
execution by the SWfMS.  Public entry points:

- :class:`~repro.core.reassign.ReassignScheduler` — the online decision
  maker (one episode);
- :class:`~repro.core.reassign.ReassignLearner` — Algorithm 2: runs
  ``maxIter`` episodes and extracts the learned plan;
- :func:`~repro.core.sweep.sweep_parameters` — the (α, γ, ε) grid
  evaluation behind the paper's Tables II and III;
- :func:`~repro.core.batch.learn_batch` — the lockstep batched engine
  (many independent learning runs, one process);
- :func:`~repro.core.distributed.learn_distributed` — speculative
  actor/learner training, bit-identical to serial at any actor count.
"""

from repro.core.reassign import ReassignLearner, ReassignParams, ReassignScheduler
from repro.core.batch import BatchSpec, learn_batch
from repro.core.distributed import learn_distributed
from repro.core.episode import EpisodeRecord, LearningResult
from repro.core.sweep import SweepRecord, sweep_parameters

__all__ = [
    "ReassignLearner",
    "ReassignParams",
    "ReassignScheduler",
    "BatchSpec",
    "learn_batch",
    "learn_distributed",
    "EpisodeRecord",
    "LearningResult",
    "SweepRecord",
    "sweep_parameters",
]
