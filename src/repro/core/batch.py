"""The batched lockstep learning engine (sim → rl → core refactor).

Sweeps and ensembles run many *identically-shaped* learning runs: same
workflow, same fleet, same environment — only the hyper-parameters and
seeds differ.  :func:`learn_batch` exploits that by driving B such runs
("lanes") in lockstep over **one** shared
:class:`~repro.sim.kernel.EpisodeKernel`:

- the kernel (frozen DAG indexes, nominal estimate caches, interned
  action-pair pool) is built once per fingerprint group and amortized
  across all lanes instead of once per run;
- lanes advance round-robin, one episode per turn, through a
  :class:`~repro.sim.kernel.BatchEpisodeState` batch view holding the
  ``(B,)``-shaped per-lane summaries;
- eligible lanes take a fused fast path (:func:`_drive_episode`) that
  inlines the ε-greedy selection, the §III-B reward and the Eq.-3
  Q-update straight into the event loop, gathering over each lane's
  interned dense Q-row in one numpy call per step.

**Bit-identity contract (non-negotiable).**  For every lane, the
returned :class:`~repro.core.episode.LearningResult` — every episode
record, every Q-table float, the plan, the serialized JSON — is byte
for byte what ``ReassignLearner(...).learn()`` returns for the same
spec, for any batch size B (including B=1) and for both the ``array``
and ``shard`` Q-table backends.  Three properties make this possible:

1. per-lane RNG streams: each lane derives its episode seeds, policy
   stream and Q-init stream from its *own* root seed, exactly as the
   serial learner does — no draw in lane b depends on B;
2. the shared kernel is reset per episode and scrubbed on exceptions
   (the existing single-tenancy contract), and the only cross-lane
   shared mutable structures — the action-pair interner and the
   nominal estimate memos — are content-addressed caches whose hits
   return identical objects/values regardless of who warmed them;
3. the fused fast path replicates ``ReassignScheduler``'s float
   arithmetic operation for operation (pinned by
   ``tests/test_batched_engine.py`` across B ∈ {1, 2, 7, 32} and by
   the frozen A/B benchmark ``results/BENCH_batched_engine.json``).

Lanes whose params the fast path does not cover (sarsa/doubleq rules,
state buckets, the dict backend) fall back to the real
``ReassignLearner`` — trivially bit-identical, just not faster.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.core.episode import EpisodeRecord, LearningResult
from repro.core.lane import (  # noqa: F401  (re-exported engine API)
    EpisodeOutcome,
    _drive_episode,
    _FastLane,
    _LiteResult,
    fast_lane_eligible,
)
from repro.core.reassign import (
    ReassignLearner,
    ReassignParams,
    ReassignScheduler,
    SimulatedLearningClock,
)
from repro.dag.graph import Workflow
from repro.rl.reward import PerformanceReward
from repro.schedulers.base import SchedulingPlan
from repro.sim.failures import FailureModel
from repro.sim.fluctuation import FluctuationModel
from repro.sim.kernel import BatchEpisodeState, EpisodeKernel
from repro.sim.metrics import SimulationResult
from repro.sim.migration import MigrationModel
from repro.sim.network import NetworkModel
from repro.sim.vm import Vm
from repro.util.rng import RngService
from repro.util.validate import ValidationError

__all__ = ["BatchSpec", "fast_lane_eligible", "learn_batch"]


@dataclass(frozen=True)
class BatchSpec:
    """One lane of a batched learning run.

    Mirrors the ``ReassignLearner`` constructor: the same workflow /
    fleet / params / seed / environment models produce a bit-identical
    :class:`~repro.core.episode.LearningResult`.
    """

    workflow: Workflow
    vms: Sequence[Vm]
    params: Optional[ReassignParams] = None
    seed: int = 0
    network: Optional[NetworkModel] = None
    fluctuation: Optional[FluctuationModel] = None
    failures: Optional[FailureModel] = None
    migrations: Optional[MigrationModel] = None
    max_attempts: int = 1
    single_slot_learning: bool = False


@dataclass
class _Lane:
    """Engine-internal per-lane bookkeeping."""

    spec: BatchSpec
    params: ReassignParams
    learner: ReassignLearner
    fast: Optional[_FastLane]
    rng: RngService
    records: List[EpisodeRecord] = field(default_factory=list)
    last_result: Optional[SimulationResult] = None
    elapsed: float = 0.0


def _final_plan(
    lane: _Lane, kernel: EpisodeKernel
) -> Tuple[SchedulingPlan, float]:
    """The paper's final plan for a fast lane (mirrors ``learn()``)."""
    assert lane.fast is not None
    last = lane.last_result
    params = lane.params
    if last is not None and last.succeeded:
        order = sorted(
            last.records, key=lambda r: (r.start_time, r.activation_id)
        )
        plan = SchedulingPlan(
            assignment=last.assignment,
            priority=[r.activation_id for r in order],
            name=f"ReASSIgN({params.label()})",
        )
        return plan, last.makespan
    # greedy fallback, identical to ReassignLearner.extract_plan
    greedy = ReassignScheduler(
        params,
        qtable=lane.fast.qtable,
        reward=PerformanceReward(mu=params.mu, rho=params.rho),
        seed=lane.spec.seed,
        learning=False,
    )
    result = kernel.run_episode(
        # same seed name as extract_plan on purpose: identical replay
        greedy,
        RngService(lane.spec.seed).spawn_seed("greedy"),  # reprolint: disable=RL008
    )
    if not result.succeeded:
        raise ValidationError(
            "greedy replay did not finish successfully; cannot extract a plan"
        )
    order = sorted(
        result.records, key=lambda r: (r.start_time, r.activation_id)
    )
    plan = SchedulingPlan(
        assignment=result.assignment,
        priority=[r.activation_id for r in order],
        name=f"ReASSIgN({params.label()})",
    )
    return plan, result.makespan


def learn_batch(
    specs: Sequence[BatchSpec], *, timing: str = "wall"
) -> List[LearningResult]:
    """Run B learning lanes in lockstep; results match serial learning.

    Lanes are grouped by kernel fingerprint — each group shares one
    :class:`~repro.sim.kernel.EpisodeKernel` (and hence its frozen DAG
    indexes, estimate memos and action-pair interner) and advances
    round-robin through a
    :class:`~repro.sim.kernel.BatchEpisodeState`, one episode per lane
    per round.  ``timing="wall"`` accumulates wall-clock seconds per
    lane; ``timing="simulated"`` accumulates each lane's makespans,
    matching ``SimulatedLearningClock`` bit for bit.

    Returns one :class:`~repro.core.episode.LearningResult` per spec,
    in spec order, each byte-identical to
    ``ReassignLearner(spec...).learn()``.
    """
    if timing not in ("wall", "simulated"):
        raise ValidationError(
            f"timing must be 'wall' or 'simulated', got {timing!r}"
        )
    wall = timing == "wall"
    lanes: List[_Lane] = []
    for spec in specs:
        params = spec.params if spec.params is not None else ReassignParams()
        learner = ReassignLearner(
            spec.workflow,
            spec.vms,
            params,
            network=spec.network,
            fluctuation=spec.fluctuation,
            failures=spec.failures,
            migrations=spec.migrations,
            seed=spec.seed,
            max_attempts=spec.max_attempts,
            single_slot_learning=spec.single_slot_learning,
            clock=None if wall else SimulatedLearningClock(),
        )
        fast = (
            _FastLane(params, spec.seed)
            if fast_lane_eligible(params)
            else None
        )
        lanes.append(
            _Lane(
                spec=spec,
                params=params,
                learner=learner,
                fast=fast,
                rng=RngService(spec.seed),
            )
        )

    # Kernel sharing: lanes with the same fingerprint adopt one kernel.
    # The first lane of each group builds it (or pulls it from the
    # parallel runner's per-worker cache via ReassignLearner.kernel).
    kernels: Dict[str, EpisodeKernel] = {}
    for lane in lanes:
        fp = lane.learner.kernel_fingerprint()
        if fp is None:
            continue
        shared = kernels.get(fp)
        if shared is None:
            kernels[fp] = lane.learner.kernel
        else:
            lane.learner.adopt_kernel(shared, fp)

    # Lockstep rounds per kernel group (fast lanes only; fallback lanes
    # run the serial learner below).
    groups: Dict[int, List[_Lane]] = {}
    for lane in lanes:
        if lane.fast is not None:
            groups.setdefault(id(lane.learner.kernel), []).append(lane)
    for group in groups.values():
        kernel = group[0].learner.kernel
        bstate = BatchEpisodeState(kernel, len(group))
        targets = np.array(
            [lane.params.episodes for lane in group], dtype=np.int64
        )
        while bool(bstate.active(targets).any()):
            for idx, lane in enumerate(group):
                ep_idx = int(bstate.episodes[idx])
                if ep_idx >= int(targets[idx]):
                    continue
                fast = lane.fast
                assert fast is not None
                seed = lane.rng.spawn_seed(f"episode:{ep_idx}")
                final = ep_idx + 1 >= int(targets[idx])
                t0 = time.perf_counter() if wall else 0.0
                result = _drive_episode(
                    kernel, fast, seed, lite=not final
                )
                if wall:
                    lane.elapsed += time.perf_counter() - t0
                else:
                    lane.elapsed += result.makespan
                if isinstance(result, SimulationResult):
                    lane.last_result = result
                lane.records.append(
                    EpisodeRecord(
                        episode=ep_idx,
                        makespan=result.makespan,
                        final_state=result.final_state,
                        steps=fast.steps,
                        mean_reward=(
                            fast.reward_sum / fast.steps
                            if fast.steps
                            else 0.0
                        ),
                        final_reward=fast.reward,
                        assignment=result.assignment,
                    )
                )
                bstate.snapshot(idx, result.makespan, fast.steps)

    # Assemble results in spec order; fallback lanes run serially here.
    results: List[LearningResult] = []
    for lane in lanes:
        if lane.fast is None:
            results.append(lane.learner.learn())
            continue
        plan, simulated_makespan = _final_plan(lane, lane.learner.kernel)
        results.append(
            LearningResult(
                plan=plan,
                episodes=lane.records,
                learning_time=lane.elapsed,
                simulated_makespan=simulated_makespan,
                qtable_json=lane.fast.qtable.to_json(),
            )
        )
    return results
