"""The batched lockstep learning engine (sim → rl → core refactor).

Sweeps and ensembles run many *identically-shaped* learning runs: same
workflow, same fleet, same environment — only the hyper-parameters and
seeds differ.  :func:`learn_batch` exploits that by driving B such runs
("lanes") in lockstep over **one** shared
:class:`~repro.sim.kernel.EpisodeKernel`:

- the kernel (frozen DAG indexes, nominal estimate caches, interned
  action-pair pool) is built once per fingerprint group and amortized
  across all lanes instead of once per run;
- lanes advance round-robin, one episode per turn, through a
  :class:`~repro.sim.kernel.BatchEpisodeState` batch view holding the
  ``(B,)``-shaped per-lane summaries;
- eligible lanes take a fused fast path (:func:`_drive_episode`) that
  inlines the ε-greedy selection, the §III-B reward and the Eq.-3
  Q-update straight into the event loop, gathering over each lane's
  interned dense Q-row in one numpy call per step.

**Bit-identity contract (non-negotiable).**  For every lane, the
returned :class:`~repro.core.episode.LearningResult` — every episode
record, every Q-table float, the plan, the serialized JSON — is byte
for byte what ``ReassignLearner(...).learn()`` returns for the same
spec, for any batch size B (including B=1) and for both the ``array``
and ``shard`` Q-table backends.  Three properties make this possible:

1. per-lane RNG streams: each lane derives its episode seeds, policy
   stream and Q-init stream from its *own* root seed, exactly as the
   serial learner does — no draw in lane b depends on B;
2. the shared kernel is reset per episode and scrubbed on exceptions
   (the existing single-tenancy contract), and the only cross-lane
   shared mutable structures — the action-pair interner and the
   nominal estimate memos — are content-addressed caches whose hits
   return identical objects/values regardless of who warmed them;
3. the fused fast path replicates ``ReassignScheduler``'s float
   arithmetic operation for operation (pinned by
   ``tests/test_batched_engine.py`` across B ∈ {1, 2, 7, 32} and by
   the frozen A/B benchmark ``results/BENCH_batched_engine.json``).

Lanes whose params the fast path does not cover (sarsa/doubleq rules,
state buckets, the dict backend) fall back to the real
``ReassignLearner`` — trivially bit-identical, just not faster.
"""

from __future__ import annotations

import math
import time
from bisect import bisect_left, insort
from dataclasses import dataclass, field
from heapq import heappop, heappush
from itertools import product
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.core.episode import EpisodeRecord, LearningResult
from repro.core.reassign import (
    ReassignLearner,
    ReassignParams,
    ReassignScheduler,
    SimulatedLearningClock,
)
from repro.dag.activation import ActivationState
from repro.dag.graph import Workflow
from repro.rl.environment import AVAILABLE
from repro.rl.qshard import ShardStore
from repro.rl.qtable import QTable
from repro.rl.reward import PerformanceReward
from repro.schedulers.base import SchedulingPlan
from repro.sim.events import Event, EventType
from repro.sim.failures import FailureModel, NoFailures
from repro.sim.fluctuation import (
    BurstThrottleFluctuation,
    FluctuationModel,
    NoFluctuation,
)
from repro.sim.kernel import (
    _PAIRS_INTERN_LIMIT,
    BatchEpisodeState,
    EpisodeKernel,
    PendingExecution,
    SimulationError,
)
from repro.sim.metrics import ActivationRecord, SimulationResult
from repro.sim.migration import MigrationModel
from repro.sim.trace import DecisionStep
from repro.sim.network import NetworkModel
from repro.sim.vm import Vm
from repro.util.rng import RngService
from repro.util.validate import ValidationError

__all__ = ["BatchSpec", "fast_lane_eligible", "learn_batch"]

_DONE = EventType.ACTIVATION_DONE
_DISPATCH = EventType.DISPATCH
_VM_READY = EventType.VM_READY
_PRI_DONE = int(_DONE)
_PRI_DISPATCH = int(_DISPATCH)
_READY = ActivationState.READY
_RUNNING = ActivationState.RUNNING
_FINISHED = ActivationState.FINISHED
_LOCKED = ActivationState.LOCKED


@dataclass(frozen=True)
class BatchSpec:
    """One lane of a batched learning run.

    Mirrors the ``ReassignLearner`` constructor: the same workflow /
    fleet / params / seed / environment models produce a bit-identical
    :class:`~repro.core.episode.LearningResult`.
    """

    workflow: Workflow
    vms: Sequence[Vm]
    params: Optional[ReassignParams] = None
    seed: int = 0
    network: Optional[NetworkModel] = None
    fluctuation: Optional[FluctuationModel] = None
    failures: Optional[FailureModel] = None
    migrations: Optional[MigrationModel] = None
    max_attempts: int = 1
    single_slot_learning: bool = False


def fast_lane_eligible(params: ReassignParams) -> bool:
    """Whether the fused fast path covers these hyper-parameters.

    The fast path replicates the paper's rule exactly: plain Q-learning
    over the single aggregated "available" state, on a dense (array or
    shard) Q-table backend.  Everything else — SARSA's deferred update,
    double-Q's coin stream, progress buckets, the sparse dict backend —
    runs through the real ``ReassignScheduler`` instead (bit-identical
    either way; only the throughput differs).
    """
    return (
        params.rule == "qlearning"
        and params.state_buckets == 1
        and params.qtable_backend in ("array", "shard")
    )


class _FastLane:
    """Per-lane fused RL state (Q-table, policy stream, reward state).

    The mutable counterpart of ``ReassignScheduler`` for the fast path:
    same Q-table construction, same ``reassign-policy`` stream, same
    Welford accumulators as :class:`~repro.rl.reward.PerformanceReward`
    — flattened into plain lists/scalars the fused loop updates in
    place.
    """

    __slots__ = (
        "params", "qtable", "store", "rng", "exploit_p", "keep_history",
        "t", "steps", "reward_sum", "mu", "rho", "pos", "exec_n",
        "exec_mean", "queue_n", "queue_mean", "index", "g_exec_n",
        "g_exec_mean", "g_queue_n", "g_queue_mean", "reward",
    )

    params: ReassignParams
    qtable: QTable
    store: Optional[ShardStore]
    rng: np.random.Generator
    exploit_p: float
    keep_history: bool
    t: int
    steps: int
    reward_sum: float
    mu: float
    rho: float
    pos: Dict[int, int]
    exec_n: List[int]
    exec_mean: List[float]
    queue_n: List[int]
    queue_mean: List[float]
    index: List[float]
    g_exec_n: int
    g_exec_mean: float
    g_queue_n: int
    g_queue_mean: float
    reward: float

    def __init__(self, params: ReassignParams, seed: int) -> None:
        self.params = params
        self.qtable = QTable(
            init_scale=params.qtable_init_scale,
            seed=seed,
            backend=params.qtable_backend,
        )
        self.store = (
            self.qtable._store
            if params.qtable_backend == "shard"
            else None
        )
        # deliberately the SAME stream as ReassignScheduler: the fast
        # path must replay its exact draws (bit-identity contract)
        self.rng = RngService(seed).stream("reassign-policy")  # reprolint: disable=RL008
        p = params.epsilon
        self.exploit_p = 1.0 - p if params.epsilon_is_exploration else p
        self.keep_history = params.reward_memory == "full"
        self.t = 1
        self.steps = 0
        self.reward_sum = 0.0
        self.mu = params.mu
        self.rho = params.rho
        self.pos = {}
        self.exec_n = []
        self.exec_mean = []
        self.queue_n = []
        self.queue_mean = []
        self.index = []
        self.g_exec_n = 0
        self.g_exec_mean = 0.0
        self.g_queue_n = 0
        self.g_queue_mean = 0.0
        self.reward = 0.0

    def start_episode(self) -> None:
        """Algorithm 2 per-episode reset (t <- 1, r^t <- 0)."""
        self.t = 1
        self.steps = 0
        self.reward_sum = 0.0
        self.reward = 0.0
        if not self.keep_history:
            self.pos = {}
            self.exec_n = []
            self.exec_mean = []
            self.queue_n = []
            self.queue_mean = []
            self.index = []
            self.g_exec_n = 0
            self.g_exec_mean = 0.0
            self.g_queue_n = 0
            self.g_queue_mean = 0.0


def _drive_episode(
    kernel: EpisodeKernel,
    lane: _FastLane,
    seed: int,
    trace: Optional[List[DecisionStep]] = None,
) -> SimulationResult:
    """One fully-inlined learning episode on the fast path.

    The event loop, the ε-greedy selection, the §III-B reward and the
    Eq.-3 update are fused into a single function: every float
    operation replicates ``EpisodeKernel.run_episode`` driving a
    ``ReassignScheduler`` in the same order, so the results are
    bit-identical (see the module docstring for the contract and the
    pinning tests).  Handles every event type; only the episode *reset*
    is specialized (stream-free) when the kernel is draw-free.

    When ``trace`` is a list, one
    :class:`~repro.sim.trace.DecisionStep` per decision is appended to
    it (the distributed learner's rollout actors pass a fresh list per
    episode).  Tracing is purely observational: it reads values the
    loop already computed and never draws, so traced and untraced
    episodes are bit-identical.
    """
    state = kernel.state
    vms = kernel.vms
    estimates = kernel.estimates
    fluct = kernel.fluctuation
    failures = kernel.failures
    no_fail = type(failures) is NoFailures
    if type(fluct) is BurstThrottleFluctuation:
        fl_mode = 1
        fl_throttle = fluct.throttle_factor
        fl_credit = fluct.credit_seconds
        fl_maxv = fluct.burstable_max_vcpus
    elif type(fluct) is NoFluctuation:
        fl_mode = 0
        fl_throttle = fl_credit = 0.0
        fl_maxv = 0
    else:
        fl_mode = 2
        fl_throttle = fl_credit = 0.0
        fl_maxv = 0
    if kernel.draw_free:
        state.reset_fast()
    else:
        state.reset(int(seed))
    lane.start_episode()
    completed = False
    try:
        queue = state.queue
        heap = queue._heap
        counter = queue._counter
        max_attempts = kernel.max_attempts
        horizon = kernel.horizon
        n_total = kernel.n_activations
        ac_by_id = kernel._ac_by_id
        vm_by_id = kernel.vm_by_id
        children = kernel._children
        unfinished = state._unfinished_parents
        shared_staging = kernel._shared_staging
        network = kernel.network
        busy_time = state.busy_time
        file_locations = state.file_locations
        fl_get = file_locations.get
        in_flight = state.in_flight
        ready_time = state.ready_time
        attempts = state.attempts
        ready_ids = state._ready_ids
        records = state.records
        interned = state._pairs_interned
        if shared_staging:
            terms_memo = estimates._stage_in_terms
            cmp_memo = estimates._compute
            out_memo = estimates._stage_out

        # RL locals (one lane: its own table, policy stream, reward)
        params = lane.params
        table = lane.qtable
        store = lane.store
        rng_random = lane.rng.random
        rng_integers = lane.rng.integers
        exploit_p = lane.exploit_p
        alpha = params.alpha
        gamma = params.gamma
        discount_power = params.discount_power
        sid = table._state_id(AVAILABLE)
        slice_memo = table._action_slice
        # one-entry identity cache over slice_memo: the update's
        # next_pairs is usually the next selection's pairs (same
        # object, via the interner), so most lookups collapse to a
        # single `is` check (entry[0] is the actions tuple itself;
        # priming with () draws nothing and interns nothing)
        sm_entry = slice_memo(())
        t_rl = 1
        steps = 0
        reward_sum = 0.0

        # inlined PerformanceReward state (Welford mean pushes)
        r_mu = lane.mu
        r_rho = lane.rho
        r_pos = lane.pos
        r_exec_n = lane.exec_n
        r_exec_mean = lane.exec_mean
        r_queue_n = lane.queue_n
        r_queue_mean = lane.queue_mean
        r_index = lane.index
        g_exec_n = lane.g_exec_n
        g_exec_mean = lane.g_exec_mean
        g_queue_n = lane.g_queue_n
        g_queue_mean = lane.g_queue_mean
        reward = 0.0

        # single-slot content caches keyed on the monotonic versions
        ready_tup_v = -1
        ready_tup: Tuple[int, ...] = ()
        idle_ids_v = -1
        idle_ids: Tuple[int, ...] = ()

        # incremental idleness: with no boot/migration/revocation events
        # pending (and none ever scheduled by the models), a VM is idle
        # iff it has a free slot — maintained inline at the two mutation
        # sites instead of rebuilt per (now, version) key
        inc_idle = not heap
        # busy-bitmask idle memo: bit i set ⟺ vms[i] is full.  The two
        # mutation sites keep busy_mask current, so an idle swap is one
        # dict hit on identity-stable tuples instead of a rebuild.
        vm_bits = {vm.id: 1 << i for i, vm in enumerate(vms)}
        idle_by_mask = state._idle_by_mask
        busy_mask = 0
        if inc_idle:
            for i, vm in enumerate(vms):
                if len(vm.running) >= vm.type.vcpus:
                    busy_mask |= 1 << i
            idle = idle_by_mask.get(busy_mask, ())
            if not idle and busy_mask not in idle_by_mask:
                idle = tuple(
                    [vm for vm in vms if len(vm.running) < vm.type.vcpus]
                )
                idle_by_mask[busy_mask] = idle
            if idle != state._idle_cache:
                state._idle_cache = idle
                state._idle_version += 1
        else:
            idle = ()

        state.dispatch_scheduled = True
        heappush(
            heap,
            (state.now, _PRI_DISPATCH, next(counter),
             Event(state.now, _DISPATCH)),
        )

        while True:
            if state._n_finished == n_total:
                break
            if state._n_failed and not state._n_running and not ready_ids:
                if n_total == state._n_finished + state._n_failed:
                    break
            event = None
            while heap:
                item = heappop(heap)
                ev = item[3]
                if not ev.cancelled:
                    event = ev
                    break
            if event is None:
                raise SimulationError(
                    f"simulation deadlocked at t={state.now:.3f}: workflow "
                    f"state {state.workflow_state()!r} with no pending events"
                )
            t = event.time
            now = state.now
            if t < now - 1e-9:
                raise SimulationError("event time regressed (internal bug)")
            if t > now:
                now = t
                state.now = t
            if now > horizon:
                raise SimulationError(
                    f"simulation exceeded horizon {horizon}"
                )
            etype = event.type
            if etype is _DONE:
                pending = event.payload
                aid_ = pending.activation_id
                ac = ac_by_id[aid_]
                vm = vm_by_id[pending.vm_id]
                vm.running.remove(aid_)
                state._vm_version += 1
                if inc_idle and len(vm.running) + 1 == vm.type.vcpus:
                    busy_mask &= ~vm_bits[vm.id]
                    idle = idle_by_mask.get(busy_mask, ())
                    if not idle and busy_mask not in idle_by_mask:
                        idle = tuple([
                            v for v in vms
                            if len(v.running) < v.type.vcpus
                        ])
                        idle_by_mask[busy_mask] = idle
                    state._idle_cache = idle
                    state._idle_version += 1
                del in_flight[aid_]
                busy_time[vm.id] += now - pending.dispatch_time
                outcome = pending.outcome
                if outcome == "success":
                    for f in ac.outputs:
                        file_locations[f.name] = vm.id
                    records.append(ActivationRecord(
                        activation_id=aid_,
                        activity=ac.activity,
                        vm_id=vm.id,
                        ready_time=pending.ready_time,
                        start_time=pending.dispatch_time,
                        finish_time=now,
                        stage_in_time=pending.stage_in,
                        attempts=pending.attempt + 1,
                        failed=False,
                    ))
                    state._records_cache = None
                    ac.state = _FINISHED
                    state._n_running -= 1
                    state._n_finished += 1
                    released = False
                    for child_id in children[aid_]:
                        remaining = unfinished[child_id] - 1
                        unfinished[child_id] = remaining
                        if remaining == 0:
                            child = ac_by_id[child_id]
                            if child.state is _LOCKED:
                                child.state = _READY
                                insort(ready_ids, child_id)
                                ready_time[child_id] = now
                                released = True
                    if released:
                        state._ready_cache = None
                        state._ready_version += 1
                elif outcome == "retry":
                    attempts[aid_] = pending.attempt + 1
                    state.make_ready(ac, was_running=True)
                else:
                    records.append(ActivationRecord(
                        activation_id=aid_,
                        activity=ac.activity,
                        vm_id=vm.id,
                        ready_time=pending.ready_time,
                        start_time=pending.dispatch_time,
                        finish_time=now,
                        stage_in_time=pending.stage_in,
                        attempts=pending.attempt + 1,
                        failed=True,
                    ))
                    state._records_cache = None
                    state.finish_failure(ac)
                if not state.dispatch_scheduled:
                    state.dispatch_scheduled = True
                    heappush(
                        heap,
                        (now, _PRI_DISPATCH, next(counter),
                         Event(now, _DISPATCH)),
                    )
            elif etype is _DISPATCH:
                state.dispatch_scheduled = False
                while ready_ids:
                    if not inc_idle:
                        key = (now, state._vm_version)
                        if key != state._idle_key:
                            state._idle_key = key
                            rebuilt = tuple([
                                vm for vm in vms
                                if not vm.migrating
                                and now >= vm.available_at
                                and vm.type.vcpus > len(vm.running)
                            ])
                            if rebuilt != state._idle_cache:
                                state._idle_cache = rebuilt
                                state._idle_version += 1
                        idle = state._idle_cache
                    if not idle:
                        break
                    pkey = (state._ready_version, state._idle_version)
                    if pkey != state._pairs_key:
                        state._pairs_key = pkey
                        rv, iv = pkey
                        if rv != ready_tup_v:
                            ready_tup_v = rv
                            ready_tup = tuple(ready_ids)
                        if iv != idle_ids_v:
                            idle_ids_v = iv
                            idle_ids = tuple([vm.id for vm in idle])
                        content = (ready_tup, idle_ids)
                        pairs = interned.get(content)
                        if pairs is None:
                            pairs = tuple(product(ready_tup, idle_ids))
                            if len(interned) >= _PAIRS_INTERN_LIMIT:
                                interned.pop(next(iter(interned)))
                            interned[content] = pairs
                        state._pairs_cache = pairs
                    else:
                        pairs = state._pairs_cache
                    # ε-greedy selection, inlined (one gather per step)
                    if rng_random() < exploit_p:
                        if sm_entry[0] is not pairs:
                            sm_entry = slice_memo(pairs)
                        entry = sm_entry
                        aids, id_list, ensured = entry[1], entry[2], entry[3]
                        if sid not in ensured:
                            # full-row shortcut: with the single bucket
                            # row fully initialized, _ensure_known has
                            # nothing left to draw — skip its mask scan
                            if (
                                table._n_known != len(table._actions)
                                or len(table._states) != 1
                            ):
                                table._ensure_known(sid, aids)
                            ensured.add(sid)
                        row = (
                            store.q_row(sid)
                            if store is not None
                            else table._q[sid]
                        )
                        if len(id_list) < 32:
                            values_list = [row[a] for a in id_list]
                            cut = max(values_list) - 1e-15
                            tie_list = [
                                i for i, v in enumerate(values_list)
                                if v >= cut
                            ]
                            if len(tie_list) == 1:
                                i = tie_list[0]
                            else:
                                i = tie_list[int(rng_integers(len(tie_list)))]
                        else:
                            values = row.take(aids)
                            i = int(values.argmax())
                            band = values >= values[i] - 1e-15
                            cnt = int(band.sum())
                            if cnt > 1:
                                ties = np.flatnonzero(band)
                                i = int(ties[int(rng_integers(cnt))])
                        action = pairs[i]
                        sel_aid: Optional[int] = id_list[i]
                    else:
                        action = pairs[int(rng_integers(len(pairs)))]
                        sel_aid = None
                    activation_id, vm_id = action
                    ac = ac_by_id[activation_id]
                    vm = vm_by_id[vm_id]
                    attempt = attempts.get(activation_id, 0)
                    ekey = (activation_id, vm_id)
                    if shared_staging:
                        terms = terms_memo.get(ekey)
                        if terms is None:
                            terms = estimates.stage_in_terms(ac, vm)
                        stage_in = 0.0
                        for name, seconds in terms:
                            if fl_get(name) != vm_id:
                                stage_in += seconds
                    else:
                        stage_in = network.stage_in_time(
                            ac, vm, file_locations
                        )
                    if fl_mode == 0:
                        factor = 1.0
                    elif fl_mode == 1:
                        factor = (
                            fl_throttle
                            if vm.type.vcpus <= fl_maxv
                            and busy_time[vm_id] > fl_credit
                            else 1.0
                        )
                    else:
                        # generic model ⟹ not draw-free ⟹ reset() ran
                        # and the state's fluctuation stream exists
                        factor = fluct.factor(
                            vm, now, busy_time[vm_id], state.rng_fluct
                        )
                    if shared_staging:
                        compute = cmp_memo.get(ekey)
                        if compute is None:
                            compute = estimates.compute_time(ac, vm)
                        compute *= factor
                        stage_out = out_memo.get(ekey)
                        if stage_out is None:
                            stage_out = estimates.stage_out_time(ac, vm)
                    else:
                        compute = estimates.compute_time(ac, vm) * factor
                        stage_out = network.stage_out_time(ac, vm)
                    if no_fail:
                        fails = False
                    else:
                        fails = failures.attempt_fails(
                            ac, vm, attempt, state.rng_fail
                        )
                    if fails:
                        duration = (
                            stage_in
                            + compute * failures.failure_runtime_fraction
                        )
                        outcome = (
                            "retry" if attempt + 1 < max_attempts
                            else "failure"
                        )
                    else:
                        duration = stage_in + compute + stage_out
                        outcome = "success"
                    # start_running, inlined
                    ac.state = _RUNNING
                    del ready_ids[bisect_left(ready_ids, activation_id)]
                    state._n_running += 1
                    state._ready_cache = None
                    state._ready_version += 1
                    vm.running.add(activation_id)
                    state._vm_version += 1
                    if inc_idle and len(vm.running) == vm.type.vcpus:
                        busy_mask |= vm_bits[vm_id]
                        idle = idle_by_mask.get(busy_mask, ())
                        if not idle and busy_mask not in idle_by_mask:
                            idle = tuple([
                                v for v in vms
                                if len(v.running) < v.type.vcpus
                            ])
                            idle_by_mask[busy_mask] = idle
                        state._idle_cache = idle
                        state._idle_version += 1
                    planned_finish = now + duration
                    a_ready_time = ready_time[activation_id]
                    pending = PendingExecution(
                        activation_id=activation_id,
                        vm_id=vm_id,
                        ready_time=a_ready_time,
                        dispatch_time=now,
                        stage_in=stage_in,
                        exec_duration=duration,
                        planned_finish=planned_finish,
                        attempt=attempt,
                        outcome=outcome,
                    )
                    ev = Event(planned_finish, _DONE, pending)
                    pending.event = ev
                    heappush(
                        heap, (planned_finish, _PRI_DONE, next(counter), ev)
                    )
                    in_flight[activation_id] = pending
                    # PerformanceReward.step, inlined (te, tf)
                    te = duration
                    tf = now - a_ready_time
                    pos = r_pos.get(vm_id)
                    if pos is None:
                        pos = len(r_pos)
                        r_pos[vm_id] = pos
                        r_exec_n.append(0)
                        r_exec_mean.append(0.0)
                        r_queue_n.append(0)
                        r_queue_mean.append(0.0)
                        r_index.append(0.0)
                    n = r_exec_n[pos] + 1
                    r_exec_n[pos] = n
                    mean = r_exec_mean[pos]
                    mean += (te - mean) / n
                    r_exec_mean[pos] = mean
                    qn = r_queue_n[pos] + 1
                    r_queue_n[pos] = qn
                    qmean = r_queue_mean[pos]
                    qmean += (tf - qmean) / qn
                    r_queue_mean[pos] = qmean
                    vm_index = mean * r_mu + (1.0 - r_mu) * qmean
                    r_index[pos] = vm_index
                    g_exec_n += 1
                    g_exec_mean += (te - g_exec_mean) / g_exec_n
                    g_queue_n += 1
                    g_queue_mean += (tf - g_queue_mean) / g_queue_n
                    global_index = (
                        g_exec_mean * r_mu + (1.0 - r_mu) * g_queue_mean
                    )
                    # §III-B penalty test, short-circuited: std >= 0, so
                    # a VM at or below the global index can never trip
                    # `vm_index > global_index + std` — the Welford scan
                    # over per-VM indexes only runs when it can matter
                    # (bit-identical: the scan is unchanged when taken)
                    if vm_index > global_index:
                        sn = 0
                        smean = 0.0
                        sm2 = 0.0
                        for x in r_index:
                            sn += 1
                            delta = x - smean
                            smean += delta / sn
                            sm2 += delta * (x - smean)
                        std = math.sqrt(sm2 / sn) if sn >= 2 else 0.0
                        r_i = -1.0 if vm_index > global_index + std else 1.0
                    else:
                        r_i = 1.0
                    reward = reward + r_rho * (r_i - reward)
                    r_t = reward
                    reward_sum += r_t
                    # next-state pairs (post-dispatch view)
                    if ready_ids:
                        if not inc_idle:
                            key = (now, state._vm_version)
                            if key != state._idle_key:
                                state._idle_key = key
                                rebuilt = tuple([
                                    vm for vm in vms
                                    if not vm.migrating
                                    and now >= vm.available_at
                                    and vm.type.vcpus > len(vm.running)
                                ])
                                if rebuilt != state._idle_cache:
                                    state._idle_cache = rebuilt
                                    state._idle_version += 1
                            idle = state._idle_cache
                        if idle:
                            pkey = (
                                state._ready_version, state._idle_version
                            )
                            if pkey != state._pairs_key:
                                state._pairs_key = pkey
                                rv, iv = pkey
                                if rv != ready_tup_v:
                                    ready_tup_v = rv
                                    ready_tup = tuple(ready_ids)
                                if iv != idle_ids_v:
                                    idle_ids_v = iv
                                    idle_ids = tuple(
                                        [vm.id for vm in idle]
                                    )
                                content = (ready_tup, idle_ids)
                                next_pairs = interned.get(content)
                                if next_pairs is None:
                                    next_pairs = tuple(
                                        product(ready_tup, idle_ids)
                                    )
                                    if len(interned) >= _PAIRS_INTERN_LIMIT:
                                        interned.pop(next(iter(interned)))
                                    interned[content] = next_pairs
                                state._pairs_cache = next_pairs
                            else:
                                next_pairs = state._pairs_cache
                        else:
                            next_pairs = ()
                    else:
                        next_pairs = ()
                    gamma_t = gamma ** t_rl if discount_power else gamma
                    if next_pairs:
                        if sm_entry[0] is not next_pairs:
                            sm_entry = slice_memo(next_pairs)
                        entry = sm_entry
                        aids, id_list, ensured = (
                            entry[1], entry[2], entry[3]
                        )
                        if sid not in ensured:
                            # full-row shortcut: with the single bucket
                            # row fully initialized, _ensure_known has
                            # nothing left to draw — skip its mask scan
                            if (
                                table._n_known != len(table._actions)
                                or len(table._states) != 1
                            ):
                                table._ensure_known(sid, aids)
                            ensured.add(sid)
                        row = (
                            store.q_row(sid)
                            if store is not None
                            else table._q[sid]
                        )
                        if len(id_list) < 32:
                            best = row[id_list[0]]
                            for a in id_list[1:]:
                                v = row[a]
                                if v > best:
                                    best = v
                            future = float(best)
                        else:
                            future = float(row.take(aids).max())
                    else:
                        future = 0.0
                    explored = sel_aid is None
                    if sel_aid is None:
                        sel_aid = table._action_id(action)
                    if store is not None:
                        known_row = store.known_row(sid)
                        qrow = store.q_row(sid)
                    else:
                        known_row = table._known[sid]
                        qrow = table._q[sid]
                    if known_row[sel_aid]:
                        q_sa = float(qrow[sel_aid])
                    else:
                        q_sa = float(
                            table._rng.uniform(0.0, table._init_scale)
                        )
                        qrow[sel_aid] = q_sa
                        known_row[sel_aid] = True
                        table._n_known += 1
                    delta = r_t + gamma_t * future - q_sa
                    q_new = q_sa + float(alpha * delta)
                    qrow[sel_aid] = q_new
                    if trace is not None:
                        trace.append(
                            DecisionStep(
                                pairs=pairs,
                                action=action,
                                explored=explored,
                                te=te,
                                tf=tf,
                                next_pairs=next_pairs,
                                n_finished=state._n_finished,
                                reward=r_t,
                                q_value=q_new,
                                table_version=table._version,
                            )
                        )
                    t_rl += 1
                    steps += 1
            elif etype is _VM_READY:
                if not state.dispatch_scheduled:
                    state.dispatch_scheduled = True
                    heappush(
                        heap,
                        (now, _PRI_DISPATCH, next(counter),
                         Event(now, _DISPATCH)),
                    )
            elif etype is EventType.MIGRATION_START:
                kernel._begin_migration(event.payload)
            elif etype is EventType.REVOCATION:
                kernel._revoke(event.payload)
            elif etype is EventType.MIGRATION_END:
                vm = vm_by_id[event.payload]
                vm.migrating = False
                state._vm_version += 1
                if not state.dispatch_scheduled:
                    state.dispatch_scheduled = True
                    heappush(
                        heap,
                        (now, _PRI_DISPATCH, next(counter),
                         Event(now, _DISPATCH)),
                    )
            else:
                raise SimulationError(f"unhandled event type {etype!r}")

        lane.t = t_rl
        lane.steps = steps
        lane.reward_sum = reward_sum
        lane.reward = reward
        lane.g_exec_n = g_exec_n
        lane.g_exec_mean = g_exec_mean
        lane.g_queue_n = g_queue_n
        lane.g_queue_mean = g_queue_mean
        makespan = max(
            (r.finish_time for r in records), default=state.now
        )
        result = SimulationResult(
            workflow_name=kernel.workflow.name,
            records=list(records),
            makespan=makespan,
            final_state=state.workflow_state(),
            vms=list(vms),
        )
        completed = True
        return result
    finally:
        if not completed:
            state.scrub()


@dataclass
class _Lane:
    """Engine-internal per-lane bookkeeping."""

    spec: BatchSpec
    params: ReassignParams
    learner: ReassignLearner
    fast: Optional[_FastLane]
    rng: RngService
    records: List[EpisodeRecord] = field(default_factory=list)
    last_result: Optional[SimulationResult] = None
    elapsed: float = 0.0


def _final_plan(
    lane: _Lane, kernel: EpisodeKernel
) -> Tuple[SchedulingPlan, float]:
    """The paper's final plan for a fast lane (mirrors ``learn()``)."""
    assert lane.fast is not None
    last = lane.last_result
    params = lane.params
    if last is not None and last.succeeded:
        order = sorted(
            last.records, key=lambda r: (r.start_time, r.activation_id)
        )
        plan = SchedulingPlan(
            assignment=last.assignment,
            priority=[r.activation_id for r in order],
            name=f"ReASSIgN({params.label()})",
        )
        return plan, last.makespan
    # greedy fallback, identical to ReassignLearner.extract_plan
    greedy = ReassignScheduler(
        params,
        qtable=lane.fast.qtable,
        reward=PerformanceReward(mu=params.mu, rho=params.rho),
        seed=lane.spec.seed,
        learning=False,
    )
    result = kernel.run_episode(
        # same seed name as extract_plan on purpose: identical replay
        greedy,
        RngService(lane.spec.seed).spawn_seed("greedy"),  # reprolint: disable=RL008
    )
    if not result.succeeded:
        raise ValidationError(
            "greedy replay did not finish successfully; cannot extract a plan"
        )
    order = sorted(
        result.records, key=lambda r: (r.start_time, r.activation_id)
    )
    plan = SchedulingPlan(
        assignment=result.assignment,
        priority=[r.activation_id for r in order],
        name=f"ReASSIgN({params.label()})",
    )
    return plan, result.makespan


def learn_batch(
    specs: Sequence[BatchSpec], *, timing: str = "wall"
) -> List[LearningResult]:
    """Run B learning lanes in lockstep; results match serial learning.

    Lanes are grouped by kernel fingerprint — each group shares one
    :class:`~repro.sim.kernel.EpisodeKernel` (and hence its frozen DAG
    indexes, estimate memos and action-pair interner) and advances
    round-robin through a
    :class:`~repro.sim.kernel.BatchEpisodeState`, one episode per lane
    per round.  ``timing="wall"`` accumulates wall-clock seconds per
    lane; ``timing="simulated"`` accumulates each lane's makespans,
    matching ``SimulatedLearningClock`` bit for bit.

    Returns one :class:`~repro.core.episode.LearningResult` per spec,
    in spec order, each byte-identical to
    ``ReassignLearner(spec...).learn()``.
    """
    if timing not in ("wall", "simulated"):
        raise ValidationError(
            f"timing must be 'wall' or 'simulated', got {timing!r}"
        )
    wall = timing == "wall"
    lanes: List[_Lane] = []
    for spec in specs:
        params = spec.params if spec.params is not None else ReassignParams()
        learner = ReassignLearner(
            spec.workflow,
            spec.vms,
            params,
            network=spec.network,
            fluctuation=spec.fluctuation,
            failures=spec.failures,
            migrations=spec.migrations,
            seed=spec.seed,
            max_attempts=spec.max_attempts,
            single_slot_learning=spec.single_slot_learning,
            clock=None if wall else SimulatedLearningClock(),
        )
        fast = (
            _FastLane(params, spec.seed)
            if fast_lane_eligible(params)
            else None
        )
        lanes.append(
            _Lane(
                spec=spec,
                params=params,
                learner=learner,
                fast=fast,
                rng=RngService(spec.seed),
            )
        )

    # Kernel sharing: lanes with the same fingerprint adopt one kernel.
    # The first lane of each group builds it (or pulls it from the
    # parallel runner's per-worker cache via ReassignLearner.kernel).
    kernels: Dict[str, EpisodeKernel] = {}
    for lane in lanes:
        fp = lane.learner.kernel_fingerprint()
        if fp is None:
            continue
        shared = kernels.get(fp)
        if shared is None:
            kernels[fp] = lane.learner.kernel
        else:
            lane.learner.adopt_kernel(shared, fp)

    # Lockstep rounds per kernel group (fast lanes only; fallback lanes
    # run the serial learner below).
    groups: Dict[int, List[_Lane]] = {}
    for lane in lanes:
        if lane.fast is not None:
            groups.setdefault(id(lane.learner.kernel), []).append(lane)
    for group in groups.values():
        kernel = group[0].learner.kernel
        bstate = BatchEpisodeState(kernel, len(group))
        targets = np.array(
            [lane.params.episodes for lane in group], dtype=np.int64
        )
        while bool(bstate.active(targets).any()):
            for idx, lane in enumerate(group):
                ep_idx = int(bstate.episodes[idx])
                if ep_idx >= int(targets[idx]):
                    continue
                fast = lane.fast
                assert fast is not None
                seed = lane.rng.spawn_seed(f"episode:{ep_idx}")
                t0 = time.perf_counter() if wall else 0.0
                result = _drive_episode(kernel, fast, seed)
                if wall:
                    lane.elapsed += time.perf_counter() - t0
                else:
                    lane.elapsed += result.makespan
                lane.last_result = result
                lane.records.append(
                    EpisodeRecord(
                        episode=ep_idx,
                        makespan=result.makespan,
                        final_state=result.final_state,
                        steps=fast.steps,
                        mean_reward=(
                            fast.reward_sum / fast.steps
                            if fast.steps
                            else 0.0
                        ),
                        final_reward=fast.reward,
                        assignment=result.assignment,
                    )
                )
                bstate.snapshot(idx, result.makespan, fast.steps)

    # Assemble results in spec order; fallback lanes run serially here.
    results: List[LearningResult] = []
    for lane in lanes:
        if lane.fast is None:
            results.append(lane.learner.learn())
            continue
        plan, simulated_makespan = _final_plan(lane, lane.learner.kernel)
        results.append(
            LearningResult(
                plan=plan,
                episodes=lane.records,
                learning_time=lane.elapsed,
                simulated_makespan=simulated_makespan,
                qtable_json=lane.fast.qtable.to_json(),
            )
        )
    return results
