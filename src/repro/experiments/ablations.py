"""Ablations A1–A4 — design choices the paper leaves unexplored.

- **A1 reward shape**: sweep the reward's µ (execution-vs-queue balance)
  and ρ (smoothing) — the two §III-B constants the paper fixes at 0.5;
- **A2 update rule**: Q-learning (the paper) vs SARSA vs Double
  Q-learning vs an always-random policy, same budget;
- **A3 workloads**: HEFT vs ReASSIgN across all five Pegasus benchmark
  workflows and larger Montage instances (the paper's stated future
  work);
- **A4 episode budget**: the "more episodes → better plans" conjecture,
  as a learning curve over increasing maxIter;
- **A5 robustness**: (a) execution under calm/default/stormy cloud noise
  profiles, (b) spot-instance revocations — where static plans deadlock
  (their target VM is gone) while online schedulers, including ReASSIgN
  run online, reroute and finish.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.core.reassign import ReassignLearner, ReassignParams
from repro.dag.graph import Workflow
from repro.experiments.environments import fleet_for
from repro.runner import ParallelRunner, Task
from repro.schedulers.heft import HeftScheduler
from repro.schedulers.base import PlanFollowingScheduler
from repro.sim.kernel import EpisodeKernel
from repro.sim.fluctuation import BurstThrottleFluctuation
from repro.util.tables import render_table
from repro.workflows.montage import montage
from repro.workflows.registry import make_workflow

__all__ = [
    "RewardAblationRow",
    "run_reward_ablation",
    "run_rule_ablation",
    "run_workload_ablation",
    "run_episode_ablation",
    "run_noise_robustness",
    "run_revocation_ablation",
    "run_cost_ablation",
    "run_execution_mode_ablation",
    "run_state_ablation",
    "run_clustering_ablation",
    "run_memory_ablation",
]

_LEARNING_FLUCTUATION = dict(credit_seconds=240.0, throttle_factor=1.7)


def _replay_kernel(workflow: Workflow, fleet) -> EpisodeKernel:
    """Learning-simulator kernel (throttle included), reusable per replay."""
    return EpisodeKernel(
        workflow,
        fleet,
        fluctuation=BurstThrottleFluctuation(**_LEARNING_FLUCTUATION),
    )


# -- A1: reward constants -----------------------------------------------------


@dataclass(frozen=True)
class RewardAblationRow:
    mu: float
    rho: float
    simulated_makespan: float
    mean_final_reward: float


def _reward_row(
    mu: float, rho: float, result
) -> RewardAblationRow:
    final_rewards = [e.final_reward for e in result.episodes]
    return RewardAblationRow(
        mu=mu,
        rho=rho,
        simulated_makespan=result.simulated_makespan,
        mean_final_reward=sum(final_rewards) / len(final_rewards),
    )


def _reward_cell(payload, seed: int) -> RewardAblationRow:
    """One (µ, ρ) arm of ablation A1 (module-level for the runner)."""
    wf, vcpus, mu, rho, episodes = payload
    params = ReassignParams(
        alpha=0.5, gamma=1.0, epsilon=0.1, mu=mu, rho=rho, episodes=episodes
    )
    result = ReassignLearner(wf, fleet_for(vcpus), params, seed=seed).learn()
    return _reward_row(mu, rho, result)


def _reward_batch(payload, seed: int) -> List[RewardAblationRow]:
    """A packed batch of (µ, ρ) arms driven by the batched engine.

    All arms share the workflow/fleet kernel and the root seed, so the
    lockstep lanes are bit-identical to :func:`_reward_cell` per arm.
    """
    from repro.core.batch import BatchSpec, learn_batch

    specs = []
    for wf, vcpus, mu, rho, episodes in payload:
        params = ReassignParams(
            alpha=0.5, gamma=1.0, epsilon=0.1, mu=mu, rho=rho,
            episodes=episodes,
        )
        specs.append(
            BatchSpec(
                workflow=wf, vms=fleet_for(vcpus), params=params, seed=seed
            )
        )
    results = learn_batch(specs)
    return [
        _reward_row(mu, rho, result)
        for (_wf, _v, mu, rho, _e), result in zip(payload, results)
    ]


def run_reward_ablation(
    workflow: Optional[Workflow] = None,
    *,
    mus: Sequence[float] = (0.0, 0.25, 0.5, 0.75, 1.0),
    rhos: Sequence[float] = (0.1, 0.5, 0.9),
    vcpus: int = 16,
    episodes: int = 50,
    seed: int = 0,
    workers: Optional[int] = 1,
    batch: int = 8,
) -> List[RewardAblationRow]:
    """Sweep µ and ρ; returns one row per combination (grid order).

    ``batch`` (default 8) packs that many consecutive (µ, ρ) arms per
    task into the batched engine — rows are bit-identical for every
    batch size and worker count; ``batch=1`` is the historical
    one-arm-per-task path.
    """
    from repro.runner import pack_payloads

    wf = workflow if workflow is not None else montage(50, seed=seed)
    # every (µ, ρ) cell simulates the same workflow/fleet/environment, so
    # workers sharing a kernel rebuild it once instead of once per cell
    fingerprint = ReassignLearner(wf, fleet_for(vcpus)).kernel_fingerprint()
    payloads = [
        (wf, vcpus, mu, rho, episodes) for mu in mus for rho in rhos
    ]
    if batch > 1:
        tasks = [
            Task(
                key=("reward-batch", i),
                fn=_reward_batch,
                payload=pack,
                seed=seed,
                kernel_fingerprint=fingerprint,
            )
            for i, pack in enumerate(pack_payloads(payloads, batch))
        ]
        runner = ParallelRunner(workers=workers, run_id="ablation-a1", seed=seed)
        return [row for r in runner.run(tasks) for row in r.value]
    tasks = [
        Task(
            key=("reward", mu, rho),
            fn=_reward_cell,
            payload=(wf, vcpus, mu, rho, episodes),
            seed=seed,
            kernel_fingerprint=fingerprint,
        )
        for (wf, vcpus, mu, rho, episodes) in payloads
    ]
    runner = ParallelRunner(workers=workers, run_id="ablation-a1", seed=seed)
    return [r.value for r in runner.run(tasks)]


def render_reward_ablation(rows: Sequence[RewardAblationRow]) -> str:
    return render_table(
        ["mu", "rho", "simulated makespan [s]", "mean final reward"],
        [
            (r.mu, r.rho, round(r.simulated_makespan, 2), round(r.mean_final_reward, 4))
            for r in rows
        ],
        title="Ablation A1: reward constants (alpha=0.5, gamma=1.0, epsilon=0.1)",
    )


# -- A2: update rule -----------------------------------------------------------


def _rule_cell(payload, seed: int) -> float:
    """One (rule, seed) arm of ablation A2: its simulated makespan."""
    workflow, vcpus, episodes, rule, epsilon = payload
    wf = workflow if workflow is not None else montage(50, seed=seed)
    params = ReassignParams(
        alpha=0.5, gamma=1.0, epsilon=epsilon, episodes=episodes, rule=rule
    )
    result = ReassignLearner(wf, fleet_for(vcpus), params, seed=seed).learn()
    return result.simulated_makespan


def run_rule_ablation(
    workflow: Optional[Workflow] = None,
    *,
    vcpus: int = 16,
    episodes: int = 50,
    seeds: Sequence[int] = (0, 1, 2),
    workers: Optional[int] = 1,
) -> Dict[str, float]:
    """Mean simulated makespan per update rule (plus the random policy).

    "random" is ReASSIgN with ε = 0 under the paper's convention: the
    best action is *never* taken, every choice is uniform — learning still
    happens but the extracted greedy plan reflects an untargeted Q.

    Arms fan out as (rule × seed) tasks through the runner; each task
    carries its explicit seed, so results match serial execution exactly.
    """
    # "random" = qlearning with epsilon=0 (never exploit during learning)
    arms = [
        ("qlearning", 0.1), ("sarsa", 0.1), ("doubleq", 0.1),
        ("random-exploration-only", 0.0),
    ]
    # with an explicit workflow every arm shares one kernel config; with
    # workflow=None each cell builds a per-seed montage in the worker, so
    # there is no shared kernel to declare
    fingerprint = (
        ReassignLearner(workflow, fleet_for(vcpus)).kernel_fingerprint()
        if workflow is not None
        else None
    )
    tasks = [
        Task(
            key=("rule", label, seed),
            fn=_rule_cell,
            payload=(
                workflow, vcpus, episodes,
                "qlearning" if label == "random-exploration-only" else label,
                epsilon,
            ),
            seed=seed,
            kernel_fingerprint=fingerprint,
        )
        for label, epsilon in arms
        for seed in seeds
    ]
    runner = ParallelRunner(workers=workers, run_id="ablation-a2", seed=0)
    results = runner.run(tasks)
    out: Dict[str, float] = {}
    for i, (label, _) in enumerate(arms):
        chunk = results[i * len(seeds) : (i + 1) * len(seeds)]
        out[label] = sum(r.value for r in chunk) / len(chunk)
    return out


# -- A3: workloads --------------------------------------------------------------


def _workload_cell(payload, seed: int) -> Tuple[str, float, float]:
    """One workload arm of A3: (name, HEFT makespan, ReASSIgN makespan)."""
    name, size, vcpus, episodes = payload
    wf = make_workflow(name, size, seed=seed)
    fleet = fleet_for(vcpus)
    kernel = _replay_kernel(wf, fleet)
    heft_plan = HeftScheduler(kernel.estimate_model()).plan(wf, fleet)
    heft_mk = kernel.run_episode(PlanFollowingScheduler(heft_plan), 0).makespan
    params = ReassignParams(alpha=0.5, gamma=1.0, epsilon=0.1, episodes=episodes)
    result = ReassignLearner(wf, fleet, params, seed=seed).learn()
    return (wf.name, heft_mk, result.simulated_makespan)


def run_workload_ablation(
    *,
    vcpus: int = 32,
    episodes: int = 50,
    seed: int = 0,
    workloads: Sequence[Tuple[str, int]] = (
        ("montage", 25),
        ("montage", 50),
        ("montage", 100),
        ("cybershake", 30),
        ("epigenomics", 24),
        ("inspiral", 30),
        ("sipht", 30),
    ),
    workers: Optional[int] = 1,
) -> List[Tuple[str, float, float]]:
    """(workload, HEFT makespan, ReASSIgN makespan) per workflow.

    Both plans are replayed in the same throttle-aware simulator so the
    comparison is apples-to-apples.  Workload arms run as one runner
    batch; rows come back in the ``workloads`` order.
    """
    tasks = [
        Task(
            key=("workload", name, size),
            fn=_workload_cell,
            payload=(name, size, vcpus, episodes),
            seed=seed,
        )
        for name, size in workloads
    ]
    runner = ParallelRunner(workers=workers, run_id="ablation-a3", seed=seed)
    return [r.value for r in runner.run(tasks)]


# -- A4: episode budget -----------------------------------------------------------


def run_episode_ablation(
    workflow: Optional[Workflow] = None,
    *,
    vcpus: int = 16,
    budgets: Sequence[int] = (10, 25, 50, 100, 200),
    seed: int = 0,
) -> List[Tuple[int, float, float]]:
    """(episodes, simulated makespan, best episode makespan) per budget."""
    wf = workflow if workflow is not None else montage(50, seed=seed)
    fleet = fleet_for(vcpus)
    rows: List[Tuple[int, float, float]] = []
    for budget in budgets:
        params = ReassignParams(alpha=0.5, gamma=1.0, epsilon=0.1, episodes=budget)
        result = ReassignLearner(wf, fleet, params, seed=seed).learn()
        rows.append(
            (budget, result.simulated_makespan, result.best_episode.makespan)
        )
    return rows


# -- A5: robustness ---------------------------------------------------------


def run_noise_robustness(
    workflow: Optional[Workflow] = None,
    *,
    vcpus: int = 32,
    episodes: int = 50,
    seed: int = 0,
) -> List[Tuple[str, float, float]]:
    """(profile, HEFT time, ReASSIgN time) on calm/default/stormy clouds.

    Both schedulers' plans are fixed once, then executed through the MPI
    engine under each noise profile — isolating environmental noise from
    plan quality.
    """
    from repro.experiments.environments import fleet_spec_for
    from repro.scicumulus.cloud import CloudProfile
    from repro.scicumulus.swfms import SciCumulusRL

    wf = workflow if workflow is not None else montage(50, seed=seed)
    fleet = fleet_for(vcpus)
    spec = fleet_spec_for(vcpus)
    heft_plan = HeftScheduler().plan(wf, fleet)
    params = ReassignParams(alpha=0.5, gamma=1.0, epsilon=0.1, episodes=episodes)
    rl_plan = ReassignLearner(wf, fleet, params, seed=seed).learn().plan

    rows: List[Tuple[str, float, float]] = []
    for label, profile in (
        ("calm", CloudProfile.calm()),
        ("default", CloudProfile()),
        ("stormy", CloudProfile.stormy()),
    ):
        swfms = SciCumulusRL(cloud_profile=profile, seed=seed)
        heft_time = swfms.execute_plan(
            wf, spec, heft_plan, "HEFT"
        ).total_execution_time
        rl_time = swfms.execute_plan(
            wf, spec, rl_plan, "ReASSIgN"
        ).total_execution_time
        rows.append((label, heft_time, rl_time))
    return rows


def run_revocation_ablation(
    workflow: Optional[Workflow] = None,
    *,
    vcpus: int = 16,
    mean_lifetime: float = 150.0,
    spot_fraction: float = 0.5,
    seed: int = 0,
) -> List[Tuple[str, str, float]]:
    """(scheduler, outcome, makespan) under spot revocations.

    Static plans target specific VMs, so losing one mid-run deadlocks the
    replay ("deadlocked" outcome, makespan inf); online schedulers —
    including ReASSIgN acting online — reroute to survivors.
    """
    from repro.schedulers.online import GreedyOnlineScheduler
    from repro.sim.simulator import SimulationError
    from repro.sim.spot import PoissonRevocations
    from repro.core.reassign import ReassignScheduler

    wf = workflow if workflow is not None else montage(50, seed=seed)
    fleet = fleet_for(vcpus)
    kernel = EpisodeKernel(
        wf,
        fleet,
        revocations=PoissonRevocations(
            mean_lifetime=mean_lifetime, spot_fraction=spot_fraction
        ),
    )
    heft_plan = HeftScheduler(kernel.estimate_model()).plan(wf, fleet)
    candidates = [
        ("HEFT (static plan)", PlanFollowingScheduler(heft_plan)),
        ("Greedy online", GreedyOnlineScheduler()),
        (
            "ReASSIgN online",
            ReassignScheduler(
                ReassignParams(alpha=0.5, gamma=1.0, epsilon=0.1), seed=seed
            ),
        ),
    ]
    # one kernel for all candidates: a deadlocked episode (SimulationError
    # mid-run) leaves it pristine for the next scheduler via run_episode's
    # scrub-on-exception guarantee
    rows: List[Tuple[str, str, float]] = []
    for label, scheduler in candidates:
        try:
            result = kernel.run_episode(scheduler, seed)
            rows.append((label, result.final_state, result.makespan))
        except SimulationError:
            rows.append((label, "deadlocked", float("inf")))
    return rows


# -- A6: cost-awareness -------------------------------------------------------


def run_cost_ablation(
    workflow: Optional[Workflow] = None,
    *,
    vcpus: int = 16,
    episodes: int = 50,
    weights: Sequence[float] = (0.0, 0.25, 0.5, 1.0, 2.0),
    seed: int = 0,
) -> List[Tuple[float, float, float, int]]:
    """(cost_weight, makespan, usage cost [$], activations on 2xlarge).

    Sweeps :class:`~repro.rl.cost_reward.CostAwarePerformanceReward`'s
    weight: 0 is the paper's pure-time reward; growing weights should
    push work off the expensive 2xlarge (fewer activations there, lower
    pay-per-use cost) at some makespan premium — a Pareto trade-off.
    """
    from repro.rl.cost_reward import CostAwarePerformanceReward
    from repro.sim.network import SharedStorageNetwork

    wf = workflow if workflow is not None else montage(50, seed=seed)
    fleet = fleet_for(vcpus)
    big = {vm.id for vm in fleet if vm.capacity > 1}
    replay_kernel = EpisodeKernel(
        wf,
        fleet,
        network=SharedStorageNetwork(),
        fluctuation=BurstThrottleFluctuation(
            credit_seconds=60.0, throttle_factor=2.0
        ),
    )
    rows: List[Tuple[float, float, float, int]] = []
    for weight in weights:
        params = ReassignParams(
            alpha=0.5, gamma=1.0, epsilon=0.1, episodes=episodes
        )
        reward = CostAwarePerformanceReward(fleet, cost_weight=weight)
        result = ReassignLearner(
            wf, fleet, params, seed=seed, reward=reward
        ).learn()
        replay = replay_kernel.run_episode(
            PlanFollowingScheduler(result.plan), seed
        )
        on_big = sum(1 for v in result.plan.assignment.values() if v in big)
        rows.append((weight, replay.makespan, replay.usage_cost(), on_big))
    return rows


# -- A7: plan-based vs online cloud execution -----------------------------------


def run_execution_mode_ablation(
    workflow: Optional[Workflow] = None,
    *,
    vcpus: int = 32,
    episodes: int = 50,
    seed: int = 0,
) -> List[Tuple[str, float]]:
    """(mode, cloud execution time) for plan-based vs online ReASSIgN.

    Both modes start from the same simulator-trained Q-table; "online"
    keeps deciding (and learning) during the cloud run, which pays off
    when the region is noisy.
    """
    from repro.core.reassign import ReassignScheduler
    from repro.experiments.environments import fleet_spec_for
    from repro.scicumulus.cloud import CloudProfile
    from repro.scicumulus.online import execute_online
    from repro.scicumulus.swfms import SciCumulusRL

    wf = workflow if workflow is not None else montage(50, seed=seed)
    fleet = fleet_for(vcpus)
    params = ReassignParams(alpha=0.5, gamma=1.0, epsilon=0.1, episodes=episodes)
    learner = ReassignLearner(wf, fleet, params, seed=seed)
    learned = learner.learn()

    profile = CloudProfile.stormy()
    swfms = SciCumulusRL(cloud_profile=profile, seed=seed)
    plan_time = swfms.execute_plan(
        wf, fleet_spec_for(vcpus), learned.plan, "ReASSIgN-plan"
    ).total_execution_time

    online_learning = ReassignScheduler(
        params,
        qtable=learner.scheduler.qtable,
        reward=learner.scheduler.reward,
        seed=seed,
        learning=True,
    )
    online_learning_time = execute_online(
        wf, fleet, online_learning, profile=profile, seed=seed
    ).makespan

    online_greedy = ReassignScheduler(
        params,
        qtable=learner.scheduler.qtable,
        seed=seed,
        learning=False,  # pure exploitation, still reacts to idle/busy
    )
    online_greedy_time = execute_online(
        wf, fleet, online_greedy, profile=profile, seed=seed
    ).makespan
    return [
        ("plan-based", plan_time),
        ("online-greedy", online_greedy_time),
        ("online-learning", online_learning_time),
    ]


# -- A8: state-space granularity -------------------------------------------------


def _state_cell(payload, seed: int) -> float:
    """One (buckets, seed) arm of A8: its simulated makespan."""
    workflow, vcpus, episodes, n_buckets = payload
    wf = workflow if workflow is not None else montage(50, seed=seed)
    params = ReassignParams(
        alpha=0.5, gamma=1.0, epsilon=0.1, episodes=episodes,
        state_buckets=n_buckets,
    )
    result = ReassignLearner(wf, fleet_for(vcpus), params, seed=seed).learn()
    return result.simulated_makespan


def run_state_ablation(
    workflow: Optional[Workflow] = None,
    *,
    vcpus: int = 16,
    episodes: int = 50,
    buckets: Sequence[int] = (1, 2, 4, 8),
    seeds: Sequence[int] = (0, 1, 2),
    workers: Optional[int] = 1,
) -> List[Tuple[int, float]]:
    """(state_buckets, mean simulated makespan) per granularity.

    buckets = 1 is the paper's single aggregated *available* state — in
    which the TD bootstrap term cancels across actions (docs/rl.md).
    Splitting it by workflow progress gives the value function something
    to condition on; the ablation measures whether that pays.
    """
    fingerprint = (
        ReassignLearner(workflow, fleet_for(vcpus)).kernel_fingerprint()
        if workflow is not None
        else None
    )
    tasks = [
        Task(
            key=("state", n_buckets, seed),
            fn=_state_cell,
            payload=(workflow, vcpus, episodes, n_buckets),
            seed=seed,
            kernel_fingerprint=fingerprint,
        )
        for n_buckets in buckets
        for seed in seeds
    ]
    runner = ParallelRunner(workers=workers, run_id="ablation-a8", seed=0)
    results = runner.run(tasks)
    rows: List[Tuple[int, float]] = []
    for i, n_buckets in enumerate(buckets):
        chunk = results[i * len(seeds) : (i + 1) * len(seeds)]
        rows.append((n_buckets, sum(r.value for r in chunk) / len(chunk)))
    return rows


# -- A9: task clustering under dispatch overhead -----------------------------------


def run_clustering_ablation(
    workflow: Optional[Workflow] = None,
    *,
    vcpus: int = 16,
    dispatch_overhead: float = 2.0,
    seed: int = 0,
) -> List[Tuple[str, int, float]]:
    """(strategy, n_jobs, makespan) with expensive per-dispatch overheads.

    WorkflowSim clusters tasks precisely because every dispatch costs
    coordination time.  With a ``dispatch_overhead``-second charge per
    job (modelled through the MPI-overhead network), horizontal and
    vertical clustering amortize that cost; with cheap dispatches the
    lost parallelism can dominate instead.
    """
    from repro.dag.clustering import horizontal_clustering, vertical_clustering
    from repro.scicumulus.mpi_sim import MpiConfig
    from repro.scicumulus.online import MpiOverheadNetwork
    from repro.sim.network import SharedStorageNetwork

    wf = workflow if workflow is not None else montage(50, seed=seed)
    fleet = fleet_for(vcpus)
    network = MpiOverheadNetwork(
        SharedStorageNetwork(),
        MpiConfig(message_latency=dispatch_overhead / 2,
                  master_overhead=dispatch_overhead / 2),
    )

    def makespan(target_wf, plan) -> float:
        # each clustering variant is a different DAG, so each gets its
        # own kernel; the MPI-overhead network keeps planning estimates
        # on the plain nominal model
        kernel = EpisodeKernel(target_wf, fleet, network=network)
        return kernel.run_episode(PlanFollowingScheduler(plan), seed).makespan

    rows: List[Tuple[str, int, float]] = []
    plain_plan = HeftScheduler().plan(wf, fleet)
    rows.append(("none", len(wf), makespan(wf, plain_plan)))

    for label, clustered in (
        ("horizontal(3)", horizontal_clustering(wf, group_size=3)),
        ("vertical", vertical_clustering(wf)),
    ):
        plan = HeftScheduler().plan(clustered.workflow, fleet)
        rows.append(
            (label, len(clustered.workflow), makespan(clustered.workflow, plan))
        )
    return rows


# -- A11: reward memory ------------------------------------------------------------


def run_memory_ablation(
    *,
    workload: Tuple[str, int] = ("inspiral", 30),
    vcpus: int = 32,
    episodes: int = 100,
    seed: int = 4,
) -> List[Tuple[str, float, float]]:
    """(memory mode, final-plan makespan, best-episode makespan).

    The paper accumulates per-VM history over *every* episode.  On some
    workloads that history goes stale: VMs become permanently branded
    good/bad, the crisp reward stops responding to current behaviour,
    and late episodes lock into degraded placements.  Resetting the
    statistics each episode ("episode" memory) keeps the reward live.
    """
    rows: List[Tuple[str, float, float]] = []
    for memory in ("full", "episode"):
        wf = make_workflow(*workload, seed=seed // 2)
        params = ReassignParams(
            alpha=0.5, gamma=1.0, epsilon=0.1, episodes=episodes,
            reward_memory=memory,
        )
        result = ReassignLearner(wf, fleet_for(vcpus), params, seed=seed).learn()
        rows.append(
            (memory, result.simulated_makespan, result.best_episode.makespan)
        )
    return rows
