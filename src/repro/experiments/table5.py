"""Table V — the activation→VM scheduling plans for the 16-vCPU fleet.

The paper dumps, for all 50 Montage activations, the VM chosen by HEFT
and by three ReASSIgN configurations (all with γ = 1.0, ε = 0.1):
C1 (α = 1.0), C2 (α = 0.5), C3 (α = 0.1).  The qualitative claim to
reproduce: HEFT distributes the initial activations sequentially across
all nine VMs, while the ReASSIgN plans concentrate them on the robust
2xlarge VM (id 8).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.core.reassign import ReassignLearner, ReassignParams
from repro.dag.graph import Workflow
from repro.experiments.environments import fleet_for
from repro.schedulers.base import SchedulingPlan
from repro.schedulers.heft import HeftScheduler
from repro.util.tables import render_table
from repro.workflows.montage import montage

__all__ = ["Table5Result", "run_table5", "render_table5"]

#: Table V scenarios: label -> (alpha, gamma, epsilon)
SCENARIOS: Dict[str, tuple] = {
    "C1": (1.0, 1.0, 0.1),
    "C2": (0.5, 1.0, 0.1),
    "C3": (0.1, 1.0, 0.1),
}


@dataclass
class Table5Result:
    """The four plans plus fleet metadata."""

    workflow_name: str
    plans: Dict[str, SchedulingPlan]  #: "HEFT", "C1", "C2", "C3"
    big_vm_ids: List[int]  #: the 2xlarge ids (VM 8 on this fleet)

    def vm_share_on_big(self, label: str) -> float:
        """Fraction of activations a plan places on 2xlarge VMs."""
        plan = self.plans[label]
        big = set(self.big_vm_ids)
        n = sum(1 for vm in plan.assignment.values() if vm in big)
        return n / len(plan.assignment)


def run_table5(
    workflow: Optional[Workflow] = None,
    *,
    episodes: int = 100,
    seed: int = 0,
) -> Table5Result:
    """Compute the Table V plans on the 16-vCPU fleet."""
    wf = workflow if workflow is not None else montage(50, seed=seed)
    fleet = fleet_for(16)
    plans: Dict[str, SchedulingPlan] = {
        "HEFT": HeftScheduler().plan(wf, fleet)
    }
    for label, (alpha, gamma, epsilon) in SCENARIOS.items():
        params = ReassignParams(
            alpha=alpha, gamma=gamma, epsilon=epsilon, episodes=episodes
        )
        learner = ReassignLearner(wf, fleet, params, seed=seed)
        plans[label] = learner.learn().plan
    return Table5Result(
        workflow_name=wf.name,
        plans=plans,
        big_vm_ids=[vm.id for vm in fleet if vm.capacity > 1],
    )


def render_table5(result: Table5Result) -> str:
    """Render Table V in the paper's format."""
    labels = ["HEFT", "C1", "C2", "C3"]
    some_plan = result.plans["HEFT"]
    rows = [
        tuple([ac_id] + [result.plans[label].vm_of(ac_id) for label in labels])
        for ac_id in sorted(some_plan.assignment)
    ]
    return render_table(
        ["Activation ID"] + labels,
        rows,
        title=f"Table V: Scheduling plan for 16 vCPUs ({result.workflow_name})",
    )
