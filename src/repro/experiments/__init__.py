"""Experiment harness: regenerate every table and figure of the paper.

Each module produces the rows/series of one paper artifact:

========  ==========================================  =======================
artifact  content                                      module
========  ==========================================  =======================
Table I   VM fleet configurations                      ``environments``
Table II  learning time over the (α, γ, ε) grid        ``sweeps``
Table III simulated makespan over the same grid        ``sweeps``
Table IV  actual (cloud) execution time, HEFT vs RL    ``table4``
Table V   activation→VM plans at 16 vCPUs              ``table5``
Fig. 1    the SciCumulus-RL pipeline trace             ``figure1``
A1–A4     ablations (reward, rule, workloads, episodes) ``ablations``
========  ==========================================  =======================

Every experiment accepts ``episodes``/``seed`` overrides; the environment
variable ``REPRO_EPISODES`` globally scales episode counts so CI can run
a faster version of the full suite (the paper's value is 100).
"""

import os

from repro.experiments.environments import (
    TABLE1_FLEETS,
    fleet_for,
    render_table1,
)
from repro.experiments.sweeps import PaperSweep, run_paper_sweep
from repro.experiments.table4 import Table4Row, run_table4
from repro.experiments.table5 import run_table5
from repro.experiments.figure1 import run_figure1
from repro.experiments.sensitivity import run_seed_sensitivity
from repro.experiments import ablations

__all__ = [
    "TABLE1_FLEETS",
    "fleet_for",
    "render_table1",
    "PaperSweep",
    "run_paper_sweep",
    "Table4Row",
    "run_table4",
    "run_table5",
    "run_figure1",
    "run_seed_sensitivity",
    "ablations",
    "default_episodes",
]


def default_episodes(paper_value: int = 100) -> int:
    """Episode count: ``REPRO_EPISODES`` env override or the paper's 100."""
    raw = os.environ.get("REPRO_EPISODES", "")
    if raw:
        value = int(raw)
        if value < 1:
            raise ValueError("REPRO_EPISODES must be >= 1")
        return value
    return paper_value
