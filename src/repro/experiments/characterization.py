"""Workload characterization — the Bharathi-style profile of every
benchmark workflow we generate.

Not a numbered table in the paper, but the dataset section (§IV-B) rests
on the Workflow Generator's published characterization; this experiment
regenerates that view for our synthetic workloads so readers can compare
structure against the published Montage/CyberShake/... figures.
"""

from __future__ import annotations

from typing import List, Sequence, Tuple

from repro.dag.analysis import profile_dag
from repro.util.tables import render_table
from repro.workflows.registry import available_workflows, make_workflow

__all__ = ["run_characterization", "render_characterization"]


def run_characterization(
    seed: int = 0,
    sizes: Sequence[Tuple[str, int]] = (),
) -> List[Tuple]:
    """Profile each workload; returns table rows.

    Default covers every registered workflow at its benchmark size plus
    the Montage sizes the Workflow Generator published (25/50/100).
    """
    if not sizes:
        sizes = tuple(
            [("montage", n) for n in (25, 50, 100)]
            + [(name, None) for name in available_workflows() if name != "montage"]
        )
    rows = []
    for name, n in sizes:
        wf = make_workflow(name, n, seed=seed)
        p = profile_dag(wf)
        rows.append(
            (
                p.name,
                p.n_activations,
                p.n_edges,
                p.n_levels,
                p.max_width,
                round(p.serial_runtime, 1),
                round(p.critical_path_runtime, 1),
                round(p.parallelism, 2),
                round((p.total_input_bytes + p.total_output_bytes) / 1e6, 1),
            )
        )
    return rows


def render_characterization(rows: Sequence[Tuple]) -> str:
    """Render the characterization table."""
    return render_table(
        [
            "workflow",
            "activations",
            "edges",
            "levels",
            "max width",
            "serial [s]",
            "critical path [s]",
            "parallelism",
            "data [MB]",
        ],
        rows,
        title="Workload characterization (Bharathi-style structural profile)",
    )
