"""Figure 1 — the SciCumulus-RL architecture, demonstrated as a live trace.

A figure cannot be "measured", so this experiment exercises every
component of the paper's architecture diagram in order and emits the
trace: SCSetup loads the XML specification and invokes the WorkflowSim
substitute (ReASSIgN episodes), the plan flows to SCStarter which deploys
VMs, SCCore executes via the MPI master/slave engine, and provenance
records everything.  The returned text doubles as documentation of the
pipeline wiring; the assertions in its benchmark verify each stage really
ran.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from repro.core.reassign import ReassignParams
from repro.dag.graph import Workflow
from repro.experiments.environments import fleet_spec_for
from repro.scicumulus.provenance import ProvenanceStore
from repro.scicumulus.swfms import ExecutionReport, SciCumulusRL
from repro.scicumulus.xml_spec import workflow_from_xml, workflow_to_xml
from repro.workflows.montage import montage

__all__ = ["Figure1Trace", "run_figure1"]

_DIAGRAM = r"""
        +--------------------------- SciCumulus-RL ----------------------------+
        |                                                                      |
        |  SCSetup ----(XML spec)----> WorkflowSim substitute (repro.sim)      |
        |     |                           |  ReASSIgN episodes (Q-learning)    |
        |     |                           v                                    |
        |     |                     scheduling plan                            |
        |     v                           |                                    |
        |  SCStarter <--------------------+                                    |
        |     |  deploys VMs (simulated AWS, boot + billing)                   |
        |     v                                                                |
        |  SCCore: SCMaster ==MPI==> SCSlaves (one per vCPU)                   |
        |     |                                                                |
        |     v                                                                |
        |  Provenance DB (SQLite) --> future ReASSIgN runs                     |
        +----------------------------------------------------------------------+
"""


@dataclass
class Figure1Trace:
    """Evidence that every Fig.-1 component ran."""

    report: ExecutionReport
    spec_xml_chars: int
    n_learning_runs: int
    n_recorded_executions: int
    lines: List[str]

    def text(self) -> str:
        return "\n".join([_DIAGRAM.rstrip()] + self.lines)


def run_figure1(
    workflow: Optional[Workflow] = None,
    *,
    vcpus: int = 16,
    episodes: int = 25,
    seed: int = 0,
) -> Figure1Trace:
    """Drive the full Fig.-1 pipeline once and trace each stage."""
    wf = workflow if workflow is not None else montage(50, seed=seed)
    store = ProvenanceStore()
    swfms = SciCumulusRL(provenance=store, seed=seed)
    lines: List[str] = []

    xml = workflow_to_xml(wf)
    reloaded = workflow_from_xml(xml)
    lines.append(
        f"[SCSetup]    loaded specification {reloaded.name!r}: "
        f"{len(reloaded)} activations, {reloaded.edge_count} dependencies"
    )

    params = ReassignParams(alpha=0.5, gamma=1.0, epsilon=0.1, episodes=episodes)
    report = swfms.run_workflow(reloaded, fleet_spec_for(vcpus), "reassign", params)
    lines.append(
        f"[WorkflowSim] learned plan over {episodes} episodes in "
        f"{report.learning_time:.2f}s (simulated makespan "
        f"{report.simulated_makespan:.1f}s)"
    )
    lines.append(
        f"[SCStarter]  deployed {report.fleet} (slowest boot "
        f"{report.deploy_time:.0f}s)"
    )
    lines.append(
        f"[SCCore]     MPI master/slave executed {len(report.execution.records)} "
        f"activations in {report.total_execution_time:.1f}s "
        f"({report.execution.final_state})"
    )
    runs = store.learning_runs(reloaded.name)
    execs = store.executions(reloaded.name)
    lines.append(
        f"[Provenance] recorded {len(runs)} learning run(s) and "
        f"{len(execs)} execution(s); bill ${report.cost:.4f}"
    )
    return Figure1Trace(
        report=report,
        spec_xml_chars=len(xml),
        n_learning_runs=len(runs),
        n_recorded_executions=len(execs),
        lines=lines,
    )
