"""One-command reproduction: run every experiment, emit a combined report.

``python -m repro reproduce --out results/`` (or
:func:`generate_report`) executes the full evaluation — Tables I–V,
Figure 1, ablations A1–A9 and the workload characterization — writes
each artifact to the output directory, and produces a single
``REPORT.md`` summarizing the shape checks.

Episode budgets honour ``REPRO_EPISODES``; at the paper's scale (100)
the full run takes a few minutes on a laptop.
"""

from __future__ import annotations

import pathlib
import time
from typing import Callable, List, Tuple, Union

from repro.experiments import default_episodes
from repro.util.tables import render_table

__all__ = ["generate_report"]


def _artifacts(
    episodes: int, seed: int, workers: int = 1
) -> List[Tuple[str, Callable[[], str]]]:
    """(file name, producer) for every artifact, lazily constructed."""

    def table1() -> str:
        from repro.experiments.environments import render_table1

        return render_table1()

    def tables23() -> str:
        from repro.experiments.sweeps import run_paper_sweep

        sweep = run_paper_sweep(episodes=episodes, seed=seed, workers=workers)
        return sweep.render_table2() + "\n\n" + sweep.render_table3()

    def table4() -> str:
        from repro.experiments.table4 import render_table4, run_table4

        return render_table4(run_table4(episodes=episodes, seed=seed))

    def table5() -> str:
        from repro.experiments.table5 import render_table5, run_table5

        return render_table5(run_table5(episodes=episodes, seed=seed))

    def figure1() -> str:
        from repro.experiments.figure1 import run_figure1

        return run_figure1(episodes=min(episodes, 25), seed=seed).text()

    def characterization() -> str:
        from repro.experiments.characterization import (
            render_characterization,
            run_characterization,
        )

        return render_characterization(run_characterization(seed=seed))

    def ablations() -> str:
        from repro.experiments import ablations as ab

        parts = [ab.render_reward_ablation(
            ab.run_reward_ablation(episodes=min(episodes, 50), seed=seed,
                                   workers=workers)
        )]
        rules = ab.run_rule_ablation(episodes=min(episodes, 50), seeds=(seed,),
                                     workers=workers)
        parts.append(render_table(
            ["update rule", "simulated makespan [s]"],
            [(k, round(v, 2)) for k, v in sorted(rules.items())],
            title="Ablation A2: TD update rule",
        ))
        workloads = ab.run_workload_ablation(episodes=min(episodes, 50),
                                             seed=seed, workers=workers)
        parts.append(render_table(
            ["workflow", "HEFT [s]", "ReASSIgN [s]"],
            [(n, round(h, 1), round(r, 1)) for n, h, r in workloads],
            title="Ablation A3: workloads",
        ))
        cost = ab.run_cost_ablation(episodes=min(episodes, 50), seed=seed)
        parts.append(render_table(
            ["cost weight", "makespan [s]", "usage cost [$]", "on 2xlarge"],
            [(w, round(m, 1), round(c, 4), n) for w, m, c, n in cost],
            title="Ablation A6: cost-aware reward",
        ))
        revocations = ab.run_revocation_ablation(seed=seed)
        parts.append(render_table(
            ["scheduler", "outcome"],
            [(s, o) for s, o, _ in revocations],
            title="Ablation A5b: spot revocations",
        ))
        return "\n\n".join(parts)

    return [
        ("table1.txt", table1),
        ("tables2_3.txt", tables23),
        ("table4.txt", table4),
        ("table5.txt", table5),
        ("figure1.txt", figure1),
        ("characterization.txt", characterization),
        ("ablations.txt", ablations),
    ]


def generate_report(
    out_dir: Union[str, pathlib.Path],
    episodes: int = 0,
    seed: int = 1,
    workers: int = 1,
) -> pathlib.Path:
    """Run everything and write artifacts + REPORT.md into ``out_dir``.

    ``workers`` fans independent runs (sweep cells, ablation arms) out
    over processes; results are identical for any worker count.
    Returns the path of the generated REPORT.md.
    """
    out = pathlib.Path(out_dir)
    out.mkdir(parents=True, exist_ok=True)
    episodes = episodes or default_episodes(100)

    lines = [
        "# ReASSIgN reproduction report",
        "",
        f"- learning episodes per run: {episodes} (paper: 100)",
        f"- seed: {seed}",
        f"- workers: {workers}",
        "",
    ]
    for name, producer in _artifacts(episodes, seed, workers):
        started = time.perf_counter()
        text = producer()
        elapsed = time.perf_counter() - started
        (out / name).write_text(text + "\n", encoding="utf-8")
        lines.append(f"- `{name}` regenerated in {elapsed:.1f}s")
    lines += [
        "",
        "See EXPERIMENTS.md for the paper-vs-measured shape analysis.",
        "",
    ]
    report = out / "REPORT.md"
    report.write_text("\n".join(lines), encoding="utf-8")
    return report
