"""Tables II and III — the (α, γ, ε) × fleet learning sweep.

One :class:`PaperSweep` run covers the paper's 81 learning runs: the 27
parameter combinations of {0.1, 0.5, 1.0}³ on each of the three Table-I
fleets, Montage-50, µ = 0.5, 100 episodes.  Table II reads the wall-clock
learning time per cell; Table III the simulated makespan of each learned
plan — the two tables share the same runs, so the sweep executes once and
renders twice.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.core.sweep import (
    PAPER_GRID,
    SweepRecord,
    flatten_sweep_values,
    sweep_tasks,
)
from repro.dag.graph import Workflow
from repro.experiments.environments import TABLE1_FLEETS, fleet_for
from repro.runner import ParallelRunner
from repro.util.tables import render_table
from repro.util.validate import ValidationError
from repro.workflows.montage import montage

__all__ = ["PaperSweep", "run_paper_sweep"]


@dataclass
class PaperSweep:
    """Results of the 81-run sweep, keyed by fleet vCPU count."""

    workflow_name: str
    episodes: int
    records: Dict[int, List[SweepRecord]] = field(default_factory=dict)
    grid: Tuple[float, ...] = PAPER_GRID

    def _cell(self, vcpus: int, params: Tuple[float, float, float]) -> SweepRecord:
        for record in self.records[vcpus]:
            if record.params == params:
                return record
        raise ValidationError(f"no sweep cell {params} for {vcpus} vCPUs")

    def _grid_rows(self, metric: str) -> List[Tuple]:
        vcpu_cols = sorted(self.records)
        rows = []
        for alpha in self.grid:
            for gamma in self.grid:
                for epsilon in self.grid:
                    cells = [
                        getattr(self._cell(v, (alpha, gamma, epsilon)), metric)
                        for v in vcpu_cols
                    ]
                    rows.append((alpha, gamma, epsilon, *[round(c, 5) for c in cells]))
        return rows

    def render_table2(self) -> str:
        """Learning time of the workflow in the simulator (Table II)."""
        headers = ["alpha", "gamma", "epsilon"] + [
            f"{v} vCPUs" for v in sorted(self.records)
        ]
        return render_table(
            headers,
            self._grid_rows("learning_time"),
            title=(
                f"Table II: Learning time [s] of {self.workflow_name} "
                f"({self.episodes} episodes)"
            ),
        )

    def render_table3(self) -> str:
        """Simulated execution time of the learned plans (Table III)."""
        headers = ["alpha", "gamma", "epsilon"] + [
            f"{v} vCPUs" for v in sorted(self.records)
        ]
        return render_table(
            headers,
            self._grid_rows("simulated_makespan"),
            title=(
                f"Table III: Simulated execution time [s] of "
                f"{self.workflow_name} per learned plan"
            ),
        )

    def best_cells(self) -> Dict[int, SweepRecord]:
        """Per-fleet cell with the smallest simulated makespan."""
        return {
            v: min(recs, key=lambda r: (r.simulated_makespan, r.params))
            for v, recs in self.records.items()
        }


def run_paper_sweep(
    workflow: Optional[Workflow] = None,
    *,
    vcpu_fleets: Sequence[int] = (16, 32, 64),
    episodes: int = 100,
    seed: int = 0,
    grid: Sequence[float] = PAPER_GRID,
    workers: Optional[int] = 1,
    timing: str = "wall",
    progress=None,
    batch: int = 8,
    actors: int = 1,
) -> PaperSweep:
    """Execute the Tables II/III sweep.

    Defaults reproduce the paper exactly (Montage-50, the three Table-I
    fleets, 27 combinations, 100 episodes, µ = 0.5).

    The full fleet × grid product (81 cells at paper scale) is submitted
    as **one** :class:`~repro.runner.ParallelRunner` batch so ``workers``
    parallelism spans fleets, not just one fleet's column.  ``batch``
    (default 8) packs that many consecutive cells per task into the
    batched lockstep engine (:func:`repro.core.batch.learn_batch`) —
    pass ``batch=1`` for the historical one-cell-per-task path.  Every
    cell runs Algorithm 2 from the sweep's root seed, so the resulting
    records — and the rendered Tables II/III, when ``timing`` is
    ``"simulated"`` — are bit-identical for any worker count and batch
    size.

    ``actors`` (default 1) instead spends the parallelism *inside* each
    cell through the distributed actor/learner engine
    (:func:`repro.core.distributed.learn_distributed`); still
    bit-identical, and it composes with ``batch``: each actor then rolls
    out ``batch`` chained episodes per speculative wave chunk.  Meant
    for ``workers=1`` (nesting both pools oversubscribes the host).
    """
    wf = workflow if workflow is not None else montage(50, seed=seed)
    sweep = PaperSweep(workflow_name=wf.name, episodes=episodes, grid=tuple(grid))
    tasks = []
    fleet_task_counts: List[int] = []
    for vcpus in vcpu_fleets:
        if vcpus not in TABLE1_FLEETS:
            raise ValidationError(f"unknown Table-I fleet: {vcpus} vCPUs")
        fleet_tasks = sweep_tasks(
            wf,
            fleet_for(vcpus),
            alphas=grid,
            gammas=grid,
            epsilons=grid,
            episodes=episodes,
            seed=seed,
            timing=timing,
            key_prefix=(vcpus,),
            batch=batch,
            actors=actors,
        )
        tasks.extend(fleet_tasks)
        fleet_task_counts.append(len(fleet_tasks))
    runner = ParallelRunner(
        workers=workers,
        run_id=f"paper-sweep:{wf.name}",
        seed=seed,
        progress=progress,
    )
    results = runner.run(tasks)
    pos = 0
    for vcpus, count in zip(vcpu_fleets, fleet_task_counts):
        chunk = results[pos : pos + count]
        pos += count
        sweep.records[vcpus] = flatten_sweep_values([r.value for r in chunk])
    return sweep
