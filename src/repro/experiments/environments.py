"""Table I — the paper's VM fleet configurations.

Three fleets of 8 t2.micro plus 1/3/7 t2.2xlarge, totalling 16/32/64
vCPUs.  The same specs drive Tables II–V.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from repro.sim.vm import Vm, fleet_vcpus, t2_fleet
from repro.util.tables import render_table
from repro.util.validate import ValidationError

__all__ = ["TABLE1_FLEETS", "fleet_for", "fleet_spec_for", "render_table1"]

#: (n_micro, n_2xlarge) per paper fleet, keyed by total vCPUs
TABLE1_FLEETS: Dict[int, Tuple[int, int]] = {
    16: (8, 1),
    32: (8, 3),
    64: (8, 7),
}


def fleet_for(vcpus: int) -> List[Vm]:
    """Build the Table-I fleet with the given total vCPUs (16/32/64)."""
    try:
        n_micro, n_2xlarge = TABLE1_FLEETS[vcpus]
    except KeyError:
        raise ValidationError(
            f"no Table-I fleet with {vcpus} vCPUs; choices: {sorted(TABLE1_FLEETS)}"
        ) from None
    fleet = t2_fleet(n_micro, n_2xlarge)
    assert fleet_vcpus(fleet) == vcpus
    return fleet


def fleet_spec_for(vcpus: int) -> Dict[str, int]:
    """The fleet as a type-count spec (for :class:`SciCumulusRL`)."""
    try:
        n_micro, n_2xlarge = TABLE1_FLEETS[vcpus]
    except KeyError:
        raise ValidationError(
            f"no Table-I fleet with {vcpus} vCPUs; choices: {sorted(TABLE1_FLEETS)}"
        ) from None
    return {"t2.micro": n_micro, "t2.2xlarge": n_2xlarge}


def render_table1() -> str:
    """Regenerate Table I."""
    rows = []
    for vcpus in sorted(TABLE1_FLEETS):
        n_micro, n_2x = TABLE1_FLEETS[vcpus]
        rows.append((n_micro + n_2x, n_micro, n_2x, vcpus))
    return render_table(
        ["# of VMs", "# of VMs t2.micro", "# of VMs t2.2xLarge", "# of vCPUs"],
        rows,
        title="Table I: VM configurations used in the experiments",
    )
