"""Table IV — actual execution time on the (simulated) cloud.

For each Table-I fleet the paper executes Montage-50 through
SciCumulus-RL with the HEFT plan and with the three best ReASSIgN
configurations (γ = 1.0, ε = 0.1, α ∈ {0.1, 0.5, 1.0}), reporting SCCore
wall time sorted fastest-first within each fleet.  The expected *shape*:
HEFT wins narrowly at 16 vCPUs; ReASSIgN configurations win at 32 and 64
vCPUs, where enough 2xlarge slots exist for the learned concentrate-on-
robust-VMs placement to pay off while HEFT's cost model keeps feeding the
throttling micro instances.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

from repro.core.reassign import ReassignParams
from repro.dag.graph import Workflow
from repro.experiments.environments import fleet_spec_for
from repro.schedulers.heft import HeftScheduler
from repro.scicumulus.cloud import CloudProfile
from repro.scicumulus.provenance import ProvenanceStore
from repro.scicumulus.swfms import SciCumulusRL
from repro.util.tables import format_hms, render_table
from repro.workflows.montage import montage

__all__ = ["Table4Row", "run_table4", "render_table4"]

#: the three ReASSIgN configurations of Tables IV/V (C1, C2, C3)
PAPER_ALPHAS: Tuple[float, ...] = (1.0, 0.5, 0.1)


@dataclass(frozen=True)
class Table4Row:
    """One Table IV line."""

    algorithm: str
    vcpus: int
    alpha: Optional[float]
    gamma: Optional[float]
    epsilon: Optional[float]
    total_execution_time: float  #: seconds (rendered as HH:MM:SS.mmm)
    cost: float
    learning_time: float


def run_table4(
    workflow: Optional[Workflow] = None,
    *,
    vcpu_fleets: Sequence[int] = (16, 32, 64),
    episodes: int = 100,
    seed: int = 0,
    cloud_profile: CloudProfile = CloudProfile(),
    provenance: Optional[ProvenanceStore] = None,
) -> List[Table4Row]:
    """Execute the Table IV runs; rows sorted by time within each fleet."""
    wf = workflow if workflow is not None else montage(50, seed=seed)
    rows: List[Table4Row] = []
    for vcpus in vcpu_fleets:
        spec = fleet_spec_for(vcpus)
        swfms = SciCumulusRL(provenance=provenance, cloud_profile=cloud_profile,
                             seed=seed + vcpus)
        fleet_rows: List[Table4Row] = []

        heft_report = swfms.run_workflow(wf, spec, HeftScheduler())
        fleet_rows.append(
            Table4Row(
                algorithm="HEFT",
                vcpus=vcpus,
                alpha=None,
                gamma=None,
                epsilon=None,
                total_execution_time=heft_report.total_execution_time,
                cost=heft_report.cost,
                learning_time=0.0,
            )
        )
        for alpha in PAPER_ALPHAS:
            params = ReassignParams(
                alpha=alpha, gamma=1.0, epsilon=0.1, episodes=episodes
            )
            report = swfms.run_workflow(wf, spec, "reassign", params,
                                        use_provenance=False)
            fleet_rows.append(
                Table4Row(
                    algorithm="ReASSIgN",
                    vcpus=vcpus,
                    alpha=alpha,
                    gamma=1.0,
                    epsilon=0.1,
                    total_execution_time=report.total_execution_time,
                    cost=report.cost,
                    learning_time=report.learning_time,
                )
            )
        fleet_rows.sort(key=lambda r: r.total_execution_time)
        rows.extend(fleet_rows)
    return rows


def render_table4(rows: Sequence[Table4Row]) -> str:
    """Render Table IV in the paper's format."""

    def fmt(x: Optional[float]) -> str:
        return "-" if x is None else f"{x:g}"

    table_rows = [
        (
            r.algorithm,
            r.vcpus,
            fmt(r.alpha),
            fmt(r.gamma),
            fmt(r.epsilon),
            format_hms(r.total_execution_time),
        )
        for r in rows
    ]
    return render_table(
        ["Algorithm", "vCPUs", "alpha", "gamma", "epsilon", "Total Execution Time"],
        table_rows,
        title="Table IV: Actual execution time of Montage in the simulated cloud",
    )
