"""Seed-sensitivity study — quantifying the noise the paper reports once.

Every number in the paper's Tables III/IV is a single run; our
EXPERIMENTS.md repeatedly attributes small margins to "noise".  This
experiment makes that claim measurable: it repeats the Table-IV
HEFT-vs-ReASSIgN comparison across independent seeds and reports, per
fleet, the mean ± std of both schedulers and the fraction of seeds in
which ReASSIgN wins.

Expected shape: on the 32/64-vCPU fleets ReASSIgN wins in the majority
of seeds (the crossover is real, not seed luck); at 16 vCPUs the win
fraction sits near 1/2 (the paper's 4% HEFT edge and our 8% ReASSIgN
edge are both inside the noise band).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

from repro.core.reassign import ReassignLearner, ReassignParams
from repro.dag.graph import Workflow
from repro.experiments.environments import fleet_for, fleet_spec_for
from repro.runner import ParallelRunner, Task
from repro.schedulers.heft import HeftScheduler
from repro.scicumulus.swfms import SciCumulusRL
from repro.util.tables import render_table
from repro.workflows.montage import montage

__all__ = ["SensitivityRow", "run_seed_sensitivity", "render_sensitivity"]


@dataclass(frozen=True)
class SensitivityRow:
    """Per-fleet aggregate over seeds."""

    vcpus: int
    n_seeds: int
    heft_mean: float
    heft_std: float
    reassign_mean: float
    reassign_std: float
    reassign_wins: int

    @property
    def win_fraction(self) -> float:
        return self.reassign_wins / self.n_seeds


def _mean_std(values: Sequence[float]) -> tuple:
    mean = sum(values) / len(values)
    var = sum((v - mean) ** 2 for v in values) / len(values)
    return mean, math.sqrt(var)


def _sensitivity_cell(payload, seed: int) -> Tuple[float, float]:
    """One (fleet, seed) comparison: (HEFT time, ReASSIgN time).

    Reproduces the serial loop body exactly, including the
    ``seed * 1000 + vcpus`` SWfMS seed, so that parallel campaigns
    return the same numbers as serial ones.
    """
    workflow, vcpus, episodes = payload
    wf = workflow if workflow is not None else montage(50, seed=seed)
    fleet = fleet_for(vcpus)
    spec = fleet_spec_for(vcpus)
    swfms = SciCumulusRL(seed=seed * 1000 + vcpus)

    heft_plan = HeftScheduler().plan(wf, fleet)
    heft_time = swfms.execute_plan(
        wf, spec, heft_plan, "HEFT"
    ).total_execution_time

    params = ReassignParams(alpha=0.5, gamma=1.0, epsilon=0.1, episodes=episodes)
    rl_plan = ReassignLearner(wf, fleet, params, seed=seed).learn().plan
    rl_time = swfms.execute_plan(
        wf, spec, rl_plan, "ReASSIgN"
    ).total_execution_time
    return (heft_time, rl_time)


def run_seed_sensitivity(
    workflow: Optional[Workflow] = None,
    *,
    vcpu_fleets: Sequence[int] = (16, 32, 64),
    seeds: Sequence[int] = (1, 2, 3),
    episodes: int = 100,
    workers: Optional[int] = 1,
) -> List[SensitivityRow]:
    """Repeat the Table-IV comparison per fleet across seeds.

    The fleet × seed product fans out as one runner batch; aggregation
    happens in the parent, so rows are independent of worker count.
    """
    tasks = [
        Task(
            key=("sensitivity", vcpus, seed),
            fn=_sensitivity_cell,
            payload=(workflow, vcpus, episodes),
            seed=seed,
        )
        for vcpus in vcpu_fleets
        for seed in seeds
    ]
    runner = ParallelRunner(workers=workers, run_id="seed-sensitivity", seed=0)
    results = runner.run(tasks)

    rows: List[SensitivityRow] = []
    for i, vcpus in enumerate(vcpu_fleets):
        chunk = [r.value for r in results[i * len(seeds) : (i + 1) * len(seeds)]]
        heft_times = [h for h, _ in chunk]
        rl_times = [r for _, r in chunk]
        wins = sum(1 for h, r in chunk if r < h)
        heft_mean, heft_std = _mean_std(heft_times)
        rl_mean, rl_std = _mean_std(rl_times)
        rows.append(
            SensitivityRow(
                vcpus=vcpus,
                n_seeds=len(seeds),
                heft_mean=heft_mean,
                heft_std=heft_std,
                reassign_mean=rl_mean,
                reassign_std=rl_std,
                reassign_wins=wins,
            )
        )
    return rows


def render_sensitivity(rows: Sequence[SensitivityRow]) -> str:
    """Render the sensitivity table."""
    return render_table(
        ["vCPUs", "seeds", "HEFT [s]", "ReASSIgN [s]", "ReASSIgN wins"],
        [
            (
                r.vcpus,
                r.n_seeds,
                f"{r.heft_mean:.1f} ± {r.heft_std:.1f}",
                f"{r.reassign_mean:.1f} ± {r.reassign_std:.1f}",
                f"{r.reassign_wins}/{r.n_seeds}",
            )
            for r in rows
        ],
        title="Seed sensitivity of the Table-IV comparison (simulated cloud)",
    )
