"""The shared-fleet timeline: multiplexing many jobs over one fleet.

One :class:`FleetTimeline` owns one VM fleet, one global
:class:`~repro.sim.events.EventQueue` and one simulated clock, and
drives every admitted job's DAG through them concurrently.  It is the
streaming counterpart of :meth:`repro.sim.kernel.EpisodeKernel.run_episode`:
the same event semantics (completions before dispatch at equal times,
coalesced dispatch events, float-exact staging/compute arithmetic via
:class:`~repro.sim.estimates.NominalEstimateCache`), but with *jobs
arriving over time* and a pluggable policy choosing among the ready
activations of **all** in-flight jobs at every decision point.

Multi-tenancy isolation (the single-tenancy audit in PR 6 — pinned by
``tests/test_service_multitenancy.py``):

- each job owns a private :class:`JobRun` with its **own** workflow
  instance, file-placement map and nominal-estimate cache.  Workflow
  generators reuse file names across instances (two Montage jobs both
  produce ``proj_0.fits``) and number activations from 0, so sharing
  either the name-keyed ``file_locations`` dict or the
  activation-id-keyed estimate cache across jobs would silently leak
  data locality and cost estimates between tenants;
- VM slot occupancy, per-VM cumulative busy time (which drives
  burst-throttle fluctuation) and the stochastic model RNG streams are
  **global** — that is the contention being modelled.

Determinism: the event heap's ``(time, priority, sequence)`` total order
plus arrival events pre-scheduled in job-id order makes a run a pure
function of ``(schedule, fleet, policy, seed)``.  No wall-clock reads,
no unordered iteration — tenants are only ever iterated via sorted keys
or admission order.
"""

from __future__ import annotations

from bisect import insort
from dataclasses import dataclass
from typing import (
    TYPE_CHECKING,
    Callable,
    Dict,
    List,
    Mapping,
    Optional,
    Sequence,
    Tuple,
)

import numpy as np

from repro.dag.activation import Activation, ActivationState
from repro.dag.graph import Workflow
from repro.service.jobs import Job
from repro.service.metrics import JobRecord, ServiceResult
from repro.sim.estimates import NominalEstimateCache
from repro.sim.events import Event, EventQueue, EventType
from repro.sim.failures import FailureModel, NoFailures
from repro.sim.fluctuation import FluctuationModel, NoFluctuation
from repro.sim.metrics import ActivationRecord
from repro.sim.vm import Vm
from repro.util.rng import RngService
from repro.util.validate import ValidationError, check_positive

if TYPE_CHECKING:  # import cycle: policies imports ServiceView from here
    from repro.service.policies import SchedulingPolicy

#: ``factory(job) -> Workflow`` — materializes a job's DAG at admission.
WorkflowFactory = Callable[["Job"], "Workflow"]

__all__ = [
    "FleetTimeline",
    "JobRun",
    "ServiceError",
    "ServicePending",
    "ServiceView",
]


class ServiceError(RuntimeError):
    """Raised when the service timeline cannot make progress."""


@dataclass
class ServicePending:
    """One in-flight execution attempt, tagged with its owning job."""

    job_id: int
    activation_id: int
    vm_id: int
    ready_time: float
    dispatch_time: float
    stage_in: float
    exec_duration: float
    planned_finish: float
    attempt: int
    outcome: str  #: "success" | "retry" | "failure"
    event: Optional[Event] = None


class JobRun:
    """Private execution state of one admitted job.

    Everything in here is job-local: the workflow instance (its
    activation ``state`` fields are this job's progress), the
    file-placement map (names are only unique *within* a workflow) and
    the nominal-estimate cache (keyed by activation id, which restarts
    at 0 for every generated DAG).
    """

    def __init__(
        self,
        job: Job,
        workflow: Workflow,
        fleet: Sequence[Vm],
        *,
        latency: float,
        upload_outputs: bool,
        admit_time: float,
    ) -> None:
        self.job = job
        self.workflow = workflow
        self.admit_time = admit_time
        self.first_dispatch_time: Optional[float] = None
        self.estimates = NominalEstimateCache(
            fleet, latency=latency, upload_outputs=upload_outputs
        )
        self._ac_by_id: Dict[int, Activation] = {
            ac.id: ac for ac in workflow.activations
        }
        self._children: Dict[int, Tuple[int, ...]] = {
            i: tuple(workflow.children(i)) for i in workflow.activation_ids
        }
        self._unfinished_parents: Dict[int, int] = {
            i: len(workflow.parents(i)) for i in workflow.activation_ids
        }
        self.n_total = len(self._ac_by_id)
        self.n_finished = 0
        self.n_failed = 0
        self.n_running = 0
        self.ready_ids: List[int] = []
        self.ready_time: Dict[int, float] = {}
        self.attempts: Dict[int, int] = {}
        self.file_locations: Dict[str, int] = {}
        self.records: List[ActivationRecord] = []
        self._ready_cache: Optional[Tuple[Activation, ...]] = None
        for i in sorted(workflow.entries()):
            self._ac_by_id[i].transition(ActivationState.READY)
            self.ready_ids.append(i)
            self.ready_time[i] = admit_time

    # -- views -----------------------------------------------------------

    def activation(self, activation_id: int) -> Activation:
        try:
            return self._ac_by_id[activation_id]
        except KeyError:
            raise ValidationError(
                f"job {self.job.job_id} has no activation {activation_id}"
            ) from None

    def ready_view(self) -> Tuple[Activation, ...]:
        """READY activations ordered by id; cached until the set changes."""
        if self._ready_cache is None:
            self._ready_cache = tuple(
                self._ac_by_id[i] for i in self.ready_ids
            )
        return self._ready_cache

    @property
    def done(self) -> bool:
        """Terminal: every activation finished or terminally failed."""
        return self.n_finished + self.n_failed == self.n_total

    @property
    def failed(self) -> bool:
        return self.n_failed > 0

    # -- transitions (job-local mirrors of EpisodeState's) ---------------

    def make_ready(self, activation: Activation, *, was_running: bool) -> None:
        activation.transition(ActivationState.READY)
        insort(self.ready_ids, activation.id)
        if was_running:
            self.n_running -= 1
        self._ready_cache = None

    def start_running(self, activation: Activation) -> None:
        activation.transition(ActivationState.RUNNING)
        self.ready_ids.remove(activation.id)
        self.n_running += 1
        self._ready_cache = None

    def finish_success(self, activation: Activation, now: float) -> None:
        activation.transition(ActivationState.FINISHED)
        self.n_running -= 1
        self.n_finished += 1
        released = False
        for child_id in self._children[activation.id]:
            remaining = self._unfinished_parents[child_id] - 1
            self._unfinished_parents[child_id] = remaining
            child = self._ac_by_id[child_id]
            if remaining == 0 and child.state is ActivationState.LOCKED:
                child.transition(ActivationState.READY)
                insort(self.ready_ids, child_id)
                self.ready_time[child_id] = now
                released = True
        if released:
            self._ready_cache = None

    def finish_failure(self, activation: Activation) -> None:
        activation.transition(ActivationState.FAILED)
        self.n_running -= 1
        self.n_failed += 1
        stack = list(self._children[activation.id])
        while stack:
            node = stack.pop()
            ac = self._ac_by_id[node]
            if ac.state is ActivationState.LOCKED:
                ac.transition(ActivationState.FAILED)
                self.n_failed += 1
                stack.extend(self._children[node])


class ServiceView:
    """Read-only view of the timeline handed to scheduling policies."""

    def __init__(self, timeline: "FleetTimeline") -> None:
        self._tl = timeline

    @property
    def now(self) -> float:
        return self._tl.now

    @property
    def jobs(self) -> Tuple[JobRun, ...]:
        """In-flight jobs in admission order (the FIFO tie-break order)."""
        return tuple(self._tl.admitted.values())

    @property
    def idle_vms(self) -> Tuple[Vm, ...]:
        """VMs able to accept an activation now, ordered by id."""
        return self._tl.idle_view()

    @property
    def tenant_busy_time(self) -> Mapping[str, float]:
        """Cumulative busy seconds consumed per tenant (fair-share basis)."""
        return self._tl.tenant_busy_time

    @property
    def tenant_running(self) -> Mapping[str, int]:
        """Activations currently executing per tenant."""
        return self._tl.tenant_running

    def estimated_execution(
        self, run: JobRun, activation: Activation, vm: Vm
    ) -> float:
        """Nominal compute estimate from the job's private cache."""
        return run.estimates.compute_time(activation, vm)

    def estimated_stage_in(
        self, run: JobRun, activation: Activation, vm: Vm
    ) -> float:
        """Staging estimate under the job's private file placement."""
        return run.estimates.stage_in_time(
            activation, vm, run.file_locations
        )


class FleetTimeline:
    """The multiplexing event loop over one shared fleet.

    Parameters
    ----------
    fleet:
        The shared VMs.  The timeline takes ownership: VM runtime state
        is reset at :meth:`run` entry and mutated throughout.
    fluctuation / failures / max_attempts:
        Optional stochastic execution models, shared across jobs (one
        global RNG stream each, derived from ``seed``).
    latency / upload_outputs:
        Shared-storage staging parameters (the service supports the
        default :class:`~repro.sim.network.SharedStorageNetwork`
        semantics via per-job estimate caches).
    max_in_flight:
        Admission-control cap on concurrently executing jobs
        (``None`` = admit on arrival).
    horizon:
        Hard simulated-time safety limit.
    seed:
        Root seed for the model RNG streams.
    """

    def __init__(
        self,
        fleet: Sequence[Vm],
        *,
        fluctuation: Optional[FluctuationModel] = None,
        failures: Optional[FailureModel] = None,
        max_attempts: int = 1,
        latency: float = 0.05,
        upload_outputs: bool = True,
        max_in_flight: Optional[int] = None,
        horizon: float = 1e9,
        seed: int = 0,
    ) -> None:
        if not fleet:
            raise ValidationError("fleet must contain at least one VM")
        ids = [vm.id for vm in fleet]
        if len(set(ids)) != len(ids):
            raise ValidationError("VM ids must be unique")
        if max_attempts < 1:
            raise ValidationError("max_attempts must be >= 1")
        if max_in_flight is not None and max_in_flight < 1:
            raise ValidationError("max_in_flight must be >= 1 or None")
        self.fleet: List[Vm] = list(fleet)
        self.vm_by_id: Dict[int, Vm] = {vm.id: vm for vm in self.fleet}
        self.fluctuation = (
            fluctuation if fluctuation is not None else NoFluctuation()
        )
        self.failures = failures if failures is not None else NoFailures()
        self.max_attempts = int(max_attempts)
        self.latency = latency
        self.upload_outputs = bool(upload_outputs)
        self.max_in_flight = max_in_flight
        self.horizon = check_positive("horizon", horizon)
        self.seed = int(seed)

        self.now = 0.0
        self.queue = EventQueue()
        self.admitted: Dict[int, JobRun] = {}  # insertion = admission order
        self.waiting: List[Job] = []
        self.in_flight: Dict[Tuple[int, int], ServicePending] = {}
        self.busy_time: Dict[int, float] = {}
        self.tenant_busy_time: Dict[str, float] = {}
        self.tenant_running: Dict[str, int] = {}
        self.completed: List[JobRecord] = []
        self.rng_fluct: np.random.Generator
        self.rng_fail: np.random.Generator
        self._dispatch_scheduled = False
        self._view = ServiceView(self)
        self._workflow_factory: WorkflowFactory = _registry_factory
        self._ran = False

    # -- fleet views -----------------------------------------------------

    def idle_view(self) -> Tuple[Vm, ...]:
        """VMs that can accept an activation at the current time."""
        now = self.now
        return tuple(vm for vm in self.fleet if vm.is_idle(now))

    def has_ready(self) -> bool:
        for run in self.admitted.values():
            if run.ready_ids:
                return True
        return False

    # -- the event loop --------------------------------------------------

    def run(
        self,
        jobs: Sequence[Job],
        policy: "SchedulingPolicy",
        *,
        workflow_factory: Optional[WorkflowFactory] = None,
    ) -> ServiceResult:
        """Drive every job from arrival to completion; return metrics.

        Single-use: a timeline accumulates global busy-time state, so
        each run needs a fresh instance (the :class:`SchedulerService`
        facade handles that).

        ``workflow_factory(job) -> Workflow`` materializes each job's
        DAG at admission; the default builds from the workflow registry
        (``make_workflow(job.workflow, job.size, seed=job.workflow_seed)``).
        """
        if self._ran:
            raise ValidationError(
                "FleetTimeline.run is single-use; build a new timeline "
                "per service run"
            )
        self._ran = True
        if workflow_factory is not None:
            self._workflow_factory = workflow_factory
        rng = RngService(self.seed)
        self.rng_fluct = rng.stream("service-fluctuation")
        self.rng_fail = rng.stream("service-failures")

        for vm in self.fleet:
            vm.reset()
            self.busy_time[vm.id] = 0.0
            boot = vm.type.boot_time
            vm.available_at = boot
            if boot > 0:
                self.queue.schedule(boot, EventType.VM_READY, vm.id)

        ordered = sorted(jobs, key=lambda j: (j.arrival_time, j.job_id))
        for job in ordered:
            self.queue.schedule(job.arrival_time, EventType.JOB_ARRIVAL, job)

        n_jobs = len(ordered)
        while len(self.completed) < n_jobs:
            event = self.queue.pop()
            if event is None:
                raise ServiceError(
                    f"service deadlocked at t={self.now:.3f}: "
                    f"{len(self.completed)}/{n_jobs} jobs complete, "
                    f"{len(self.waiting)} waiting admission, no events"
                )
            if event.time < self.now - 1e-9:
                raise ServiceError("event time regressed (internal bug)")
            self.now = max(self.now, event.time)
            if self.now > self.horizon:
                raise ServiceError(
                    f"service exceeded horizon {self.horizon} with "
                    f"{n_jobs - len(self.completed)} jobs unfinished"
                )
            self._handle(policy, event)

        end_time = max((r.completion_time for r in self.completed), default=0.0)
        return ServiceResult(
            jobs=list(self.completed),
            end_time=end_time,
            vm_busy_time=dict(self.busy_time),
            vm_capacity={vm.id: vm.capacity for vm in self.fleet},
            policy=policy.name,
            seed=self.seed,
        )

    # -- event handling --------------------------------------------------

    def _handle(self, policy: "SchedulingPolicy", event: Event) -> None:
        if event.type is EventType.JOB_ARRIVAL:
            self.waiting.append(event.payload)
            self._admit(policy)
            self._schedule_dispatch()
        elif event.type is EventType.ACTIVATION_DONE:
            self._complete(policy, event.payload)
        elif event.type is EventType.DISPATCH:
            self._dispatch_scheduled = False
            self._dispatch_loop(policy)
        elif event.type is EventType.VM_READY:
            self._schedule_dispatch()
        else:  # pragma: no cover - defensive
            raise ServiceError(f"unhandled event type {event.type!r}")

    def _schedule_dispatch(self) -> None:
        if not self._dispatch_scheduled:
            self._dispatch_scheduled = True
            self.queue.schedule(self.now, EventType.DISPATCH)

    # -- admission -------------------------------------------------------

    def _admit(self, policy: "SchedulingPolicy") -> None:
        """Move jobs from the admission queue into execution."""
        while self.waiting and (
            self.max_in_flight is None
            or len(self.admitted) < self.max_in_flight
        ):
            index = policy.admit_index(tuple(self.waiting), self._view)
            if not 0 <= index < len(self.waiting):
                raise ValidationError(
                    f"policy {policy.name!r} returned admission index "
                    f"{index} for a queue of {len(self.waiting)}"
                )
            job = self.waiting.pop(index)
            workflow = self._workflow_factory(job)
            n_generated = len(list(workflow.activations))
            if n_generated != job.size:
                raise ValidationError(
                    f"job {job.job_id}: workflow factory produced "
                    f"{n_generated} activations, expected {job.size}"
                )
            run = JobRun(
                job,
                workflow,
                self.fleet,
                latency=self.latency,
                upload_outputs=self.upload_outputs,
                admit_time=self.now,
            )
            self.admitted[job.job_id] = run
            self.tenant_busy_time.setdefault(job.tenant, 0.0)
            self.tenant_running.setdefault(job.tenant, 0)

    # -- dispatch --------------------------------------------------------

    def _dispatch_loop(self, policy: "SchedulingPolicy") -> None:
        while True:
            if not self.has_ready():
                return
            if not self.idle_view():
                return
            decision = policy.select(self._view)
            if decision is None:
                return  # the policy's "hold back" action
            job_id, activation_id, vm_id = decision
            self._dispatch(job_id, activation_id, vm_id)

    def _dispatch(self, job_id: int, activation_id: int, vm_id: int) -> None:
        run = self.admitted.get(job_id)
        if run is None:
            raise ValidationError(f"policy chose unknown job {job_id}")
        ac = run.activation(activation_id)
        vm = self.vm_by_id.get(vm_id)
        if vm is None:
            raise ValidationError(f"policy chose unknown VM {vm_id}")
        if ac.state is not ActivationState.READY:
            raise ValidationError(
                f"policy chose activation {activation_id} of job {job_id} "
                f"in state {ac.state.name}, expected READY"
            )
        if not vm.is_idle(self.now):
            raise ValidationError(
                f"policy chose VM {vm_id} which is not idle at "
                f"t={self.now:.3f}"
            )

        attempt = run.attempts.get(activation_id, 0)
        stage_in = run.estimates.stage_in_time(ac, vm, run.file_locations)
        factor = self.fluctuation.factor(
            vm, self.now, self.busy_time[vm.id], self.rng_fluct
        )
        compute = run.estimates.compute_time(ac, vm) * factor
        stage_out = run.estimates.stage_out_time(ac, vm)

        fails = self.failures.attempt_fails(ac, vm, attempt, self.rng_fail)
        if fails:
            duration = (
                stage_in + compute * self.failures.failure_runtime_fraction
            )
            outcome = (
                "retry" if attempt + 1 < self.max_attempts else "failure"
            )
        else:
            duration = stage_in + compute + stage_out
            outcome = "success"

        run.start_running(ac)
        vm.start(_slot_key(job_id, activation_id))
        if run.first_dispatch_time is None:
            run.first_dispatch_time = self.now
        self.tenant_running[run.job.tenant] += 1
        pending = ServicePending(
            job_id=job_id,
            activation_id=activation_id,
            vm_id=vm_id,
            ready_time=run.ready_time[activation_id],
            dispatch_time=self.now,
            stage_in=stage_in,
            exec_duration=duration,
            planned_finish=self.now + duration,
            attempt=attempt,
            outcome=outcome,
        )
        pending.event = self.queue.schedule(
            pending.planned_finish, EventType.ACTIVATION_DONE, pending
        )
        self.in_flight[(job_id, activation_id)] = pending

    # -- completion ------------------------------------------------------

    def _complete(
        self, policy: "SchedulingPolicy", pending: ServicePending
    ) -> None:
        run = self.admitted[pending.job_id]
        ac = run.activation(pending.activation_id)
        vm = self.vm_by_id[pending.vm_id]
        vm.finish(_slot_key(pending.job_id, pending.activation_id))
        del self.in_flight[(pending.job_id, pending.activation_id)]
        elapsed = self.now - pending.dispatch_time
        self.busy_time[vm.id] += elapsed
        self.tenant_busy_time[run.job.tenant] += elapsed
        self.tenant_running[run.job.tenant] -= 1

        if pending.outcome == "success":
            for f in ac.outputs:
                run.file_locations[f.name] = vm.id
            run.records.append(
                ActivationRecord(
                    activation_id=ac.id,
                    activity=ac.activity,
                    vm_id=vm.id,
                    ready_time=pending.ready_time,
                    start_time=pending.dispatch_time,
                    finish_time=self.now,
                    stage_in_time=pending.stage_in,
                    attempts=pending.attempt + 1,
                    failed=False,
                )
            )
            run.finish_success(ac, self.now)
        elif pending.outcome == "retry":
            run.attempts[ac.id] = pending.attempt + 1
            run.make_ready(ac, was_running=True)
        else:  # terminal failure
            run.records.append(
                ActivationRecord(
                    activation_id=ac.id,
                    activity=ac.activity,
                    vm_id=vm.id,
                    ready_time=pending.ready_time,
                    start_time=pending.dispatch_time,
                    finish_time=self.now,
                    stage_in_time=pending.stage_in,
                    attempts=pending.attempt + 1,
                    failed=True,
                )
            )
            run.finish_failure(ac)

        if run.done:
            self._retire(run)
            self._admit(policy)
        self._schedule_dispatch()

    def _retire(self, run: JobRun) -> None:
        """Record a finished job and free its in-flight slot."""
        del self.admitted[run.job.job_id]
        first = (
            run.first_dispatch_time
            if run.first_dispatch_time is not None
            else self.now
        )
        self.completed.append(
            JobRecord(
                job_id=run.job.job_id,
                tenant=run.job.tenant,
                workflow=run.job.workflow,
                size=run.job.size,
                arrival_time=run.job.arrival_time,
                admit_time=run.admit_time,
                first_dispatch_time=first,
                completion_time=self.now,
                n_activations=run.n_finished,
                failed=run.failed,
                deadline=run.job.deadline,
            )
        )


def _slot_key(job_id: int, activation_id: int) -> int:
    """Fleet-unique slot token for (job, activation).

    :class:`~repro.sim.vm.Vm` tracks occupancy as a set of ints that the
    single-job kernel fills with bare activation ids.  Two jobs both
    running activation 3 would collide, so the service packs the job id
    into the token (activation ids stay well below 2**20 for any
    registry workflow).
    """
    return (job_id << 20) | activation_id


def _registry_factory(job: Job) -> Workflow:
    """Default workflow materialization: the workflow registry."""
    from repro.workflows.registry import make_workflow

    return make_workflow(job.workflow, job.size, seed=job.workflow_seed)
