"""Service-level metrics: per-job records and run aggregates.

A service run produces one :class:`JobRecord` per submitted job and a
:class:`ServiceResult` aggregating them into the operational metrics the
ROADMAP names: throughput (jobs and activations per simulated second),
fleet utilization, and p50/p99 job latency, plus per-tenant breakdowns
for the fairness policies.

Everything here is computed from *simulated* quantities only — no wall
clock — so ``to_json()`` output is bit-identical across repeats of the
same seeded run (the determinism contract in ``docs/service.md``).
Percentiles use the nearest-rank method on a sorted copy: exact,
interpolation-free, and stable across numpy versions.
"""

from __future__ import annotations

import json
import math
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence

from repro.util.validate import ValidationError

__all__ = ["JobRecord", "ServiceResult", "percentile"]


def percentile(values: Sequence[float], q: float) -> float:
    """Nearest-rank percentile (``q`` in [0, 100]) of ``values``.

    Deterministic and interpolation-free: the returned value is always
    an element of ``values``.  Raises on an empty sequence.
    """
    if not values:
        raise ValidationError("percentile of an empty sequence")
    if not 0.0 <= q <= 100.0:
        raise ValidationError(f"percentile q must be in [0, 100], got {q}")
    ordered = sorted(values)
    if q == 0.0:
        return ordered[0]
    rank = math.ceil(q / 100.0 * len(ordered))
    return ordered[rank - 1]


@dataclass(frozen=True)
class JobRecord:
    """Lifecycle summary of one job through the service.

    Times are simulated seconds.  ``admit_time`` is when the job left
    the admission queue (equals ``arrival_time`` unless admission
    control was saturated); ``first_dispatch_time`` is when its first
    activation started executing; ``completion_time`` is when its last
    activation finished (or when the job terminally failed).
    """

    job_id: int
    tenant: str
    workflow: str
    size: int
    arrival_time: float
    admit_time: float
    first_dispatch_time: float
    completion_time: float
    n_activations: int
    failed: bool = False
    deadline: Optional[float] = None

    @property
    def latency(self) -> float:
        """Arrival-to-completion seconds (queueing + execution)."""
        return self.completion_time - self.arrival_time

    @property
    def queue_latency(self) -> float:
        """Arrival-to-first-dispatch seconds (admission + queueing)."""
        return self.first_dispatch_time - self.arrival_time

    @property
    def met_deadline(self) -> Optional[bool]:
        """Whether the deadline was met; ``None`` when the job has none."""
        if self.deadline is None:
            return None
        return self.completion_time <= self.deadline

    def to_dict(self) -> Dict[str, Any]:
        """JSON-ready field dump plus derived latencies (floats exact)."""
        return {
            "job_id": self.job_id,
            "tenant": self.tenant,
            "workflow": self.workflow,
            "size": self.size,
            "arrival_time": self.arrival_time,
            "admit_time": self.admit_time,
            "first_dispatch_time": self.first_dispatch_time,
            "completion_time": self.completion_time,
            "n_activations": self.n_activations,
            "failed": self.failed,
            "deadline": self.deadline,
            "latency": self.latency,
            "met_deadline": self.met_deadline,
        }


@dataclass
class ServiceResult:
    """Aggregate outcome of one service run.

    Attributes
    ----------
    jobs:
        One record per submitted job, ordered by ``job_id``.
    end_time:
        Simulated time of the last completion (the run's makespan).
    vm_busy_time:
        Cumulative busy seconds per VM id across all jobs.
    vm_capacity:
        Concurrent slots per VM id (vCPUs).
    policy / seed:
        Provenance of the run, echoed into the metrics JSON.
    """

    jobs: List[JobRecord]
    end_time: float
    vm_busy_time: Dict[int, float]
    vm_capacity: Dict[int, int]
    policy: str
    seed: int
    tenants: List[str] = field(default_factory=list)

    def __post_init__(self) -> None:
        self.jobs = sorted(self.jobs, key=lambda r: r.job_id)
        if not self.tenants:
            self.tenants = sorted({r.tenant for r in self.jobs})

    # -- aggregates -------------------------------------------------------

    @property
    def n_jobs(self) -> int:
        return len(self.jobs)

    @property
    def n_failed(self) -> int:
        return sum(1 for r in self.jobs if r.failed)

    @property
    def n_activations(self) -> int:
        return sum(r.n_activations for r in self.jobs)

    def throughput_jobs(self) -> float:
        """Completed jobs per simulated second."""
        if self.end_time <= 0:
            return 0.0
        return self.n_jobs / self.end_time

    def throughput_activations(self) -> float:
        """Scheduled activations per simulated second."""
        if self.end_time <= 0:
            return 0.0
        return self.n_activations / self.end_time

    def utilization(self) -> float:
        """Fleet-wide busy fraction of capacity-time over the run.

        Both reductions run in sorted-key order so the float sums are
        insensitive to dict insertion history (RL013).
        """
        capacity = sum(self.vm_capacity[vm] for vm in sorted(self.vm_capacity))
        if capacity == 0 or self.end_time <= 0:
            return 0.0
        busy = sum(self.vm_busy_time[vm] for vm in sorted(self.vm_busy_time))
        return busy / (capacity * self.end_time)

    def latency_percentile(self, q: float) -> float:
        """Nearest-rank percentile of job latencies."""
        return percentile([r.latency for r in self.jobs], q)

    def mean_latency(self) -> float:
        if not self.jobs:
            return 0.0
        return sum(r.latency for r in self.jobs) / len(self.jobs)

    def deadline_hit_rate(self) -> Optional[float]:
        """Fraction of deadline-carrying jobs that met their deadline."""
        with_deadline = [r for r in self.jobs if r.deadline is not None]
        if not with_deadline:
            return None
        hits = sum(1 for r in with_deadline if r.met_deadline)
        return hits / len(with_deadline)

    def tenant_summary(self) -> Dict[str, Dict[str, float]]:
        """Per-tenant job counts and latency aggregates, name-sorted."""
        out: Dict[str, Dict[str, float]] = {}
        for tenant in sorted(self.tenants):
            records = [r for r in self.jobs if r.tenant == tenant]
            if not records:
                out[tenant] = {"jobs": 0}
                continue
            latencies = [r.latency for r in records]
            out[tenant] = {
                "jobs": len(records),
                "mean_latency": sum(latencies) / len(latencies),
                "p50_latency": percentile(latencies, 50.0),
                "p99_latency": percentile(latencies, 99.0),
            }
        return out

    # -- serialization ----------------------------------------------------

    def metrics_dict(self) -> Dict[str, Any]:
        """The metrics-JSON schema (see ``docs/service.md``)."""
        has_jobs = bool(self.jobs)
        return {
            "schema": "repro.service.metrics/v1",
            "policy": self.policy,
            "seed": self.seed,
            "n_jobs": self.n_jobs,
            "n_failed": self.n_failed,
            "n_activations": self.n_activations,
            "end_time": self.end_time,
            "throughput_jobs_per_sim_sec": self.throughput_jobs(),
            "throughput_activations_per_sim_sec": self.throughput_activations(),
            "utilization": self.utilization(),
            "mean_latency": self.mean_latency(),
            "p50_latency": self.latency_percentile(50.0) if has_jobs else None,
            "p99_latency": self.latency_percentile(99.0) if has_jobs else None,
            "deadline_hit_rate": self.deadline_hit_rate(),
            "tenants": self.tenant_summary(),
            "vm_busy_time": {
                str(vm_id): self.vm_busy_time[vm_id]
                for vm_id in sorted(self.vm_busy_time)
            },
        }

    def to_json(self, *, include_jobs: bool = False) -> str:
        """Canonical (sorted-keys) JSON; bit-identical per seeded run."""
        payload = self.metrics_dict()
        if include_jobs:
            payload["jobs"] = [r.to_dict() for r in self.jobs]
        return json.dumps(payload, sort_keys=True, indent=1)
