"""Admission and fairness policies for the shared-fleet timeline.

A :class:`SchedulingPolicy` makes two kinds of decisions:

- :meth:`~SchedulingPolicy.select` — at every dispatch point, which
  ``(job, activation, vm)`` triple to execute next (or ``None`` to hold
  capacity back);
- :meth:`~SchedulingPolicy.admit_index` — when admission control has a
  free slot, which queued job enters execution next.

Three policies ship with the service:

- :class:`FifoPolicy` — strict arrival order, the baseline every queueing
  analysis starts from;
- :class:`FairSharePolicy` — weighted fair sharing by tenant: the next
  dispatch goes to the tenant with the lowest *normalized consumed
  service* (cumulative busy seconds / weight, with instantaneous running
  work as the tie pressure), so a burst from one tenant cannot starve
  another with pending jobs;
- :class:`DeadlinePolicy` — earliest-deadline-first over jobs carrying
  deadlines (deadline-less jobs yield to urgent ones, then run FIFO).

Every comparison key ends in ``(job_id, activation_id, vm_id)`` — ties
are always broken by ids, never by iteration accidents, which is what
makes a policy run bit-reproducible.
"""

from __future__ import annotations

import abc
from typing import Dict, List, Optional, Sequence, Tuple, Type

from repro.service.jobs import Job
from repro.service.timeline import JobRun, ServiceView
from repro.util.validate import ValidationError

__all__ = [
    "SchedulingPolicy",
    "FifoPolicy",
    "FairSharePolicy",
    "DeadlinePolicy",
    "available_policies",
    "make_policy",
]

#: A service decision: (job id, activation id, vm id).
ServiceDecision = Tuple[int, int, int]

_INFINITY = float("inf")


class SchedulingPolicy(abc.ABC):
    """Decides dispatch and admission order over the shared fleet."""

    #: registry / metrics label
    name: str = "abstract"

    @abc.abstractmethod
    def select(self, view: ServiceView) -> Optional[ServiceDecision]:
        """The next (job, activation, vm) to dispatch, or ``None``."""

    def admit_index(
        self, queued: Sequence[Job], view: ServiceView
    ) -> int:
        """Index of the next queued job to admit (default: FIFO)."""
        return 0

    # -- shared helpers ---------------------------------------------------

    @staticmethod
    def _first_ready(run: JobRun) -> int:
        """Lowest ready activation id of a job (callers ensure some exist)."""
        return run.ready_ids[0]

    @staticmethod
    def _best_vm(
        view: ServiceView, run: JobRun, activation_id: int
    ) -> int:
        """Idle VM minimizing estimated (staging + compute), tie by id."""
        ac = run.activation(activation_id)
        best_id = -1
        best_cost = _INFINITY
        for vm in view.idle_vms:
            cost = view.estimated_stage_in(
                run, ac, vm
            ) + view.estimated_execution(run, ac, vm)
            if cost < best_cost:
                best_cost = cost
                best_id = vm.id
        return best_id


class FifoPolicy(SchedulingPolicy):
    """Strict arrival order: earliest-arrived job with ready work first.

    Within the chosen job, the lowest ready activation id; the VM is the
    estimate-minimizing idle VM (ties by VM id).
    """

    name = "fifo"

    def select(self, view: ServiceView) -> Optional[ServiceDecision]:
        chosen: Optional[JobRun] = None
        for run in view.jobs:
            if not run.ready_ids:
                continue
            if chosen is None or (
                (run.job.arrival_time, run.job.job_id)
                < (chosen.job.arrival_time, chosen.job.job_id)
            ):
                chosen = run
        if chosen is None:
            return None
        activation_id = self._first_ready(chosen)
        vm_id = self._best_vm(view, chosen, activation_id)
        if vm_id < 0:
            return None
        return (chosen.job.job_id, activation_id, vm_id)


class FairSharePolicy(SchedulingPolicy):
    """Weighted fair sharing by tenant.

    The next dispatch goes to the tenant minimizing
    ``(consumed busy seconds + running activations * epsilon) / weight``
    among tenants with ready work — the classic min-normalized-usage
    rule.  A tenant that has consumed the least service always wins the
    next slot, so no tenant with pending jobs can be starved while
    others monopolize the fleet (pinned by a Hypothesis property).
    Within the tenant: FIFO job order, lowest activation id, best VM.

    Admission mirrors dispatch: the queued job of the least-served
    tenant is admitted first.
    """

    name = "fair"

    #: pressure per currently-running activation, in busy-second units;
    #: breaks ties among tenants with equal consumed service toward the
    #: one with less work in flight *right now*
    running_pressure = 1e-6

    def __init__(self, weights: Optional[Dict[str, float]] = None) -> None:
        self._weights = dict(weights or {})
        for tenant, weight in self._weights.items():
            if weight <= 0:
                raise ValidationError(
                    f"tenant {tenant!r}: weight must be > 0, got {weight}"
                )

    def _share(self, view: ServiceView, tenant: str) -> float:
        weight = self._weights.get(tenant, 1.0)
        consumed = view.tenant_busy_time.get(tenant, 0.0)
        running = view.tenant_running.get(tenant, 0)
        return (consumed + running * self.running_pressure) / weight

    def select(self, view: ServiceView) -> Optional[ServiceDecision]:
        chosen: Optional[JobRun] = None
        chosen_key: Tuple[float, str, float, int] = (
            _INFINITY, "", _INFINITY, 0
        )
        for run in view.jobs:
            if not run.ready_ids:
                continue
            key = (
                self._share(view, run.job.tenant),
                run.job.tenant,
                run.job.arrival_time,
                run.job.job_id,
            )
            if chosen is None or key < chosen_key:
                chosen = run
                chosen_key = key
        if chosen is None:
            return None
        activation_id = self._first_ready(chosen)
        vm_id = self._best_vm(view, chosen, activation_id)
        if vm_id < 0:
            return None
        return (chosen.job.job_id, activation_id, vm_id)

    def admit_index(
        self, queued: Sequence[Job], view: ServiceView
    ) -> int:
        best = 0
        best_key: Optional[Tuple[float, str, float, int]] = None
        for i, job in enumerate(queued):
            key = (
                self._share(view, job.tenant),
                job.tenant,
                job.arrival_time,
                job.job_id,
            )
            if best_key is None or key < best_key:
                best_key = key
                best = i
        return best


class DeadlinePolicy(SchedulingPolicy):
    """Earliest-deadline-first with FIFO fallback.

    Jobs carrying deadlines are served strictly by deadline (ties by
    arrival, then id); jobs without deadlines sort after every
    deadline-carrying job.  Admission uses the same order, so an urgent
    job jumps the admission queue too.
    """

    name = "deadline"

    @staticmethod
    def _urgency(job: Job) -> Tuple[float, float, int]:
        deadline = job.deadline if job.deadline is not None else _INFINITY
        return (deadline, job.arrival_time, job.job_id)

    def select(self, view: ServiceView) -> Optional[ServiceDecision]:
        chosen: Optional[JobRun] = None
        for run in view.jobs:
            if not run.ready_ids:
                continue
            if chosen is None or (
                self._urgency(run.job) < self._urgency(chosen.job)
            ):
                chosen = run
        if chosen is None:
            return None
        activation_id = self._first_ready(chosen)
        vm_id = self._best_vm(view, chosen, activation_id)
        if vm_id < 0:
            return None
        return (chosen.job.job_id, activation_id, vm_id)

    def admit_index(
        self, queued: Sequence[Job], view: ServiceView
    ) -> int:
        best = 0
        best_key: Optional[Tuple[float, float, int]] = None
        for i, job in enumerate(queued):
            key = self._urgency(job)
            if best_key is None or key < best_key:
                best_key = key
                best = i
        return best


_POLICIES: Dict[str, Type[SchedulingPolicy]] = {
    "fifo": FifoPolicy,
    "fair": FairSharePolicy,
    "deadline": DeadlinePolicy,
}


def available_policies() -> List[str]:
    """Policy names accepted by :func:`make_policy`, sorted."""
    return sorted(_POLICIES)


def make_policy(name: str) -> SchedulingPolicy:
    """Instantiate the named policy with default parameters."""
    try:
        return _POLICIES[name]()
    except KeyError:
        raise ValidationError(
            f"unknown policy {name!r}; available: {available_policies()}"
        ) from None
