"""The streaming scheduler service facade and the replica campaign.

:class:`SchedulerService` wires an arrival generator, a fresh fleet and
a policy into one :class:`~repro.service.timeline.FleetTimeline` run —
the object behind the ``repro serve`` CLI subcommand.  Because a
timeline is single-use, the facade builds everything per call, so
``service.run()`` twice yields two independent, bit-identical results.

:func:`run_service_replicas` fans N independent service runs (derived
seeds, same scenario) over the deterministic parallel runner —
bit-identical at any ``--workers`` count, like every other campaign in
the repository.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

from repro.runner.parallel import ParallelRunner, Task
from repro.service.arrivals import ArrivalGenerator, PoissonArrivals
from repro.service.jobs import TenantSpec, default_tenants
from repro.service.metrics import ServiceResult
from repro.service.policies import make_policy
from repro.service.timeline import FleetTimeline
from repro.sim.failures import FailureModel
from repro.sim.fluctuation import FluctuationModel
from repro.util.rng import derive_seed
from repro.util.validate import ValidationError

__all__ = [
    "ServiceConfig",
    "SchedulerService",
    "reference_scenario",
    "run_service_replicas",
]


@dataclass(frozen=True)
class ServiceConfig:
    """Execution-side configuration of a service run.

    ``vcpus`` picks a Table-I fleet (16/32/64); ``policy`` is a
    :func:`repro.service.policies.make_policy` name; ``max_in_flight``
    caps concurrently executing jobs (admission control).  The
    stochastic models default to off (the deterministic service).
    """

    vcpus: int = 16
    policy: str = "fifo"
    max_in_flight: Optional[int] = None
    horizon: float = 1e9
    max_attempts: int = 1
    fluctuation: Optional[FluctuationModel] = None
    failures: Optional[FailureModel] = None


class SchedulerService:
    """One continuously-arriving workload on one shared fleet.

    Parameters
    ----------
    arrivals:
        The job stream (Poisson or trace-driven).
    config:
        Fleet/policy/model configuration.
    seed:
        Root seed of the run.  It feeds only the timeline's model
        streams — the arrival generator carries its own seed, so a
        recorded trace replayed under the same service seed reproduces
        the original run exactly.
    """

    def __init__(
        self,
        arrivals: ArrivalGenerator,
        config: Optional[ServiceConfig] = None,
        *,
        seed: int = 0,
    ) -> None:
        self.arrivals = arrivals
        self.config = config if config is not None else ServiceConfig()
        self.seed = int(seed)

    def run(self) -> ServiceResult:
        """Execute the full job stream; returns the aggregate metrics."""
        from repro.experiments.environments import fleet_for

        cfg = self.config
        jobs = self.arrivals.schedule()
        if not jobs:
            raise ValidationError("arrival schedule produced no jobs")
        timeline = FleetTimeline(
            fleet_for(cfg.vcpus),
            fluctuation=cfg.fluctuation,
            failures=cfg.failures,
            max_attempts=cfg.max_attempts,
            max_in_flight=cfg.max_in_flight,
            horizon=cfg.horizon,
            seed=self.seed,
        )
        return timeline.run(jobs, make_policy(cfg.policy))


def reference_scenario(
    *,
    seed: int = 42,
    n_tenants: int = 3,
    n_jobs: int = 20,
    rate: float = 0.02,
    workflow: str = "montage",
    size: int = 20,
    relative_deadline: Optional[float] = None,
) -> PoissonArrivals:
    """The canonical benchmark/golden-fixture arrival scenario.

    ``n_tenants`` equal-weight tenants submitting ``workflow``-``size``
    DAGs as a Poisson stream of ``rate`` jobs per simulated second,
    stopping after ``n_jobs`` arrivals.  The defaults are the golden
    service fixture's shape (3 tenants, 20 Montage-20 jobs, seed 42).
    """
    tenants: Tuple[TenantSpec, ...] = default_tenants(
        n_tenants, workflow, size, relative_deadline
    )
    return PoissonArrivals(
        rate, tenants, seed=seed, max_jobs=n_jobs
    )


def _replica_task(payload: Tuple[bytes, int], seed: int) -> str:
    """Worker-side replica: rebuild the service, run, return metrics JSON.

    The payload carries a pickled ``(arrivals, config)`` pair built in
    the parent; the runner-derived ``seed`` varies per replica, and each
    replica also re-seeds its arrival stream from it so replicas see
    independent traffic.
    """
    import pickle

    blob, replica_index = payload
    arrivals, config = pickle.loads(blob)
    if isinstance(arrivals, PoissonArrivals):
        arrivals = PoissonArrivals(
            arrivals.rate,
            arrivals.tenants,
            seed=derive_seed(seed, f"replica-arrivals:{replica_index}"),
            max_jobs=arrivals.max_jobs,
            max_time=arrivals.max_time,
        )
    service = SchedulerService(arrivals, config, seed=seed)
    return service.run().to_json()


def run_service_replicas(
    n_replicas: int,
    arrivals: ArrivalGenerator,
    config: Optional[ServiceConfig] = None,
    *,
    seed: int = 0,
    workers: Optional[int] = 1,
) -> List[str]:
    """Run ``n_replicas`` independent service runs; return metrics JSONs.

    Replica seeds derive from ``(seed, run id, replica index)`` through
    the parallel runner's standard mapping, so the returned list is
    bit-identical at any worker count (pinned by the determinism suite).
    """
    import pickle

    if n_replicas < 1:
        raise ValidationError(f"n_replicas must be >= 1, got {n_replicas}")
    config = config if config is not None else ServiceConfig()
    blob = pickle.dumps((arrivals, config))
    runner = ParallelRunner(workers=workers, run_id="service", seed=seed)
    tasks = [
        Task(key=("replica", i), fn=_replica_task, payload=(blob, i))
        for i in range(n_replicas)
    ]
    return [r.value for r in runner.run(tasks)]
