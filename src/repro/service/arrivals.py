"""Seeded arrival generators: Poisson traffic and exact trace replay.

Two modes produce the job stream a service run consumes:

- :class:`PoissonArrivals` — the classic open-arrival model: exponential
  inter-arrival times at a configured rate, each job assigned to a
  tenant by weighted draw and to a workflow by uniform draw over the
  tenant's catalog.  All randomness flows through one named
  :class:`~repro.util.rng.RngService` stream with a *fixed draw order
  per job* (gap, tenant, workflow), so a schedule is a pure function of
  ``(seed, rate, tenants, limits)``.
- :class:`TraceArrivals` — replays an explicit job list (e.g. a
  recorded production trace, or the JSON dump of a Poisson schedule),
  byte-exactly.

Both materialize the *entire* schedule up front
(:meth:`ArrivalGenerator.schedule`): continuous arrivals are still a
finite, inspectable, JSON-serializable object, which is what the golden
service fixture and the Hypothesis replay properties pin.
"""

from __future__ import annotations

import abc
import json
from pathlib import Path
from typing import List, Optional, Sequence, Tuple, Union

from repro.service.jobs import Job, TenantSpec, validate_tenants
from repro.util.rng import RngService, derive_seed
from repro.util.validate import ValidationError, check_positive

__all__ = [
    "ArrivalGenerator",
    "PoissonArrivals",
    "TraceArrivals",
    "schedule_to_json",
    "schedule_from_json",
    "load_trace",
    "save_trace",
]


class ArrivalGenerator(abc.ABC):
    """Produces the (finite) job stream of one service run."""

    @abc.abstractmethod
    def schedule(self) -> Tuple[Job, ...]:
        """The full arrival schedule, ordered by arrival time then id."""


class PoissonArrivals(ArrivalGenerator):
    """Open Poisson arrivals over a weighted multi-tenant population.

    Parameters
    ----------
    rate:
        Mean arrivals per simulated second (the Poisson intensity).
    tenants:
        Tenant traffic profiles; arrival shares follow their weights.
    seed:
        Root seed.  The stream name, the per-job draw order and the
        per-job workflow-seed derivation are all fixed, so the schedule
        is bit-identical across repeats and across processes.
    max_jobs:
        Stop after this many arrivals.
    max_time:
        Stop at this simulated horizon (jobs arriving later are never
        generated).  At least one of the two limits is required.
    """

    def __init__(
        self,
        rate: float,
        tenants: Sequence[TenantSpec],
        *,
        seed: int = 0,
        max_jobs: Optional[int] = None,
        max_time: Optional[float] = None,
    ) -> None:
        self.rate = check_positive("rate", rate)
        self.tenants = validate_tenants(tenants)
        self.seed = int(seed)
        if max_jobs is None and max_time is None:
            raise ValidationError(
                "PoissonArrivals needs max_jobs and/or max_time"
            )
        if max_jobs is not None and max_jobs < 1:
            raise ValidationError(f"max_jobs must be >= 1, got {max_jobs}")
        if max_time is not None:
            check_positive("max_time", max_time)
        self.max_jobs = max_jobs
        self.max_time = max_time

    def schedule(self) -> Tuple[Job, ...]:
        rng = RngService(self.seed).stream("service-arrivals")
        weights = [t.weight for t in self.tenants]
        total_weight = sum(weights)
        jobs: List[Job] = []
        now = 0.0
        job_id = 0
        while self.max_jobs is None or job_id < self.max_jobs:
            # fixed per-job draw order: gap, tenant, workflow choice
            now += float(rng.exponential(1.0 / self.rate))
            if self.max_time is not None and now > self.max_time:
                break
            pick = float(rng.random()) * total_weight
            tenant = self.tenants[-1]
            acc = 0.0
            for spec, w in zip(self.tenants, weights):
                acc += w
                if pick < acc:
                    tenant = spec
                    break
            wf_name, wf_size = tenant.workflows[
                int(rng.integers(len(tenant.workflows)))
            ]
            deadline = (
                None
                if tenant.relative_deadline is None
                else now + tenant.relative_deadline
            )
            jobs.append(
                Job(
                    job_id=job_id,
                    tenant=tenant.name,
                    workflow=wf_name,
                    size=wf_size,
                    arrival_time=now,
                    workflow_seed=derive_seed(self.seed, f"job:{job_id}"),
                    deadline=deadline,
                )
            )
            job_id += 1
        return tuple(jobs)


class TraceArrivals(ArrivalGenerator):
    """Replay an explicit job list exactly (trace-driven mode).

    The jobs must be ordered by non-decreasing arrival time with unique
    ids; :func:`load_trace` reads the JSON schedule format written by
    :func:`save_trace` / :func:`schedule_to_json`.
    """

    def __init__(self, jobs: Sequence[Job]) -> None:
        ordered = list(jobs)
        ids = [j.job_id for j in ordered]
        if len(set(ids)) != len(ids):
            raise ValidationError("trace job ids must be unique")
        for prev, cur in zip(ordered, ordered[1:]):
            if cur.arrival_time < prev.arrival_time:
                raise ValidationError(
                    f"trace arrivals must be non-decreasing in time: job "
                    f"{cur.job_id} at {cur.arrival_time} after job "
                    f"{prev.job_id} at {prev.arrival_time}"
                )
        self._jobs: Tuple[Job, ...] = tuple(ordered)

    def schedule(self) -> Tuple[Job, ...]:
        return self._jobs


# -- JSON schedule I/O ------------------------------------------------------


def schedule_to_json(jobs: Sequence[Job]) -> str:
    """Canonical JSON form of an arrival schedule (sorted keys)."""
    return json.dumps(
        {"version": 1, "jobs": [j.to_dict() for j in jobs]},
        sort_keys=True,
        indent=1,
    )


def schedule_from_json(text: str) -> Tuple[Job, ...]:
    """Inverse of :func:`schedule_to_json`."""
    data = json.loads(text)
    if not isinstance(data, dict) or "jobs" not in data:
        raise ValidationError("arrival trace JSON must have a 'jobs' list")
    return tuple(Job.from_dict(d) for d in data["jobs"])


def save_trace(jobs: Sequence[Job], path: Union[str, Path]) -> None:
    """Write a schedule as an arrival-trace JSON file."""
    Path(path).write_text(schedule_to_json(jobs) + "\n", encoding="utf-8")


def load_trace(path: Union[str, Path]) -> TraceArrivals:
    """Load an arrival-trace JSON file as a :class:`TraceArrivals`."""
    return TraceArrivals(
        schedule_from_json(Path(path).read_text(encoding="utf-8"))
    )
