"""repro.service — the streaming multi-tenant scheduler service.

Turns the one-shot simulator into a continuously-loaded service: seeded
Poisson or trace-driven job arrivals (:mod:`repro.service.arrivals`)
multiplexed over one shared VM fleet by a global event loop
(:mod:`repro.service.timeline`) under pluggable admission/fairness
policies (:mod:`repro.service.policies`), reporting throughput,
utilization and latency percentiles (:mod:`repro.service.metrics`).
Driven by the ``repro serve`` CLI subcommand; see ``docs/service.md``
for the arrival model, the policy catalog, the metrics JSON schema and
the determinism contract.
"""

from repro.service.arrivals import (
    ArrivalGenerator,
    PoissonArrivals,
    TraceArrivals,
    load_trace,
    save_trace,
    schedule_from_json,
    schedule_to_json,
)
from repro.service.jobs import Job, TenantSpec, default_tenants
from repro.service.metrics import JobRecord, ServiceResult, percentile
from repro.service.policies import (
    DeadlinePolicy,
    FairSharePolicy,
    FifoPolicy,
    SchedulingPolicy,
    available_policies,
    make_policy,
)
from repro.service.service import (
    SchedulerService,
    ServiceConfig,
    reference_scenario,
    run_service_replicas,
)
from repro.service.timeline import (
    FleetTimeline,
    JobRun,
    ServiceError,
    ServicePending,
    ServiceView,
)

__all__ = [
    "ArrivalGenerator",
    "DeadlinePolicy",
    "FairSharePolicy",
    "FifoPolicy",
    "FleetTimeline",
    "Job",
    "JobRecord",
    "JobRun",
    "PoissonArrivals",
    "SchedulerService",
    "SchedulingPolicy",
    "ServiceConfig",
    "ServiceError",
    "ServicePending",
    "ServiceResult",
    "ServiceView",
    "TenantSpec",
    "TraceArrivals",
    "available_policies",
    "default_tenants",
    "load_trace",
    "make_policy",
    "percentile",
    "reference_scenario",
    "run_service_replicas",
    "save_trace",
    "schedule_from_json",
    "schedule_to_json",
]
