"""Job and tenant descriptions for the streaming scheduler service.

A :class:`Job` is one workflow-execution request arriving at the
service: *which* workflow (a registry name + size + generation seed),
*whose* it is (a tenant label, the unit of fairness accounting), *when*
it arrives (simulated seconds) and optionally *by when* it should finish
(an absolute simulated deadline consumed by the deadline-aware policy).

Jobs are plain frozen data — all randomness happens in the arrival
generators (:mod:`repro.service.arrivals`), and all execution state
lives in the fleet timeline (:mod:`repro.service.timeline`) — so a job
list round-trips losslessly through JSON, which is what makes the
trace-driven arrival mode exact.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, List, Mapping, Optional, Sequence, Tuple

from repro.util.validate import ValidationError, check_non_negative

__all__ = ["Job", "TenantSpec", "default_tenants"]


@dataclass(frozen=True)
class Job:
    """One workflow-execution request.

    Attributes
    ----------
    job_id:
        Unique id within a service run (assigned in arrival order).
    tenant:
        Fairness-accounting label; tenants compete for the shared fleet.
    workflow:
        Workflow-registry name (``make_workflow(workflow, size, seed)``).
    size:
        Exact activation count of the generated DAG.
    arrival_time:
        Simulated second the job enters the service.
    workflow_seed:
        Seed for the DAG's runtimes/file sizes, derived by the arrival
        generator from the service seed so traces replay exactly.
    deadline:
        Optional *absolute* simulated time the job should finish by
        (``None`` = no deadline).  Only the deadline-aware policy reads
        it; metrics report deadline hits for any job that has one.
    """

    job_id: int
    tenant: str
    workflow: str
    size: int
    arrival_time: float
    workflow_seed: int
    deadline: Optional[float] = None

    def __post_init__(self) -> None:
        if self.job_id < 0:
            raise ValidationError(f"job_id must be >= 0, got {self.job_id}")
        if not self.tenant:
            raise ValidationError("tenant must be a non-empty string")
        if self.size < 1:
            raise ValidationError(f"size must be >= 1, got {self.size}")
        check_non_negative("arrival_time", self.arrival_time)
        if self.deadline is not None and self.deadline < self.arrival_time:
            raise ValidationError(
                f"job {self.job_id}: deadline {self.deadline} precedes "
                f"arrival {self.arrival_time}"
            )

    def to_dict(self) -> Dict[str, Any]:
        """JSON-ready field dump (floats kept exact)."""
        return {
            "job_id": self.job_id,
            "tenant": self.tenant,
            "workflow": self.workflow,
            "size": self.size,
            "arrival_time": self.arrival_time,
            "workflow_seed": self.workflow_seed,
            "deadline": self.deadline,
        }

    @staticmethod
    def from_dict(data: Mapping[str, Any]) -> "Job":
        """Inverse of :meth:`to_dict` (exact round trip)."""
        deadline = data.get("deadline")
        return Job(
            job_id=int(data["job_id"]),
            tenant=str(data["tenant"]),
            workflow=str(data["workflow"]),
            size=int(data["size"]),
            arrival_time=float(data["arrival_time"]),
            workflow_seed=int(data["workflow_seed"]),
            deadline=None if deadline is None else float(deadline),
        )


@dataclass(frozen=True)
class TenantSpec:
    """One tenant's traffic profile for the Poisson arrival generator.

    Attributes
    ----------
    name:
        Tenant label (must be unique within a generator).
    weight:
        Relative share of the arrival stream (weights need not sum to 1).
    workflows:
        ``(registry name, size)`` choices; one is drawn uniformly per
        job.
    relative_deadline:
        Optional seconds-after-arrival deadline stamped on every job of
        this tenant (``None`` = no deadlines).
    """

    name: str
    weight: float = 1.0
    workflows: Tuple[Tuple[str, int], ...] = (("montage", 20),)
    relative_deadline: Optional[float] = None

    def __post_init__(self) -> None:
        if not self.name:
            raise ValidationError("tenant name must be non-empty")
        if self.weight <= 0:
            raise ValidationError(
                f"tenant {self.name!r}: weight must be > 0, got {self.weight}"
            )
        if not self.workflows:
            raise ValidationError(
                f"tenant {self.name!r}: needs at least one workflow choice"
            )
        if self.relative_deadline is not None and self.relative_deadline <= 0:
            raise ValidationError(
                f"tenant {self.name!r}: relative_deadline must be > 0"
            )


def default_tenants(
    n: int,
    workflow: str = "montage",
    size: int = 20,
    relative_deadline: Optional[float] = None,
) -> Tuple[TenantSpec, ...]:
    """``n`` equal-weight tenants sharing one workflow profile.

    The reference scenario shape: ``tenant-0 .. tenant-{n-1}``, uniform
    weights, each submitting ``workflow`` DAGs of ``size`` activations.
    """
    if n < 1:
        raise ValidationError(f"need at least one tenant, got {n}")
    return tuple(
        TenantSpec(
            name=f"tenant-{i}",
            weight=1.0,
            workflows=((workflow, size),),
            relative_deadline=relative_deadline,
        )
        for i in range(n)
    )


def validate_tenants(tenants: Sequence[TenantSpec]) -> Tuple[TenantSpec, ...]:
    """Check tenant-name uniqueness and return the specs as a tuple."""
    names: List[str] = [t.name for t in tenants]
    if len(set(names)) != len(names):
        raise ValidationError(f"duplicate tenant names in {names}")
    if not names:
        raise ValidationError("need at least one tenant")
    return tuple(tenants)
