"""Command-line interface: ``python -m repro <command> ...``.

Subcommands cover the library's main entry points so the paper's
experiments can be driven without writing Python:

- ``workflow``  — generate a benchmark workflow, print its profile,
  optionally export it as Pegasus DAX or SciCumulus XML;
- ``simulate``  — run one scheduler on a workflow/fleet in the simulator
  and print the result (optionally a Gantt chart);
- ``learn``     — run ReASSIgN (Algorithm 2) and print/save the plan;
- ``pipeline``  — the full SciCumulus-RL pipeline (learn + execute on the
  simulated cloud, with provenance);
- ``table``     — regenerate one of the paper's tables (1-5);
- ``serve``     — the streaming multi-tenant scheduler service:
  continuous (Poisson or trace-driven) job arrivals multiplexed over one
  shared fleet, with throughput/utilization/latency metrics.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from repro.core.reassign import ReassignParams
from repro.dag.analysis import profile_dag
from repro.dag.dax import write_dax
from repro.experiments.environments import fleet_for, fleet_spec_for, render_table1
from repro.schedulers import (
    FcfsScheduler,
    GreedyOnlineScheduler,
    HeftScheduler,
    MaxMinScheduler,
    MctScheduler,
    MinMinScheduler,
    OlbScheduler,
    PlanFollowingScheduler,
    RandomScheduler,
    RoundRobinScheduler,
    SufferageScheduler,
)
from repro.scicumulus.swfms import SciCumulusRL
from repro.scicumulus.xml_spec import workflow_to_xml
from repro.sim.kernel import EpisodeKernel
from repro.sim.trace import gantt_text
from repro.util.tables import format_hms, render_table
from repro.workflows.registry import available_workflows, make_workflow

__all__ = ["main", "build_parser"]

_STATIC = {
    "heft": HeftScheduler,
    "minmin": MinMinScheduler,
    "maxmin": MaxMinScheduler,
    "sufferage": SufferageScheduler,
    "mct": MctScheduler,
    "olb": OlbScheduler,
}
_ONLINE = {
    "fcfs": FcfsScheduler,
    "roundrobin": RoundRobinScheduler,
    # seeded from --seed at construction time (see _cmd_simulate) so one
    # root seed governs the whole run
    "random": lambda seed=0: RandomScheduler(seed=seed),
    "greedy": GreedyOnlineScheduler,
}


def _make_online_scheduler(name: str, seed: int):
    """Instantiate an online scheduler, plumbing the run seed through."""
    factory = _ONLINE[name]
    if name == "random":
        return factory(seed=seed)
    return factory()


def _batch_arg(value: str) -> int:
    """Parse/validate ``--batch``: a clean error instead of a traceback."""
    try:
        batch = int(value)
    except ValueError:
        raise argparse.ArgumentTypeError(
            f"batch must be an integer >= 1, got {value!r}"
        )
    if batch < 1:
        raise argparse.ArgumentTypeError(f"batch must be >= 1, got {batch}")
    return batch


def _actors_arg(value: str) -> int:
    """Parse/validate ``--actors``: a clean error instead of a traceback."""
    try:
        actors = int(value)
    except ValueError:
        raise argparse.ArgumentTypeError(
            f"actors must be an integer >= 1, got {value!r}"
        )
    if actors < 1:
        raise argparse.ArgumentTypeError(f"actors must be >= 1, got {actors}")
    return actors


def _resolve_parallelism(parser: argparse.ArgumentParser, args) -> None:
    """Validate the ``--actors`` / ``--batch`` / ``--workers`` interplay.

    One place for every subcommand, so the rules (and the error wording)
    cannot drift between ``learn``, ``sweep`` and ``ensemble``:

    - ``--actors N`` and ``--batch B`` *compose*: with actors, B is the
      number of chained episodes each actor rolls out per speculative
      wave chunk (the distributed engine drives B lockstep lanes per
      actor); without actors, B is the lockstep lane pack size.  Either
      way, every (N, B) pair is bit-identical to the serial learner.
    - ``--actors N`` (N > 1) and ``--workers W`` (W != 1) are mutually
      exclusive where both exist: nesting the per-run actor pool inside
      the per-run worker pool oversubscribes the host.

    ``--batch`` parses with ``default=None`` so an *explicit* value can
    be told apart from the per-command default (1 for ``learn``, 8 for
    ``sweep``/``ensemble``); with ``--actors`` given, an unspecified
    batch resolves to 1 (no speculation depth) instead of the default.
    """
    actors = getattr(args, "actors", None)
    if hasattr(args, "batch") and args.batch is None:
        if actors is not None and actors > 1:
            args.batch = 1
        else:
            args.batch = 1 if args.command == "learn" else 8
    if actors is None or actors == 1:
        return
    workers = getattr(args, "workers", 1)
    if workers != 1:
        parser.error(
            f"--actors {actors} cannot be combined with --workers "
            f"{workers}: the actor pool runs inside each learning run; "
            "use --workers for many independent runs OR --actors for one "
            "distributed run, not both"
        )


def build_parser() -> argparse.ArgumentParser:
    """Construct the argument parser (exposed for tests and docs)."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="ReASSIgN reproduction: RL scheduling of cloud workflows",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    def add_workflow_args(p):
        p.add_argument("--workflow", default="montage",
                       choices=available_workflows())
        p.add_argument("--size", type=int, default=None,
                       help="exact activation count (default: benchmark size)")
        p.add_argument("--seed", type=int, default=0)

    p = sub.add_parser("workflow", help="generate/describe a workflow")
    add_workflow_args(p)
    p.add_argument("--dax", metavar="PATH", help="write Pegasus DAX here")
    p.add_argument("--xml", metavar="PATH", help="write SciCumulus XML here")

    p = sub.add_parser("simulate", help="run one scheduler in the simulator")
    add_workflow_args(p)
    p.add_argument("--scheduler", default="heft",
                   choices=sorted(_STATIC) + sorted(_ONLINE))
    p.add_argument("--vcpus", type=int, default=16, choices=(16, 32, 64))
    p.add_argument("--gantt", action="store_true", help="print a Gantt chart")

    def add_batch_arg(p, what: str):
        p.add_argument(
            "--batch", type=_batch_arg, default=None, metavar="B",
            help=f"lockstep lanes per batched-engine task: up to B {what} "
                 "advance through one shared simulation kernel per step; "
                 "with --actors, B chained episodes per actor wave chunk "
                 "instead (results are bit-identical for every B; 1 = the "
                 "serial one-run-per-task path; default 8, or 1 with "
                 "--actors)",
        )

    def add_actors_arg(p, what: str):
        p.add_argument(
            "--actors", type=_actors_arg, default=None, metavar="N",
            help=f"distributed actor/learner engine: N speculative rollout "
                 f"actors per {what} feed one ordered replay learner; "
                 "composes with --batch B (B chained episodes per actor "
                 "wave chunk; results are bit-identical for every N and B; "
                 "mutually exclusive with --workers != 1)",
        )

    p = sub.add_parser(
        "learn",
        help="run ReASSIgN (Algorithm 2) through the batched engine",
    )
    add_workflow_args(p)
    p.add_argument("--vcpus", type=int, default=16, choices=(16, 32, 64))
    p.add_argument("--alpha", type=float, default=0.5)
    p.add_argument("--gamma", type=float, default=1.0)
    p.add_argument("--epsilon", type=float, default=0.1)
    p.add_argument("--episodes", type=int, default=100)
    p.add_argument("--plan-out", metavar="PATH", help="write plan JSON here")
    p.add_argument(
        "--batch", type=_batch_arg, default=None, metavar="B",
        help="batched-engine lane budget; a single learn run always "
             "occupies one lane, and any B >= 1 yields bit-identical "
             "results; with --actors, B chained episodes per actor wave "
             "chunk (the flag mirrors sweep/ensemble; default 1)",
    )
    add_actors_arg(p, "run")

    p = sub.add_parser("pipeline", help="full SciCumulus-RL pipeline")
    add_workflow_args(p)
    p.add_argument("--vcpus", type=int, default=16, choices=(16, 32, 64))
    p.add_argument("--scheduler", default="reassign",
                   choices=["reassign"] + sorted(_STATIC))
    p.add_argument("--episodes", type=int, default=100)
    p.add_argument("--provenance", metavar="PATH",
                   help="SQLite provenance DB path (default in-memory)")

    def add_workers_arg(p):
        p.add_argument(
            "--workers", type=int, default=1, metavar="N",
            help="worker processes for independent runs "
                 "(1 = serial, 0 = all cores; default 1)",
        )

    p = sub.add_parser("table", help="regenerate a paper table")
    p.add_argument("number", type=int, choices=(1, 2, 3, 4, 5))
    p.add_argument("--episodes", type=int, default=100)
    p.add_argument("--seed", type=int, default=1)
    add_workers_arg(p)

    p = sub.add_parser(
        "sweep",
        help="run the Tables II/III sweep on the batched lockstep engine "
             "(optionally reduced)",
    )
    p.add_argument("--episodes", type=int, default=100)
    p.add_argument("--seed", type=int, default=1)
    p.add_argument("--vcpus", type=int, nargs="+", default=[16, 32, 64],
                   choices=(16, 32, 64), metavar="V")
    p.add_argument("--grid", type=float, nargs="+", default=None, metavar="X",
                   help="parameter values for alpha/gamma/epsilon "
                        "(default: the paper's 0.1 0.5 1.0)")
    p.add_argument("--timing", choices=("wall", "simulated"), default="wall",
                   help="Table II metric: wall clock or the deterministic "
                        "simulated learning time")
    add_workers_arg(p)
    add_batch_arg(p, "grid cells")
    add_actors_arg(p, "grid cell")

    p = sub.add_parser("ensemble",
                       help="learn plans for a workflow ensemble campaign")
    p.add_argument("--instances", type=int, default=4)
    p.add_argument("--size", type=int, default=25,
                   help="activations per ensemble member")
    p.add_argument("--vcpus", type=int, default=16, choices=(16, 32, 64))
    p.add_argument("--episodes", type=int, default=50)
    p.add_argument("--seed", type=int, default=0)
    add_workers_arg(p)
    add_batch_arg(p, "ensemble members")
    add_actors_arg(p, "ensemble member")

    p = sub.add_parser(
        "serve",
        help="run the streaming multi-tenant scheduler service",
    )
    p.add_argument("--seed", type=int, default=42)
    p.add_argument("--policy", default="fifo",
                   choices=("fifo", "fair", "deadline"))
    p.add_argument("--vcpus", type=int, default=16, choices=(16, 32, 64))
    p.add_argument("--tenants", type=int, default=3,
                   help="equal-weight tenant count (Poisson mode)")
    p.add_argument("--jobs", type=int, default=20,
                   help="total arrivals to generate (Poisson mode)")
    p.add_argument("--rate", type=float, default=0.02,
                   help="mean arrivals per simulated second (Poisson mode)")
    p.add_argument("--workflow", default="montage",
                   choices=available_workflows())
    p.add_argument("--size", type=int, default=20,
                   help="activations per job's DAG")
    p.add_argument("--deadline", type=float, default=None, metavar="SECONDS",
                   help="relative deadline stamped on every job")
    p.add_argument("--max-in-flight", type=int, default=None, metavar="N",
                   help="admission-control cap on concurrent jobs")
    p.add_argument("--horizon", type=float, default=1e9,
                   help="hard simulated-time safety limit")
    p.add_argument("--trace", metavar="PATH",
                   help="replay this arrival-trace JSON instead of Poisson")
    p.add_argument("--trace-out", metavar="PATH",
                   help="write the generated arrival schedule here")
    p.add_argument("--metrics-out", metavar="PATH",
                   help="write the metrics JSON (with per-job records) here")
    p.add_argument("--replicas", type=int, default=1, metavar="N",
                   help="independent derived-seed service runs")
    add_workers_arg(p)

    p = sub.add_parser("reproduce",
                       help="run every experiment and write a report")
    p.add_argument("--out", default="results", metavar="DIR")
    p.add_argument("--episodes", type=int, default=0,
                   help="0 = REPRO_EPISODES env or the paper's 100")
    p.add_argument("--seed", type=int, default=1)
    add_workers_arg(p)

    return parser


def _cmd_workflow(args) -> int:
    wf = make_workflow(args.workflow, args.size, seed=args.seed)
    profile = profile_dag(wf)
    print(render_table(["property", "value"], profile.rows(),
                       title=f"Workflow profile: {wf.name}"))
    if args.dax:
        write_dax(wf, args.dax)
        print(f"wrote DAX to {args.dax}")
    if args.xml:
        workflow_to_xml(wf, args.xml)
        print(f"wrote SciCumulus XML to {args.xml}")
    return 0


def _cmd_simulate(args) -> int:
    wf = make_workflow(args.workflow, args.size, seed=args.seed)
    fleet = fleet_for(args.vcpus)
    kernel = EpisodeKernel(wf, fleet)
    if args.scheduler in _STATIC:
        # static planners share the kernel's nominal-estimate cache
        plan = _STATIC[args.scheduler](kernel.estimate_model()).plan(wf, fleet)
        scheduler = PlanFollowingScheduler(plan)
    else:
        scheduler = _make_online_scheduler(args.scheduler, args.seed)
    result = kernel.run_episode(scheduler, args.seed)
    print(f"scheduler={args.scheduler} workflow={wf.name} "
          f"vcpus={args.vcpus}")
    print(f"state={result.final_state}")
    print(f"makespan={result.makespan:.2f}s ({format_hms(result.makespan)})")
    print(f"cost=${result.cost():.4f} (hourly billing)")
    if args.gantt:
        print(gantt_text(result))
    return 0 if result.succeeded else 1


def _cmd_learn(args) -> int:
    wf = make_workflow(args.workflow, args.size, seed=args.seed)
    fleet = fleet_for(args.vcpus)
    params = ReassignParams(alpha=args.alpha, gamma=args.gamma,
                            epsilon=args.epsilon, episodes=args.episodes)
    stats = None
    if args.actors is not None:
        from repro.core.distributed import learn_distributed

        stats = {}
        result = learn_distributed(
            wf, fleet, params, seed=args.seed,
            n_actors=args.actors, batch=args.batch, stats_out=stats,
        )
    else:
        from repro.core.batch import BatchSpec, learn_batch

        # one run = one lane of the batched engine (bit-identical to the
        # serial ReassignLearner.learn() path for any --batch value)
        spec = BatchSpec(workflow=wf, vms=fleet, params=params,
                         seed=args.seed)
        result = learn_batch([spec])[0]
    print(f"learned {wf.name} on {args.vcpus} vCPUs [{params.label()}]")
    if stats is not None:
        rate = stats["speculative_hit_rate"]
        spec = (
            f", hit rate={rate:.2f}" if rate is not None
            else ", no speculation"
        )
        print(f"actors            = {stats['n_actors']} "
              f"(batch={stats['batch']}, mode={stats['mode']}, "
              f"waves={stats['waves']}{spec})")
    print(f"learning time     = {result.learning_time:.2f}s "
          f"({result.n_episodes} episodes)")
    print(f"first episode     = {result.episodes[0].makespan:.2f}s")
    print(f"best episode      = {result.best_episode.makespan:.2f}s")
    print(f"plan makespan     = {result.simulated_makespan:.2f}s")
    if args.plan_out:
        with open(args.plan_out, "w", encoding="utf-8") as fh:
            fh.write(result.plan.to_json())
        print(f"wrote plan to {args.plan_out}")
    return 0


def _cmd_pipeline(args) -> int:
    from repro.scicumulus.provenance import ProvenanceStore

    wf = make_workflow(args.workflow, args.size, seed=args.seed)
    store = ProvenanceStore(args.provenance) if args.provenance else None
    swfms = SciCumulusRL(provenance=store, seed=args.seed)
    spec = fleet_spec_for(args.vcpus)
    if args.scheduler == "reassign":
        report = swfms.run_workflow(
            wf, spec, "reassign",
            ReassignParams(episodes=args.episodes),
        )
    else:
        report = swfms.run_workflow(wf, spec, _STATIC[args.scheduler]())
    print(f"scheduler        = {report.scheduler}")
    print(f"fleet            = {report.fleet}")
    print(f"deploy time      = {report.deploy_time:.1f}s")
    if report.learning_time:
        print(f"learning time    = {report.learning_time:.2f}s")
        print(f"sim makespan     = {report.simulated_makespan:.2f}s")
    print(f"execution time   = {format_hms(report.total_execution_time)}")
    print(f"cost             = ${report.cost:.4f}")
    return 0 if report.execution.succeeded else 1


def _cmd_table(args) -> int:
    if args.number == 1:
        print(render_table1())
        return 0
    if args.number in (2, 3):
        from repro.experiments.sweeps import run_paper_sweep

        sweep = run_paper_sweep(episodes=args.episodes, seed=args.seed,
                                workers=args.workers)
        print(sweep.render_table2() if args.number == 2
              else sweep.render_table3())
        return 0
    if args.number == 4:
        from repro.experiments.table4 import render_table4, run_table4

        print(render_table4(run_table4(episodes=args.episodes,
                                       seed=args.seed)))
        return 0
    from repro.experiments.table5 import render_table5, run_table5

    print(render_table5(run_table5(episodes=args.episodes, seed=args.seed)))
    return 0


def _cmd_sweep(args) -> int:
    from repro.core.sweep import PAPER_GRID
    from repro.experiments.sweeps import run_paper_sweep

    grid = tuple(args.grid) if args.grid else PAPER_GRID

    def progress(done, total, result):
        print(f"\r[{done}/{total}] cells complete", end="", flush=True)

    sweep = run_paper_sweep(
        vcpu_fleets=tuple(args.vcpus),
        episodes=args.episodes,
        seed=args.seed,
        grid=grid,
        workers=args.workers,
        timing=args.timing,
        progress=progress,
        batch=args.batch,
        actors=args.actors or 1,
    )
    print()
    print(sweep.render_table2())
    print()
    print(sweep.render_table3())
    return 0


def _cmd_ensemble(args) -> int:
    from repro.workflows.ensembles import run_ensemble_campaign

    results = run_ensemble_campaign(
        args.instances,
        n_activations=args.size,
        vcpus=args.vcpus,
        episodes=args.episodes,
        seed=args.seed,
        workers=args.workers,
        batch=args.batch,
        actors=args.actors or 1,
    )
    print(render_table(
        ["member", "workflow", "seed", "simulated makespan [s]"],
        [(r.member, r.workflow_name, r.seed, round(r.simulated_makespan, 2))
         for r in results],
        title=(f"Ensemble campaign: {args.instances} x {args.size} "
               f"activations on {args.vcpus} vCPUs"),
    ))
    return 0


def _cmd_serve(args) -> int:
    import json as _json

    from repro.service import (
        SchedulerService,
        ServiceConfig,
        load_trace,
        reference_scenario,
        run_service_replicas,
        save_trace,
    )

    if args.trace:
        arrivals = load_trace(args.trace)
    else:
        arrivals = reference_scenario(
            seed=args.seed,
            n_tenants=args.tenants,
            n_jobs=args.jobs,
            rate=args.rate,
            workflow=args.workflow,
            size=args.size,
            relative_deadline=args.deadline,
        )
    if args.trace_out:
        save_trace(arrivals.schedule(), args.trace_out)
        print(f"wrote arrival trace to {args.trace_out}")
    config = ServiceConfig(
        vcpus=args.vcpus,
        policy=args.policy,
        max_in_flight=args.max_in_flight,
        horizon=args.horizon,
    )

    if args.replicas > 1:
        metrics = run_service_replicas(
            args.replicas, arrivals, config,
            seed=args.seed, workers=args.workers,
        )
        rows = []
        for i, text in enumerate(metrics):
            m = _json.loads(text)
            rows.append((
                i, m["n_jobs"], round(m["end_time"], 1),
                round(m["utilization"], 3),
                round(m["p50_latency"], 1), round(m["p99_latency"], 1),
            ))
        print(render_table(
            ["replica", "jobs", "end [s]", "util", "p50 [s]", "p99 [s]"],
            rows,
            title=(f"Service replicas: policy={args.policy} "
                   f"vcpus={args.vcpus} seed={args.seed}"),
        ))
        if args.metrics_out:
            with open(args.metrics_out, "w", encoding="utf-8") as fh:
                fh.write(_json.dumps(
                    [_json.loads(t) for t in metrics],
                    sort_keys=True, indent=1,
                ) + "\n")
            print(f"wrote replica metrics to {args.metrics_out}")
        return 0

    result = SchedulerService(arrivals, config, seed=args.seed).run()
    print(f"policy={args.policy} vcpus={args.vcpus} seed={args.seed} "
          f"tenants={len(result.tenants)}")
    print(f"jobs completed    = {result.n_jobs} "
          f"({result.n_failed} failed)")
    print(f"simulated horizon = {result.end_time:.1f}s "
          f"({format_hms(result.end_time)})")
    print(f"throughput        = {result.throughput_jobs():.4f} jobs/s, "
          f"{result.throughput_activations():.2f} activations/s (simulated)")
    print(f"fleet utilization = {100.0 * result.utilization():.1f}%")
    print(f"job latency       = p50 {result.latency_percentile(50):.1f}s, "
          f"p99 {result.latency_percentile(99):.1f}s, "
          f"mean {result.mean_latency():.1f}s")
    hit_rate = result.deadline_hit_rate()
    if hit_rate is not None:
        print(f"deadline hit rate = {100.0 * hit_rate:.1f}%")
    tenant_rows = [
        (name, int(stats["jobs"]),
         round(stats.get("mean_latency", 0.0), 1),
         round(stats.get("p99_latency", 0.0), 1))
        for name, stats in result.tenant_summary().items()
    ]
    print(render_table(
        ["tenant", "jobs", "mean latency [s]", "p99 latency [s]"],
        tenant_rows,
    ))
    if args.metrics_out:
        with open(args.metrics_out, "w", encoding="utf-8") as fh:
            fh.write(result.to_json(include_jobs=True) + "\n")
        print(f"wrote metrics to {args.metrics_out}")
    return 0 if result.n_failed == 0 else 1


def _cmd_reproduce(args) -> int:
    from repro.experiments.report import generate_report

    report = generate_report(args.out, episodes=args.episodes, seed=args.seed,
                             workers=args.workers)
    print(report.read_text())
    print(f"artifacts written to {args.out}/")
    return 0


_COMMANDS = {
    "workflow": _cmd_workflow,
    "simulate": _cmd_simulate,
    "learn": _cmd_learn,
    "pipeline": _cmd_pipeline,
    "table": _cmd_table,
    "sweep": _cmd_sweep,
    "ensemble": _cmd_ensemble,
    "serve": _cmd_serve,
    "reproduce": _cmd_reproduce,
}


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point; returns the process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)
    _resolve_parallelism(parser, args)
    return _COMMANDS[args.command](args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
