"""The parallel experiment runner.

Every campaign in this repository — the 81-run (α, γ, ε) × fleet sweep
behind Tables II/III, the ablation arms, the seed-sensitivity study and
workflow-ensemble campaigns — decomposes into *independent* simulation or
learning runs.  :class:`ParallelRunner` fans such runs out over a process
pool while keeping the results **bit-identical** to a serial execution:

- **Deterministic seeding.**  Each task either carries an explicit seed
  or receives one derived from ``(root seed, run id, task key)`` via
  :func:`repro.util.rng.derive_seed`.  The mapping depends only on the
  task's identity — never on worker count, scheduling order or wall
  clock — so adding workers cannot change any stochastic outcome.
- **Ordered collection.**  Results are returned in submission order
  regardless of completion order (:meth:`ParallelRunner.run`), or
  streamed in submission order as they become available
  (:meth:`ParallelRunner.imap`).
- **Failure and timing capture.**  Worker exceptions never kill the
  campaign: each :class:`TaskResult` records the traceback and the
  task's wall-clock duration; ``run(raise_on_error=True)`` (the
  default) re-raises a :class:`RunnerError` summarizing all failures
  after the whole batch has been collected.
- **Serial fallback.**  ``workers=1`` executes everything in-process
  through the *same* task-invocation code path — the debugging mode,
  and the reference the determinism tests compare against.

Task functions must be **picklable** (module-level functions) when
``workers > 1``; payloads and return values cross process boundaries, so
they must be picklable too.  Every experiment entry point in
``repro.experiments`` follows this contract.
"""

from __future__ import annotations

import os
import time
import traceback
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
from dataclasses import dataclass, field
from typing import (
    Any,
    Callable,
    Dict,
    Iterable,
    Iterator,
    List,
    Optional,
    Sequence,
    Tuple,
)

from repro.util.rng import derive_seed
from repro.util.validate import ValidationError

__all__ = [
    "Task",
    "TaskResult",
    "RunnerError",
    "ParallelRunner",
    "canonical_key",
    "task_seed",
    "pack_payloads",
    "resolve_workers",
    "active_kernel_fingerprint",
    "shared_kernel",
    "kernel_cache_stats",
    "clear_kernel_cache",
]

#: ``fn(payload, seed) -> value`` — the task-function contract.
TaskFn = Callable[[Any, int], Any]

#: ``progress(done, total, result)`` — invoked after every completion.
ProgressFn = Callable[[int, int, "TaskResult"], None]


def canonical_key(key: Any) -> str:
    """A stable string form of a task key.

    Tuples/lists are flattened recursively; floats use ``repr`` so that
    e.g. ``0.1`` and ``0.10000000000000001`` map to the same label iff
    they are the same float.  The result feeds :func:`derive_seed`, so it
    must not depend on ``PYTHONHASHSEED`` or insertion order — it never
    uses ``hash()``.
    """
    if isinstance(key, (tuple, list)):
        return "(" + ",".join(canonical_key(k) for k in key) + ")"
    if isinstance(key, float):
        return repr(key)
    if isinstance(key, (str, int, bool)) or key is None:
        return str(key)
    raise ValidationError(
        f"task keys must be built from str/int/float/bool/None/tuples, "
        f"got {type(key).__name__}"
    )


def task_seed(root_seed: int, run_id: str, key: Any) -> int:
    """The deterministic ``(run_id, task_key) -> seed`` mapping.

    Stable across processes, worker counts and Python versions (it is a
    SHA-256 of the canonical label, not ``hash()``).
    """
    return derive_seed(int(root_seed), f"task:{run_id}:{canonical_key(key)}")


def pack_payloads(items: Sequence[Any], size: int) -> List[Tuple[Any, ...]]:
    """Chunk per-item payloads into batch-task tuples of at most ``size``.

    The batched engine (:func:`repro.core.batch.learn_batch`) runs many
    lanes per task, so campaigns pack several per-item payloads into one
    task payload.  Chunks are consecutive, so flattening the per-task
    result lists restores the original item order — which is what keeps
    packed campaigns bit-identical to unpacked ones (each item still
    carries its own seed inside the payload).
    """
    if size < 1:
        raise ValidationError(f"batch size must be >= 1, got {size}")
    items = list(items)
    return [tuple(items[i : i + size]) for i in range(0, len(items), size)]


def resolve_workers(workers: Optional[int]) -> int:
    """Normalize a worker-count request.

    ``None`` reads the ``REPRO_WORKERS`` environment variable (defaulting
    to 1 — serial — so library behaviour never changes silently); ``0``
    or a negative count means "all cores".
    """
    if workers is None:
        raw = os.environ.get("REPRO_WORKERS", "").strip()
        workers = int(raw) if raw else 1
    workers = int(workers)
    if workers <= 0:
        workers = os.cpu_count() or 1
    return workers


@dataclass(frozen=True)
class Task:
    """One unit of independent work.

    Attributes
    ----------
    key:
        Stable identity of the task (hashable scalars/tuples).  Used for
        seed derivation and for labelling results — it must be unique
        within a batch.
    fn:
        Module-level callable invoked as ``fn(payload, seed)``.
    payload:
        Arbitrary picklable argument.
    seed:
        Explicit seed.  ``None`` lets the runner derive one from
        ``(root seed, run id, key)``.
    kernel_fingerprint:
        Optional structural digest of the simulation kernel the task
        will build (see :func:`repro.sim.kernel.kernel_fingerprint`).
        While the task runs, the digest is visible to the task body via
        :func:`active_kernel_fingerprint`; consumers that recognize it
        (e.g. :class:`~repro.core.reassign.ReassignLearner`) fetch their
        kernel from the worker's :func:`shared_kernel` cache, so a batch
        of tasks against the same configuration builds the kernel at
        most once per worker process instead of once per task.  Purely
        an optimization hint: ``None`` (default) opts out, and results
        are bit-identical either way.
    """

    key: Any
    fn: TaskFn
    payload: Any = None
    seed: Optional[int] = None
    kernel_fingerprint: Optional[str] = None


@dataclass
class TaskResult:
    """Outcome of one task: value or error, plus timing provenance."""

    key: Any
    index: int  #: position in the submitted batch
    value: Any = None
    error: Optional[str] = None  #: formatted traceback when the task raised
    duration: float = 0.0  #: wall-clock seconds inside the worker
    seed: int = 0  #: the seed the task actually ran with
    worker: int = 0  #: PID of the executing process

    @property
    def ok(self) -> bool:
        return self.error is None


class RunnerError(RuntimeError):
    """One or more tasks failed; carries every failed :class:`TaskResult`."""

    def __init__(self, failures: Sequence[TaskResult]) -> None:
        self.failures = list(failures)
        heads = []
        for f in self.failures[:3]:
            first_line = (f.error or "").strip().splitlines()[-1:]
            heads.append(f"{f.key!r}: {first_line[0] if first_line else '?'}")
        more = (
            f" (+{len(self.failures) - 3} more)" if len(self.failures) > 3 else ""
        )
        super().__init__(
            f"{len(self.failures)} task(s) failed — " + "; ".join(heads) + more
        )


# -- worker-side kernel cache ----------------------------------------------
#
# Module globals, so they live exactly as long as the worker process
# (with the default ``fork`` context each worker starts with an empty
# cache — the parent only ever *declares* fingerprints, it does not run
# tasks).  Bounded FIFO: sweeps interleave at most a few distinct
# configurations per batch.

_KERNEL_CACHE_LIMIT = 4
_KERNEL_CACHE: Dict[str, Any] = {}
_KERNEL_CACHE_BUILDS = 0
_KERNEL_CACHE_HITS = 0
_ACTIVE_KERNEL_FINGERPRINT: Optional[str] = None


def active_kernel_fingerprint() -> Optional[str]:
    """The ``kernel_fingerprint`` declared by the currently running task.

    ``None`` outside a task or when the task declared none.  Consumers
    must treat the value as a *hint* and verify it against their own
    recomputed fingerprint before adopting a shared kernel.
    """
    return _ACTIVE_KERNEL_FINGERPRINT


def shared_kernel(fingerprint: str, builder: Callable[[], Any]) -> Any:
    """This process's kernel for ``fingerprint``, building it on miss.

    The cache is keyed purely by the structural digest, so a hit is
    guaranteed to be a kernel an identically-configured task built.
    """
    global _KERNEL_CACHE_BUILDS, _KERNEL_CACHE_HITS
    kernel = _KERNEL_CACHE.get(fingerprint)
    if kernel is None:
        kernel = builder()
        if len(_KERNEL_CACHE) >= _KERNEL_CACHE_LIMIT:
            _KERNEL_CACHE.pop(next(iter(_KERNEL_CACHE)))
        _KERNEL_CACHE[fingerprint] = kernel
        _KERNEL_CACHE_BUILDS += 1
    else:
        _KERNEL_CACHE_HITS += 1
    return kernel


def kernel_cache_stats() -> Dict[str, int]:
    """This process's kernel-cache counters (for tests/diagnostics)."""
    return {
        "size": len(_KERNEL_CACHE),
        "builds": _KERNEL_CACHE_BUILDS,
        "hits": _KERNEL_CACHE_HITS,
    }


def clear_kernel_cache() -> None:
    """Drop this process's cached kernels and reset the counters."""
    global _KERNEL_CACHE_BUILDS, _KERNEL_CACHE_HITS
    _KERNEL_CACHE.clear()
    _KERNEL_CACHE_BUILDS = 0
    _KERNEL_CACHE_HITS = 0


def _execute_one(
    index: int,
    key: Any,
    fn: TaskFn,
    payload: Any,
    seed: int,
    kernel_fingerprint: Optional[str] = None,
) -> TaskResult:
    """Run one task, capturing result/error and timing.

    This is the single invocation path shared by the serial mode and the
    pool workers — the determinism guarantee depends on there being no
    behavioural difference between the two.
    """
    global _ACTIVE_KERNEL_FINGERPRINT
    started = time.perf_counter()
    _ACTIVE_KERNEL_FINGERPRINT = kernel_fingerprint
    try:
        value = fn(payload, seed)
        error = None
    except Exception:  # noqa: BLE001 - reported via TaskResult
        value = None
        error = traceback.format_exc()
    finally:
        _ACTIVE_KERNEL_FINGERPRINT = None
    return TaskResult(
        key=key,
        index=index,
        value=value,
        error=error,
        duration=time.perf_counter() - started,
        seed=seed,
        worker=os.getpid(),
    )


def _execute_chunk(
    chunk: List[Tuple[int, Any, TaskFn, Any, int, Optional[str]]]
) -> List[TaskResult]:
    """Worker-side entry point: run a chunk of tasks back to back."""
    return [_execute_one(*item) for item in chunk]


class ParallelRunner:
    """Fan independent tasks out over a process pool, deterministically.

    Parameters
    ----------
    workers:
        Process count.  ``1`` = serial in-process execution (the
        debugging/reference mode); ``0``/negative = all cores; ``None``
        = the ``REPRO_WORKERS`` environment variable, defaulting to 1.
    run_id:
        Label namespacing derived task seeds — two campaigns with the
        same root seed but different run ids get independent seeds.
    seed:
        Root seed for derived task seeds (tasks with explicit seeds are
        unaffected).
    chunk_size:
        Tasks shipped to a worker per round trip.  Raise it when tasks
        are very short relative to pickling overhead.
    progress:
        Optional ``progress(done, total, result)`` callback, invoked in
        the parent process in *completion* order.
    mp_context:
        ``multiprocessing`` start-method name; default ``fork`` where
        available (fast, shares the loaded library image) else
        ``spawn``.  Override with the ``REPRO_MP_CONTEXT`` environment
        variable.
    persistent:
        Keep one process pool alive across :meth:`run`/:meth:`imap`
        calls instead of building and tearing one down per call.  The
        workers — and their module-global kernel caches — survive
        between batches, which is what lets callers that dispatch many
        small waves (the distributed learner) pay the kernel build once
        per worker for the whole campaign.  With ``persistent=True``
        even ``workers=1`` runs through a real one-process pool (the
        point is the long-lived worker, not the parallelism).  Use as a
        context manager, or call :meth:`close` when done; after
        ``close()`` the next call lazily starts a fresh pool.

    Examples
    --------
    >>> def square(payload, seed):
    ...     return payload * payload
    >>> runner = ParallelRunner(workers=1, run_id="demo", seed=7)
    >>> [r.value for r in runner.run(
    ...     [Task(key=i, fn=square, payload=i) for i in range(4)])]
    [0, 1, 4, 9]
    """

    def __init__(
        self,
        workers: Optional[int] = None,
        *,
        run_id: str = "run",
        seed: int = 0,
        chunk_size: int = 1,
        progress: Optional[ProgressFn] = None,
        mp_context: Optional[str] = None,
        persistent: bool = False,
    ) -> None:
        self.workers = resolve_workers(workers)
        self.run_id = str(run_id)
        self.seed = int(seed)
        if chunk_size < 1:
            raise ValidationError("chunk_size must be >= 1")
        self.chunk_size = int(chunk_size)
        self.progress = progress
        if mp_context is None:
            mp_context = os.environ.get("REPRO_MP_CONTEXT", "").strip() or None
        self._mp_context = mp_context
        self.persistent = bool(persistent)
        self._executor: Optional[ProcessPoolExecutor] = None

    # -- seeding -------------------------------------------------------------

    def seed_for(self, key: Any) -> int:
        """The seed a task with ``key`` (and no explicit seed) will get."""
        return task_seed(self.seed, self.run_id, key)

    def _prepare(
        self, tasks: Sequence[Task]
    ) -> List[Tuple[int, Any, TaskFn, Any, int, Optional[str]]]:
        seen: Dict[str, Any] = {}
        prepared = []
        for index, t in enumerate(tasks):
            label = canonical_key(t.key)
            if label in seen:
                raise ValidationError(
                    f"duplicate task key {t.key!r} (canonical {label!r})"
                )
            seen[label] = t.key
            seed = t.seed if t.seed is not None else self.seed_for(t.key)
            prepared.append(
                (index, t.key, t.fn, t.payload, int(seed), t.kernel_fingerprint)
            )
        return prepared

    # -- execution -----------------------------------------------------------

    def run(
        self, tasks: Sequence[Task], *, raise_on_error: bool = True
    ) -> List[TaskResult]:
        """Execute every task; return results in submission order.

        With ``raise_on_error`` (default) a :class:`RunnerError` is
        raised after collection if any task failed; pass ``False`` to
        inspect per-task errors yourself.
        """
        results = list(self.imap(tasks))
        if raise_on_error:
            failures = [r for r in results if not r.ok]
            if failures:
                raise RunnerError(failures)
        return results

    def imap(self, tasks: Sequence[Task]) -> Iterator[TaskResult]:
        """Yield results in submission order as they become available.

        Like ``multiprocessing.Pool.imap``: lazy, ordered, chunked.  The
        progress callback still fires in completion order.
        """
        prepared = self._prepare(list(tasks))
        if not prepared:
            return
        # persistent mode always goes through a real pool, even at
        # workers=1: the long-lived worker process is the feature
        if self.workers == 1 and not self.persistent:
            yield from self._imap_serial(prepared)
        else:
            yield from self._imap_pool(prepared)

    def map_values(
        self,
        fn: TaskFn,
        payloads: Iterable[Any],
        *,
        keys: Optional[Sequence[Any]] = None,
    ) -> List[Any]:
        """Convenience: run ``fn`` over payloads, return values in order.

        Keys default to the payload index.  Raises on any task failure.
        """
        payloads = list(payloads)
        if keys is None:
            keys = list(range(len(payloads)))
        tasks = [Task(key=k, fn=fn, payload=p) for k, p in zip(keys, payloads)]
        return [r.value for r in self.run(tasks)]

    # -- serial path ---------------------------------------------------------

    def _imap_serial(self, prepared) -> Iterator[TaskResult]:
        total = len(prepared)
        for done, item in enumerate(prepared, start=1):
            result = _execute_one(*item)
            if self.progress is not None:
                self.progress(done, total, result)
            yield result

    # -- pool path -----------------------------------------------------------

    def _make_executor(self) -> ProcessPoolExecutor:
        import multiprocessing as mp

        name = self._mp_context
        if name is None:
            name = "fork" if "fork" in mp.get_all_start_methods() else "spawn"
        return ProcessPoolExecutor(
            max_workers=self.workers, mp_context=mp.get_context(name)
        )

    def _ensure_executor(self) -> ProcessPoolExecutor:
        """The persistent pool, started lazily (and after any close())."""
        if self._executor is None:
            self._executor = self._make_executor()
        return self._executor

    def close(self) -> None:
        """Shut the persistent pool down (idempotent; lazily restartable)."""
        if self._executor is not None:
            self._executor.shutdown()
            self._executor = None

    def __enter__(self) -> "ParallelRunner":
        return self

    def __exit__(self, *exc: Any) -> None:
        self.close()

    def _imap_pool(self, prepared) -> Iterator[TaskResult]:
        total = len(prepared)
        chunks = [
            prepared[i : i + self.chunk_size]
            for i in range(0, total, self.chunk_size)
        ]
        if self.persistent:
            yield from self._drain_pool(self._ensure_executor(), chunks, total)
        else:
            with self._make_executor() as pool:
                yield from self._drain_pool(pool, chunks, total)

    def _drain_pool(
        self, pool: ProcessPoolExecutor, chunks, total: int
    ) -> Iterator[TaskResult]:
        pending = {pool.submit(_execute_chunk, chunk) for chunk in chunks}
        buffered: Dict[int, TaskResult] = {}
        next_index = 0
        done_count = 0
        while pending:
            finished, pending = wait(pending, return_when=FIRST_COMPLETED)
            for future in finished:
                for result in future.result():
                    done_count += 1
                    if self.progress is not None:
                        self.progress(done_count, total, result)
                    buffered[result.index] = result
            # stream everything contiguous from the front
            while next_index in buffered:
                yield buffered.pop(next_index)
                next_index += 1
        while next_index in buffered:  # pragma: no cover - defensive
            yield buffered.pop(next_index)
            next_index += 1

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        persistent = ", persistent=True" if self.persistent else ""
        return (
            f"ParallelRunner(workers={self.workers}, run_id={self.run_id!r}, "
            f"seed={self.seed}, chunk_size={self.chunk_size}{persistent})"
        )
