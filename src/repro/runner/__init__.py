"""Parallel experiment fan-out with deterministic seeding.

See :mod:`repro.runner.parallel` for the full contract.  The short
version: build :class:`Task` objects with stable keys, hand them to a
:class:`ParallelRunner`, and get ordered, reproducible results back —
bit-identical whether ``workers`` is 1 or 64.
"""

from repro.runner.parallel import (
    ParallelRunner,
    RunnerError,
    Task,
    TaskResult,
    canonical_key,
    pack_payloads,
    resolve_workers,
    task_seed,
)

__all__ = [
    "ParallelRunner",
    "RunnerError",
    "Task",
    "TaskResult",
    "canonical_key",
    "pack_payloads",
    "resolve_workers",
    "task_seed",
]
