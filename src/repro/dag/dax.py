"""Pegasus DAX XML reading and writing.

The paper obtains Montage from the Pegasus *Workflow Generator* page, which
publishes workflows in the DAX (Directed Acyclic Graph in XML) format also
consumed by WorkflowSim.  This module parses the subset of DAX used by
those traces (``job`` elements with a ``runtime`` attribute and ``uses``
file links, plus explicit ``child``/``parent`` relations) and can write a
workflow back out, so synthetic workflows round-trip through the on-disk
format.
"""

from __future__ import annotations

import xml.etree.ElementTree as ET
from pathlib import Path
from typing import Dict, List, Union

from repro.dag.activation import Activation, File
from repro.dag.graph import Workflow
from repro.util.validate import ValidationError

__all__ = ["parse_dax", "parse_dax_file", "write_dax"]

_DAX_NS = "http://pegasus.isi.edu/schema/DAX"


def _strip_ns(tag: str) -> str:
    """Drop any ``{namespace}`` prefix from an element tag."""
    return tag.rsplit("}", 1)[-1]


def _job_numeric_id(raw: str) -> int:
    """Convert a DAX job id like ``ID00007`` to the integer 7."""
    digits = "".join(ch for ch in raw if ch.isdigit())
    if not digits:
        raise ValidationError(f"cannot derive a numeric id from job id {raw!r}")
    return int(digits)


def parse_dax(text: str, name: str = "dax-workflow") -> Workflow:
    """Parse DAX XML text into a :class:`~repro.dag.graph.Workflow`.

    File-implied dependencies and explicit ``child/parent`` relations are
    both honoured.
    """
    try:
        root = ET.fromstring(text)
    except ET.ParseError as exc:
        raise ValidationError(f"malformed DAX XML: {exc}") from exc
    if _strip_ns(root.tag) != "adag":
        raise ValidationError(f"expected <adag> root element, got <{root.tag}>")

    wf = Workflow(root.get("name", name))
    raw_to_numeric: Dict[str, int] = {}

    for elem in root:
        if _strip_ns(elem.tag) != "job":
            continue
        raw_id = elem.get("id")
        if raw_id is None:
            raise ValidationError("job element without an id attribute")
        activity = elem.get("name", "unknown")
        runtime_attr = elem.get("runtime")
        if runtime_attr is None:
            raise ValidationError(f"job {raw_id!r} missing runtime attribute")
        runtime = float(runtime_attr)

        inputs: List[File] = []
        outputs: List[File] = []
        for uses in elem:
            if _strip_ns(uses.tag) != "uses":
                continue
            fname = uses.get("file") or uses.get("name")
            if fname is None:
                raise ValidationError(f"uses element in job {raw_id!r} has no file")
            size = float(uses.get("size", "0"))
            link = (uses.get("link") or "").lower()
            f = File(name=fname, size_bytes=size)
            if link == "input":
                inputs.append(f)
            elif link == "output":
                outputs.append(f)
            else:
                raise ValidationError(
                    f"uses element for {fname!r} has unknown link {link!r}"
                )

        numeric = _job_numeric_id(raw_id)
        if numeric in wf:
            raise ValidationError(f"duplicate numeric job id {numeric} (from {raw_id!r})")
        raw_to_numeric[raw_id] = numeric
        wf.add_activation(
            Activation(
                id=numeric,
                activity=activity,
                runtime=max(runtime, 1e-9),
                inputs=tuple(inputs),
                outputs=tuple(outputs),
            )
        )

    for elem in root:
        if _strip_ns(elem.tag) != "child":
            continue
        child_raw = elem.get("ref")
        if child_raw not in raw_to_numeric:
            raise ValidationError(f"child ref {child_raw!r} names an unknown job")
        for parent in elem:
            if _strip_ns(parent.tag) != "parent":
                continue
            parent_raw = parent.get("ref")
            if parent_raw not in raw_to_numeric:
                raise ValidationError(f"parent ref {parent_raw!r} names an unknown job")
            wf.add_dependency(raw_to_numeric[parent_raw], raw_to_numeric[child_raw])

    # file-implied dependencies (some DAX exporters omit child elements)
    wf.infer_data_dependencies()
    wf.validate()
    return wf


def parse_dax_file(path: Union[str, Path], name: str = "") -> Workflow:
    """Parse a DAX file from disk."""
    path = Path(path)
    return parse_dax(path.read_text(encoding="utf-8"), name or path.stem)


def write_dax(workflow: Workflow, path: Union[str, Path, None] = None) -> str:
    """Serialize a workflow to DAX XML; optionally write it to ``path``.

    Returns the XML text.  Ids are written in the standard ``ID%05d``
    format so the output re-parses to the same numeric ids.
    """
    root = ET.Element(
        "adag",
        {
            "xmlns": _DAX_NS,
            "name": workflow.name,
            "jobCount": str(len(workflow)),
            "childCount": str(workflow.edge_count),
        },
    )
    for ac in workflow.activations:
        job = ET.SubElement(
            root,
            "job",
            {
                "id": f"ID{ac.id:05d}",
                "name": ac.activity,
                "runtime": f"{ac.runtime:.6f}",
            },
        )
        for f in ac.inputs:
            ET.SubElement(
                job,
                "uses",
                {"file": f.name, "link": "input", "size": f"{f.size_bytes:.0f}"},
            )
        for f in ac.outputs:
            ET.SubElement(
                job,
                "uses",
                {"file": f.name, "link": "output", "size": f"{f.size_bytes:.0f}"},
            )

    for child_id in workflow.activation_ids:
        parent_ids = workflow.parents(child_id)
        if not parent_ids:
            continue
        child = ET.SubElement(root, "child", {"ref": f"ID{child_id:05d}"})
        for pid in parent_ids:
            ET.SubElement(child, "parent", {"ref": f"ID{pid:05d}"})

    text = ET.tostring(root, encoding="unicode")
    if path is not None:
        Path(path).write_text(text, encoding="utf-8")
    return text
