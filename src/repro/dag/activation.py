"""Activations — the schedulable unit — and their state machine.

The paper defines the per-activation state set
``{ready, locked, running, successfully finished, finished with a failure}``
(§III-A).  :class:`ActivationState` encodes it, and :class:`Activation`
enforces the legal transitions so that a scheduler bug (e.g. dispatching a
locked activation) fails fast instead of silently corrupting a simulation.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Dict, FrozenSet, Optional, Tuple

from repro.util.validate import ValidationError, check_non_negative, check_positive

__all__ = ["ActivationState", "Activation", "File"]


class ActivationState(enum.Enum):
    """Lifecycle states of an activation (paper §III-A)."""

    LOCKED = "locked"  #: waiting on at least one unfinished dependency
    READY = "ready"  #: all dependencies satisfied; eligible for scheduling
    RUNNING = "running"  #: currently executing on some VM
    FINISHED = "successfully finished"  #: terminal, success
    FAILED = "finished with a failure"  #: terminal, failure

    @property
    def terminal(self) -> bool:
        """True for the two terminal states."""
        return self in (ActivationState.FINISHED, ActivationState.FAILED)


# Legal transitions of the activation state machine.  LOCKED->RUNNING is not
# legal: an activation must become READY (dependencies met) before dispatch.
_TRANSITIONS: Dict[ActivationState, FrozenSet[ActivationState]] = {
    ActivationState.LOCKED: frozenset(
        {ActivationState.READY, ActivationState.FAILED}
    ),
    ActivationState.READY: frozenset(
        {ActivationState.RUNNING, ActivationState.FAILED}
    ),
    ActivationState.RUNNING: frozenset(
        {ActivationState.FINISHED, ActivationState.FAILED, ActivationState.READY}
    ),
    ActivationState.FINISHED: frozenset(),
    ActivationState.FAILED: frozenset(),
}


@dataclass(frozen=True)
class File:
    """A data product exchanged between activations.

    Parameters
    ----------
    name:
        Logical file name, unique within a workflow.
    size_bytes:
        Size used by the transfer model.
    """

    name: str
    size_bytes: float

    def __post_init__(self) -> None:
        if not self.name:
            raise ValidationError("file name must be non-empty")
        check_non_negative("size_bytes", self.size_bytes)

    @property
    def size_mb(self) -> float:
        """Size in megabytes (10^6 bytes)."""
        return self.size_bytes / 1e6


@dataclass
class Activation:
    """One schedulable invocation of an activity on a data chunk.

    Parameters
    ----------
    id:
        Integer id, unique within a workflow (the paper's Table V indexes
        Montage activations 0..49).
    activity:
        Name of the owning activity (program), e.g. ``"mProjectPP"``.
    runtime:
        Reference execution time in seconds on a 1.0-speed core.  A VM with
        ``speed`` s executes the activation in ``runtime / s`` seconds
        (before fluctuation).
    inputs / outputs:
        Files consumed and produced; drive both the dependency structure
        and the data-transfer model.
    """

    id: int
    activity: str
    runtime: float
    inputs: Tuple[File, ...] = field(default_factory=tuple)
    outputs: Tuple[File, ...] = field(default_factory=tuple)
    state: ActivationState = ActivationState.LOCKED

    def __post_init__(self) -> None:
        if self.id < 0:
            raise ValidationError(f"activation id must be >= 0, got {self.id}")
        if not self.activity:
            raise ValidationError("activity name must be non-empty")
        check_positive("runtime", self.runtime)
        self.inputs = tuple(self.inputs)
        self.outputs = tuple(self.outputs)
        out_names = [f.name for f in self.outputs]
        if len(set(out_names)) != len(out_names):
            raise ValidationError(
                f"activation {self.id} declares duplicate output files"
            )

    # -- state machine -------------------------------------------------

    def transition(self, new_state: ActivationState) -> None:
        """Move to ``new_state``, enforcing the legal transition table.

        ``RUNNING -> READY`` is allowed to model re-execution after a VM
        failure (the activation is re-queued).
        """
        if new_state not in _TRANSITIONS[self.state]:
            raise ValidationError(
                f"illegal activation transition {self.state.name} -> "
                f"{new_state.name} (activation {self.id})"
            )
        self.state = new_state

    def reset(self) -> None:
        """Return to LOCKED, e.g. at the start of a new learning episode."""
        self.state = ActivationState.LOCKED

    # -- data ------------------------------------------------------------

    @property
    def input_bytes(self) -> float:
        """Total size of input files."""
        return sum(f.size_bytes for f in self.inputs)

    @property
    def output_bytes(self) -> float:
        """Total size of output files."""
        return sum(f.size_bytes for f in self.outputs)

    def produces(self, file_name: str) -> bool:
        """True if this activation outputs ``file_name``."""
        return any(f.name == file_name for f in self.outputs)

    def consumes(self, file_name: str) -> bool:
        """True if this activation inputs ``file_name``."""
        return any(f.name == file_name for f in self.inputs)

    def output_file(self, file_name: str) -> Optional[File]:
        """Return the named output file, or None."""
        for f in self.outputs:
            if f.name == file_name:
                return f
        return None

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"Activation(id={self.id}, activity={self.activity!r}, "
            f"runtime={self.runtime:.3f}, state={self.state.name})"
        )
