"""Random layered DAG generation (stress-testing utility).

The Pegasus generators in :mod:`repro.workflows` reproduce specific
scientific structures; for robustness studies and fuzzing one also wants
*arbitrary* DAGs.  :func:`random_layered_dag` builds the classic layered
random graph used in scheduling literature (Topcuoglu et al. evaluate
HEFT on exactly this family): nodes are placed on layers, edges go
forward across layers with a given density, runtimes and file sizes are
drawn from seeded distributions.
"""

from __future__ import annotations

from typing import Optional

from repro.dag.activation import Activation, File
from repro.dag.graph import Workflow
from repro.util.rng import RngService
from repro.util.validate import ValidationError, check_positive, check_probability

__all__ = ["random_layered_dag"]


def random_layered_dag(
    n_activations: int,
    *,
    n_layers: Optional[int] = None,
    edge_density: float = 0.3,
    mean_runtime: float = 20.0,
    runtime_cv: float = 0.5,
    mean_file_mb: float = 2.0,
    seed: int = 0,
    name: str = "",
) -> Workflow:
    """Generate a random layered workflow DAG.

    Parameters
    ----------
    n_activations:
        Total node count (>= 1).
    n_layers:
        Number of layers; default ``max(2, round(sqrt(n)))``.
    edge_density:
        Probability of an edge between a node and each node of the next
        layer (every non-entry node gets at least one parent so the DAG
        stays connected to layer structure).
    mean_runtime / runtime_cv:
        Lognormal-ish runtime distribution parameters.
    mean_file_mb:
        Mean size of each produced file (one output per node; children
        consume their parents' outputs).
    seed:
        RNG seed; the generator is a pure function of its arguments.
    """
    if n_activations < 1:
        raise ValidationError("n_activations must be >= 1")
    check_probability("edge_density", edge_density)
    check_positive("mean_runtime", mean_runtime)
    check_positive("mean_file_mb", mean_file_mb)

    rng = RngService(seed).stream("random-dag")
    if n_layers is None:
        n_layers = max(2, int(round(n_activations ** 0.5)))
    n_layers = min(n_layers, n_activations)

    # distribute nodes across layers (each layer non-empty)
    layer_of = sorted(
        list(range(n_layers))
        + [int(rng.integers(n_layers)) for _ in range(n_activations - n_layers)]
    )
    layers: list = [[] for _ in range(n_layers)]

    wf = Workflow(name or f"random-{n_activations}-l{n_layers}-s{seed}")
    for node_id in range(n_activations):
        runtime = max(
            float(rng.normal(mean_runtime, runtime_cv * mean_runtime)),
            mean_runtime * 0.05,
        )
        out_size = max(float(rng.exponential(mean_file_mb)), 0.01) * 1e6
        output = File(f"f_{node_id}.dat", out_size)
        layers[layer_of[node_id]].append(node_id)
        wf.add_activation(
            Activation(
                id=node_id,
                activity=f"layer{layer_of[node_id]}",
                runtime=runtime,
                outputs=(output,),
            )
        )

    # drop empty trailing layers (possible when n_layers ~ n)
    layers = [l for l in layers if l]

    for upper, lower in zip(layers, layers[1:]):
        for child in lower:
            parents = [p for p in upper if rng.random() < edge_density]
            if not parents:  # keep the layer structure connected
                parents = [upper[int(rng.integers(len(upper)))]]
            for p in parents:
                wf.add_dependency(p, child)

    wf.validate()
    return wf
