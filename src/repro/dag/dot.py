"""Graphviz DOT export for workflow DAGs.

``to_dot(workflow)`` emits a DOT digraph (activities colour-grouped,
runtimes in the labels) that renders with any Graphviz install —
handy for documentation and for eyeballing generated structures.
No Graphviz dependency is required to *produce* the text.
"""

from __future__ import annotations

from pathlib import Path
from typing import Dict, Union

from repro.dag.graph import Workflow

__all__ = ["to_dot"]

# a small colour wheel; activities are assigned colours in first-seen order
_PALETTE = (
    "#8dd3c7", "#ffffb3", "#bebada", "#fb8072", "#80b1d3",
    "#fdb462", "#b3de69", "#fccde5", "#d9d9d9", "#bc80bd",
)


def _escape(text: str) -> str:
    return text.replace('"', r"\"")


def to_dot(
    workflow: Workflow,
    path: Union[str, Path, None] = None,
    include_runtimes: bool = True,
) -> str:
    """Serialize a workflow as a Graphviz digraph; optionally write it.

    Nodes are labelled ``<activity>\\n#<id> (<runtime>s)`` and filled by
    activity; edges are the dependency arrows.
    """
    colour_of: Dict[str, str] = {}
    lines = [
        f'digraph "{_escape(workflow.name)}" {{',
        "  rankdir=TB;",
        '  node [shape=box, style=filled, fontname="Helvetica"];',
    ]
    for ac in workflow.activations:
        if ac.activity not in colour_of:
            colour_of[ac.activity] = _PALETTE[len(colour_of) % len(_PALETTE)]
        label = _escape(ac.activity)
        if include_runtimes:
            label += f"\\n#{ac.id} ({ac.runtime:.1f}s)"
        else:
            label += f"\\n#{ac.id}"
        lines.append(
            f'  n{ac.id} [label="{label}", fillcolor="{colour_of[ac.activity]}"];'
        )
    for parent, child in workflow.edges:
        lines.append(f"  n{parent} -> n{child};")
    lines.append("}")
    text = "\n".join(lines)
    if path is not None:
        Path(path).write_text(text, encoding="utf-8")
    return text
