"""The workflow DAG.

``Workflow`` owns a set of :class:`~repro.dag.activation.Activation` nodes
and the dependency edges between them.  It provides the graph operations
every other subsystem needs: topological ordering, level decomposition,
ready-set maintenance, and structural validation (acyclicity, unique ids).

Following the paper's formalization, an edge ``(i, j)`` means activation
``j`` consumes (at least one) output of activation ``i``; edges may also be
added explicitly for control dependencies that carry no data.
"""

from __future__ import annotations

from collections import deque
from typing import Dict, Iterable, Iterator, List, Optional, Set, Tuple

from repro.dag.activation import Activation, ActivationState, File
from repro.util.validate import ValidationError

__all__ = ["Workflow", "CycleError"]


class CycleError(ValidationError):
    """Raised when an operation would make (or finds) the graph cyclic."""


class Workflow:
    """A directed acyclic graph of activations.

    Parameters
    ----------
    name:
        Human-readable workflow name (e.g. ``"montage-50"``).
    """

    def __init__(self, name: str = "workflow") -> None:
        if not name:
            raise ValidationError("workflow name must be non-empty")
        self.name = name
        self._nodes: Dict[int, Activation] = {}
        self._succ: Dict[int, Set[int]] = {}
        self._pred: Dict[int, Set[int]] = {}
        # Cache invalidated on structural change.
        self._topo_cache: Optional[List[int]] = None

    # -- construction ----------------------------------------------------

    def add_activation(self, activation: Activation) -> Activation:
        """Add a node; ids must be unique."""
        if activation.id in self._nodes:
            raise ValidationError(
                f"duplicate activation id {activation.id} in workflow {self.name!r}"
            )
        self._nodes[activation.id] = activation
        self._succ[activation.id] = set()
        self._pred[activation.id] = set()
        self._topo_cache = None
        return activation

    def add_dependency(self, parent_id: int, child_id: int) -> None:
        """Add edge ``parent -> child`` (child consumes parent's output)."""
        if parent_id not in self._nodes:
            raise ValidationError(f"unknown parent activation {parent_id}")
        if child_id not in self._nodes:
            raise ValidationError(f"unknown child activation {child_id}")
        if parent_id == child_id:
            raise CycleError(f"self-dependency on activation {parent_id}")
        if child_id in self._succ[parent_id]:
            return  # idempotent
        if self._reaches(child_id, parent_id):
            raise CycleError(
                f"adding edge {parent_id}->{child_id} would create a cycle"
            )
        self._succ[parent_id].add(child_id)
        self._pred[child_id].add(parent_id)
        self._topo_cache = None

    def infer_data_dependencies(self) -> int:
        """Add edges implied by file names (producer -> consumer).

        Returns the number of edges added.  Mirrors the paper's
        ``dep(ac_i, ac_j) <-> exists r in input(ac_j) | r in output(ac_i)``.
        """
        producer: Dict[str, int] = {}
        for ac in self._nodes.values():
            for f in ac.outputs:
                if f.name in producer:
                    raise ValidationError(
                        f"file {f.name!r} produced by both activation "
                        f"{producer[f.name]} and {ac.id}"
                    )
                producer[f.name] = ac.id
        added = 0
        for ac in self._nodes.values():
            for f in ac.inputs:
                src = producer.get(f.name)
                if src is not None and src != ac.id:
                    if ac.id not in self._succ[src]:
                        self.add_dependency(src, ac.id)
                        added += 1
        return added

    # -- queries -----------------------------------------------------------

    def __len__(self) -> int:
        return len(self._nodes)

    def __contains__(self, activation_id: int) -> bool:
        return activation_id in self._nodes

    def __iter__(self) -> Iterator[Activation]:
        return iter(self._nodes.values())

    def activation(self, activation_id: int) -> Activation:
        """Return the activation with the given id."""
        try:
            return self._nodes[activation_id]
        except KeyError:
            raise ValidationError(
                f"unknown activation {activation_id} in workflow {self.name!r}"
            ) from None

    @property
    def activations(self) -> List[Activation]:
        """All activations, ordered by id."""
        return [self._nodes[k] for k in sorted(self._nodes)]

    @property
    def activation_ids(self) -> List[int]:
        return sorted(self._nodes)

    def parents(self, activation_id: int) -> List[int]:
        """Ids of direct predecessors, sorted."""
        self.activation(activation_id)
        return sorted(self._pred[activation_id])

    def children(self, activation_id: int) -> List[int]:
        """Ids of direct successors, sorted."""
        self.activation(activation_id)
        return sorted(self._succ[activation_id])

    @property
    def edges(self) -> List[Tuple[int, int]]:
        """All edges as (parent, child), sorted."""
        return sorted(
            (p, c) for p, kids in self._succ.items() for c in kids
        )

    @property
    def edge_count(self) -> int:
        return sum(len(kids) for kids in self._succ.values())

    def entries(self) -> List[int]:
        """Ids of activations with no predecessors."""
        return sorted(i for i in self._nodes if not self._pred[i])

    def exits(self) -> List[int]:
        """Ids of activations with no successors."""
        return sorted(i for i in self._nodes if not self._succ[i])

    def _reaches(self, src: int, dst: int) -> bool:
        """BFS reachability ``src -> ... -> dst``."""
        if src == dst:
            return True
        seen = {src}
        frontier = deque([src])
        while frontier:
            node = frontier.popleft()
            for nxt in self._succ[node]:
                if nxt == dst:
                    return True
                if nxt not in seen:
                    seen.add(nxt)
                    frontier.append(nxt)
        return False

    # -- orderings -----------------------------------------------------------

    def topological_order(self) -> List[int]:
        """Kahn topological order (stable: ties broken by id)."""
        if self._topo_cache is not None:
            return list(self._topo_cache)
        import heapq

        indeg = {i: len(self._pred[i]) for i in self._nodes}
        # min-heap on ids makes the order deterministic (ties by id)
        heap = [i for i, d in indeg.items() if d == 0]
        heapq.heapify(heap)
        order: List[int] = []
        while heap:
            node = heapq.heappop(heap)
            order.append(node)
            for child in self._succ[node]:
                indeg[child] -= 1
                if indeg[child] == 0:
                    heapq.heappush(heap, child)
        if len(order) != len(self._nodes):
            raise CycleError(f"workflow {self.name!r} contains a cycle")
        self._topo_cache = order
        return list(order)

    def levels(self) -> List[List[int]]:
        """Partition nodes into dependency levels (level 0 = entries)."""
        depth: Dict[int, int] = {}
        for node in self.topological_order():
            preds = self._pred[node]
            depth[node] = 1 + max((depth[p] for p in preds), default=-1)
        n_levels = 1 + max(depth.values(), default=0) if depth else 0
        out: List[List[int]] = [[] for _ in range(n_levels)]
        for node, d in depth.items():
            out[d].append(node)
        for lvl in out:
            lvl.sort()
        return out

    def validate(self) -> None:
        """Check structural invariants; raises on violation."""
        self.topological_order()  # raises CycleError on a cycle
        for parent, kids in self._succ.items():
            for child in kids:
                if parent not in self._pred[child]:
                    raise ValidationError(
                        f"edge {parent}->{child} missing reverse index"
                    )

    # -- execution-state helpers ------------------------------------------

    def reset_states(self) -> None:
        """Set every activation LOCKED, then promote entry nodes to READY."""
        for ac in self._nodes.values():
            ac.reset()
        for i in self.entries():
            self._nodes[i].transition(ActivationState.READY)

    def ready_ids(self) -> List[int]:
        """Ids of activations currently in the READY state."""
        return sorted(
            i for i, ac in self._nodes.items() if ac.state is ActivationState.READY
        )

    def release_children(self, finished_id: int) -> List[int]:
        """Promote LOCKED children whose parents have all FINISHED.

        Call after ``finished_id`` transitions to FINISHED.  Returns the ids
        newly promoted to READY.
        """
        released = []
        for child in self._succ[finished_id]:
            ac = self._nodes[child]
            if ac.state is not ActivationState.LOCKED:
                continue
            if all(
                self._nodes[p].state is ActivationState.FINISHED
                for p in self._pred[child]
            ):
                ac.transition(ActivationState.READY)
                released.append(child)
        return sorted(released)

    def workflow_state(self) -> str:
        """The paper's 4-valued workflow state (§III-A).

        Returns one of ``"successfully finished"``, ``"finished with
        failure"``, ``"available"``, ``"unavailable"``.  Note machine
        availability is layered on top by the simulator: ``available`` here
        only means *some activation is READY*.
        """
        states = [ac.state for ac in self._nodes.values()]
        if all(s is ActivationState.FINISHED for s in states):
            return "successfully finished"
        if any(s is ActivationState.FAILED for s in states) and not any(
            s in (ActivationState.READY, ActivationState.LOCKED, ActivationState.RUNNING)
            for s in states
        ):
            return "finished with failure"
        if any(s is ActivationState.READY for s in states):
            return "available"
        return "unavailable"

    # -- transforms ----------------------------------------------------------

    def subgraph(self, ids: Iterable[int], name: Optional[str] = None) -> "Workflow":
        """Induced subgraph over ``ids`` (fresh activation objects)."""
        keep = set(ids)
        unknown = keep - set(self._nodes)
        if unknown:
            raise ValidationError(f"unknown activations in subgraph: {sorted(unknown)}")
        out = Workflow(name or f"{self.name}-sub")
        for i in sorted(keep):
            src = self._nodes[i]
            out.add_activation(
                Activation(
                    id=src.id,
                    activity=src.activity,
                    runtime=src.runtime,
                    inputs=src.inputs,
                    outputs=src.outputs,
                )
            )
        for p, c in self.edges:
            if p in keep and c in keep:
                out.add_dependency(p, c)
        return out

    def copy(self, name: Optional[str] = None) -> "Workflow":
        """Deep copy with fresh (LOCKED) activation objects."""
        return self.subgraph(self._nodes.keys(), name or self.name)

    def relabel_sequential(self) -> "Workflow":
        """Return a copy with ids renumbered 0..n-1 in topological order."""
        mapping = {old: new for new, old in enumerate(self.topological_order())}
        out = Workflow(self.name)
        for old in self.topological_order():
            src = self._nodes[old]
            out.add_activation(
                Activation(
                    id=mapping[old],
                    activity=src.activity,
                    runtime=src.runtime,
                    inputs=src.inputs,
                    outputs=src.outputs,
                )
            )
        for p, c in self.edges:
            out.add_dependency(mapping[p], mapping[c])
        return out

    def files(self) -> Dict[str, File]:
        """All distinct files referenced by the workflow, by name."""
        out: Dict[str, File] = {}
        for ac in self._nodes.values():
            for f in list(ac.inputs) + list(ac.outputs):
                prev = out.get(f.name)
                if prev is not None and prev.size_bytes != f.size_bytes:
                    raise ValidationError(
                        f"file {f.name!r} declared with conflicting sizes"
                    )
                out[f.name] = f
        return out

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"Workflow(name={self.name!r}, activations={len(self)}, "
            f"edges={self.edge_count})"
        )
