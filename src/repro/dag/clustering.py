"""Task clustering — WorkflowSim's Clustering Engine, reimplemented.

WorkflowSim sits a *clustering* stage between the mapper and the
scheduler: small tasks are merged into larger jobs to amortize dispatch
and queueing overheads.  Two classic policies are provided:

- **horizontal clustering** — merge groups of tasks within the same
  dependency level (they are independent by construction);
- **vertical clustering** — merge maximal single-parent/single-child
  chains (a chain executes serially anyway, so merging removes
  intermediate scheduling overhead and data movement).

A merged activation's runtime is the sum of its members' runtimes; its
inputs are the member inputs not produced inside the cluster, and its
outputs every member output (intra-cluster files become internal).
`ClusteredWorkflow.expand(plan)` maps a plan on the clustered DAG back
to the original activations, so clustering composes with every
scheduler in the library.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Dict, List, Sequence

from repro.dag.activation import Activation, File
from repro.dag.graph import Workflow
from repro.util.validate import ValidationError

if TYPE_CHECKING:  # pragma: no cover - circular at runtime, fine for types
    from repro.schedulers.base import SchedulingPlan

__all__ = ["ClusteredWorkflow", "horizontal_clustering", "vertical_clustering"]


@dataclass
class ClusteredWorkflow:
    """A clustered DAG plus the mapping back to the original activations."""

    workflow: Workflow  #: the clustered DAG (cluster ids are fresh)
    members: Dict[int, List[int]]  #: cluster id -> original activation ids

    def __post_init__(self) -> None:
        seen: set = set()
        for cluster_id, ids in self.members.items():
            if cluster_id not in self.workflow:
                raise ValidationError(f"cluster {cluster_id} not in the DAG")
            overlap = seen & set(ids)
            if overlap:
                raise ValidationError(
                    f"activations {sorted(overlap)} belong to two clusters"
                )
            seen.update(ids)

    @property
    def n_original(self) -> int:
        return sum(len(v) for v in self.members.values())

    def cluster_of(self, original_id: int) -> int:
        """The cluster containing an original activation."""
        for cluster_id, ids in self.members.items():
            if original_id in ids:
                return cluster_id
        raise ValidationError(f"activation {original_id} not in any cluster")

    def expand(self, plan: "SchedulingPlan") -> "SchedulingPlan":
        """Translate a plan over clusters into one over original ids.

        Every member of a cluster inherits the cluster's VM; the
        priority order expands each cluster into its members in id
        order.
        """
        from repro.schedulers.base import SchedulingPlan

        assignment: Dict[int, int] = {}
        priority: List[int] = []
        for cluster_id in plan.priority:
            vm = plan.vm_of(cluster_id)
            for original in sorted(self.members[cluster_id]):
                assignment[original] = vm
                priority.append(original)
        return SchedulingPlan(
            assignment=assignment, priority=priority,
            name=f"{plan.name}+expanded",
        )


def _build_cluster(
    wf: Workflow, cluster_id: int, member_ids: Sequence[int]
) -> Activation:
    """Merge member activations into one (runtime sum, external I/O)."""
    members = [wf.activation(i) for i in member_ids]
    internal = {f.name for ac in members for f in ac.outputs}
    inputs: Dict[str, File] = {}
    for ac in members:
        for f in ac.inputs:
            if f.name not in internal:
                inputs[f.name] = f
    outputs: Dict[str, File] = {}
    for ac in members:
        for f in ac.outputs:
            outputs[f.name] = f
    activities = sorted({ac.activity for ac in members})
    return Activation(
        id=cluster_id,
        activity="+".join(activities),
        runtime=sum(ac.runtime for ac in members),
        inputs=tuple(inputs.values()),
        outputs=tuple(outputs.values()),
    )


def _assemble(
    wf: Workflow, groups: List[List[int]], name_suffix: str
) -> ClusteredWorkflow:
    """Build the clustered DAG from disjoint, exhaustive groups."""
    clustered = Workflow(f"{wf.name}-{name_suffix}")
    members: Dict[int, List[int]] = {}
    cluster_of: Dict[int, int] = {}
    for cluster_id, group in enumerate(groups):
        clustered.add_activation(_build_cluster(wf, cluster_id, group))
        members[cluster_id] = sorted(group)
        for original in group:
            cluster_of[original] = cluster_id
    for parent, child in wf.edges:
        cp, cc = cluster_of[parent], cluster_of[child]
        if cp != cc:
            clustered.add_dependency(cp, cc)
    clustered.validate()
    return ClusteredWorkflow(workflow=clustered, members=members)


def horizontal_clustering(wf: Workflow, group_size: int = 2) -> ClusteredWorkflow:
    """Merge runs of ``group_size`` tasks within each dependency level."""
    if group_size < 1:
        raise ValidationError("group_size must be >= 1")
    wf.validate()
    groups: List[List[int]] = []
    for level in wf.levels():
        for start in range(0, len(level), group_size):
            groups.append(level[start:start + group_size])
    return _assemble(wf, groups, f"hc{group_size}")


def vertical_clustering(wf: Workflow) -> ClusteredWorkflow:
    """Merge maximal single-child/single-parent chains."""
    wf.validate()
    # follow chains: extend from each node whose predecessor link breaks
    assigned: set = set()
    groups: List[List[int]] = []
    for node in wf.topological_order():
        if node in assigned:
            continue
        chain = [node]
        assigned.add(node)
        current = node
        while True:
            children = wf.children(current)
            if len(children) != 1:
                break
            nxt = children[0]
            if nxt in assigned or len(wf.parents(nxt)) != 1:
                break
            chain.append(nxt)
            assigned.add(nxt)
            current = nxt
        groups.append(chain)
    return _assemble(wf, groups, "vc")
