"""Workflow model: activities, activations, files and the workflow DAG.

Terminology follows the paper (and the SciCumulus algebra it builds on):

- an **activity** is a program in the abstract workflow (e.g. Montage's
  ``mProjectPP``);
- an **activation** is the smallest unit of parallel work — one invocation
  of an activity on a specific data chunk;
- the **workflow** is a DAG whose nodes are activations and whose edges are
  data dependencies (an output file of one activation consumed by another).
"""

from repro.dag.activation import Activation, ActivationState, File
from repro.dag.graph import CycleError, Workflow
from repro.dag.dax import parse_dax, parse_dax_file, write_dax
from repro.dag.clustering import (
    ClusteredWorkflow,
    horizontal_clustering,
    vertical_clustering,
)
from repro.dag.dot import to_dot
from repro.dag.random_dag import random_layered_dag
from repro.dag.analysis import (
    DagProfile,
    critical_path,
    critical_path_length,
    level_widths,
    profile_dag,
    serial_runtime,
)

__all__ = [
    "Activation",
    "ActivationState",
    "File",
    "Workflow",
    "CycleError",
    "parse_dax",
    "parse_dax_file",
    "write_dax",
    "DagProfile",
    "critical_path",
    "critical_path_length",
    "level_widths",
    "profile_dag",
    "random_layered_dag",
    "to_dot",
    "ClusteredWorkflow",
    "horizontal_clustering",
    "vertical_clustering",
    "serial_runtime",
]
