"""Structural and timing analysis of workflow DAGs.

These metrics drive both the evaluation harness (workload characterization
tables) and scheduling heuristics (critical-path priorities).  Times here
are *reference* runtimes — the activation cost on a unit-speed core —
ignoring data transfer, which is the convention HEFT's upward rank uses
when communication estimates are supplied separately.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.dag.graph import Workflow

__all__ = [
    "DagProfile",
    "critical_path",
    "critical_path_length",
    "level_widths",
    "profile_dag",
    "serial_runtime",
]


def serial_runtime(workflow: Workflow) -> float:
    """Sum of all reference runtimes (a single-core lower bound)."""
    return sum(ac.runtime for ac in workflow)


def level_widths(workflow: Workflow) -> List[int]:
    """Number of activations per dependency level."""
    return [len(level) for level in workflow.levels()]


def critical_path(workflow: Workflow) -> Tuple[List[int], float]:
    """Longest runtime-weighted path through the DAG.

    Returns ``(path_ids, total_runtime)``.  Communication costs are not
    included; this is the classic CP used for bounding makespan from below
    on infinitely many unit-speed cores.
    """
    if len(workflow) == 0:
        return [], 0.0
    # longest path to *finish* of node, following topological order
    best: Dict[int, float] = {}
    choice: Dict[int, Optional[int]] = {}
    for node in workflow.topological_order():
        preds = workflow.parents(node)
        if preds:
            pred = max(preds, key=lambda p: (best[p], -p))
            base = best[pred]
            choice[node] = pred
        else:
            base = 0.0
            choice[node] = None
        best[node] = base + workflow.activation(node).runtime

    end = max(best, key=lambda n: (best[n], -n))
    path: List[int] = []
    cur: Optional[int] = end
    while cur is not None:
        path.append(cur)
        cur = choice[cur]
    path.reverse()
    return path, best[end]


def critical_path_length(workflow: Workflow) -> float:
    """Runtime of the critical path only."""
    return critical_path(workflow)[1]


@dataclass(frozen=True)
class DagProfile:
    """Summary statistics of a workflow DAG."""

    name: str
    n_activations: int
    n_edges: int
    n_levels: int
    max_width: int
    serial_runtime: float
    critical_path_runtime: float
    total_input_bytes: float
    total_output_bytes: float

    @property
    def parallelism(self) -> float:
        """Average available parallelism = serial runtime / critical path."""
        if self.critical_path_runtime == 0:
            return 0.0
        return self.serial_runtime / self.critical_path_runtime

    def rows(self) -> List[Tuple[str, object]]:
        """(label, value) pairs for table rendering."""
        return [
            ("workflow", self.name),
            ("activations", self.n_activations),
            ("edges", self.n_edges),
            ("levels", self.n_levels),
            ("max level width", self.max_width),
            ("serial runtime [s]", round(self.serial_runtime, 3)),
            ("critical path [s]", round(self.critical_path_runtime, 3)),
            ("avg parallelism", round(self.parallelism, 3)),
        ]


def profile_dag(workflow: Workflow) -> DagProfile:
    """Compute a :class:`DagProfile` for a workflow."""
    widths = level_widths(workflow)
    return DagProfile(
        name=workflow.name,
        n_activations=len(workflow),
        n_edges=workflow.edge_count,
        n_levels=len(widths),
        max_width=max(widths) if widths else 0,
        serial_runtime=serial_runtime(workflow),
        critical_path_runtime=critical_path_length(workflow),
        total_input_bytes=sum(ac.input_bytes for ac in workflow),
        total_output_bytes=sum(ac.output_bytes for ac in workflow),
    )
