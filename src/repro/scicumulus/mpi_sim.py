"""SCCore — a simulated MPI master/slave execution engine.

SciCumulus' SCCore "is an MPI-based application ... one SCMaster
coordinates the execution of several SCSlaves".  This module simulates
that protocol in virtual time:

- rank 0 is the **SCMaster**: it owns the scheduling plan, tracks
  dependency completion and answers slave work requests;
- every vCPU of every deployed VM hosts one **SCSlave** rank that loops
  ``request work -> stage inputs -> execute -> publish outputs -> report``;
- every message (READY / EXECUTE / DONE) pays a configurable latency, and
  the master pays a small handling overhead per message — the MPI
  coordination cost that distinguishes "actual execution time" (the
  paper's Table IV) from the raw simulated makespan (Table III).

Execution times are sampled from the :class:`~repro.scicumulus.cloud
.SimulatedCloud`, so the engine sees the noisy region the learning
simulator never modelled.
"""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass
from typing import Callable, Dict, List, Sequence, Set, Tuple

from repro.dag.graph import Workflow
from repro.schedulers.base import SchedulingPlan
from repro.scicumulus.cloud import SimulatedCloud
from repro.sim.metrics import ActivationRecord, SimulationResult
from repro.sim.vm import Vm
from repro.util.validate import ValidationError, check_non_negative

__all__ = ["MpiConfig", "MpiExecutionEngine"]


@dataclass(frozen=True)
class MpiConfig:
    """Tunables of the simulated MPI layer."""

    message_latency: float = 0.002  #: one-way MPI message latency (s)
    master_overhead: float = 0.001  #: master handling time per message (s)

    def __post_init__(self) -> None:
        check_non_negative("message_latency", self.message_latency)
        check_non_negative("master_overhead", self.master_overhead)


@dataclass
class _Slave:
    """One SCSlave rank: a vCPU slot of a deployed VM."""

    rank: int
    vm: Vm
    busy: bool = False


class MpiExecutionEngine:
    """Execute a scheduling plan on a simulated cloud via master/slave MPI.

    Parameters
    ----------
    workflow:
        The DAG to execute (activation states are not mutated).
    vms:
        Deployed fleet (from :meth:`SimulatedCloud.deploy`).
    plan:
        activation→VM assignment + priority (from ReASSIgN or a baseline).
    cloud:
        Samples noisy execution times and transfer costs.
    config:
        MPI latencies/overheads.
    """

    def __init__(
        self,
        workflow: Workflow,
        vms: Sequence[Vm],
        plan: SchedulingPlan,
        cloud: SimulatedCloud,
        config: MpiConfig = MpiConfig(),
    ) -> None:
        workflow.validate()
        plan.validate_against(workflow, vms)
        self.workflow = workflow
        self.vms = list(vms)
        self.plan = plan
        self.cloud = cloud
        self.config = config

        # one slave rank per vCPU, ranks 1..N (rank 0 is the master)
        self.slaves: List[_Slave] = []
        rank = 1
        for vm in self.vms:
            for _ in range(vm.capacity):
                self.slaves.append(_Slave(rank=rank, vm=vm))
                rank += 1
        self._slaves_by_vm: Dict[int, List[_Slave]] = {}
        for slave in self.slaves:
            self._slaves_by_vm.setdefault(slave.vm.id, []).append(slave)

    # -- event loop ---------------------------------------------------------

    def run(self) -> SimulationResult:
        """Execute the whole plan; returns the execution result.

        Time 0 is MPI_Init (all VMs already booted — provisioning time is
        accounted separately by SCStarter).
        """
        heap: List[Tuple[float, int, Callable[[], None]]] = []
        counter = itertools.count()
        now = 0.0

        def schedule(delay: float, fn: Callable[[], None]) -> None:
            heapq.heappush(heap, (now + delay, next(counter), fn))

        # master state
        queues: Dict[int, List[int]] = {
            vm.id: self.plan.activations_on(vm.id) for vm in self.vms
        }
        pending_parents: Dict[int, int] = {
            i: len(self.workflow.parents(i)) for i in self.workflow.activation_ids
        }
        ready_time: Dict[int, float] = {
            i: 0.0 for i, n in pending_parents.items() if n == 0
        }
        file_home: Dict[str, int] = {}
        records: List[ActivationRecord] = []
        done: Set[int] = set()

        def stage_bytes(activation_id: int, vm: Vm) -> Tuple[int, float]:
            """(n_files, bytes) the slave must pull from shared storage."""
            ac = self.workflow.activation(activation_id)
            n, size = 0, 0.0
            for f in ac.inputs:
                if file_home.get(f.name) == vm.id:
                    continue
                n += 1
                size += f.size_bytes
            for f in ac.outputs:  # publish to shared storage
                n += 1
                size += f.size_bytes
            return n, size

        def master_dispatch(slave: _Slave) -> None:
            """Hand the slave the first dependency-ready activation queued
            on its VM; leaves it idle when nothing is runnable yet."""
            queue = queues[slave.vm.id]
            for idx, activation_id in enumerate(queue):
                if pending_parents[activation_id] == 0:
                    queue.pop(idx)
                    slave.busy = True
                    schedule(
                        self.config.master_overhead + self.config.message_latency,
                        lambda a=activation_id, s=slave: slave_execute(s, a),
                    )
                    return
            slave.busy = False  # waits for a completion to wake it

        def slave_execute(slave: _Slave, activation_id: int) -> None:
            ac = self.workflow.activation(activation_id)
            start = now
            n_files, size = stage_bytes(activation_id, slave.vm)
            staging = self.cloud.transfer_time(n_files, size, slave.vm)
            compute = self.cloud.execution_time(ac, slave.vm, now)
            duration = staging + compute
            schedule(
                duration + self.config.message_latency,
                lambda s=slave, a=activation_id, st=start, sg=staging: master_done(
                    s, a, st, sg
                ),
            )

        def master_done(
            slave: _Slave, activation_id: int, start: float, staging: float
        ) -> None:
            ac = self.workflow.activation(activation_id)
            done.add(activation_id)
            for f in ac.outputs:
                file_home[f.name] = slave.vm.id
            records.append(
                ActivationRecord(
                    activation_id=activation_id,
                    activity=ac.activity,
                    vm_id=slave.vm.id,
                    ready_time=ready_time[activation_id],
                    start_time=start,
                    finish_time=now,
                    stage_in_time=staging,
                )
            )
            for child in self.workflow.children(activation_id):
                pending_parents[child] -= 1
                if pending_parents[child] == 0:
                    ready_time[child] = now
            # wake this slave and any idle peers whose queue head unblocked
            master_dispatch(slave)
            for vm_slaves in self._slaves_by_vm.values():
                for peer in vm_slaves:
                    if not peer.busy:
                        master_dispatch(peer)

        # MPI_Init: every slave announces READY
        for slave in self.slaves:
            slave.busy = True  # until the master answers
            schedule(
                self.config.message_latency,
                lambda s=slave: master_dispatch(s),
            )

        while heap:
            now, _, fn = heapq.heappop(heap)
            fn()

        if len(done) != len(self.workflow):
            missing = sorted(set(self.workflow.activation_ids) - done)
            raise ValidationError(
                f"MPI execution stalled; unexecuted activations {missing[:10]}"
            )

        makespan = max(r.finish_time for r in records)
        return SimulationResult(
            workflow_name=self.workflow.name,
            records=records,
            makespan=makespan,
            final_state="successfully finished",
            vms=self.vms,
        )
