"""SciCumulus-RL substitute — the execution stage of the paper's pipeline.

The real SciCumulus is an MPI-based SWfMS (one SCMaster coordinating
SCSlaves across cloud VMs) with a provenance database.  This package
simulates that execution environment end-to-end:

- :mod:`~repro.scicumulus.xml_spec` — the workflow-specification XML that
  SCSetup loads;
- :mod:`~repro.scicumulus.cloud` — a simulated AWS region: VM deployment
  with boot latency and a *noisy* performance profile (burst throttling,
  interference) that the clean learning simulator does not model;
- :mod:`~repro.scicumulus.mpi_sim` — SCCore: a simulated MPI master/slave
  engine that executes a scheduling plan with per-message latencies;
- :mod:`~repro.scicumulus.provenance` — SQLite provenance store; past
  executions feed future ReASSIgN runs (§III-D);
- :mod:`~repro.scicumulus.swfms` — the SCSetup/SCStarter/SCCore facade
  (the paper's Figure 1 pipeline).
"""

from repro.scicumulus.xml_spec import workflow_to_xml, workflow_from_xml
from repro.scicumulus.cloud import CloudProfile, SimulatedCloud
from repro.scicumulus.mpi_sim import MpiExecutionEngine, MpiConfig
from repro.scicumulus.analytics import (
    VmReport,
    activity_statistics,
    makespan_trend,
    scheduler_comparison,
    vm_performance_report,
)
from repro.scicumulus.online import MpiOverheadNetwork, execute_online
from repro.scicumulus.provenance import ProvenanceStore
from repro.scicumulus.swfms import ExecutionReport, SciCumulusRL

__all__ = [
    "workflow_to_xml",
    "workflow_from_xml",
    "CloudProfile",
    "SimulatedCloud",
    "MpiExecutionEngine",
    "MpiConfig",
    "ProvenanceStore",
    "MpiOverheadNetwork",
    "execute_online",
    "VmReport",
    "vm_performance_report",
    "activity_statistics",
    "scheduler_comparison",
    "makespan_trend",
    "ExecutionReport",
    "SciCumulusRL",
]
