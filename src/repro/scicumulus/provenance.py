"""The SciCumulus provenance database (SQLite).

"All data associated with the workflow execution is stored in a
provenance database.  Such information can be used in future executions
of ReASSIgN."  The store records executions (one row per run), their
per-activation records, and learning runs (hyper-parameters, Q-table,
episode log).  :meth:`ProvenanceStore.execution_history` exposes past
``(vm_id, te, tf)`` observations in exactly the shape
:meth:`~repro.rl.reward.PerformanceReward.bootstrap` consumes, and
:meth:`latest_qtable` lets a new learning run resume from a previous one.
"""

from __future__ import annotations

import json
import sqlite3
from dataclasses import dataclass
from pathlib import Path
from typing import Callable, List, Optional, Tuple, Union

from repro.core.episode import LearningResult
from repro.sim.metrics import SimulationResult
from repro.util.validate import ValidationError

__all__ = ["ProvenanceStore", "ExecutionRow", "LogicalClock"]

_SCHEMA = """
CREATE TABLE IF NOT EXISTS executions (
    id INTEGER PRIMARY KEY AUTOINCREMENT,
    workflow TEXT NOT NULL,
    scheduler TEXT NOT NULL,
    fleet TEXT NOT NULL,
    makespan REAL NOT NULL,
    final_state TEXT NOT NULL,
    cost REAL NOT NULL,
    created_at REAL NOT NULL
);
CREATE TABLE IF NOT EXISTS activations (
    execution_id INTEGER NOT NULL REFERENCES executions(id),
    activation_id INTEGER NOT NULL,
    activity TEXT NOT NULL,
    vm_id INTEGER NOT NULL,
    ready_time REAL NOT NULL,
    start_time REAL NOT NULL,
    finish_time REAL NOT NULL,
    attempts INTEGER NOT NULL,
    failed INTEGER NOT NULL,
    PRIMARY KEY (execution_id, activation_id)
);
CREATE TABLE IF NOT EXISTS learning_runs (
    id INTEGER PRIMARY KEY AUTOINCREMENT,
    workflow TEXT NOT NULL,
    fleet TEXT NOT NULL,
    params TEXT NOT NULL,
    episodes INTEGER NOT NULL,
    learning_time REAL NOT NULL,
    simulated_makespan REAL NOT NULL,
    payload TEXT NOT NULL,
    created_at REAL NOT NULL
);
"""


@dataclass(frozen=True)
class ExecutionRow:
    """Summary row of one recorded execution."""

    id: int
    workflow: str
    scheduler: str
    fleet: str
    makespan: float
    final_state: str
    cost: float


class LogicalClock:
    """Deterministic fallback clock: 0.0, 1.0, 2.0, … per instance.

    ``created_at`` only needs to order records within one store, so the
    default clock is a logical counter rather than the wall clock — two
    same-seed runs then produce byte-identical provenance databases
    (rule RL002; see ``docs/analysis.md``).
    """

    def __init__(self, start: float = 0.0, step: float = 1.0) -> None:
        self._next = float(start)
        self._step = float(step)

    def __call__(self) -> float:
        value = self._next
        self._next += self._step
        return value


class ProvenanceStore:
    """SQLite-backed provenance store.

    Parameters
    ----------
    path:
        Database file, or ``":memory:"`` (default) for an ephemeral store.
    clock:
        Zero-argument callable supplying ``created_at`` stamps.  Defaults
        to a :class:`LogicalClock` so records are deterministic; callers
        that *execute* workflows pass simulated completion times instead
        (see :class:`repro.scicumulus.swfms.SciCumulusRL`).  Injecting a
        wall clock is possible but forfeits byte-identical replays.
    """

    def __init__(
        self,
        path: Union[str, Path] = ":memory:",
        clock: Optional[Callable[[], float]] = None,
    ) -> None:
        self._conn = sqlite3.connect(str(path))
        self._conn.executescript(_SCHEMA)
        self._conn.commit()
        self._clock: Callable[[], float] = (
            clock if clock is not None else LogicalClock()
        )

    def close(self) -> None:
        self._conn.close()

    def dump(self) -> str:
        """Full SQL dump of the store (the byte-identity test surface)."""
        return "\n".join(self._conn.iterdump())

    def __enter__(self) -> "ProvenanceStore":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    # -- recording ----------------------------------------------------------

    def record_execution(
        self,
        result: SimulationResult,
        scheduler: str,
        fleet: str,
        cost: float = 0.0,
        timestamp: Optional[float] = None,
    ) -> int:
        """Store one execution + its activation records; returns its id.

        ``timestamp`` overrides the injected clock — SWfMS callers pass
        the simulated completion time, keeping ``created_at`` meaningful
        *and* deterministic.
        """
        cur = self._conn.execute(
            "INSERT INTO executions (workflow, scheduler, fleet, makespan,"
            " final_state, cost, created_at) VALUES (?, ?, ?, ?, ?, ?, ?)",
            (
                result.workflow_name,
                scheduler,
                fleet,
                result.makespan,
                result.final_state,
                cost,
                timestamp if timestamp is not None else self._clock(),
            ),
        )
        execution_id = int(cur.lastrowid)
        self._conn.executemany(
            "INSERT INTO activations VALUES (?, ?, ?, ?, ?, ?, ?, ?, ?)",
            [
                (
                    execution_id,
                    r.activation_id,
                    r.activity,
                    r.vm_id,
                    r.ready_time,
                    r.start_time,
                    r.finish_time,
                    r.attempts,
                    int(r.failed),
                )
                for r in result.records
            ],
        )
        self._conn.commit()
        return execution_id

    def record_learning_run(
        self,
        workflow: str,
        fleet: str,
        params_label: str,
        result: LearningResult,
        timestamp: Optional[float] = None,
    ) -> int:
        """Store a full learning run (episodes + Q-table); returns its id."""
        cur = self._conn.execute(
            "INSERT INTO learning_runs (workflow, fleet, params, episodes,"
            " learning_time, simulated_makespan, payload, created_at)"
            " VALUES (?, ?, ?, ?, ?, ?, ?, ?)",
            (
                workflow,
                fleet,
                params_label,
                result.n_episodes,
                result.learning_time,
                result.simulated_makespan,
                result.to_json(),
                timestamp if timestamp is not None else self._clock(),
            ),
        )
        self._conn.commit()
        return int(cur.lastrowid)

    # -- queries ------------------------------------------------------------

    def executions(self, workflow: Optional[str] = None) -> List[ExecutionRow]:
        """All recorded executions, newest last."""
        sql = (
            "SELECT id, workflow, scheduler, fleet, makespan, final_state, cost"
            " FROM executions"
        )
        args: tuple = ()
        if workflow is not None:
            sql += " WHERE workflow = ?"
            args = (workflow,)
        sql += " ORDER BY id"
        return [ExecutionRow(*row) for row in self._conn.execute(sql, args)]

    def execution_history(
        self, workflow: Optional[str] = None, fleet: Optional[str] = None
    ) -> List[Tuple[int, float, float]]:
        """Past ``(vm_id, te, tf)`` observations for reward bootstrapping."""
        sql = (
            "SELECT a.vm_id, a.finish_time - a.start_time,"
            " a.start_time - a.ready_time"
            " FROM activations a JOIN executions e ON a.execution_id = e.id"
            " WHERE a.failed = 0"
        )
        args: list = []
        if workflow is not None:
            sql += " AND e.workflow = ?"
            args.append(workflow)
        if fleet is not None:
            sql += " AND e.fleet = ?"
            args.append(fleet)
        sql += " ORDER BY a.execution_id, a.finish_time"
        return [
            (int(vm), float(te), float(tf))
            for vm, te, tf in self._conn.execute(sql, args)
        ]

    def latest_qtable(
        self, workflow: str, fleet: str, params_label: Optional[str] = None
    ) -> Optional[str]:
        """The most recent learning run's Q-table JSON, or None."""
        sql = (
            "SELECT payload FROM learning_runs WHERE workflow = ? AND fleet = ?"
        )
        args: list = [workflow, fleet]
        if params_label is not None:
            sql += " AND params = ?"
            args.append(params_label)
        sql += " ORDER BY id DESC LIMIT 1"
        row = self._conn.execute(sql, args).fetchone()
        if row is None:
            return None
        payload = json.loads(row[0])
        return json.dumps(payload["qtable"])

    def learning_runs(self, workflow: Optional[str] = None) -> List[Tuple[int, str, str, str, int, float, float]]:
        """(id, workflow, fleet, params, episodes, learning_time, makespan)."""
        sql = (
            "SELECT id, workflow, fleet, params, episodes, learning_time,"
            " simulated_makespan FROM learning_runs"
        )
        args: tuple = ()
        if workflow is not None:
            sql += " WHERE workflow = ?"
            args = (workflow,)
        sql += " ORDER BY id"
        return list(self._conn.execute(sql, args))

    def activation_rows(self, execution_id: int) -> List[tuple]:
        """Raw activation rows of one execution (for inspection/tests)."""
        rows = list(
            self._conn.execute(
                "SELECT * FROM activations WHERE execution_id = ?"
                " ORDER BY activation_id",
                (execution_id,),
            )
        )
        if not rows:
            raise ValidationError(f"unknown execution {execution_id}")
        return rows
