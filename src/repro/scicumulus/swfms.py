"""SciCumulus-RL — the SCSetup / SCStarter / SCCore pipeline (Fig. 1).

:class:`SciCumulusRL` wires the paper's architecture together:

1. **SCSetup** loads the workflow specification (XML) and — in the RL
   mode — invokes the WorkflowSim substitute to learn a scheduling plan
   (ReASSIgN episodes), optionally bootstrapped from the provenance
   database;
2. **SCStarter** deploys the VMs the plan requires on the simulated AWS
   cloud (boot latency, billing);
3. **SCCore** executes the plan with the simulated MPI master/slave
   engine on the noisy cloud;
4. everything lands in the **provenance database** for future runs.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Union

from repro.core.reassign import ReassignLearner, ReassignParams
from repro.dag.graph import Workflow
from repro.schedulers.base import SchedulingPlan, StaticScheduler
from repro.scicumulus.cloud import CloudProfile, SimulatedCloud
from repro.scicumulus.mpi_sim import MpiConfig, MpiExecutionEngine
from repro.scicumulus.provenance import ProvenanceStore
from repro.scicumulus.xml_spec import workflow_from_xml, workflow_to_xml
from repro.sim.metrics import SimulationResult
from repro.sim.vm import VM_TYPES, Vm, fleet_vcpus
from repro.util.rng import RngService
from repro.util.validate import ValidationError

__all__ = ["ExecutionReport", "SciCumulusRL", "fleet_label"]


def fleet_label(fleet_spec: Dict[str, int]) -> str:
    """Human label for a fleet spec, e.g. ``8x t2.micro + 1x t2.2xlarge``."""
    parts = [
        f"{count}x {name}"
        for name, count in sorted(fleet_spec.items(), key=lambda kv: VM_TYPES[kv[0]].vcpus)
        if count
    ]
    vcpus = sum(VM_TYPES[name].vcpus * count for name, count in fleet_spec.items())
    return f"{' + '.join(parts)} ({vcpus} vCPUs)"


@dataclass
class ExecutionReport:
    """Outcome of one SciCumulus-RL run (the paper's Table IV row)."""

    workflow: str
    scheduler: str
    fleet: str
    vcpus: int
    plan: SchedulingPlan
    deploy_time: float  #: SCStarter provisioning latency (slowest boot)
    execution: SimulationResult  #: SCCore's run
    cost: float  #: the cloud bill (USD)
    learning_time: float = 0.0  #: WorkflowSim stage (0 for non-RL schedulers)
    simulated_makespan: float = 0.0  #: plan's makespan in the learning sim

    @property
    def total_execution_time(self) -> float:
        """The Table-IV metric: SCCore wall time on the cloud."""
        return self.execution.makespan


class SciCumulusRL:
    """The SWfMS facade.

    Parameters
    ----------
    provenance:
        Shared provenance store; an in-memory one is created if omitted.
    cloud_profile:
        Noise profile of the execution region.
    mpi:
        MPI latency/overhead configuration.
    seed:
        Root seed; each run derives independent streams from it.
    """

    def __init__(
        self,
        provenance: Optional[ProvenanceStore] = None,
        cloud_profile: CloudProfile = CloudProfile(),
        mpi: MpiConfig = MpiConfig(),
        seed: int = 0,
    ) -> None:
        self.provenance = provenance if provenance is not None else ProvenanceStore()
        self.cloud_profile = cloud_profile
        self.mpi = mpi
        self.seed = int(seed)
        self._run_counter = 0

    # -- SCSetup -----------------------------------------------------------

    @staticmethod
    def load_specification(xml_text: str) -> Workflow:
        """SCSetup: parse a SciCumulus workflow specification."""
        return workflow_from_xml(xml_text)

    @staticmethod
    def dump_specification(workflow: Workflow) -> str:
        """Serialize a workflow to the specification format."""
        return workflow_to_xml(workflow)

    def _learning_fleet(self, fleet_spec: Dict[str, int]) -> list:
        """A fleet with the same ids SCStarter will deploy (micros first)."""
        vms = []
        next_id = 0
        for name in sorted(fleet_spec, key=lambda t: VM_TYPES[t].vcpus):
            for _ in range(fleet_spec[name]):
                vms.append(Vm(next_id, VM_TYPES[name]))
                next_id += 1
        if not vms:
            raise ValidationError("fleet_spec must provision at least one VM")
        return vms

    # -- the full pipeline ---------------------------------------------------

    def run_workflow(
        self,
        workflow: Workflow,
        fleet_spec: Dict[str, int],
        scheduler: Union[str, StaticScheduler] = "reassign",
        params: Optional[ReassignParams] = None,
        use_provenance: bool = True,
    ) -> ExecutionReport:
        """Learn (or plan) a schedule, execute it on the cloud, record it.

        ``scheduler`` is either the string ``"reassign"`` (the RL mode:
        SCSetup invokes the WorkflowSim substitute and runs Algorithm 2)
        or any :class:`~repro.schedulers.base.StaticScheduler` (e.g.
        :class:`~repro.schedulers.heft.HeftScheduler` — the paper's
        baseline mode).
        """
        self._run_counter += 1
        run_seed = RngService(self.seed).spawn_seed(f"run:{self._run_counter}")
        # SCSetup: validate the spec by round-tripping through the XML format
        spec_workflow = workflow_from_xml(workflow_to_xml(workflow))
        label = fleet_label(fleet_spec)
        learning_fleet = self._learning_fleet(fleet_spec)

        learning_time = 0.0
        simulated_makespan = 0.0
        if isinstance(scheduler, str):
            if scheduler != "reassign":
                raise ValidationError(
                    f"unknown scheduler {scheduler!r}; pass 'reassign' or a "
                    "StaticScheduler instance"
                )
            params = params if params is not None else ReassignParams()
            prior_qtable = None
            prior_history = None
            if use_provenance:
                prior_qtable = self.provenance.latest_qtable(
                    spec_workflow.name, label, params.label()
                )
                history = self.provenance.execution_history(
                    spec_workflow.name, label
                )
                prior_history = history or None
            learner = ReassignLearner(
                spec_workflow,
                learning_fleet,
                params,
                seed=run_seed,
                prior_qtable_json=prior_qtable,
                prior_history=prior_history,
            )
            learning = learner.learn()
            plan = learning.plan
            learning_time = learning.learning_time
            simulated_makespan = learning.simulated_makespan
            # created_at = simulated learning-stage duration: deterministic
            # for a given seed, unlike the wall clock (rule RL002).
            self.provenance.record_learning_run(
                spec_workflow.name,
                label,
                params.label(),
                learning,
                timestamp=learning.simulated_makespan,
            )
            scheduler_name = plan.name
        else:
            plan = scheduler.plan(spec_workflow, learning_fleet)
            scheduler_name = scheduler.name

        return self.execute_plan(
            spec_workflow,
            fleet_spec,
            plan,
            scheduler_name=scheduler_name,
            learning_time=learning_time,
            simulated_makespan=simulated_makespan,
            run_seed=run_seed,
        )

    def execute_plan(
        self,
        workflow: Workflow,
        fleet_spec: Dict[str, int],
        plan: SchedulingPlan,
        scheduler_name: str = "",
        learning_time: float = 0.0,
        simulated_makespan: float = 0.0,
        run_seed: Optional[int] = None,
    ) -> ExecutionReport:
        """SCStarter + SCCore: deploy the fleet and execute a given plan."""
        if run_seed is None:
            self._run_counter += 1
            run_seed = RngService(self.seed).spawn_seed(f"run:{self._run_counter}")
        label = fleet_label(fleet_spec)
        cloud = SimulatedCloud(self.cloud_profile, seed=run_seed)
        fleet = cloud.deploy(fleet_spec)  # SCStarter
        deploy_time = max((vm.type.boot_time for vm in fleet), default=0.0)

        engine = MpiExecutionEngine(workflow, fleet, plan, cloud, self.mpi)
        execution = engine.run()  # SCCore
        cost = cloud.teardown(deploy_time + execution.makespan)

        report = ExecutionReport(
            workflow=workflow.name,
            scheduler=scheduler_name or plan.name,
            fleet=label,
            vcpus=fleet_vcpus(fleet),
            plan=plan,
            deploy_time=deploy_time,
            execution=execution,
            cost=cost,
            learning_time=learning_time,
            simulated_makespan=simulated_makespan,
        )
        # created_at = simulated completion time (deploy + makespan), so
        # same-seed runs produce byte-identical provenance (rule RL002).
        self.provenance.record_execution(
            execution,
            report.scheduler,
            label,
            cost=cost,
            timestamp=deploy_time + execution.makespan,
        )
        return report
