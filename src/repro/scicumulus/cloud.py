"""The simulated AWS execution environment ("the real cloud").

The paper learns in WorkflowSim and *executes* on Amazon AWS.  Our
execution environment is :class:`SimulatedCloud`: the same VM catalog,
but with the dirty dynamics the learning simulator deliberately omits —
Gaussian jitter on every execution, t2 burst-credit throttling of micro
instances under sustained load, and occasional noisy-neighbour
interference.  That sim-to-real gap is the point of the paper's Table IV:
plans that look similar in the clean simulator separate on real hardware.

:class:`CloudProfile` bundles the noise knobs so examples/benchmarks can
request calmer or stormier regions.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

import numpy as np

from repro.dag.activation import Activation
from repro.sim.datacenter import Datacenter
from repro.sim.fluctuation import (
    BurstThrottleFluctuation,
    ComposedFluctuation,
    FluctuationModel,
    GaussianFluctuation,
    InterferenceFluctuation,
)
from repro.sim.vm import VM_TYPES, Vm
from repro.util.rng import RngService
from repro.util.validate import ValidationError, check_non_negative

__all__ = ["CloudProfile", "SimulatedCloud"]


@dataclass(frozen=True)
class CloudProfile:
    """Noise characteristics of the execution region.

    The defaults model a moderately busy shared region; ``calm()`` and
    ``stormy()`` give the extremes used in the robustness ablations.
    """

    jitter_sigma: float = 0.08
    throttle_credit_seconds: float = 240.0
    throttle_factor: float = 1.7
    interference_probability: float = 0.04
    interference_slowdown: float = 2.0
    boot_time: float = 45.0
    storage_latency: float = 0.08  #: shared-storage per-file latency

    def __post_init__(self) -> None:
        check_non_negative("jitter_sigma", self.jitter_sigma)
        check_non_negative("boot_time", self.boot_time)

    @classmethod
    def calm(cls) -> "CloudProfile":
        """A quiet region: tiny jitter, no throttling or interference."""
        return cls(
            jitter_sigma=0.02,
            throttle_credit_seconds=1e9,
            interference_probability=0.0,
            boot_time=30.0,
        )

    @classmethod
    def stormy(cls) -> "CloudProfile":
        """A heavily shared region: strong noise everywhere."""
        return cls(
            jitter_sigma=0.15,
            throttle_credit_seconds=120.0,
            throttle_factor=2.2,
            interference_probability=0.10,
            interference_slowdown=2.5,
            boot_time=60.0,
        )

    def fluctuation(self) -> FluctuationModel:
        """Compose the profile into one fluctuation model."""
        models: List[FluctuationModel] = [GaussianFluctuation(self.jitter_sigma)]
        models.append(
            BurstThrottleFluctuation(
                credit_seconds=self.throttle_credit_seconds,
                throttle_factor=self.throttle_factor,
            )
        )
        if self.interference_probability > 0:
            models.append(
                InterferenceFluctuation(
                    probability=self.interference_probability,
                    slowdown=self.interference_slowdown,
                )
            )
        return ComposedFluctuation(models)


class SimulatedCloud:
    """A deployable AWS-like region.

    Responsibilities: provision the fleet a plan needs (SCStarter's job),
    sample noisy execution times (used by the MPI engine) and account for
    cost through the underlying :class:`~repro.sim.datacenter.Datacenter`.
    """

    def __init__(self, profile: CloudProfile = CloudProfile(), seed: int = 0) -> None:
        self.profile = profile
        self.datacenter = Datacenter(
            name="us-east-1", default_boot_time=profile.boot_time
        )
        self._fluctuation = profile.fluctuation()
        self._rng: np.random.Generator = RngService(seed).stream("cloud")
        self._busy_time: Dict[int, float] = {}

    # -- deployment ---------------------------------------------------------

    def deploy(self, type_counts: Dict[str, int]) -> List[Vm]:
        """Provision a fleet (e.g. ``{"t2.micro": 8, "t2.2xlarge": 1}``).

        VM ids follow the paper's convention (micros first).
        """
        for name in type_counts:
            if name not in VM_TYPES:
                raise ValidationError(f"unknown VM type {name!r}")
        fleet = self.datacenter.provision_fleet(type_counts)
        for vm in fleet:
            self._busy_time.setdefault(vm.id, 0.0)
        return fleet

    def teardown(self, at: float) -> float:
        """Release all VMs and return the bill."""
        self.datacenter.release_all(at)
        return self.datacenter.bill(at)

    # -- execution sampling --------------------------------------------------

    def execution_time(self, activation: Activation, vm: Vm, now: float) -> float:
        """Sample the noisy compute time of ``activation`` on ``vm``.

        Staging/messaging costs are the MPI engine's concern; this is pure
        compute with the region's fluctuation applied.  The VM's cumulative
        busy time (which drives burst throttling) is updated here.
        """
        busy = self._busy_time.get(vm.id, 0.0)
        factor = self._fluctuation.factor(vm, now, busy, self._rng)
        duration = vm.execution_time(activation.runtime) * factor
        self._busy_time[vm.id] = busy + duration
        return duration

    def transfer_time(self, n_files: int, total_bytes: float, vm: Vm) -> float:
        """Shared-storage transfer estimate for the MPI engine."""
        if n_files < 0 or total_bytes < 0:
            raise ValidationError("negative transfer request")
        bw = vm.type.bandwidth_bytes_per_s
        return n_files * self.profile.storage_latency + total_bytes / bw

    def busy_time(self, vm_id: int) -> float:
        """Cumulative sampled compute seconds of one VM."""
        return self._busy_time.get(vm_id, 0.0)
