"""SciCumulus workflow-specification XML.

SCSetup "is responsible for loading the workflow specification (an XML
file)".  SciCumulus describes workflows at the *activity* level (programs
+ relations), with activations derived from the data; our specification
keeps the activation-level detail so a round trip is lossless:

.. code-block:: xml

    <SciCumulus tag="montage-50">
      <Activity name="mProjectPP">
        <Activation id="0" runtime="13.2">
          <InputFile name="raw_0.fits" size="4123456"/>
          <OutputFile name="proj_0.fits" size="8001234"/>
        </Activation>
        ...
      </Activity>
      <Relation parent="0" child="11"/>
      ...
    </SciCumulus>
"""

from __future__ import annotations

import xml.etree.ElementTree as ET
from pathlib import Path
from typing import Dict, List, Union

from repro.dag.activation import Activation, File
from repro.dag.graph import Workflow
from repro.util.validate import ValidationError

__all__ = ["workflow_to_xml", "workflow_from_xml"]


def workflow_to_xml(workflow: Workflow, path: Union[str, Path, None] = None) -> str:
    """Serialize a workflow to SciCumulus specification XML."""
    root = ET.Element("SciCumulus", {"tag": workflow.name})
    by_activity: Dict[str, List[Activation]] = {}
    for ac in workflow.activations:
        by_activity.setdefault(ac.activity, []).append(ac)
    for activity in sorted(by_activity):
        act_el = ET.SubElement(root, "Activity", {"name": activity})
        for ac in by_activity[activity]:
            ac_el = ET.SubElement(
                act_el,
                "Activation",
                {"id": str(ac.id), "runtime": f"{ac.runtime:.6f}"},
            )
            for f in ac.inputs:
                ET.SubElement(
                    ac_el, "InputFile", {"name": f.name, "size": f"{f.size_bytes:.0f}"}
                )
            for f in ac.outputs:
                ET.SubElement(
                    ac_el, "OutputFile", {"name": f.name, "size": f"{f.size_bytes:.0f}"}
                )
    for parent, child in workflow.edges:
        ET.SubElement(root, "Relation", {"parent": str(parent), "child": str(child)})
    text = ET.tostring(root, encoding="unicode")
    if path is not None:
        Path(path).write_text(text, encoding="utf-8")
    return text


def workflow_from_xml(text: str) -> Workflow:
    """Parse a specification produced by :func:`workflow_to_xml`."""
    try:
        root = ET.fromstring(text)
    except ET.ParseError as exc:
        raise ValidationError(f"malformed SciCumulus XML: {exc}") from exc
    if root.tag != "SciCumulus":
        raise ValidationError(f"expected <SciCumulus> root, got <{root.tag}>")
    wf = Workflow(root.get("tag", "scicumulus-workflow"))
    for act_el in root.findall("Activity"):
        activity = act_el.get("name")
        if not activity:
            raise ValidationError("Activity element without a name")
        for ac_el in act_el.findall("Activation"):
            ac_id = ac_el.get("id")
            runtime = ac_el.get("runtime")
            if ac_id is None or runtime is None:
                raise ValidationError(
                    f"Activation under {activity!r} missing id/runtime"
                )
            inputs = tuple(
                File(e.get("name", ""), float(e.get("size", "0")))
                for e in ac_el.findall("InputFile")
            )
            outputs = tuple(
                File(e.get("name", ""), float(e.get("size", "0")))
                for e in ac_el.findall("OutputFile")
            )
            wf.add_activation(
                Activation(
                    id=int(ac_id),
                    activity=activity,
                    runtime=float(runtime),
                    inputs=inputs,
                    outputs=outputs,
                )
            )
    for rel in root.findall("Relation"):
        parent = rel.get("parent")
        child = rel.get("child")
        if parent is None or child is None:
            raise ValidationError("Relation element missing parent/child")
        wf.add_dependency(int(parent), int(child))
    wf.validate()
    return wf
