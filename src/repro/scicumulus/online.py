"""Online (plan-free) execution mode for SciCumulus-RL — future work of
the paper made concrete.

The paper's pipeline freezes a plan in the simulator and replays it on
the cloud; its conclusion hints at continuing adaptation.  This module
executes a workflow on the simulated cloud with a *live* online
scheduler — e.g. a :class:`~repro.core.reassign.ReassignScheduler`
carrying a Q-table warmed up in the simulator — so placement decisions
react to the noise the plan-based mode cannot see.

Implementation: the cloud execution is expressed as a
:class:`~repro.sim.simulator.WorkflowSimulator` run whose environment is
the cloud profile's fluctuation stack plus an MPI-overhead network
decorator (per-dispatch message latency), which is behaviourally
equivalent to the master/slave engine for scheduling purposes while
exposing the decision points an online scheduler needs.
"""

from __future__ import annotations

from typing import Dict, Optional

from repro.dag.activation import Activation
from repro.dag.graph import Workflow
from repro.scicumulus.cloud import CloudProfile
from repro.scicumulus.mpi_sim import MpiConfig
from repro.sim.metrics import SimulationResult
from repro.sim.network import NetworkModel, SharedStorageNetwork
from repro.sim.simulator import WorkflowSimulator
from repro.sim.vm import Vm

__all__ = ["MpiOverheadNetwork", "execute_online"]


class MpiOverheadNetwork(NetworkModel):
    """Decorates a network model with per-dispatch MPI messaging costs.

    Each activation's stage-in gains one EXECUTE round-trip worth of
    latency plus the master's handling overhead; its stage-out gains the
    DONE message.  This mirrors what
    :class:`~repro.scicumulus.mpi_sim.MpiExecutionEngine` charges.
    """

    def __init__(
        self,
        inner: Optional[NetworkModel] = None,
        mpi: MpiConfig = MpiConfig(),
    ) -> None:
        self.inner = inner if inner is not None else SharedStorageNetwork()
        self.mpi = mpi

    def stage_in_time(
        self, activation: Activation, vm: Vm, file_locations: Dict[str, int]
    ) -> float:
        return (
            self.mpi.master_overhead
            + self.mpi.message_latency
            + self.inner.stage_in_time(activation, vm, file_locations)
        )

    def stage_out_time(self, activation: Activation, vm: Vm) -> float:
        return self.mpi.message_latency + self.inner.stage_out_time(
            activation, vm
        )


def execute_online(
    workflow: Workflow,
    vms,
    scheduler,
    *,
    profile: CloudProfile = CloudProfile(),
    mpi: MpiConfig = MpiConfig(),
    seed: int = 0,
    max_attempts: int = 3,
) -> SimulationResult:
    """Execute a workflow on the noisy cloud with a live scheduler.

    Parameters
    ----------
    workflow / vms:
        Workload and deployed fleet.
    scheduler:
        Any :class:`~repro.schedulers.base.OnlineScheduler`; pass a
        :class:`~repro.core.reassign.ReassignScheduler` holding a
        simulator-trained Q-table for the adaptive ReASSIgN mode (with
        ``learning=True`` it even keeps learning on the cloud, feeding
        Q-updates from real observations).
    profile / mpi:
        The execution region's noise and messaging characteristics.
    max_attempts:
        Retries per activation (clouds fail; online mode should cope).
    """
    sim = WorkflowSimulator(
        workflow,
        vms,
        scheduler,
        network=MpiOverheadNetwork(SharedStorageNetwork(
            latency=profile.storage_latency), mpi),
        fluctuation=profile.fluctuation(),
        seed=seed,
        max_attempts=max_attempts,
    )
    return sim.run()
