"""Provenance analytics — reading the execution history back.

SciCumulus' provenance database is not write-only: the paper's whole
premise is that "long history of cloud usage for running workflows
contains useful information about resource behavior".  This module
distills that history into the summaries an operator (or the next
learning run) wants:

- per-VM performance report (mean execution/queue times, §III-B indices);
- per-activity runtime statistics across executions;
- scheduler comparison over everything recorded;
- makespan trend across successive executions of one workflow (is the
  system getting better as provenance accumulates?).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.scicumulus.provenance import ProvenanceStore
from repro.util.stats import RunningStats
from repro.util.tables import render_table
from repro.util.validate import check_probability

__all__ = [
    "VmReport",
    "vm_performance_report",
    "activity_statistics",
    "scheduler_comparison",
    "makespan_trend",
    "render_vm_report",
]


@dataclass(frozen=True)
class VmReport:
    """Aggregate §III-B view of one VM across recorded executions."""

    vm_id: int
    n_activations: int
    mean_execution: float
    mean_queue: float
    performance_index: float  #: P̄i_j at the given µ


def vm_performance_report(
    store: ProvenanceStore,
    workflow: Optional[str] = None,
    mu: float = 0.5,
) -> List[VmReport]:
    """Per-VM execution history summary (the reward's point of view)."""
    check_probability("mu", mu)
    exec_stats: Dict[int, RunningStats] = {}
    queue_stats: Dict[int, RunningStats] = {}
    for vm_id, te, tf in store.execution_history(workflow):
        exec_stats.setdefault(vm_id, RunningStats()).push(te)
        queue_stats.setdefault(vm_id, RunningStats()).push(tf)
    out = []
    for vm_id in sorted(exec_stats):
        es, qs = exec_stats[vm_id], queue_stats[vm_id]
        out.append(
            VmReport(
                vm_id=vm_id,
                n_activations=es.count,
                mean_execution=es.mean,
                mean_queue=qs.mean,
                performance_index=es.mean * mu + (1 - mu) * qs.mean,
            )
        )
    return out


def render_vm_report(reports: List[VmReport]) -> str:
    """ASCII table of a VM performance report."""
    return render_table(
        ["VM", "activations", "mean te [s]", "mean tf [s]", "P̄i (mu=0.5)"],
        [
            (r.vm_id, r.n_activations, round(r.mean_execution, 2),
             round(r.mean_queue, 2), round(r.performance_index, 2))
            for r in reports
        ],
        title="Provenance: per-VM performance history",
    )


def activity_statistics(
    store: ProvenanceStore, workflow: Optional[str] = None
) -> Dict[str, Tuple[int, float, float]]:
    """activity -> (count, mean execution time, std) across executions."""
    stats: Dict[str, RunningStats] = {}
    for row in store.executions(workflow):
        for (
            _exec_id, _ac_id, activity, _vm, _ready, start, finish, _att, failed
        ) in store.activation_rows(row.id):
            if failed:
                continue
            stats.setdefault(activity, RunningStats()).push(finish - start)
    return {
        activity: (s.count, s.mean, s.std) for activity, s in sorted(stats.items())
    }


def scheduler_comparison(
    store: ProvenanceStore, workflow: Optional[str] = None
) -> Dict[str, Tuple[int, float, float]]:
    """scheduler -> (runs, mean makespan, mean cost) over recorded runs."""
    makespans: Dict[str, RunningStats] = {}
    costs: Dict[str, RunningStats] = {}
    for row in store.executions(workflow):
        if row.final_state != "successfully finished":
            continue
        makespans.setdefault(row.scheduler, RunningStats()).push(row.makespan)
        costs.setdefault(row.scheduler, RunningStats()).push(row.cost)
    return {
        name: (s.count, s.mean, costs[name].mean)
        for name, s in sorted(makespans.items())
    }


def makespan_trend(
    store: ProvenanceStore, workflow: str, scheduler_prefix: str = "ReASSIgN"
) -> List[float]:
    """Makespans of successive runs of one workflow by one scheduler family.

    A downward trend is the provenance-warm-start effect: each run
    resumes from the previous Q-table and history.
    """
    return [
        row.makespan
        for row in store.executions(workflow)
        if row.scheduler.startswith(scheduler_prefix)
        and row.final_state == "successfully finished"
    ]
