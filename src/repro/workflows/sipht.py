"""Synthetic SIPHT workflow (sRNA gene prediction, Harvard).

Structure (Bharathi et al.)::

    Patser (xP)                       -> Patser_concate (x1) ---------+
    {Transterm, Findterm, RNAMotif, Blast}  -> SRNA (x1)              |
    SRNA -> {FFN_parse, Blast_synteny, Blast_candidate,               v
             Blast_QRNA, Blast_paralogues}     -> SRNA_annotate (x1)

so ``N = P + 12``.  SIPHT's distinguishing trait is a large pool of tiny
independent ``Patser`` jobs next to a handful of heavy BLAST stages —
high variance in task granularity.
"""

from __future__ import annotations

import numpy as np

from repro.dag.activation import File
from repro.dag.graph import Workflow
from repro.workflows.generator import WorkflowRecipe, sample_positive

__all__ = ["SiphtRecipe", "sipht"]

RUNTIME_MEANS = {
    "Patser": 1.5,
    "Patser_concate": 2.0,
    "Transterm": 30.0,
    "Findterm": 60.0,
    "RNAMotif": 10.0,
    "Blast": 100.0,
    "SRNA": 15.0,
    "FFN_parse": 5.0,
    "Blast_synteny": 30.0,
    "Blast_candidate": 25.0,
    "Blast_QRNA": 40.0,
    "Blast_paralogues": 30.0,
    "SRNA_annotate": 5.0,
}

_MB = 1e6


class SiphtRecipe(WorkflowRecipe):
    """Generator for SIPHT DAGs of an exact requested size."""

    name = "sipht"

    @classmethod
    def min_activations(cls) -> int:
        # P=1 plus the 12 fixed-stage jobs
        return 13

    def build(self, wf: Workflow, rng: np.random.Generator) -> None:
        n_patser = self.n_activations - 12

        patser_outs = []
        for i in range(n_patser):
            out = File(f"patser_{i}.out", sample_positive(rng, 0.05 * _MB))
            patser_outs.append(out)
            self.add_task(
                wf,
                "Patser",
                sample_positive(rng, RUNTIME_MEANS["Patser"]),
                inputs=[File(f"tfbs_{i}.matrix", sample_positive(rng, 0.02 * _MB))],
                outputs=[out],
            )

        patser_concat = File("patser_all.out", sample_positive(rng, 0.05 * _MB * n_patser))
        self.add_task(
            wf,
            "Patser_concate",
            sample_positive(rng, RUNTIME_MEANS["Patser_concate"]),
            inputs=list(patser_outs),
            outputs=[patser_concat],
        )

        genome = File("genome.ffn", sample_positive(rng, 5.0 * _MB))
        stage_outputs = []
        for activity in ("Transterm", "Findterm", "RNAMotif", "Blast"):
            out = File(f"{activity.lower()}.out", sample_positive(rng, 0.5 * _MB))
            stage_outputs.append(out)
            self.add_task(
                wf,
                activity,
                sample_positive(rng, RUNTIME_MEANS[activity]),
                inputs=[genome],
                outputs=[out],
            )

        srna_out = File("srna.candidates", sample_positive(rng, 0.5 * _MB))
        self.add_task(
            wf,
            "SRNA",
            sample_positive(rng, RUNTIME_MEANS["SRNA"]),
            inputs=list(stage_outputs),
            outputs=[srna_out],
        )

        downstream_outs = []
        for activity in (
            "FFN_parse",
            "Blast_synteny",
            "Blast_candidate",
            "Blast_QRNA",
            "Blast_paralogues",
        ):
            out = File(f"{activity.lower()}.out", sample_positive(rng, 0.3 * _MB))
            downstream_outs.append(out)
            self.add_task(
                wf,
                activity,
                sample_positive(rng, RUNTIME_MEANS[activity]),
                inputs=[srna_out],
                outputs=[out],
            )

        self.add_task(
            wf,
            "SRNA_annotate",
            sample_positive(rng, RUNTIME_MEANS["SRNA_annotate"]),
            inputs=downstream_outs + [patser_concat],
            outputs=[File("annotations.gff", sample_positive(rng, 0.2 * _MB))],
        )


def sipht(n_activations: int = 30, seed: int = 0) -> Workflow:
    """Generate a SIPHT workflow with exactly ``n_activations`` nodes."""
    return SiphtRecipe(n_activations, seed).generate()
