"""Synthetic Pegasus-style scientific workflows.

The paper's evaluation uses the Montage 50-activation trace from the
Pegasus *Workflow Generator*; that service published DAX files for five
benchmark workflows (Montage, CyberShake, Epigenomics, LIGO Inspiral,
SIPHT) whose structure and task-runtime distributions were characterized
by Bharathi et al. ("Characterization of scientific workflows", WORKS'08).

We regenerate those workflows synthetically: each generator reproduces the
published DAG *shape* and draws runtimes/file sizes from seeded
distributions with the published means.  ``montage(n_activations=50)`` is
the paper's workload; the others cover its "other workflows" future work.
"""

from repro.workflows.generator import WorkflowRecipe, sample_positive
from repro.workflows.montage import MontageRecipe, montage
from repro.workflows.cybershake import CyberShakeRecipe, cybershake
from repro.workflows.epigenomics import EpigenomicsRecipe, epigenomics
from repro.workflows.inspiral import InspiralRecipe, inspiral
from repro.workflows.sipht import SiphtRecipe, sipht
from repro.workflows.ensembles import merge_workflows, montage_ensemble, split_assignment
from repro.workflows.registry import available_workflows, make_workflow

__all__ = [
    "WorkflowRecipe",
    "sample_positive",
    "MontageRecipe",
    "montage",
    "CyberShakeRecipe",
    "cybershake",
    "EpigenomicsRecipe",
    "epigenomics",
    "InspiralRecipe",
    "inspiral",
    "SiphtRecipe",
    "sipht",
    "merge_workflows",
    "montage_ensemble",
    "split_assignment",
    "available_workflows",
    "make_workflow",
]
