"""Synthetic LIGO Inspiral workflow (gravitational-wave search).

Structure (Bharathi et al.)::

    TmpltBank (xM)  -> Inspiral (xM, one per bank)
    Inspirals are partitioned into G groups; per group:
        Thinca (x1)  -> TrigBank (x group size) -> Inspiral2 (x group size)
            -> Thinca2 (x1)

so ``N = 4M + 2G``.  ``Inspiral``/``Inspiral2`` (matched filtering) carry
almost all the compute; the Thinca coincidence stages are cheap
synchronization points.
"""

from __future__ import annotations

from typing import List, Tuple

import numpy as np

from repro.dag.activation import File
from repro.dag.graph import Workflow
from repro.util.validate import ValidationError
from repro.workflows.generator import WorkflowRecipe, sample_positive

__all__ = ["InspiralRecipe", "inspiral"]

RUNTIME_MEANS = {
    "TmpltBank": 20.0,
    "Inspiral": 80.0,
    "Thinca": 5.0,
    "TrigBank": 5.0,
    "Inspiral2": 60.0,
    "Thinca2": 5.0,
}

_MB = 1e6


def _partition(n_items: int, n_groups: int) -> List[List[int]]:
    """Split 0..n_items-1 into n_groups contiguous, near-equal groups."""
    base, extra = divmod(n_items, n_groups)
    groups: List[List[int]] = []
    start = 0
    for g in range(n_groups):
        size = base + (1 if g < extra else 0)
        groups.append(list(range(start, start + size)))
        start += size
    return groups


class InspiralRecipe(WorkflowRecipe):
    """Generator for LIGO Inspiral DAGs of an exact requested size."""

    name = "inspiral"

    @classmethod
    def min_activations(cls) -> int:
        # M=1, G=1 -> 4 + 2
        return 6

    def _solve_shape(self) -> Tuple[int, int]:
        """Find (M, G) with 4M + 2G == n, preferring groups of ~5."""
        n = self.n_activations
        best = None
        for groups in range(1, n // 2 + 1):
            rem = n - 2 * groups
            if rem < 4 or rem % 4:
                continue
            m = rem // 4
            if m < groups:
                continue
            score = abs(m / groups - 5.0)
            if best is None or score < best[0]:
                best = (score, m, groups)
        if best is None:
            raise ValidationError(
                f"cannot construct an Inspiral DAG with exactly {n} activations"
            )
        return best[1], best[2]

    def build(self, wf: Workflow, rng: np.random.Generator) -> None:
        n_banks, n_groups = self._solve_shape()

        banks = []
        for i in range(n_banks):
            out = File(f"bank_{i}.xml", sample_positive(rng, 1.5 * _MB))
            banks.append(out)
            self.add_task(
                wf,
                "TmpltBank",
                sample_positive(rng, RUNTIME_MEANS["TmpltBank"]),
                inputs=[File(f"frame_{i}.gwf", sample_positive(rng, 8.0 * _MB))],
                outputs=[out],
            )

        triggers = []
        for i in range(n_banks):
            out = File(f"trig_{i}.xml", sample_positive(rng, 0.8 * _MB))
            triggers.append(out)
            self.add_task(
                wf,
                "Inspiral",
                sample_positive(rng, RUNTIME_MEANS["Inspiral"]),
                inputs=[banks[i]],
                outputs=[out],
            )

        for g, members in enumerate(_partition(n_banks, n_groups)):
            coinc = File(f"coinc_{g}.xml", sample_positive(rng, 0.5 * _MB))
            self.add_task(
                wf,
                "Thinca",
                sample_positive(rng, RUNTIME_MEANS["Thinca"]),
                inputs=[triggers[i] for i in members],
                outputs=[coinc],
            )
            second_triggers = []
            for i in members:
                tb = File(f"trigbank_{i}.xml", sample_positive(rng, 0.8 * _MB))
                self.add_task(
                    wf,
                    "TrigBank",
                    sample_positive(rng, RUNTIME_MEANS["TrigBank"]),
                    inputs=[coinc],
                    outputs=[tb],
                )
                t2 = File(f"trig2_{i}.xml", sample_positive(rng, 0.8 * _MB))
                second_triggers.append(t2)
                self.add_task(
                    wf,
                    "Inspiral2",
                    sample_positive(rng, RUNTIME_MEANS["Inspiral2"]),
                    inputs=[tb],
                    outputs=[t2],
                )
            self.add_task(
                wf,
                "Thinca2",
                sample_positive(rng, RUNTIME_MEANS["Thinca2"]),
                inputs=second_triggers,
                outputs=[File(f"coinc2_{g}.xml", sample_positive(rng, 0.5 * _MB))],
            )


def inspiral(n_activations: int = 30, seed: int = 0) -> Workflow:
    """Generate a LIGO Inspiral workflow with exactly ``n_activations`` nodes."""
    return InspiralRecipe(n_activations, seed).generate()
