"""Synthetic CyberShake workflow (earthquake hazard characterization).

Structure (Bharathi et al.)::

    ExtractSGT (xE)
        -> SeismogramSynthesis (xK, fan-out from each ExtractSGT)
              -> ZipSeis (x1, gathers all seismograms)
              -> PeakValCalcOkaya (xK, one per seismogram)
                    -> ZipPSA (x1, gathers all peak values)

so ``N = E + 2K + 2``.  SeismogramSynthesis dominates the runtime;
ExtractSGT moves large SGT meshes (data-heavy), which is what makes
CyberShake the I/O-bound member of the benchmark suite.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

from repro.dag.activation import File
from repro.dag.graph import Workflow
from repro.util.validate import ValidationError
from repro.workflows.generator import WorkflowRecipe, sample_positive

__all__ = ["CyberShakeRecipe", "cybershake"]

RUNTIME_MEANS = {
    "ExtractSGT": 80.0,
    "SeismogramSynthesis": 30.0,
    "ZipSeis": 15.0,
    "PeakValCalcOkaya": 2.0,
    "ZipPSA": 10.0,
}

_MB = 1e6


class CyberShakeRecipe(WorkflowRecipe):
    """Generator for CyberShake DAGs of an exact requested size."""

    name = "cybershake"

    @classmethod
    def min_activations(cls) -> int:
        # E=1, K=1 -> 1 + 2 + 2
        return 5

    def _solve_shape(self) -> Tuple[int, int]:
        """Find (E, K) with E + 2K + 2 == n, preferring ~5 synth per SGT."""
        n = self.n_activations
        best = None
        for e in range(1, n):
            rem = n - 2 - e
            if rem < 2 or rem % 2:
                continue
            k = rem // 2
            if k < e:
                continue
            score = abs(k / e - 5.0)
            if best is None or score < best[0]:
                best = (score, e, k)
        if best is None:
            raise ValidationError(
                f"cannot construct a CyberShake DAG with exactly {n} activations"
            )
        return best[1], best[2]

    def build(self, wf: Workflow, rng: np.random.Generator) -> None:
        n_extract, n_synth = self._solve_shape()

        sgt_files = []
        for i in range(n_extract):
            out = File(f"sgt_{i}.bin", sample_positive(rng, 40.0 * _MB))
            sgt_files.append(out)
            self.add_task(
                wf,
                "ExtractSGT",
                sample_positive(rng, RUNTIME_MEANS["ExtractSGT"]),
                inputs=[File(f"rupture_{i}.var", sample_positive(rng, 1.0 * _MB))],
                outputs=[out],
            )

        seismograms = []
        for j in range(n_synth):
            src = sgt_files[j % n_extract]
            out = File(f"seis_{j}.grm", sample_positive(rng, 0.2 * _MB))
            seismograms.append(out)
            self.add_task(
                wf,
                "SeismogramSynthesis",
                sample_positive(rng, RUNTIME_MEANS["SeismogramSynthesis"]),
                inputs=[src],
                outputs=[out],
            )

        self.add_task(
            wf,
            "ZipSeis",
            sample_positive(rng, RUNTIME_MEANS["ZipSeis"]),
            inputs=list(seismograms),
            outputs=[File("seismograms.zip", sample_positive(rng, 0.2 * _MB * n_synth))],
        )

        peaks = []
        for j in range(n_synth):
            out = File(f"peak_{j}.bsa", sample_positive(rng, 0.05 * _MB))
            peaks.append(out)
            self.add_task(
                wf,
                "PeakValCalcOkaya",
                sample_positive(rng, RUNTIME_MEANS["PeakValCalcOkaya"]),
                inputs=[seismograms[j]],
                outputs=[out],
            )

        self.add_task(
            wf,
            "ZipPSA",
            sample_positive(rng, RUNTIME_MEANS["ZipPSA"]),
            inputs=list(peaks),
            outputs=[File("peaks.zip", sample_positive(rng, 0.05 * _MB * n_synth))],
        )


def cybershake(n_activations: int = 30, seed: int = 0) -> Workflow:
    """Generate a CyberShake workflow with exactly ``n_activations`` nodes."""
    return CyberShakeRecipe(n_activations, seed).generate()
